"""Shared machinery for the figure-regeneration benchmarks.

Each ``bench_figNN_*.py`` calls :func:`run_and_report`, which

1. runs the figure's experiment once inside ``benchmark.pedantic``
   (so ``pytest benchmarks/ --benchmark-only`` reports the wall time of
   a full regeneration), and
2. prints the figure's series — the same rows the paper plots — in
   every normalization the paper uses, plus an ASCII rendering.

Repetitions default to 5 (the paper uses 50); set ``REPRO_BENCH_REPS``
to change.  Set ``REPRO_BENCH_CSV_DIR`` to also dump each series as
CSV.  The experiment engine's knobs apply too: ``REPRO_BACKEND=process``
regenerates on a fork pool (bit-identical results), and with
``REPRO_CACHE_DIR`` set, a re-run of any figure is a content-addressed
cache hit that skips the scheduling work entirely.

This module also holds the helpers behind the committed perf
trajectory (``BENCH_pr6.json`` at the repo root, written by
``benchmarks/bench_trajectory.py`` and gated by
``benchmarks/check_trajectory.py``): a machine fingerprint, the git
revision, and the canonical record writer.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

from repro.experiments import build_figure, resolve_backend, resolve_cache_dir, run_experiment
from repro.experiments.figures import FIGURE_NORMALIZATIONS
from repro.experiments.tables import render_result
from repro.viz import plot_result

BENCH_REPS = int(os.environ.get("REPRO_BENCH_REPS", "5"))
CSV_DIR = os.environ.get("REPRO_BENCH_CSV_DIR")

#: Repository root (benchmarks/ lives directly under it).
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Version tag of the trajectory record format.
TRAJECTORY_FORMAT = 1


def machine_fingerprint() -> dict:
    """Where a trajectory record was measured.

    Absolute wall times are only comparable on the same fingerprint;
    the regression gate therefore compares machine-independent
    *ratios* (``speedup_vs_scalar``) and treats the absolute numbers
    as provenance.
    """
    import numpy as np

    return {
        "platform": _platform.platform(),
        "machine": _platform.machine(),
        "processor": _platform.processor() or _platform.machine(),
        "cpu_count": os.cpu_count(),
        "python": _platform.python_version(),
        "numpy": np.__version__,
    }


def git_revision() -> str:
    """The current commit SHA, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10)
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def write_trajectory(path, benches: dict, *, reps: int, pr: str = "pr6") -> dict:
    """Write the canonical trajectory record and return it.

    *benches* maps bench name to its measurement dict (wall seconds,
    throughput, and any bench-specific ratios); *pr* tags which PR's
    bench contract the record satisfies (see
    ``check_trajectory.REQUIRED_BENCHES``).
    """
    record = {
        "format": TRAJECTORY_FORMAT,
        "pr": pr,
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": git_revision(),
        "reps": reps,
        "machine": machine_fingerprint(),
        "benches": benches,
    }
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"[trajectory] wrote {path}", file=sys.stderr)
    return record


def run_and_report(figure_id: str, benchmark, *, reps: int | None = None,
                   backend: str | None = None, **build_kwargs):
    """Regenerate *figure_id* under the benchmark timer and print it."""
    reps = BENCH_REPS if reps is None else reps
    exp = build_figure(figure_id, reps=reps, **build_kwargs)
    print(f"[engine] backend={resolve_backend(backend, exp)} "
          f"cache={resolve_cache_dir(None) or 'off'}", file=sys.stderr)

    result_box = {}

    def regenerate():
        result_box["result"] = run_experiment(exp, backend=backend)

    benchmark.pedantic(regenerate, iterations=1, rounds=1)
    result = result_box["result"]

    for norm in FIGURE_NORMALIZATIONS[figure_id]:
        print()
        print(render_result(result, normalize_by=norm))
        try:
            logx = "Applications" in result.xlabel and result.x.min() > 0
            print(plot_result(result, normalize_by=norm, logx=logx, height=14))
        except Exception as exc:
            # Plotting is best-effort (the table above is the record),
            # but a failure must be visible, not silently swallowed.
            print(f"[plot] skipped ASCII rendering of {figure_id} "
                  f"({norm or 'raw'}): {type(exc).__name__}: {exc}",
                  file=sys.stderr)
    if CSV_DIR:
        out = Path(CSV_DIR)
        out.mkdir(parents=True, exist_ok=True)
        result.to_csv(out / f"{figure_id}.csv",
                      normalize_by=FIGURE_NORMALIZATIONS[figure_id][0])
        print(f"[csv] wrote {out / (figure_id + '.csv')}", file=sys.stderr)
    return result
