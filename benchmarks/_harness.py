"""Shared machinery for the figure-regeneration benchmarks.

Each ``bench_figNN_*.py`` calls :func:`run_and_report`, which

1. runs the figure's experiment once inside ``benchmark.pedantic``
   (so ``pytest benchmarks/ --benchmark-only`` reports the wall time of
   a full regeneration), and
2. prints the figure's series — the same rows the paper plots — in
   every normalization the paper uses, plus an ASCII rendering.

Repetitions default to 5 (the paper uses 50); set ``REPRO_BENCH_REPS``
to change.  Set ``REPRO_BENCH_CSV_DIR`` to also dump each series as
CSV.  The experiment engine's knobs apply too: ``REPRO_BACKEND=process``
regenerates on a fork pool (bit-identical results), and with
``REPRO_CACHE_DIR`` set, a re-run of any figure is a content-addressed
cache hit that skips the scheduling work entirely.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

from repro.experiments import build_figure, resolve_backend, resolve_cache_dir, run_experiment
from repro.experiments.figures import FIGURE_NORMALIZATIONS
from repro.experiments.tables import render_result
from repro.viz import plot_result

BENCH_REPS = int(os.environ.get("REPRO_BENCH_REPS", "5"))
CSV_DIR = os.environ.get("REPRO_BENCH_CSV_DIR")


def run_and_report(figure_id: str, benchmark, *, reps: int | None = None,
                   backend: str | None = None, **build_kwargs):
    """Regenerate *figure_id* under the benchmark timer and print it."""
    reps = BENCH_REPS if reps is None else reps
    exp = build_figure(figure_id, reps=reps, **build_kwargs)
    print(f"[engine] backend={resolve_backend(backend, exp)} "
          f"cache={resolve_cache_dir(None) or 'off'}", file=sys.stderr)

    result_box = {}

    def regenerate():
        result_box["result"] = run_experiment(exp, backend=backend)

    benchmark.pedantic(regenerate, iterations=1, rounds=1)
    result = result_box["result"]

    for norm in FIGURE_NORMALIZATIONS[figure_id]:
        print()
        print(render_result(result, normalize_by=norm))
        try:
            logx = "Applications" in result.xlabel and result.x.min() > 0
            print(plot_result(result, normalize_by=norm, logx=logx, height=14))
        except Exception:
            pass  # plotting is best-effort; the table is the record
    if CSV_DIR:
        out = Path(CSV_DIR)
        out.mkdir(parents=True, exist_ok=True)
        result.to_csv(out / f"{figure_id}.csv",
                      normalize_by=FIGURE_NORMALIZATIONS[figure_id][0])
        print(f"[csv] wrote {out / (figure_id + '.csv')}", file=sys.stderr)
    return result
