"""Ablation: equal-finish solver - Brent's method vs paper's bisection.

Both must agree to high precision; Brent needs fewer iterations.  The
two benchmark entries time a full 64-application allocation each way.
"""

import numpy as np
import pytest

from repro.core.processor_allocation import equal_finish_makespan
from repro.machine import taihulight
from repro.workloads import npb_synth


@pytest.fixture(scope="module")
def instance():
    pf = taihulight()
    wl = npb_synth(64, np.random.default_rng(0))
    x = np.zeros(64)
    return wl, pf, x


def test_solver_brentq(benchmark, instance):
    wl, pf, x = instance
    k = benchmark(lambda: equal_finish_makespan(wl, pf, x, method="brentq"))
    assert k > 0


def test_solver_bisect(benchmark, instance):
    wl, pf, x = instance
    k = benchmark(lambda: equal_finish_makespan(wl, pf, x, method="bisect"))
    assert k > 0
    # both solvers find the same root
    kb = equal_finish_makespan(wl, pf, x, method="brentq")
    assert abs(kb - k) / kb < 1e-8
