"""Ablation: choice-function pairing under cache pressure.

DESIGN.md calls out the Dominant/MinRatio vs DominantRev/MaxRatio
pairing intuition; this bench quantifies it on a small LLC with high
miss rates, where the greedy order actually matters (on the paper's
32 GB platform all six variants tie).
"""

import numpy as np

from repro.experiments import Experiment, run_experiment
from repro.experiments.tables import render_result
from repro.core.registry import PAPER_HEURISTICS
from repro.machine.presets import small_llc
from repro.workloads.synthetic import npb_synth
from _harness import BENCH_REPS


def _factory(point, rng):
    return npb_synth(int(point), rng).with_miss_rate(0.7), small_llc()


def test_ablation_choice(benchmark):
    exp = Experiment(
        experiment_id="ablation-choice",
        title="Choice-function pairing under cache pressure (m0=0.7, 1GB LLC)",
        xlabel="#Applications",
        points=np.array([8.0, 16.0, 32.0, 64.0]),
        factory=_factory,
        schedulers=PAPER_HEURISTICS,
        reps=max(BENCH_REPS, 8),
        seed=11,
    )
    box = {}
    benchmark.pedantic(lambda: box.update(r=run_experiment(exp)),
                       iterations=1, rounds=1)
    result = box["r"]
    print()
    print(render_result(result, normalize_by="dominant-minratio"))
    norm = result.normalized(by="dominant-minratio")
    # the well-paired variants never lose to the ill-paired ones on average
    good = (norm["dominant-minratio"].mean() + norm["dominantrev-maxratio"].mean()) / 2
    bad = (norm["dominant-maxratio"].mean() + norm["dominantrev-minratio"].mean()) / 2
    assert bad >= good * 0.999
