"""Ablation: heuristic optimality gap vs the exhaustive exact solver.

For perfectly parallel workloads (where subset enumeration is provably
exact), measure how far DominantMinRatio lands from the optimum, on
the paper's platform and under cache pressure.
"""

import numpy as np

from repro.core import dominant_schedule
from repro.experiments.tables import format_table
from repro.machine import small_llc, taihulight
from repro.theory import exact_optimal_schedule
from repro.workloads import npb_synth


def test_ablation_exact(benchmark):
    settings = [
        ("taihulight", taihulight(), 0.0),
        ("1GB-LLC m0=0.6", small_llc(p=16.0), 0.6),
    ]
    box = {}

    def run():
        rows = []
        for label, pf, miss in settings:
            gaps = []
            for seed in range(10):
                wl = npb_synth(10, np.random.default_rng(seed), seq_range=None)
                if miss > 0:
                    wl = wl.with_miss_rate(miss)
                exact = exact_optimal_schedule(wl, pf)
                heur = dominant_schedule(wl, pf, strategy="dominant",
                                         choice="minratio")
                gaps.append(heur.makespan() / exact.makespan - 1)
            gaps = np.asarray(gaps)
            rows.append([label, float(gaps.mean()), float(gaps.max())])
        box["rows"] = rows

    benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Optimality gap of DominantMinRatio (n=10, perfectly parallel)")
    print(format_table(["setting", "mean gap", "max gap"], box["rows"]))
    # on the paper's platform the heuristic is essentially optimal
    assert box["rows"][0][1] < 1e-6
    # under pressure the gap exists but stays small
    assert box["rows"][1][2] < 0.25
