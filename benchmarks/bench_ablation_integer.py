"""Ablation: cost of integer processor allocations.

Quantifies the paper's rationale for rational processors: with works
spanning 1e8-1e12 (NPB-SYNTH), whole-processor rounding is brutal;
with homogeneous works it is nearly free.
"""

import numpy as np

from repro.core import dominant_schedule
from repro.experiments.tables import format_table
from repro.extensions import rounding_penalty
from repro.machine import taihulight
from repro.workloads import npb_synth


def test_ablation_integer(benchmark):
    pf = taihulight()
    box = {}

    def run():
        rows = []
        for label, work_range, log_work in [
            ("log-uniform 1e8-1e12", (1e8, 1e12), True),
            ("homogeneous ~1e10", (1e10, 1.05e10), False),
        ]:
            pens = {"floor": [], "largest-remainder": [], "critical-path": []}
            for seed in range(8):
                wl = npb_synth(16, np.random.default_rng(seed),
                               work_range=work_range, log_work=log_work)
                sched = dominant_schedule(wl, pf, strategy="dominant",
                                          choice="minratio")
                for strat in pens:
                    pens[strat].append(rounding_penalty(sched, strategy=strat))
            rows.append([label] + [float(np.mean(pens[s])) for s in
                                   ("floor", "largest-remainder", "critical-path")])
        box["rows"] = rows

    benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Mean makespan penalty of integer processors (16 apps, p=256)")
    print(format_table(["workload", "floor", "largest-rem", "critical-path"],
                       box["rows"]))
    hetero, homo = box["rows"]
    assert homo[3] < 0.05          # homogeneous: rounding nearly free
    assert hetero[3] > homo[3]     # heterogeneity is what hurts
    assert hetero[3] <= hetero[1] + 1e-12  # critical-path no worse than floor
