"""Ablation: UCP discrete ways vs continuous Theorem-3 fractions.

Implements the paper's cited comparator (Qureshi & Patt's UCP) over
the analytic cost curves and prices the hardware-granularity gap:
CAT-scale way counts (11-20) are essentially free; very coarse
partitions are not.
"""

import numpy as np

from repro.experiments.tables import format_table
from repro.extensions import granularity_penalty
from repro.machine import small_llc, taihulight
from repro.workloads import npb_synth


def test_ablation_ucp(benchmark):
    box = {}

    def run():
        rows = []
        for label, pf, miss in [("taihulight", taihulight(), None),
                                ("1GB LLC, m0=0.5", small_llc(), 0.5)]:
            for ways in (4, 8, 20, 64):
                pens = []
                for seed in range(5):
                    wl = npb_synth(16, np.random.default_rng(seed))
                    if miss is not None:
                        wl = wl.with_miss_rate(miss)
                    pens.append(granularity_penalty(wl, pf, total_ways=ways))
                rows.append([f"{label} W={ways}", float(np.mean(pens)),
                             float(np.max(pens))])
        box["rows"] = rows

    benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Way-granularity penalty vs continuous fractions (16 apps)")
    print(format_table(["setting", "mean", "max"], box["rows"]))
    by_name = {r[0]: r for r in box["rows"]}
    assert by_name["taihulight W=20"][1] < 0.02   # CAT-scale: free
    assert by_name["taihulight W=4"][1] > by_name["taihulight W=20"][1]
