"""Execution-backend benchmark: full-figure regeneration, serial vs
process pool.

The grid is embarrassingly parallel (each task record carries its own
seeds), so on an N-core machine the ``process`` backend should
regenerate a figure near-linearly faster than ``serial`` while
producing bit-identical arrays — run with
``pytest benchmarks/bench_backends.py --benchmark-only`` and compare
the two rows.  A third case times the warm-cache path, which skips the
grid entirely.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import build_figure, run_experiment
from repro.experiments.engine import BACKENDS

REPS = 4


@pytest.fixture(scope="module")
def serial_reference():
    exp = build_figure("fig1", reps=REPS)
    return run_experiment(exp, backend="serial", use_cache=False)


@pytest.mark.parametrize("backend", BACKENDS)
def test_figure_regeneration_backend(benchmark, backend, serial_reference):
    exp = build_figure("fig1", reps=REPS)
    result = benchmark(
        lambda: run_experiment(exp, backend=backend, use_cache=False))
    for name in serial_reference.data:
        assert np.array_equal(result.samples(name),
                              serial_reference.samples(name)), name


def test_figure_regeneration_warm_cache(benchmark, tmp_path, serial_reference):
    exp = build_figure("fig1", reps=REPS)
    run_experiment(exp, cache_dir=tmp_path)  # populate
    result = benchmark(lambda: run_experiment(exp, cache_dir=tmp_path))
    assert np.array_equal(result.samples("dominant-minratio"),
                          serial_reference.samples("dominant-minratio"))
