"""Cache-simulator throughput and fit-quality benchmarks."""

import numpy as np
import pytest

from repro.cachesim import (
    LRUCache,
    fit_power_law,
    measure_miss_curve,
    stack_distances,
    zipf_stream,
)


@pytest.fixture(scope="module")
def trace():
    return zipf_stream(50_000, 50_000, np.random.default_rng(0), skew=1.2)


def test_lru_direct_throughput(benchmark, trace):
    def run():
        c = LRUCache(64, 8)
        c.run(trace)
        return c.misses

    misses = benchmark(run)
    assert misses > 0


def test_stack_algorithm_throughput(benchmark, trace):
    d = benchmark(lambda: stack_distances(trace))
    assert np.isfinite(d).any()


def test_fit_quality_vs_trace_length(benchmark):
    """Longer traces tighten the power-law fit (reported, not timed)."""
    rng = np.random.default_rng(3)
    box = {}

    def run():
        r2 = []
        for length in (20_000, 80_000, 200_000):
            t = zipf_stream(300_000, length, rng, skew=1.05)
            curve = measure_miss_curve(t, np.geomspace(16 * 1024, 8e6, 10),
                                       exclude_cold=True)
            fit = fit_power_law(curve.cache_bytes, curve.miss_rates, c0=40e6)
            r2.append(fit.r2)
        box["r2"] = r2

    benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("power-law fit r2 at trace lengths 20k/80k/200k:",
          [f"{v:.3f}" for v in box["r2"]])
    assert box["r2"][-1] > 0.8
