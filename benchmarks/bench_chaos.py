#!/usr/bin/env python
"""Resilience sweep: goodput retained vs. fault rate, per policy.

Runs every policy under the *same* compiled churn+crash streams at a
ladder of crash hazards, measures how much goodput each policy retains
relative to its own clean (fault-free) run, asserts the chaos
invariants on every run, and writes the curve into a ``BENCH_pr9.json``
trajectory record (same schema and tooling as the PR 6/7 records —
``check_trajectory.py validate / gate``).

``goodput_retained`` is machine-independent *and* deterministic (the
fault streams are pure functions of the seed), so the trajectory gate
checks it for exact-ish reproduction rather than the wall-time ratios
the perf benches use.

Usage::

    # full sweep, writes BENCH_pr9.json at the repo root
    PYTHONPATH=src python benchmarks/bench_chaos.py

    # smoke mode (fewer hazard points), custom output
    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke --out fresh.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import REPO_ROOT, write_trajectory  # noqa: E402

from repro.chaos import check_invariants, estimate_horizon, parse_fault_spec, run_chaos  # noqa: E402
from repro.machine.presets import get_preset  # noqa: E402
from repro.online.arrivals import parse_arrival_spec  # noqa: E402
from repro.workloads.synthetic import generate  # noqa: E402

#: Policies on the curve (>= 2, per the pr9 record contract).
POLICIES = ("dominant", "fair")

#: Crash hazards swept (crashes per application per model time unit).
#: The npb-synth/taihulight scenario spans ~1e11-1e12 time units, so
#: these range from "a few crashes total" to "a crash storm".
FULL_HAZARDS = (1e-12, 5e-12, 1e-11, 2e-11, 4e-11)
SMOKE_HAZARDS = (1e-11, 4e-11)

#: Fixed platform churn layered under every hazard point.
CHURN = "churn:period=2e10,drop=0.25"

NAPPS = 8
ARRIVALS = "poisson:rate=5e-9"
SEED = 2017
PROBE_SAMPLES = 256


def crash_spec(hazard: float) -> str:
    return f"{CHURN}+crash:hazard={hazard:g},delay=1e9"


def build_scenario():
    """Workload, platform, arrivals, horizon — shared by every run."""
    rng = np.random.default_rng(SEED)
    workload = generate("npb-synth", NAPPS, rng)
    platform = get_preset("taihulight")
    arrivals = parse_arrival_spec(ARRIVALS).times(NAPPS, rng)
    horizon = estimate_horizon(workload, platform, arrivals)
    return workload, platform, arrivals, horizon


def run_point(workload, platform, arrivals, horizon, policy, faults):
    """One audited chaos run; returns (result, wall seconds)."""
    t0 = perf_counter()
    result = run_chaos(
        workload, platform, arrivals,
        faults=faults, policy=policy, horizon=horizon,
        max_samples=PROBE_SAMPLES,
    )
    wall = perf_counter() - t0
    report = check_invariants(result)
    if not report.ok:
        sys.exit(f"invariant violation ({policy}):\n  "
                 + "\n  ".join(report.failures))
    return result, wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fewer hazard points (CI-friendly)")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_pr9.json")
    args = parser.parse_args(argv)

    hazards = SMOKE_HAZARDS if args.smoke else FULL_HAZARDS
    workload, platform, arrivals, horizon = build_scenario()

    # Compile each hazard's stream once, from its own fixed seed, and
    # inject the identical stream into every policy — the per-cell
    # discipline of experiments/chaos.py, applied to the bench ladder.
    compiled = {
        hazard: parse_fault_spec(crash_spec(hazard)).compile(
            workload.n, platform.p, horizon,
            np.random.default_rng((SEED, k)))
        for k, hazard in enumerate(hazards)
    }

    benches: dict[str, dict] = {}
    print(f"scenario: {NAPPS} apps, {ARRIVALS} arrivals, "
          f"horizon {horizon:.3g}", file=sys.stderr)
    for policy in POLICIES:
        clean, wall = run_point(workload, platform, arrivals, horizon,
                                policy, "none")
        benches[f"chaos_{policy}_clean"] = {
            "backend": "serial", "batch": 1, "instances": 1,
            "wall_s": wall, "instances_per_s": 1.0 / wall,
            "fault_rate": 0.0, "goodput": clean.goodput,
            "goodput_retained": 1.0, "crashes": 0,
            "makespan": clean.makespan,
        }
        print(f"  {policy:10s} clean      goodput {clean.goodput:8.3f}  "
              f"makespan {clean.makespan:.4g}", file=sys.stderr)
        for hazard in hazards:
            result, wall = run_point(workload, platform, arrivals, horizon,
                                     policy, compiled[hazard])
            retained = result.goodput / clean.goodput
            benches[f"chaos_{policy}_h{hazard:g}"] = {
                "backend": "serial", "batch": 1, "instances": 1,
                "wall_s": wall, "instances_per_s": 1.0 / wall,
                "fault_rate": hazard, "goodput": result.goodput,
                "goodput_retained": retained,
                "crashes": result.crashes,
                "lost_work": result.lost_work,
                "makespan": result.makespan,
            }
            print(f"  {policy:10s} h={hazard:<8g} goodput {result.goodput:8.3f}  "
                  f"retained {retained:6.3f}  crashes {result.crashes}",
                  file=sys.stderr)

    write_trajectory(args.out, benches, reps=1, pr="pr9")

    from check_trajectory import validate_record
    import json
    errors = validate_record(json.loads(args.out.read_text()))
    if errors:
        for err in errors:
            print(f"SCHEMA  {err}", file=sys.stderr)
        return 1
    print(f"{args.out}: schema OK ({len(benches)} benches)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
