"""Ablation: the future-work extensions vs DominantMinRatio.

speedup-aware (KKT fixed point) and continuous-opt (SLSQP) should tie
with each other and never lose to the Theorem-3 allocation; local
search never loses to its greedy start.  Gains grow with the spread of
sequential fractions.
"""

import numpy as np

from repro.core import get_scheduler
from repro.experiments.tables import format_table
from repro.machine import taihulight
from repro.workloads import npb_synth


def test_extensions(benchmark):
    import repro.extensions  # noqa: F401

    pf = taihulight()
    names = ("dominant-minratio", "speedup-aware", "localsearch", "continuous-opt")
    box = {}

    def run():
        rows = []
        for label, seq_range in [("s in [0.01, 0.15]", (0.01, 0.15)),
                                 ("s in [0, 0.4]", (0.0, 0.4))]:
            sums = {n: 0.0 for n in names}
            for seed in range(6):
                wl = npb_synth(16, np.random.default_rng(seed),
                               seq_range=seq_range)
                base = None
                for n in names:
                    span = get_scheduler(n)(wl, pf, np.random.default_rng(1)).makespan()
                    if base is None:
                        base = span
                    sums[n] += span / base
            rows.append([label] + [sums[n] / 6 for n in names])
        box["rows"] = rows

    benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Extensions vs DominantMinRatio (normalized makespan, 16 apps)")
    print(format_table(["workload"] + list(names), box["rows"]))
    for row in box["rows"]:
        assert row[2] <= 1.0 + 1e-9   # speedup-aware never worse
        assert row[3] <= 1.0 + 1e-9   # localsearch never worse
        assert row[4] <= 1.0 + 1e-9   # continuous never worse
