"""Fig. 1: the six dominant-partition heuristics vs AllProcCache.

Paper shape: all six variants overlap, ~85% below AllProcCache once
n >= 50 applications (NPB-SYNTH, p = 256).
"""

from _harness import run_and_report


def test_fig01_heuristics(benchmark):
    result = run_and_report("fig1", benchmark)
    norm = result.normalized(by="allproccache")
    large_n = result.x >= 50
    for name in result.schedulers:
        if name != "allproccache":
            assert norm[name][large_n].max() < 0.3, name
