"""Fig. 2: impact of the cache miss rate with a 1 GB LLC.

Paper shape: the six heuristics separate only above miss rate ~0.1;
Dominant+MinRatio and DominantRev+MaxRatio overlap as the best pair,
Dominant+MaxRatio and DominantRev+MinRatio as the worst.
"""

from _harness import run_and_report


def test_fig02_missrate(benchmark):
    result = run_and_report("fig2", benchmark)
    norm = result.normalized(by="dominant-minratio")
    high = result.x >= 0.5
    # the "bad pairing" curves sit at or above the good ones
    assert norm["dominant-maxratio"][high].mean() >= 0.999
    assert norm["dominantrev-minratio"][high].mean() >= 0.999
