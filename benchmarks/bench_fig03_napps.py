"""Fig. 3: impact of the number of applications (NPB-SYNTH, p = 256).

Paper shape: DominantMinRatio best throughout; Fair competitive only
at small n; 0cache and RandomPart in between and stable.
"""

from _harness import run_and_report


def test_fig03_napps(benchmark):
    result = run_and_report("fig3", benchmark)
    norm = result.normalized(by="dominant-minratio")
    big = result.x >= 64
    for name in ("randompart", "fair", "0cache"):
        assert norm[name][big].min() >= 0.999, name
    assert norm["fair"][big].mean() > norm["0cache"][big].mean()
