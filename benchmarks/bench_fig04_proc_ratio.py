"""Fig. 4: impact of the average number of processors per application.

Paper shape: with many processors per application Fair improves
(everyone fits in cache); with few, 0cache beats Fair.
"""

from _harness import run_and_report


def test_fig04_proc_ratio(benchmark):
    result = run_and_report("fig4", benchmark)
    norm = result.normalized(by="dominant-minratio")
    # Fair improves as the ratio grows
    assert norm["fair"][-1] < norm["fair"][0]
    # at low ratios (many apps), 0cache beats Fair
    assert norm["0cache"][0] < norm["fair"][0]
