"""Fig. 5: impact of the number of processors (16 applications).

Paper shape: co-scheduling gain grows with p; DominantMinRatio beats
0cache by > 20% (the pure cache-allocation effect) at p = 256.
"""

from _harness import run_and_report


def test_fig05_nprocs(benchmark):
    result = run_and_report("fig5", benchmark)
    norm = result.normalized(by="dominant-minratio")
    assert norm["0cache"][-1] > 1.2
    apc = result.normalized(by="allproccache")["dominant-minratio"]
    assert apc[-1] < apc[0]  # gain grows with p
