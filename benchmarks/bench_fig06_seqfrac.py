"""Fig. 6: impact of the sequential fraction of work (16 apps, p=256).

Paper shape: all co-scheduling heuristics beat AllProcCache once s > 0,
with > 50% gain already at s = 0.01; Fair closes on DominantMinRatio
as s grows.
"""

from _harness import run_and_report


def test_fig06_seqfrac(benchmark):
    result = run_and_report("fig6", benchmark)
    apc = result.normalized(by="allproccache")
    s001 = abs(result.x - 0.01).argmin()
    assert apc["dominant-minratio"][s001] < 0.55
    fair = result.normalized(by="dominant-minratio")["fair"]
    assert fair[-1] < fair[1]
