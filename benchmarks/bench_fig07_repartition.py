"""Fig. 7: processor and cache repartition (min/avg/max per app).

Paper shape: the min-max band shrinks as n grows; Fair's band is a
single line (identical allocations); 0cache's processor split tracks
DominantMinRatio's.
"""

import numpy as np

from _harness import run_and_report
from repro.experiments.tables import format_table


def test_fig07_repartition(benchmark):
    result = run_and_report("fig7", benchmark)
    header = ["#apps"]
    rows = [[float(x)] for x in result.x]
    for sched in ("dominant-minratio", "fair", "0cache"):
        for metric in ("proc_min", "proc_mean", "proc_max"):
            header.append(f"{sched}.{metric}")
            for i, row in enumerate(rows):
                row.append(float(result.mean(sched, metric)[i]))
    print()
    print("Fig. 7 processor repartition detail")
    print(format_table(header, rows))

    spread = (result.mean("dominant-minratio", "proc_max")
              - result.mean("dominant-minratio", "proc_min"))
    assert spread[-1] < spread[np.argmax(spread)]
    assert np.allclose(result.mean("fair", "proc_min"),
                       result.mean("fair", "proc_max"))
