"""Fig. 8 (Appendix A.1): number of applications with the RANDOM set.

Paper shape: same story as Fig. 3 - dominant partitions win.
"""

from _harness import run_and_report


def test_fig08_napps_random(benchmark):
    result = run_and_report("fig8", benchmark)
    norm = result.normalized(by="dominant-minratio")
    big = result.x >= 64
    for name in ("randompart", "fair", "0cache"):
        assert norm[name][big].min() >= 0.999, name
