"""Fig. 9 (A.2): number of processors, NPB-SYNTH with 64 applications.

Paper shape: with many applications Fair becomes the worst heuristic,
even below 0cache.
"""

from _harness import run_and_report


def test_fig09_nprocs64(benchmark):
    result = run_and_report("fig9", benchmark)
    norm = result.normalized(by="dominant-minratio")
    assert norm["fair"].mean() > norm["0cache"].mean()
