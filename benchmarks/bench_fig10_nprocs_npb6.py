"""Fig. 10 (A.2): number of processors with NPB-6 (6 applications).

Paper shape: with few applications Fair beats 0cache once p > ~50.
"""

from _harness import run_and_report


def test_fig10_nprocs_npb6(benchmark):
    result = run_and_report("fig10", benchmark)
    norm = result.normalized(by="dominant-minratio")
    large_p = result.x >= 64
    assert norm["fair"][large_p].mean() < norm["0cache"][large_p].mean()
