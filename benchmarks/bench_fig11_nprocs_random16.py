"""Fig. 11 (A.2): number of processors, RANDOM with 16 applications."""

from _harness import run_and_report


def test_fig11_nprocs_random16(benchmark):
    result = run_and_report("fig11", benchmark)
    norm = result.normalized(by="dominant-minratio")
    for name in ("randompart", "fair", "0cache"):
        assert norm[name].min() >= 0.999, name
