"""Fig. 12 (A.2): number of processors, RANDOM with 64 applications.

Paper shape: relative performance is stable in p; DominantMinRatio
stays best.
"""

from _harness import run_and_report


def test_fig12_nprocs_random64(benchmark):
    result = run_and_report("fig12", benchmark)
    norm = result.normalized(by="dominant-minratio")
    for name in ("randompart", "0cache"):
        series = norm[name]
        assert series.max() / series.min() < 1.5, name  # stable in p
