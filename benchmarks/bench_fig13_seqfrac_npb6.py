"""Fig. 13 (A.3): sequential fraction with NPB-6.

Paper shape: Fair's relative performance improves as s grows (cache
allocation matters more, processor allocation less).
"""

from _harness import run_and_report


def test_fig13_seqfrac_npb6(benchmark):
    result = run_and_report("fig13", benchmark)
    fair = result.normalized(by="dominant-minratio")["fair"]
    assert fair[-1] < fair[1]
