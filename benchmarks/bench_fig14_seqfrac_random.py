"""Fig. 14 (A.3): sequential fraction with RANDOM (16 apps)."""

from _harness import run_and_report


def test_fig14_seqfrac_random(benchmark):
    result = run_and_report("fig14", benchmark)
    apc = result.normalized(by="allproccache")["dominant-minratio"]
    assert apc[-1] < 0.6  # strong co-scheduling gain at s = 0.15
