"""Fig. 15 (A.4): cache latency ls sweep, 16 apps, s = 1e-4.

Paper shape: ls has no impact on *relative* performance.
"""

from _harness import run_and_report


def test_fig15_latency16(benchmark):
    result = run_and_report("fig15", benchmark)
    norm = result.normalized(by="allproccache")
    for name in result.schedulers:
        series = norm[name]
        # flat in ls: residual variation is sampling noise, not trend
        assert series.max() / series.min() < 1.35, name
