"""Fig. 16 (A.4): cache latency ls sweep, 64 apps, s = 1e-4."""

from _harness import run_and_report


def test_fig16_latency64(benchmark):
    result = run_and_report("fig16", benchmark)
    norm = result.normalized(by="allproccache")
    for name in result.schedulers:
        series = norm[name]
        # flat in ls: residual variation is sampling noise, not trend
        assert series.max() / series.min() < 1.35, name
