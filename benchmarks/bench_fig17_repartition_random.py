"""Fig. 17 (A.5): processor and cache repartition with RANDOM.

Paper shape: like Fig. 7, but Fair's *cache* allocation is more
heterogeneous (random access frequencies).
"""

import numpy as np

from _harness import run_and_report


def test_fig17_repartition_random(benchmark):
    result = run_and_report("fig17", benchmark)
    spread = (result.mean("dominant-minratio", "proc_max")
              - result.mean("dominant-minratio", "proc_min"))
    assert spread[-1] < spread.max()
    cache_spread = (result.mean("fair", "cache_max")
                    - result.mean("fair", "cache_min"))
    assert np.any(cache_spread > 0)  # heterogeneous Fair cache shares
