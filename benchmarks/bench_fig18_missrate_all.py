"""Fig. 18 (A.6): miss-rate sweep with all nine heuristics, 1 GB LLC.

Paper shape: as the miss rate grows, 0cache and RandomPart close in on
the dominant heuristics (cache stops mattering).
"""

from _harness import run_and_report


def test_fig18_missrate_all(benchmark):
    result = run_and_report("fig18", benchmark)
    norm = result.normalized(by="dominant-minratio")
    assert norm["0cache"][-1] < norm["0cache"][0]  # closes the gap
