"""Ablation: interference-graph pairwise co-scheduling vs partitioning.

Implements the related-work philosophy (Section 2: interference graph
+ optimal pairwise matching, refs [15, 29, 13]) against the same model
and shows the paper's thesis quantitatively: time-slicing optimal
pairs beats pure sequential execution, but co-running *everyone* with
dominant-partition cache allocation beats both.
"""

import numpy as np

from repro.core import get_scheduler
from repro.experiments.tables import format_table
from repro.machine import taihulight
from repro.workloads import npb_synth


def test_interference(benchmark):
    import repro.interference  # noqa: F401  (registers pairwise-matching)

    pf = taihulight()
    box = {}

    def run():
        rows = []
        for n in (6, 10, 16):
            sums = {"dominant-minratio": 0.0, "pairwise-matching": 0.0,
                    "allproccache": 0.0}
            reps = 4
            for seed in range(reps):
                wl = npb_synth(n, np.random.default_rng(seed))
                base = get_scheduler("dominant-minratio")(wl, pf, None).makespan()
                for name in sums:
                    span = get_scheduler(name)(wl, pf, None).makespan()
                    sums[name] += span / base
            rows.append([float(n)] + [sums[k] / reps for k in
                                      ("dominant-minratio", "pairwise-matching",
                                       "allproccache")])
        box["rows"] = rows

    benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Pairwise matching vs dominant partitioning "
          "(normalized by dominant-minratio)")
    print(format_table(["n", "dominant", "pairwise", "allproccache"],
                       box["rows"]))
    for row in box["rows"]:
        assert row[2] > 1.0        # pairwise loses to dominant
        assert row[2] < row[3]     # ...but beats sequential execution
