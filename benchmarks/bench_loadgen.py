#!/usr/bin/env python
"""Open-loop load generator for the decision service.

Replays :mod:`repro.online.arrivals` traffic models (constant rate,
inhomogeneous Poisson, trace) against a live server, sweeping offered
load and recording the throughput-vs-latency degradation curve into a
``BENCH_pr7.json`` trajectory record (same schema and gate as the PR 6
record — ``check_trajectory.py validate / gate``).

Open loop means arrivals are *scheduled*, not paced by responses: a
request's latency is measured from its scheduled arrival instant, so
when the server (or the shared accept queue) falls behind, the delay
shows up as tail latency instead of silently shrinking the offered
rate — the standard way to expose the saturation knee.

Usage::

    # full sweep against a self-hosted in-process async server
    PYTHONPATH=src python benchmarks/bench_loadgen.py

    # smoke mode (low rates, short) against an external server
    PYTHONPATH=src python benchmarks/bench_loadgen.py --smoke \
        --url http://127.0.0.1:8765 --out fresh_load.json

The record also carries the sharded-vs-single-lock cache A/B under 8
concurrent clients (``cache_single_8t`` / ``cache_sharded_8t``); the
sharded bench's ``speedup_vs_scalar`` ratio is what the regression
gate tracks across machines.  In full mode the acceptance bars are
enforced: >= 10k warm decisions/s at the knee and >= 2x sharded cache
throughput.
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import sys
import threading
from collections import deque
from pathlib import Path
from time import perf_counter
from urllib.parse import urlsplit

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import REPO_ROOT, write_trajectory  # noqa: E402

from repro.online.arrivals import (  # noqa: E402
    ConstantRate,
    PoissonProcess,
    TraceSource,
)
from repro.service.cache import DecisionCache, ShardedDecisionCache  # noqa: E402

#: Offered-load sweep points (requests/s).
FULL_RATES = (3000, 8000, 14000, 20000, 30000, 40000)
SMOKE_RATES = (400, 800, 1600)

#: How long each sweep point offers load.
FULL_DURATION_S = 4.0
SMOKE_DURATION_S = 1.5

#: Don't sleep for gaps shorter than this — the event loop's timer
#: granularity would turn the sleep into lateness anyway.
_MIN_SLEEP_S = 5e-4


# -- request corpus --------------------------------------------------------
def build_bodies(distinct: int, napps: int, seed: int = 2017) -> list[bytes]:
    """*distinct* allocation request bodies (byte-stable, reproducible)."""
    rng = np.random.default_rng(seed)
    bodies = []
    for _ in range(distinct):
        apps = [
            {
                "work": float(round(rng.uniform(50.0, 500.0), 3)),
                "seq_fraction": float(round(rng.uniform(0.0, 0.2), 4)),
                "miss_rate": float(round(rng.uniform(0.05, 0.5), 4)),
            }
            for _ in range(napps)
        ]
        payload = {"applications": apps, "platform": "taihulight",
                   "scheduler": "dominant-minratio"}
        bodies.append(json.dumps(payload).encode())
    return bodies


def http_request(body: bytes) -> bytes:
    return (b"POST /v1/allocate HTTP/1.1\r\n"
            b"Host: bench\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n"
            + body)


# -- client ----------------------------------------------------------------
class _SweepState:
    """Shared tally across one sweep point's connections."""

    def __init__(self, expected: int):
        self.expected = expected
        self.completed = 0
        self.ok = 0
        self.errors = 0
        self.latencies: list[float] = []
        self.done = asyncio.Event()
        self.last_response_at = 0.0

    def account(self, ok: bool, latency_s: float) -> None:
        self.completed += 1
        if ok:
            self.ok += 1
            self.latencies.append(latency_s)
        else:
            self.errors += 1
        if self.completed >= self.expected:
            self.last_response_at = perf_counter()
            self.done.set()


class _ClientConn(asyncio.Protocol):
    """One persistent connection: FIFO response matching.

    Requests on a connection are answered in order (the server's
    outbox guarantees it), so the scheduled-arrival timestamps queue
    FIFO and each parsed response pops the front.
    """

    def __init__(self, state: _SweepState):
        self.state = state
        self.pending: deque[float] = deque()
        self.buf = bytearray()
        self.transport: asyncio.Transport | None = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def connection_lost(self, exc) -> None:
        self.transport = None

    def send(self, request: bytes, scheduled_at: float) -> None:
        self.pending.append(scheduled_at)
        self.transport.write(request)

    def data_received(self, data: bytes) -> None:
        buf = self.buf
        buf += data
        while True:
            header_end = buf.find(b"\r\n\r\n")
            if header_end < 0:
                return
            header = bytes(buf[:header_end])
            lower = header.lower()
            idx = lower.find(b"content-length:")
            end = lower.find(b"\r\n", idx)
            length = int(lower[idx + 15:end if end >= 0 else len(lower)])
            total = header_end + 4 + length
            if len(buf) < total:
                return
            del buf[:total]
            scheduled_at = self.pending.popleft()
            self.state.account(header[9:12] == b"200",
                               perf_counter() - scheduled_at)


async def _open_connections(host: str, port: int, n: int,
                            state: _SweepState) -> list[_ClientConn]:
    loop = asyncio.get_running_loop()
    conns = []
    for _ in range(n):
        _, proto = await loop.create_connection(
            lambda: _ClientConn(state), host, port)
        conns.append(proto)
    return conns


async def run_sweep(host: str, port: int, requests: list[bytes],
                    arrival_s: np.ndarray, connections: int) -> dict:
    """Offer *arrival_s*-scheduled requests; return the point's stats."""
    state = _SweepState(expected=len(arrival_s))
    conns = await _open_connections(host, port, connections, state)
    try:
        nconn = len(conns)
        nreq = len(requests)
        t0 = perf_counter()
        for i, at in enumerate(arrival_s):
            due = t0 + at
            gap = due - perf_counter()
            if gap > _MIN_SLEEP_S:
                await asyncio.sleep(gap)
            conns[i % nconn].send(requests[i % nreq], due)
        span = float(arrival_s[-1]) if len(arrival_s) else 0.0
        await asyncio.wait_for(state.done.wait(), timeout=span + 60.0)
        wall = state.last_response_at - t0
    finally:
        for conn in conns:
            if conn.transport is not None:
                conn.transport.close()
    latencies = np.sort(np.asarray(state.latencies))

    def pct(q: float) -> float:
        if latencies.size == 0:
            return 0.0
        return float(latencies[min(latencies.size - 1,
                                   int(q * latencies.size))]) * 1e3

    return {
        "ok": state.ok,
        "errors": state.errors,
        "wall_s": wall,
        "achieved_per_s": state.ok / wall if wall > 0 else 0.0,
        "p50_ms": pct(0.50),
        "p95_ms": pct(0.95),
        "p99_ms": pct(0.99),
    }


async def warm_up(host: str, port: int, requests: list[bytes]) -> None:
    """Send every distinct request once so repeats hit the caches."""
    state = _SweepState(expected=len(requests))
    conns = await _open_connections(host, port, min(8, len(requests)), state)
    try:
        now = perf_counter()
        for i, request in enumerate(requests):
            conns[i % len(conns)].send(request, now)
        await asyncio.wait_for(state.done.wait(), timeout=120.0)
    finally:
        for conn in conns:
            if conn.transport is not None:
                conn.transport.close()


def arrival_times(kind: str, rate: float, duration: float,
                  seed: int) -> np.ndarray:
    """Arrival instants (seconds) for one sweep point."""
    n = max(1, int(rate * duration))
    rng = np.random.default_rng(seed)
    if kind == "constant":
        return ConstantRate(period=1.0 / rate).times(n, rng)
    if kind == "poisson":
        return PoissonProcess(rate=rate).times(n, rng)
    if kind.startswith("trace:"):
        # Replay the trace's shape, rescaled onto this sweep point's
        # duration so its mean rate matches the offered rate.
        t = TraceSource(path=Path(kind[6:])).times(n, rng)
        span = float(t[-1]) if t[-1] > 0 else 1.0
        return t * (duration / span)
    raise SystemExit(f"error: unknown arrivals kind {kind!r} "
                     f"(constant, poisson, trace:PATH)")


# -- cache A/B under concurrent clients ------------------------------------
def _hammer(nthreads: int, make_worker) -> float:
    """Run *nthreads* workers through a start barrier; return wall s."""
    barrier = threading.Barrier(nthreads + 1)

    def wrap(fn):
        def run():
            barrier.wait()
            fn()
        return run

    threads = [threading.Thread(target=wrap(make_worker(i)))
               for i in range(nthreads)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = perf_counter()
    for t in threads:
        t.join()
    return perf_counter() - t0


def bench_cache_ab(nthreads: int = 8, nkeys: int = 1024,
                   lookups_per_thread: int = 200_000,
                   burst: int = 64) -> tuple[dict, dict]:
    """Single-lock vs sharded cache throughput under *nthreads* clients.

    Both caches hold the same *nkeys* fingerprints and every thread
    performs the same number of key lookups; the sharded side goes
    through :meth:`ShardedDecisionCache.get_many` in *burst*-sized
    probes — the batch API the serving path actually uses.
    """
    keys = [hashlib.sha256(str(i).encode()).hexdigest()
            for i in range(nkeys)]
    total = nthreads * lookups_per_thread

    single: DecisionCache = DecisionCache(nkeys * 2)
    for key in keys:
        single.put(key, object())

    def single_worker(tid: int):
        local = keys[tid % nkeys:] + keys[:tid % nkeys]
        get = single.get

        def run():
            for _ in range(lookups_per_thread // nkeys):
                for key in local:
                    get(key)
        return run

    single_wall = _hammer(nthreads, single_worker)

    sharded: ShardedDecisionCache = ShardedDecisionCache(nkeys * 2, shards=8)
    for key in keys:
        sharded.put(key, object())
    bursts = [keys[i:i + burst] for i in range(0, nkeys, burst)]

    def sharded_worker(tid: int):
        local = bursts[tid % len(bursts):] + bursts[:tid % len(bursts)]
        get_many = sharded.get_many

        def run():
            for _ in range(lookups_per_thread // nkeys):
                for chunk in local:
                    get_many(chunk)
        return run

    sharded_wall = _hammer(nthreads, sharded_worker)

    single_bench = {
        "backend": "decision-cache-single-lock",
        "batch": 1,
        "instances": total,
        "wall_s": single_wall,
        "instances_per_s": total / single_wall,
        "threads": nthreads,
    }
    sharded_bench = {
        "backend": "decision-cache-sharded",
        "batch": burst,
        "instances": total,
        "wall_s": sharded_wall,
        "instances_per_s": total / sharded_wall,
        "threads": nthreads,
        "shards": 8,
        "speedup_vs_scalar": single_wall / sharded_wall,
    }
    return single_bench, sharded_bench


# -- driver ----------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="base URL of a running server; default: "
                             "self-host an in-process async server")
    parser.add_argument("--smoke", action="store_true",
                        help="low rates, short sweeps, no acceptance bars")
    parser.add_argument("--arrivals", default="poisson",
                        help="traffic model: constant, poisson (default), "
                             "or trace:PATH")
    parser.add_argument("--connections", type=int, default=32)
    parser.add_argument("--distinct", type=int, default=64,
                        help="distinct request bodies cycled through")
    parser.add_argument("--napps", type=int, default=8)
    parser.add_argument("--rates", type=float, nargs="*", default=None,
                        help="override the offered-load sweep (req/s)")
    parser.add_argument("--duration", type=float, default=None,
                        help="seconds of offered load per sweep point")
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_pr7.json")
    args = parser.parse_args(argv)

    rates = args.rates or (SMOKE_RATES if args.smoke else FULL_RATES)
    duration = args.duration or (SMOKE_DURATION_S if args.smoke
                                 else FULL_DURATION_S)

    bodies = build_bodies(args.distinct, args.napps, args.seed)
    requests = [http_request(b) for b in bodies]

    server_thread = None
    if args.url:
        parts = urlsplit(args.url)
        host, port = parts.hostname or "127.0.0.1", parts.port or 80
    else:
        from repro.service.aserver import AsyncServerThread
        from repro.service.core import DecisionService
        server_thread = AsyncServerThread(
            DecisionService(cache_capacity=4096, cache_shards=8))
        parts = urlsplit(server_thread.url)
        host, port = parts.hostname, parts.port
        print(f"[loadgen] self-hosted async server at {server_thread.url}",
              file=sys.stderr)

    kind = args.arrivals
    benches: dict[str, dict] = {}
    try:
        asyncio.run(warm_up(host, port, requests))
        knee = 0.0
        knee_point = None
        for rate in rates:
            arrivals = arrival_times(kind, rate, duration, args.seed)
            point = asyncio.run(run_sweep(host, port, requests, arrivals,
                                          args.connections))
            name_kind = "trace" if kind.startswith("trace:") else kind
            name = f"loadgen_{name_kind}_r{int(rate)}"
            benches[name] = {
                "backend": "aserver",
                "batch": args.connections,
                "instances": point["ok"] or 1,
                "wall_s": point["wall_s"],
                "instances_per_s": point["achieved_per_s"],
                "offered_per_s": float(rate),
                "errors": point["errors"],
                "p50_ms": point["p50_ms"],
                "p95_ms": point["p95_ms"],
                "p99_ms": point["p99_ms"],
            }
            print(f"[loadgen] {name}: offered {rate:>8.0f}/s  "
                  f"achieved {point['achieved_per_s']:>8.0f}/s  "
                  f"p50 {point['p50_ms']:.2f}ms  p99 {point['p99_ms']:.2f}ms  "
                  f"errors {point['errors']}", file=sys.stderr)
            if point["achieved_per_s"] > knee:
                knee = point["achieved_per_s"]
                knee_point = benches[name]
    finally:
        if server_thread is not None:
            server_thread.close()

    benches["serve_warm_knee"] = {
        "backend": "aserver",
        "batch": args.connections,
        "instances": knee_point["instances"],
        "wall_s": knee_point["wall_s"],
        "instances_per_s": knee,
        "offered_per_s": knee_point["offered_per_s"],
    }
    print(f"[loadgen] warm knee: {knee:.0f} decisions/s", file=sys.stderr)

    if args.smoke:
        single, sharded = bench_cache_ab(lookups_per_thread=20_000)
    else:
        single, sharded = bench_cache_ab()
    benches["cache_single_8t"] = single
    benches["cache_sharded_8t"] = sharded
    ratio = sharded["speedup_vs_scalar"]
    print(f"[loadgen] cache A/B under 8 threads: single "
          f"{single['instances_per_s']:.0f}/s, sharded "
          f"{sharded['instances_per_s']:.0f}/s ({ratio:.2f}x)",
          file=sys.stderr)

    write_trajectory(args.out, benches, reps=1, pr="pr7")

    if not args.smoke:
        failures = []
        if knee < 10_000:
            failures.append(f"warm knee {knee:.0f}/s below the 10k/s bar")
        if ratio < 2.0:
            failures.append(f"sharded cache {ratio:.2f}x below the 2x bar")
        if failures:
            for failure in failures:
                print(f"BAR  {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
