"""Extension bench: multi-node clusters of cache-partitioned nodes.

Compares assignment strategies (round-robin, LPT on a no-cache load
proxy, LPT refined with real cache-aware pricing) across cluster
sizes, and measures the refined heuristic's gap to the exhaustive
optimum on small instances.
"""

import numpy as np

from repro.experiments.tables import format_table
from repro.machine import taihulight
from repro.multinode import (
    exhaustive_assignment,
    lpt_assignment,
    lpt_refined_assignment,
    round_robin_assignment,
    schedule_cluster,
)
from repro.workloads import npb_synth


def test_multinode(benchmark):
    pf = taihulight(p=64.0)
    box = {}

    def run():
        rows = []
        for nodes in (2, 4, 8):
            sums = {"round-robin": 0.0, "lpt": 0.0, "lpt-refined": 0.0}
            reps = 5
            for seed in range(reps):
                wl = npb_synth(32, np.random.default_rng(seed))
                base = schedule_cluster(
                    wl, pf, lpt_refined_assignment(wl, pf, nodes)
                ).makespan()
                sums["lpt-refined"] += 1.0
                sums["lpt"] += schedule_cluster(
                    wl, pf, lpt_assignment(wl, pf, nodes)).makespan() / base
                sums["round-robin"] += schedule_cluster(
                    wl, pf, round_robin_assignment(wl, pf, nodes)).makespan() / base
            rows.append([float(nodes)] + [sums[k] / reps for k in
                                          ("lpt-refined", "lpt", "round-robin")])
        # optimality gap on small instances
        gaps = []
        for seed in range(5):
            wl = npb_synth(8, np.random.default_rng(seed))
            _, best = exhaustive_assignment(wl, pf, 2)
            ref = schedule_cluster(
                wl, pf, lpt_refined_assignment(wl, pf, 2)).makespan()
            gaps.append(ref / best - 1)
        box["rows"] = rows
        box["gap"] = float(np.mean(gaps)), float(np.max(gaps))

    benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Cluster makespan normalized by LPT-refined (32 apps, p=64/node)")
    print(format_table(["nodes", "lpt-refined", "lpt", "round-robin"], box["rows"]))
    print(f"\nLPT-refined vs exhaustive optimum (8 apps, 2 nodes): "
          f"mean gap {box['gap'][0]:.4f}, max gap {box['gap'][1]:.4f}")
    for row in box["rows"]:
        assert row[2] >= 1.0 - 1e-9   # lpt never beats refined
        assert row[3] >= row[2] - 0.05  # round-robin is no better than lpt
    assert box["gap"][1] < 0.1
