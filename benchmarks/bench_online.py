"""Extension bench: online arrivals with dynamic repartitioning.

Jobs arrive over time; policies repartition cache + processors at each
event.  Findings this bench records:

* with batch arrivals the online dominant policy reproduces the
  offline heuristic;
* with staggered arrivals, dominant repartitioning beats FCFS
  exclusive execution on makespan, while plain fair sharing wins on
  mean flow time - Lemma 1's equal-finish principle is an *offline*
  makespan property and ties short jobs to long ones when applied
  naively online.
"""

import numpy as np

from repro.core import get_scheduler
from repro.experiments.tables import format_table
from repro.machine import taihulight
from repro.online import simulate_online
from repro.workloads import npb_synth


def test_online(benchmark):
    pf = taihulight()
    box = {}

    def run():
        rows = []
        reps = 5
        sums = {p: np.zeros(2) for p in ("dominant", "fair", "fcfs")}
        for seed in range(reps):
            wl = npb_synth(16, np.random.default_rng(seed))
            horizon = get_scheduler("dominant-minratio")(wl, pf, None).makespan()
            arr = np.sort(np.random.default_rng(seed + 100)
                          .uniform(0, horizon, size=16))
            base = None
            for policy in ("dominant", "fair", "fcfs"):
                res = simulate_online(wl, pf, arr, policy=policy)
                if base is None:
                    base = np.array([res.makespan, res.mean_flow])
                sums[policy] += np.array([res.makespan, res.mean_flow]) / base
        for policy in ("dominant", "fair", "fcfs"):
            rows.append([policy, *(sums[policy] / reps)])
        box["rows"] = rows

    benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Online policies, normalized by dominant (16 apps, staggered arrivals)")
    print(format_table(["policy", "makespan", "mean flow"], box["rows"]))
    by = {r[0]: r for r in box["rows"]}
    assert by["fcfs"][1] > 1.0       # fcfs loses on makespan
    assert by["fair"][2] < 1.0       # fair wins on mean flow (documented)
