"""Extension bench: in-situ pipeline sustainability and queueing.

1. Sustainable ingest period per scheduling strategy (the paper's
   in-situ motivation made quantitative).
2. Batch-queue simulation at 95% utilization with arrival jitter:
   the dominant heuristic's shorter makespan translates into drop-free
   operation where Fair drops batches.
"""

import numpy as np

from repro.experiments.tables import format_table
from repro.machine import taihulight
from repro.pipeline import (
    jittered_arrivals,
    min_sustainable_period,
    simulate_batch_queue,
)
from repro.workloads import npb_synth


def test_pipeline(benchmark):
    pf = taihulight()
    box = {}

    def run():
        reps = 5
        names = ("dominant-minratio", "randompart", "0cache", "fair",
                 "allproccache")
        sums = {n: 0.0 for n in names}
        for seed in range(reps):
            wl = npb_synth(16, np.random.default_rng(seed))
            base = None
            for n in names:
                T = min_sustainable_period(
                    wl, pf, scheduler=n, rng=np.random.default_rng(1))
                if base is None:
                    base = T
                sums[n] += T / base
        box["periods"] = [[n, sums[n] / reps] for n in names]

        # queueing: period set to 1.05x the *dominant* makespan
        rng = np.random.default_rng(7)
        wl = npb_synth(16, np.random.default_rng(0))
        t_dom = min_sustainable_period(wl, pf)
        t_fair = min_sustainable_period(wl, pf, scheduler="fair")
        period = 1.05 * t_dom
        arrivals = jittered_arrivals(300, period, rng, jitter=0.2)
        dom = simulate_batch_queue(arrivals, np.full(300, t_dom),
                                   buffer_capacity=3)
        fair = simulate_batch_queue(arrivals, np.full(300, t_fair),
                                    buffer_capacity=3)
        box["queue"] = (dom.drop_rate, fair.drop_rate)

    benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Sustainable period, normalized by dominant-minratio (16 kernels)")
    print(format_table(["strategy", "min period"], box["periods"]))
    dom_drop, fair_drop = box["queue"]
    print(f"\nqueueing at period = 1.05x dominant makespan, jitter 20%, buffer 3:")
    print(f"  dominant-minratio drop rate: {dom_drop:.3f}")
    print(f"  fair              drop rate: {fair_drop:.3f}")
    assert dom_drop == 0.0
    # fair's makespan exceeds the period ~1.3x; steady-state drop rate
    # approaches 1 - period/makespan ~ 0.2
    assert fair_drop > 0.1
