"""Scheduler runtime: the paper reports "< 10 seconds in the worst
setting"; our vectorized implementation handles n = 256 in
milliseconds.  Timed with pytest-benchmark's full statistics."""

import numpy as np
import pytest

from repro.core import get_scheduler
from repro.machine import taihulight
from repro.workloads import npb_synth


@pytest.fixture(scope="module")
def big_instance():
    return npb_synth(256, np.random.default_rng(0)), taihulight()


@pytest.mark.parametrize("name", ["dominant-minratio", "dominantrev-maxratio",
                                  "0cache", "fair", "randompart"])
def test_scheduler_speed_n256(benchmark, big_instance, name):
    wl, pf = big_instance
    scheduler = get_scheduler(name)
    rng = np.random.default_rng(1)
    schedule = benchmark(lambda: scheduler(wl, pf, rng))
    assert schedule.makespan() > 0
