"""Scheduler runtime: the paper reports "< 10 seconds in the worst
setting"; our vectorized implementation handles n = 256 in
milliseconds.  Timed with pytest-benchmark's full statistics.

The batch-vs-scalar case measures the structure-of-arrays batch path
(:func:`repro.core.schedule_batch`) against one scalar call per
instance on the trajectory workload (256 Fig.-1 instances, 16 apps
each), printing instances/s at batch sizes 1, 16, and 256."""

from time import perf_counter

import numpy as np
import pytest

from repro.core import get_scheduler, schedule_batch
from repro.machine import taihulight
from repro.workloads import npb_synth


@pytest.fixture(scope="module")
def big_instance():
    return npb_synth(256, np.random.default_rng(0)), taihulight()


@pytest.mark.parametrize("name", ["dominant-minratio", "dominantrev-maxratio",
                                  "0cache", "fair", "randompart"])
def test_scheduler_speed_n256(benchmark, big_instance, name):
    wl, pf = big_instance
    scheduler = get_scheduler(name)
    rng = np.random.default_rng(1)
    schedule = benchmark(lambda: scheduler(wl, pf, rng))
    assert schedule.makespan() > 0


@pytest.fixture(scope="module")
def instance_pool():
    pf = taihulight()
    return [(npb_synth(16, np.random.default_rng(seed)), pf)
            for seed in range(256)]


def test_scheduler_batch_vs_scalar(benchmark, instance_pool):
    """The batch path must beat one-scalar-call-per-instance at b=256."""
    entry = get_scheduler("dominant-minratio")

    t0 = perf_counter()
    for wl, pf in instance_pool:
        entry(wl, pf, None)
    scalar_rate = len(instance_pool) / (perf_counter() - t0)
    print(f"\n  scalar      {scalar_rate:10.0f} instances/s")

    rates = {}
    for size in (1, 16, 256):
        t0 = perf_counter()
        for start in range(0, len(instance_pool), size):
            schedule_batch("dominant-minratio",
                           instance_pool[start:start + size])
        rates[size] = len(instance_pool) / (perf_counter() - t0)
        print(f"  batch b={size:<4d}{rates[size]:10.0f} instances/s  "
              f"({rates[size] / scalar_rate:.2f}x vs scalar)")

    schedules = benchmark(lambda: schedule_batch("dominant-minratio",
                                                 instance_pool))
    assert len(schedules) == len(instance_pool)
    assert all(s.makespan() > 0 for s in schedules)
    assert rates[256] > scalar_rate
