"""Ablation: how much model accuracy matters (Section 7's question).

Regret of scheduling with a misestimated power-law alpha or biased
miss rates, on the paper's platform (robust: huge LLC, tiny rates)
and under cache pressure (where accuracy pays).
"""

import numpy as np

from repro.analysis import (
    alpha_misestimation_regret,
    missrate_misestimation_regret,
)
from repro.experiments.tables import format_table
from repro.machine import small_llc, taihulight
from repro.workloads import npb_synth


def test_sensitivity(benchmark):
    box = {}

    def run():
        settings = [("taihulight", taihulight(), None),
                    ("1GB LLC, m0=0.3", small_llc(), 0.3)]
        alpha_rows, bias_rows = [], []
        for label, pf, miss in settings:
            a_vals, b_vals = [], []
            for seed in range(5):
                wl = npb_synth(12, np.random.default_rng(seed))
                if miss is not None:
                    wl = wl.with_miss_rate(miss)
                a_vals.append([
                    alpha_misestimation_regret(wl, pf, alpha_true=0.5,
                                               alpha_assumed=a)
                    for a in (0.3, 0.7)
                ])
                b_vals.append([
                    missrate_misestimation_regret(wl, pf, bias=b)
                    for b in (0.25, 4.0)
                ])
            a_mean = np.mean(a_vals, axis=0)
            b_mean = np.mean(b_vals, axis=0)
            alpha_rows.append([label, float(a_mean[0]), float(a_mean[1])])
            bias_rows.append([label, float(b_mean[0]), float(b_mean[1])])
        box["alpha"] = alpha_rows
        box["bias"] = bias_rows

    benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Regret of alpha misestimation (true alpha = 0.5)")
    print(format_table(["setting", "assumed 0.3", "assumed 0.7"], box["alpha"]))
    print()
    print("Regret of miss-rate bias")
    print(format_table(["setting", "bias 0.25x", "bias 4x"], box["bias"]))
    # the paper's platform is robust; pressure makes accuracy matter
    assert box["alpha"][0][1] < 0.02
    assert box["alpha"][1][1] >= box["alpha"][0][1] - 1e-9
