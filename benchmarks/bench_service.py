"""Decision-service throughput: cold vs warm vs disk-warm vs batched.

Four serving regimes over the same repeated-request workload
(``N_REQUESTS`` distinct allocation questions, ``NAPPS`` applications
each):

* **cold** — sequential requests against an empty decision cache:
  every request pays the scheduler compute (plus the batcher linger).
* **warm** — the identical request stream again: every request is a
  decision-cache hit; no scheduler runs at all.  The acceptance bar
  for the subsystem is warm >= 10x cold throughput, asserted here.
* **disk-warm** — a *restarted* service (fresh process stand-in: new
  service, empty memory tier) over a previously-warmed cache
  directory: every request is served by the persistent disk tier and
  promoted.  Slower than memory-warm (a file read + JSON decode per
  first touch) but still far from scheduler compute; the bar is
  disk-warm >= 5x cold.
* **batched** — the same *cold* workload, but issued concurrently:
  requests coalesce into batches dispatched across the worker pool,
  which is how the service actually meets traffic.

Run under pytest (``pytest benchmarks/bench_service.py``) for
pytest-benchmark timing rows, or standalone
(``PYTHONPATH=src python benchmarks/bench_service.py``) for the plain
table.
"""

from __future__ import annotations

import sys
import threading
from time import perf_counter

import numpy as np

from repro.machine import taihulight
from repro.service import AllocationRequest, DecisionService
from repro.workloads import npb_synth

#: Distinct questions in the workload; the warm phase repeats them all.
N_REQUESTS = 32
NAPPS = 8

#: Throughputs (requests/second) by regime, filled as the tests run.
RESULTS: dict[str, float] = {}

#: The ISSUE-4 acceptance bar: warm must beat cold by at least this.
WARM_OVER_COLD = 10.0

#: Cross-restart bar: serving from the disk tier must still dwarf
#: recomputation (a JSON read is not a scheduler run).
DISK_WARM_OVER_COLD = 5.0


def build_requests() -> list[AllocationRequest]:
    rng = np.random.default_rng(2017)
    return [
        AllocationRequest(
            applications=tuple(npb_synth(NAPPS, rng)),
            platform=taihulight(),
            scheduler="dominant-minratio",
        )
        for _ in range(N_REQUESTS)
    ]


def run_sequential(service: DecisionService,
                   requests: list[AllocationRequest]) -> tuple[float, list]:
    """Issue the stream one request at a time; returns (seconds, responses)."""
    start = perf_counter()
    responses = [service.allocate(r) for r in requests]
    return perf_counter() - start, responses


def run_concurrent(service: DecisionService,
                   requests: list[AllocationRequest]) -> tuple[float, list]:
    """Issue the whole stream at once from one thread per request."""
    responses: list = [None] * len(requests)
    barrier = threading.Barrier(len(requests) + 1)

    def caller(i: int) -> None:
        barrier.wait()
        responses[i] = service.allocate(requests[i])

    threads = [threading.Thread(target=caller, args=(i,))
               for i in range(len(requests))]
    for t in threads:
        t.start()
    barrier.wait()
    start = perf_counter()
    for t in threads:
        t.join()
    return perf_counter() - start, responses


def report() -> None:
    print()
    print(f"decision-service throughput ({N_REQUESTS} requests, "
          f"{NAPPS} apps each):")
    for mode in ("cold", "warm", "disk-warm", "batched"):
        if mode in RESULTS:
            print(f"  {mode:<10}{RESULTS[mode]:>12.0f} req/s")
    if "cold" in RESULTS and "warm" in RESULTS:
        print(f"  warm/cold ratio: {RESULTS['warm'] / RESULTS['cold']:.1f}x "
              f"(bar: {WARM_OVER_COLD:.0f}x)")
    if "cold" in RESULTS and "disk-warm" in RESULTS:
        print(f"  disk-warm/cold ratio: "
              f"{RESULTS['disk-warm'] / RESULTS['cold']:.1f}x "
              f"(bar: {DISK_WARM_OVER_COLD:.0f}x)")


# -- pytest entry points ---------------------------------------------------

# The standalone path (CI's service-smoke job) runs without pytest
# installed; only define the pytest surface when it is importable.
try:
    import pytest  # noqa: E402
except ImportError:  # pragma: no cover - standalone run
    pytest = None

if pytest is not None:
    @pytest.fixture(scope="module")
    def requests_():
        return build_requests()

    @pytest.fixture(scope="module")
    def service():
        with DecisionService(max_batch_size=16, max_wait_ms=1.0) as svc:
            yield svc

    def test_cold_sequential(benchmark, service, requests_):
        def run():
            elapsed, responses = run_sequential(service, requests_)
            assert not any(r.cache_hit for r in responses)
            RESULTS["cold"] = len(requests_) / elapsed

        benchmark.pedantic(run, iterations=1, rounds=1)

    def test_warm_sequential(benchmark, service, requests_):
        def run():
            elapsed, responses = run_sequential(service, requests_)
            # every repeat answered from the decision cache
            assert all(r.cache_hit for r in responses)
            RESULTS["warm"] = len(requests_) / elapsed

        benchmark.pedantic(run, iterations=1, rounds=1)
        assert RESULTS["warm"] >= WARM_OVER_COLD * RESULTS["cold"], (
            f"warm {RESULTS['warm']:.0f} req/s vs cold {RESULTS['cold']:.0f} "
            f"req/s: below the {WARM_OVER_COLD:.0f}x bar")

    def test_disk_warm_restart(benchmark, requests_, tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("decision-cache")
        # Warm the persistent tier, then throw the service (and its
        # memory tier) away — the restart.
        with DecisionService(max_batch_size=16, max_wait_ms=1.0,
                             cache_dir=cache_dir) as warmer:
            for request in requests_:
                warmer.allocate(request)

        with DecisionService(max_batch_size=16, max_wait_ms=1.0,
                             cache_dir=cache_dir) as restarted:
            def run():
                elapsed, responses = run_sequential(restarted, requests_)
                # every request answered without a scheduler run
                assert all(r.cache_hit for r in responses)
                RESULTS["disk-warm"] = len(requests_) / elapsed

            benchmark.pedantic(run, iterations=1, rounds=1)
            stats = restarted.cache.stats()
            assert stats.disk_hits == len(requests_)
        if "cold" in RESULTS:
            assert RESULTS["disk-warm"] >= (
                DISK_WARM_OVER_COLD * RESULTS["cold"]), (
                f"disk-warm {RESULTS['disk-warm']:.0f} req/s vs cold "
                f"{RESULTS['cold']:.0f} req/s: below the "
                f"{DISK_WARM_OVER_COLD:.0f}x bar")

    def test_batched_concurrent(benchmark, requests_):
        with DecisionService(max_batch_size=16, max_wait_ms=5.0) as fresh:
            def run():
                elapsed, responses = run_concurrent(fresh, requests_)
                assert all(r is not None for r in responses)
                # concurrency actually produced multi-request batches
                assert fresh.metrics()["batcher.max_batch_seen"] > 1
                RESULTS["batched"] = len(requests_) / elapsed

            benchmark.pedantic(run, iterations=1, rounds=1)
        report()


# -- standalone entry point ------------------------------------------------

def main() -> int:
    import tempfile

    requests = build_requests()
    with tempfile.TemporaryDirectory() as cache_dir:
        with DecisionService(max_batch_size=16, max_wait_ms=1.0,
                             cache_dir=cache_dir) as svc:
            elapsed, responses = run_sequential(svc, requests)
            assert not any(r.cache_hit for r in responses)
            RESULTS["cold"] = len(requests) / elapsed
            elapsed, responses = run_sequential(svc, requests)
            assert all(r.cache_hit for r in responses)
            RESULTS["warm"] = len(requests) / elapsed
        # Restart: fresh memory tier, same cache directory.
        with DecisionService(max_batch_size=16, max_wait_ms=1.0,
                             cache_dir=cache_dir) as svc:
            elapsed, responses = run_sequential(svc, requests)
            assert all(r.cache_hit for r in responses)
            assert svc.cache.stats().disk_hits == len(requests)
            RESULTS["disk-warm"] = len(requests) / elapsed
    with DecisionService(max_batch_size=16, max_wait_ms=5.0) as svc:
        elapsed, _ = run_concurrent(svc, requests)
        RESULTS["batched"] = len(requests) / elapsed
    report()
    if RESULTS["warm"] < WARM_OVER_COLD * RESULTS["cold"]:
        print(f"FAIL: warm throughput below {WARM_OVER_COLD:.0f}x cold",
              file=sys.stderr)
        return 1
    if RESULTS["disk-warm"] < DISK_WARM_OVER_COLD * RESULTS["cold"]:
        print(f"FAIL: disk-warm throughput below "
              f"{DISK_WARM_OVER_COLD:.0f}x cold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
