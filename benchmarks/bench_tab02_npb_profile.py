"""Table 2: regenerate the NPB parameters via trace-driven profiling.

The substitute for PEBIL instrumentation: synthetic Zipf traces ->
stack-distance miss curves -> power-law fit -> (w, f, m_40MB).
Absolute values need not match the measurements (the traces are
synthetic); the regime should - small miss rates at 40 MB, positive
power-law sensitivity.
"""

from repro.experiments import regenerate_table2
from repro.experiments.tables import format_table


def test_tab02_npb_profile(benchmark):
    box = {}

    def run():
        box["rows"] = regenerate_table2()

    benchmark.pedantic(run, iterations=1, rounds=1)
    rows = box["rows"]
    table = [
        [b.name, b.paper_work, b.paper_freq, b.paper_miss,
         b.app.miss_rate, b.fit_alpha, b.fit_r2]
        for b in rows
    ]
    print()
    print("Table 2: paper vs trace-driven simulation")
    print(format_table(
        ["app", "paper w", "paper f", "paper m40MB", "sim m40MB",
         "fit alpha", "fit r2"], table,
    ))
    for b in rows:
        assert 0.0 < b.app.miss_rate < 0.1, b.name
        assert b.fit_alpha > 0.0, b.name
