#!/usr/bin/env python
"""The committed perf trajectory: measure the batch core, write BENCH_pr6.json.

Standalone, stdlib + repro only (no pytest)::

    PYTHONPATH=src python benchmarks/bench_trajectory.py [--out PATH]

Four benches pin the PR's performance story:

* ``scheduler_scalar_b256`` — 256 Fig.-1 instances (NPB-SYNTH, 16
  applications, 256-processor Taihulight LLC) through the scalar
  ``dominant-minratio`` entry, one Python call per instance.  This is
  the denominator every ratio is measured against.
* ``scheduler_batch_b{1,16,256}`` — the same 256 instances through
  :func:`repro.core.schedule_batch` in chunks of 1/16/256, i.e. the
  structure-of-arrays path the experiment engine and the service
  dispatcher use.  ``speedup_vs_scalar`` is the machine-independent
  number the regression gate tracks; the acceptance bar is >= 5x at
  batch 256.
* ``eviction_scan_n256`` — one scalar ``dominant-minratio`` call on a
  single 256-application instance: the presorted eviction walk
  (previously an O(n^2) rescan per eviction).
* ``phase_kernel_batch_b256`` — the batched static simulation kernel
  against a loop of scalar :func:`repro.simulate.simulate_schedule`
  calls over the same 256 schedules.

Each bench runs ``REPRO_BENCH_REPS`` times (default 5; CI uses 2) and
records the best wall time.  Absolute times carry the machine
fingerprint; the gate (``benchmarks/check_trajectory.py``) compares
only the speedup ratios.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _harness import BENCH_REPS, REPO_ROOT, write_trajectory  # noqa: E402

import numpy as np  # noqa: E402

from repro.core import BatchProblem, get_scheduler, schedule_batch  # noqa: E402
from repro.core.heuristics import dominant_schedule_batch  # noqa: E402
from repro.machine import taihulight  # noqa: E402
from repro.simulate import simulate_schedule, simulate_schedule_batch  # noqa: E402
from repro.workloads import npb_synth  # noqa: E402

#: The trajectory workload: Fig. 1's dataset and platform at its
#: n = 16 sweep point, replicated into independent seeded instances.
N_INSTANCES = 256
N_APPS = 16
SCHEDULER = "dominant-minratio"
BATCH_SIZES = (1, 16, 256)


def _instances():
    pf = taihulight()
    return [(npb_synth(N_APPS, np.random.default_rng(seed)), pf)
            for seed in range(N_INSTANCES)]


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def _best_of_interleaved(fns: dict, reps: int) -> dict:
    """Best wall per labelled thunk, measured round-robin.

    Interleaving matters for the *ratios*: measuring all scalar reps
    and then all batch reps lets background-load drift land entirely on
    one side and swing speedup_vs_scalar by tens of percent; visiting
    every thunk each round exposes both sides to the same conditions,
    and best-of then picks each side's quiet-machine wall.
    """
    best = {name: float("inf") for name in fns}
    for _ in range(reps):
        for name, fn in fns.items():
            t0 = perf_counter()
            fn()
            best[name] = min(best[name], perf_counter() - t0)
    return best


def run_benches(reps: int) -> dict:
    instances = _instances()
    entry = get_scheduler(SCHEDULER)
    benches: dict[str, dict] = {}

    def scalar_all():
        for wl, pf in instances:
            entry(wl, pf, None)

    def batched(size):
        def run():
            for start in range(0, N_INSTANCES, size):
                schedule_batch(SCHEDULER, instances[start:start + size])
        return run

    timers = {"scalar": scalar_all}
    timers.update({f"b{size}": batched(size) for size in BATCH_SIZES})
    walls = _best_of_interleaved(timers, reps)

    scalar_wall = walls["scalar"]
    scalar_rate = N_INSTANCES / scalar_wall
    benches["scheduler_scalar_b256"] = {
        "backend": "python-loop",
        "batch": 1,
        "instances": N_INSTANCES,
        "wall_s": scalar_wall,
        "instances_per_s": scalar_rate,
    }
    print(f"  scheduler_scalar_b256     {scalar_wall * 1e3:8.1f} ms   "
          f"{scalar_rate:10.0f} inst/s")

    for size in BATCH_SIZES:
        wall = walls[f"b{size}"]
        rate = N_INSTANCES / wall
        benches[f"scheduler_batch_b{size}"] = {
            "backend": "numpy-soa",
            "batch": size,
            "instances": N_INSTANCES,
            "wall_s": wall,
            "instances_per_s": rate,
            "speedup_vs_scalar": rate / scalar_rate,
        }
        print(f"  scheduler_batch_b{size:<8d} {wall * 1e3:8.1f} ms   "
              f"{rate:10.0f} inst/s   {rate / scalar_rate:6.2f}x vs scalar")

    big = npb_synth(256, np.random.default_rng(0))
    pf = taihulight()
    wall = _best_of(lambda: entry(big, pf, None), reps)
    benches["eviction_scan_n256"] = {
        "backend": "numpy",
        "batch": 1,
        "instances": 1,
        "wall_s": wall,
        "instances_per_s": 1.0 / wall,
    }
    print(f"  eviction_scan_n256        {wall * 1e3:8.1f} ms   "
          f"{1.0 / wall:10.0f} inst/s")

    problem = BatchProblem(instances)
    batch_schedule = dominant_schedule_batch(problem)
    schedules = batch_schedule.schedules()

    def simulate_scalar():
        for s in schedules:
            simulate_schedule(s)

    sim_scalar_wall = _best_of(simulate_scalar, reps)
    sim_batch_wall = _best_of(
        lambda: simulate_schedule_batch(batch_schedule), reps)
    benches["phase_kernel_batch_b256"] = {
        "backend": "numpy-soa",
        "batch": N_INSTANCES,
        "instances": N_INSTANCES,
        "wall_s": sim_batch_wall,
        "instances_per_s": N_INSTANCES / sim_batch_wall,
        "speedup_vs_scalar": sim_scalar_wall / sim_batch_wall,
    }
    print(f"  phase_kernel_batch_b256   {sim_batch_wall * 1e3:8.1f} ms   "
          f"{N_INSTANCES / sim_batch_wall:10.0f} inst/s   "
          f"{sim_scalar_wall / sim_batch_wall:6.2f}x vs scalar")
    return benches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_pr6.json",
                        help="where to write the trajectory record")
    parser.add_argument("--reps", type=int, default=BENCH_REPS,
                        help="best-of repetitions per bench "
                             "(default: REPRO_BENCH_REPS or 5)")
    args = parser.parse_args(argv)
    print(f"[trajectory] {N_INSTANCES} instances x {N_APPS} apps, "
          f"best of {args.reps}", file=sys.stderr)
    benches = run_benches(args.reps)
    write_trajectory(args.out, benches, reps=args.reps)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
