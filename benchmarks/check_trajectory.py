#!/usr/bin/env python
"""Validate and gate the committed perf trajectory (BENCH_pr6.json).

Two modes, both stdlib-only::

    # schema-validate one record (the committed one, typically)
    python benchmarks/check_trajectory.py validate BENCH_pr6.json

    # gate a fresh record against the committed baseline
    python benchmarks/check_trajectory.py gate BENCH_pr6.json fresh.json \
        [--tolerance 0.25]

The gate compares only the machine-independent ``speedup_vs_scalar``
ratios (absolute wall times are provenance tied to the record's
machine fingerprint): a bench whose fresh ratio falls more than
``tolerance`` below the committed ratio fails the build.  Ratios
*above* the baseline never fail — improvements land by committing a
regenerated record.  Committed ratios below ``--min-speedup``
(default 1.5) are tracked but not gated: a ratio near parity (the
batch-size-1 bench, committed deliberately to show the per-call
overhead) measures interpreter noise, and a relative gate on it is a
coin flip.

The schema checker implements the subset of JSON Schema the committed
``trajectory_schema.json`` uses (type, required, properties,
additionalProperties-as-schema, const, minimum, exclusiveMinimum), so
CI needs no third-party validator.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent / "trajectory_schema.json"

#: Bench names every record of a given PR must carry.  The schema file
#: stays PR-agnostic; this table is the per-PR contract (a record with
#: an unknown ``pr`` tag only has to satisfy the schema).
REQUIRED_BENCHES = {
    "pr6": (
        "scheduler_scalar_b256",
        "scheduler_batch_b1",
        "scheduler_batch_b16",
        "scheduler_batch_b256",
        "eviction_scan_n256",
        "phase_kernel_batch_b256",
    ),
    "pr7": (
        "serve_warm_knee",
        "cache_single_8t",
        "cache_sharded_8t",
    ),
    "pr9": (
        "chaos_dominant_clean",
        "chaos_fair_clean",
    ),
}

#: pr7 records must chart the saturation curve: at least this many
#: offered-load points, each reporting a numeric p99.
MIN_LOADGEN_POINTS = 3

#: pr9 records must chart goodput retained vs. fault rate: at least
#: this many nonzero fault-rate points per policy, >= 2 policies.
MIN_CHAOS_POINTS = 2
MIN_CHAOS_POLICIES = 2

_TYPES = {
    "object": dict,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
    "array": list,
}


def _check(value, schema: dict, path: str, errors: list[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        pytype = _TYPES[expected]
        ok = isinstance(value, pytype)
        if expected in ("number", "integer") and isinstance(value, bool):
            ok = False
        if not ok:
            errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
            return
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected constant {schema['const']!r}, got {value!r}")
    if "minimum" in schema and value < schema["minimum"]:
        errors.append(f"{path}: {value} below minimum {schema['minimum']}")
    if "exclusiveMinimum" in schema and value <= schema["exclusiveMinimum"]:
        errors.append(f"{path}: {value} not above {schema['exclusiveMinimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, sub in value.items():
            if key in props:
                _check(sub, props[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                _check(sub, extra, f"{path}.{key}", errors)


def validate_record(record: dict) -> list[str]:
    """Schema errors in *record* (empty list = valid)."""
    schema = json.loads(SCHEMA_PATH.read_text())
    errors: list[str] = []
    _check(record, schema, "$", errors)
    benches = record.get("benches")
    if not isinstance(benches, dict):
        return errors
    for name in REQUIRED_BENCHES.get(record.get("pr"), ()):
        if name not in benches:
            errors.append(f"$.benches: missing required bench {name!r} "
                          f"for {record.get('pr')}")
    if record.get("pr") == "pr7":
        loadgen = [n for n in benches if n.startswith("loadgen_")]
        if len(loadgen) < MIN_LOADGEN_POINTS:
            errors.append(
                f"$.benches: pr7 needs >= {MIN_LOADGEN_POINTS} loadgen_* "
                f"offered-load points, found {len(loadgen)}")
        for name in loadgen:
            p99 = benches[name].get("p99_ms") if isinstance(benches[name], dict) else None
            if not isinstance(p99, (int, float)) or isinstance(p99, bool):
                errors.append(f"$.benches.{name}: missing numeric p99_ms")
    if record.get("pr") == "pr9":
        _check_chaos_curve(benches, errors)
    return errors


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_chaos_curve(benches: dict, errors: list[str]) -> None:
    """pr9 contract: a goodput-retained-vs-fault-rate curve for >= 2
    policies, each with >= MIN_CHAOS_POINTS nonzero fault rates."""
    per_policy: dict[str, set] = {}
    for name, bench in benches.items():
        if not (name.startswith("chaos_") and isinstance(bench, dict)):
            continue
        rate = bench.get("fault_rate")
        retained = bench.get("goodput_retained")
        if not _is_number(rate) or not _is_number(retained):
            errors.append(f"$.benches.{name}: chaos benches need numeric "
                          "fault_rate and goodput_retained")
            continue
        policy = name[len("chaos_"):].rsplit("_", 1)[0]
        if rate > 0:
            per_policy.setdefault(policy, set()).add(rate)
    curves = {p: rates for p, rates in per_policy.items()
              if len(rates) >= MIN_CHAOS_POINTS}
    if len(curves) < MIN_CHAOS_POLICIES:
        errors.append(
            f"$.benches: pr9 needs >= {MIN_CHAOS_POLICIES} policies with "
            f">= {MIN_CHAOS_POINTS} nonzero fault-rate points each, found "
            f"{ {p: len(r) for p, r in sorted(per_policy.items())} }")


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")


def cmd_validate(args) -> int:
    record = _load(args.record)
    errors = validate_record(record)
    if errors:
        for err in errors:
            print(f"SCHEMA  {err}", file=sys.stderr)
        return 1
    print(f"{args.record}: schema OK "
          f"({len(record['benches'])} benches, git {record['git_sha'][:12]})")
    return 0


def cmd_gate(args) -> int:
    baseline = _load(args.baseline)
    fresh = _load(args.fresh)
    failures = []
    for name, base in sorted(baseline["benches"].items()):
        ratio = base.get("speedup_vs_scalar")
        if ratio is None:
            continue  # absolute-only bench: provenance, not gated
        bench = fresh["benches"].get(name)
        if bench is None or "speedup_vs_scalar" not in bench:
            failures.append(f"{name}: missing from the fresh record")
            continue
        got = bench["speedup_vs_scalar"]
        if ratio < args.min_speedup:
            print(f"  {name:28s} baseline {ratio:6.2f}x  fresh {got:6.2f}x  "
                  f"(below {args.min_speedup:.1f}x: tracked, not gated)")
            continue
        floor = ratio * (1.0 - args.tolerance)
        status = "ok" if got >= floor else "REGRESSION"
        print(f"  {name:28s} baseline {ratio:6.2f}x  fresh {got:6.2f}x  "
              f"floor {floor:6.2f}x  {status}")
        if got < floor:
            failures.append(
                f"{name}: speedup {got:.2f}x fell more than "
                f"{args.tolerance:.0%} below the committed {ratio:.2f}x")
    for name, base in sorted(baseline["benches"].items()):
        retained = base.get("goodput_retained")
        if retained is None:
            continue
        bench = fresh["benches"].get(name)
        if bench is None or "goodput_retained" not in bench:
            failures.append(f"{name}: missing from the fresh record")
            continue
        got = bench["goodput_retained"]
        # Chaos runs are seeded and deterministic, so goodput_retained
        # must *reproduce*, not merely stay above a floor.
        drift = abs(got - retained) / max(abs(retained), 1e-12)
        status = "ok" if drift <= args.chaos_tolerance else "DRIFT"
        print(f"  {name:28s} baseline {retained:8.4f}  fresh {got:8.4f}  "
              f"{status}")
        if drift > args.chaos_tolerance:
            failures.append(
                f"{name}: goodput_retained {got:.6f} drifted "
                f"{drift:.2%} from the committed {retained:.6f} "
                "(seeded chaos runs must reproduce)")
    if failures:
        for failure in failures:
            print(f"GATE  {failure}", file=sys.stderr)
        return 1
    print("perf trajectory gate: OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)
    p_validate = sub.add_parser("validate", help="schema-check one record")
    p_validate.add_argument("record", type=Path)
    p_validate.set_defaults(fn=cmd_validate)
    p_gate = sub.add_parser("gate", help="compare fresh ratios to a baseline")
    p_gate.add_argument("baseline", type=Path)
    p_gate.add_argument("fresh", type=Path)
    p_gate.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop in speedup_vs_scalar "
                             "(default 0.25)")
    p_gate.add_argument("--min-speedup", type=float, default=1.5,
                        help="committed ratios below this are tracked but "
                             "not gated (default 1.5)")
    p_gate.add_argument("--chaos-tolerance", type=float, default=1e-6,
                        help="allowed relative drift in goodput_retained "
                             "(seeded chaos runs are deterministic; "
                             "default 1e-6)")
    p_gate.set_defaults(fn=cmd_gate)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
