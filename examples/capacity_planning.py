#!/usr/bin/env python
"""Capacity planning with the co-scheduling model.

Two questions an operator can answer analytically with this library:

1. **Scaling**: how does the achievable makespan fall as processors
   are added, and where does adding cores stop paying?  (The Amdahl
   sequential fractions set the floor.)
2. **Cache sizing**: as the LLC shrinks, which applications keep their
   partitions?  The dominant-partition structure drops cache-hungry
   applications one by one - the subset is *not* simply "everyone,
   scaled down".

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.core import dominant_schedule, get_scheduler
from repro.machine import taihulight
from repro.workloads import npb6


def scaling_study(workload) -> None:
    print("1. processor scaling (NPB-6, dominant-minratio vs no co-scheduling)\n")
    print(f"  {'p':>6}{'co-scheduled':>16}{'sequential':>14}{'speedup':>10}")
    for p in (8, 16, 32, 64, 128, 256, 512):
        platform = taihulight(p=float(p))
        dom = dominant_schedule(workload, platform)
        seq = get_scheduler("allproccache")(workload, platform, None)
        print(f"  {p:>6}{dom.makespan():>16.4e}{seq.makespan():>14.4e}"
              f"{seq.makespan() / dom.makespan():>10.2f}x")
    print()


def cache_sizing_study(workload) -> None:
    print("2. LLC sizing: who keeps a cache partition as the LLC shrinks?\n")

    def ladder(wl, sizes_mb, note):
        print(f"  {note}")
        header = f"  {'LLC':>9}  " + "".join(f"{n:>6}" for n in wl.names)
        print(header + f"{'makespan':>14}")
        for mb in sizes_mb:
            platform = taihulight().with_cache_size(mb * 1e6)
            sched = dominant_schedule(wl, platform)
            marks = "".join(
                f"{'x' if keep else '-':>6}" for keep in sched.cache_subset
            )
            label = f"{mb / 1000:g} GB" if mb >= 1000 else f"{mb:g} MB"
            print(f"  {label:>9}  {marks}{sched.makespan():>14.4e}")
        print()

    # With the measured NPB miss rates (1e-4..3e-2 at 40 MB), every
    # application stays worth caching until the LLC is sub-megabyte -
    # the same observation as the paper's Fig. 2: heuristic choices
    # only start to matter at high miss rates or tiny caches.
    ladder(workload, (32000, 1000, 64, 4, 1, 0.25, 0.0625),
           "measured NPB miss rates:")
    # Memory-hungry variant (miss rate 0.3 at 40 MB): the dominant
    # subset sheds applications much earlier.
    ladder(workload.with_miss_rate(0.3), (32000, 4000, 1000, 250, 64, 16),
           "memory-hungry variant (m0 = 0.3):")
    print("  ('x' = application receives an exclusive cache fraction;")
    print("   as capacity drops, the dominant partition sheds the")
    print("   applications whose useful-fraction threshold no longer fits.)")


def main() -> None:
    rng = np.random.default_rng(2)
    workload = npb6(rng=rng)  # the six measured NPB apps, random s_i
    scaling_study(workload)
    cache_sizing_study(workload)


if __name__ == "__main__":
    main()
