#!/usr/bin/env python
"""Scale-out: co-scheduling across a cluster of cache-partitioned nodes.

The paper schedules one node; a site operator has several.  This
example partitions a 48-application campaign across 1-8 TaihuLight-like
nodes and compares assignment strategies:

* round-robin (what a naive dispatcher does),
* LPT on a no-cache load estimate (classic makespan heuristic),
* LPT refined with the real cache-aware node scheduler - applications
  that would fight over a node's LLC get separated.

It then answers the operator's question directly: how many nodes does
this campaign need to finish within a deadline?

Run:  python examples/cluster_scaleout.py
"""

import numpy as np

from repro.machine import taihulight
from repro.multinode import (
    lpt_assignment,
    lpt_refined_assignment,
    round_robin_assignment,
    schedule_cluster,
)
from repro.workloads import npb_synth


def main() -> None:
    rng = np.random.default_rng(4)
    platform = taihulight(p=64.0)   # one analysis node: 64 procs, 32 GB LLC
    workload = npb_synth(48, rng)

    print(f"campaign: {workload.n} applications; "
          f"node = {platform.p:g} procs + {platform.cache_size / 1e9:g} GB LLC\n")

    print(f"{'nodes':>6}{'round-robin':>16}{'LPT':>16}{'LPT-refined':>16}"
          f"{'imbalance':>12}")
    spans = {}
    for nodes in (1, 2, 4, 8):
        rr = schedule_cluster(
            workload, platform, round_robin_assignment(workload, platform, nodes))
        lpt = schedule_cluster(
            workload, platform, lpt_assignment(workload, platform, nodes))
        ref = schedule_cluster(
            workload, platform, lpt_refined_assignment(workload, platform, nodes))
        spans[nodes] = ref.makespan()
        print(f"{nodes:>6}{rr.makespan():>16.4e}{lpt.makespan():>16.4e}"
              f"{ref.makespan():>16.4e}{ref.imbalance():>12.3f}")

    print("\nscaling efficiency of LPT-refined (vs 1 node):")
    for nodes in (2, 4, 8):
        speedup = spans[1] / spans[nodes]
        print(f"  {nodes} nodes: speedup {speedup:.2f}x "
              f"(efficiency {speedup / nodes:.0%})")

    deadline = 0.4 * spans[1]
    print(f"\ndeadline provisioning: finish within {deadline:.3e} time units")
    for nodes in (1, 2, 4, 8):
        status = "meets" if spans.get(nodes, np.inf) <= deadline else "misses"
        print(f"  {nodes} node(s): {status} the deadline")
    needed = min((n for n in spans if spans[n] <= deadline), default=None)
    if needed is not None:
        print(f"-> provision {needed} node(s).")

    print("\nfinal placement with the chosen cluster:")
    ref = schedule_cluster(
        workload, platform,
        lpt_refined_assignment(workload, platform, needed or 8),
    )
    print(ref.describe())


if __name__ == "__main__":
    main()
