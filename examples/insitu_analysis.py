#!/usr/bin/env python
"""In-situ analysis pipeline: the paper's motivating scenario.

A cosmology simulation (HACC-style, Section 1) produces a data batch
every period; a dedicated analysis node must run a set of independent
analysis kernels over each batch *before the next one arrives*.  The
question a pipeline operator asks is: **what is the shortest period
(highest ingest rate) each co-scheduling strategy can sustain?**

The answer is the strategy's makespan: all kernels start when a batch
lands and must finish within the period.  The experiment shows how
dominant-partition cache allocation raises the sustainable rate over
naive cache sharing.

Run:  python examples/insitu_analysis.py
"""

import numpy as np

from repro.core import Application, Workload, get_scheduler
from repro.machine import taihulight
from repro.simulate import simulate_schedule


#: Analysis kernels of a cosmology pipeline: halo finding, power
#: spectra, light-cone extraction, etc.  Work in operations per batch;
#: access frequencies and 40 MB miss rates in NPB-measured ranges.
KERNELS = [
    ("halo-finder",     4.0e11, 0.04, 0.70, 4.1e-3),
    ("power-spectrum",  1.6e11, 0.02, 0.58, 1.6e-2),
    ("lightcone",       0.9e11, 0.08, 0.81, 7.9e-3),
    ("halo-profiles",   2.2e11, 0.03, 0.75, 2.3e-3),
    ("void-finder",     0.6e11, 0.06, 0.52, 2.1e-2),
    ("merger-trees",    1.1e11, 0.05, 0.66, 9.4e-3),
    ("sub-sampling",    0.3e11, 0.01, 0.49, 2.6e-2),
    ("compression",     0.8e11, 0.02, 0.61, 1.2e-2),
]


def build_workload() -> Workload:
    return Workload(
        Application(name=name, work=w, seq_fraction=s, access_freq=f,
                    miss_rate=m)
        for name, w, s, f, m in KERNELS
    )


def main() -> None:
    platform = taihulight()  # the dedicated analysis node
    workload = build_workload()

    print("In-situ analysis: sustainable ingest period per strategy")
    print(f"({len(workload)} kernels on p={platform.p:g} processors, "
          f"{platform.cache_size / 1e9:g} GB LLC)\n")

    print(f"{'strategy':<20}{'min period':>14}{'batches/day*':>14}")
    spans = {}
    for name in ("allproccache", "fair", "0cache", "dominant-minratio"):
        schedule = get_scheduler(name)(workload, platform, np.random.default_rng(0))
        spans[name] = schedule.makespan()
        # Treat model time units as nanoseconds for a concrete rate.
        per_day = 86400e9 / spans[name]
        print(f"{name:<20}{spans[name]:>14.4e}{per_day:>14.1f}")
    print("(*) taking one model time unit = 1 ns\n")

    gain = 1 - spans["dominant-minratio"] / spans["fair"]
    print(f"dominant-partition co-scheduling sustains "
          f"{1 / (1 - gain):.2f}x the ingest rate of Fair sharing "
          f"({gain:.0%} shorter period).\n")

    # Verify the deadline property in the event simulator: with the
    # period set to the makespan, every kernel finishes in time.
    best = get_scheduler("dominant-minratio")(workload, platform, None)
    result = simulate_schedule(best)
    period = best.makespan()
    print("deadline check (period = makespan of dominant-minratio):")
    for name, finish in zip(workload.names, result.finish_times):
        status = "ok" if finish <= period * (1 + 1e-9) else "LATE"
        print(f"  {name:<16} finishes at {finish / period:6.1%} of the period  [{status}]")


if __name__ == "__main__":
    main()
