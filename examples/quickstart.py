#!/usr/bin/env python
"""Quickstart: co-schedule a workload on a cache-partitioned node.

Builds the paper's NPB-SYNTH workload, runs every scheduling strategy,
and prints the allocation chosen by the best one.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import get_scheduler, scheduler_names
from repro.machine import taihulight
from repro.workloads import npb_synth

import repro.extensions  # noqa: F401  (registers the future-work schedulers)


def main() -> None:
    rng = np.random.default_rng(42)

    # A TaihuLight-like node: 256 processors sharing a 32 GB LLC.
    platform = taihulight()

    # 32 synthetic applications built from measured NPB profiles:
    # work uniform in [1e8, 1e12] ops, sequential fraction in [1%, 15%].
    workload = npb_synth(32, rng)

    print(f"platform: p={platform.p:g} processors, "
          f"LLC={platform.cache_size / 1e9:g} GB, "
          f"ls={platform.latency_cache}, ll={platform.latency_memory}\n")

    print(f"{'strategy':<22}{'makespan':>14}{'vs AllProcCache':>18}")
    reference = get_scheduler("allproccache")(workload, platform, None).makespan()
    results = {}
    for name in sorted(scheduler_names()):
        schedule = get_scheduler(name)(workload, platform, np.random.default_rng(7))
        results[name] = schedule
        span = schedule.makespan()
        print(f"{name:<22}{span:>14.4e}{span / reference:>17.3f}x")

    best_name = min(results, key=lambda n: results[n].makespan())
    print(f"\nbest strategy: {best_name}")
    print()
    print(results[best_name].describe())


if __name__ == "__main__":
    main()
