#!/usr/bin/env python
"""End-to-end pipeline: memory traces -> profiles -> co-schedule.

The paper derived its application parameters (Table 2) by instrumenting
binaries with PEBIL.  This example runs the library's substitute
pipeline on synthetic kernels sharing an edge node with a small (2 MB)
partitionable LLC:

1. generate cache-line traces with different locality (Zipf-skewed
   kernels plus a strided streaming polluter);
2. measure steady-state miss-rate curves with the stack-distance LRU
   simulator and fit the power law of cache misses (Eq. 1);
3. build `Application` objects and co-schedule them with the
   dominant-partition heuristic - the all-miss streaming kernel is
   *excluded* from the cache subset, exactly as Eq. 3 prescribes;
4. validate the premise by replay: run the traces on a way-partitioned
   cache sized by the schedule and on an unpartitioned shared cache,
   showing the interference that partitioning removes.

Run:  python examples/trace_to_schedule.py
"""

import numpy as np

from repro.cachesim import (
    corun_partitioned,
    corun_shared,
    profile_application,
    strided_stream,
    ways_from_fractions,
    zipf_stream,
)
from repro.core import Workload, dominant_schedule
from repro.machine import custom

#: (name, footprint lines, zipf skew or None for strided, work, ops/access)
KERNELS = [
    ("stencil",   35_000, 1.35, 6e9, 4.0),
    ("graph",     60_000, 1.05, 2e9, 1.5),
    ("hash-join", 45_000, 1.20, 3e9, 2.0),
    ("stream",    80_000, None, 1e9, 8.0),   # strided polluter, > LLC
]

LLC_BYTES = 2e6
LLC_WAYS = 32


def main() -> None:
    rng = np.random.default_rng(11)
    platform = custom(p=8, cache_size=LLC_BYTES, name="edge-node")

    print("1. profiling synthetic kernels (stack-distance LRU + power-law fit)\n")
    apps, traces = [], []
    for name, lines, skew, work, opa in KERNELS:
        if skew is None:
            trace = strided_stream(lines, 160_000)
        else:
            trace = zipf_stream(lines, 80_000, rng, skew=skew)
        app, _curve, fit = profile_application(
            name, trace, work=work, operations_per_access=opa,
            seq_fraction=0.05, exclude_cold=True,
            cache_bytes=np.geomspace(32 * 1024, 4e6, 10),
            baseline_cache=LLC_BYTES,
        )
        apps.append(app)
        traces.append(trace)
        print(f"  {name:<10} footprint={app.footprint / 1e6:5.2f} MB  "
              f"m0({LLC_BYTES / 1e6:g}MB)={app.miss_rate:9.3e}  "
              f"fitted alpha={fit.alpha:5.2f}  r2={fit.r2:4.2f}")

    workload = Workload(apps)
    print("\n2. co-scheduling with the dominant-partition heuristic\n")
    schedule = dominant_schedule(workload, platform)
    print(schedule.describe())
    excluded = [n for n, x in zip(workload.names, schedule.cache) if x == 0]
    print(f"\n  excluded from the cache partition: {', '.join(excluded)} "
          "(all-miss profile, Eq. 3)")

    print("\n3. replaying the traces on the partitioned LLC\n")
    ways = ways_from_fractions(schedule.cache, LLC_WAYS)
    num_sets = int(LLC_BYTES / 64 / LLC_WAYS)
    part = corun_partitioned(traces, num_sets, ways)
    shared = corun_shared(traces, num_sets, LLC_WAYS)
    print(f"  {'kernel':<10}{'ways':>6}{'partitioned miss':>18}{'shared miss':>14}")
    for i, name in enumerate(workload.names):
        print(f"  {name:<10}{int(ways[i]):>6d}{part.miss_rates[i]:>18.3f}"
              f"{shared.miss_rates[i]:>14.3f}")
    # Partitioning guarantees isolation (an app's misses depend only on
    # its own partition) - it does not promise every app beats the
    # shared free-for-all, where a kernel may steal more than its share.
    assert np.all(part.miss_rates <= shared.miss_rates + 0.02)
    better = int((part.miss_rates < shared.miss_rates - 1e-3).sum())
    print(f"\n  partitioning protects {better} kernel(s) from the streaming "
          "polluter and makes every")
    print("  miss rate depend only on the kernel's own partition - the "
          "exclusivity guarantee")
    print("  the scheduling model is built on.")


if __name__ == "__main__":
    main()
