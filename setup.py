"""Setuptools shim.

Kept alongside pyproject.toml so that ``python setup.py develop`` works
in fully offline environments that lack the ``wheel`` package needed by
PEP-517 editable installs.  All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
