"""repro — co-scheduling algorithms for cache-partitioned systems.

A complete, executable reproduction of *"Co-scheduling algorithms for
cache-partitioned systems"* (Aupy, Benoit, Pottier, Raghavan, Robert,
Shantharam; INRIA RR-8965 / IPDPS 2017): the analytical model (power
law of cache misses + Amdahl cost model), the dominant-partition theory
and heuristics, the NP-completeness reduction, the evaluation baselines,
a way-partitioned LRU cache simulator substrate, an experiment
harness regenerating every figure of the paper, and an online decision
service (:mod:`repro.service`) serving the schedulers over HTTP with
request batching and an LRU decision cache.

Quickstart::

    import numpy as np
    from repro import Platform, get_scheduler
    from repro.workloads import npb_synth
    from repro.machine import taihulight

    rng = np.random.default_rng(0)
    platform = taihulight()
    workload = npb_synth(64, rng)
    schedule = get_scheduler("dominant-minratio")(workload, platform, rng)
    print(schedule.makespan())
"""

from .core import (
    Application,
    BaseSchedule,
    Platform,
    Schedule,
    SequentialSchedule,
    Workload,
    dominant_schedule,
    get_scheduler,
    register,
    scheduler_names,
)
from .types import (
    InfeasibleScheduleError,
    ModelError,
    ReproError,
    SolverError,
)

# Importing these packages registers their schedulers (speedup-aware,
# localsearch, continuous-opt, pairwise-matching) so they are always
# available from get_scheduler()/the CLI.
from . import extensions as _extensions  # noqa: E402,F401
from . import interference as _interference  # noqa: E402,F401

__version__ = "1.1.0"

__all__ = [
    "Application",
    "Workload",
    "Platform",
    "Schedule",
    "SequentialSchedule",
    "BaseSchedule",
    "dominant_schedule",
    "get_scheduler",
    "register",
    "scheduler_names",
    "ReproError",
    "ModelError",
    "InfeasibleScheduleError",
    "SolverError",
    "__version__",
]
