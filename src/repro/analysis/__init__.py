"""Model-sensitivity and misestimation analysis tools."""

from .sensitivity import (
    alpha_misestimation_regret,
    evaluate_under,
    missrate_misestimation_regret,
    parameter_elasticities,
)

__all__ = [
    "evaluate_under",
    "alpha_misestimation_regret",
    "missrate_misestimation_regret",
    "parameter_elasticities",
]
