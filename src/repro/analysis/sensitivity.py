"""Model-misestimation and parameter-sensitivity analysis.

The paper's conclusion asks how accurate the model must be ("further
validate the accuracy of the model").  These tools quantify it within
the reproduction:

* :func:`evaluate_under` — price a schedule computed with *assumed*
  parameters against the *true* model (allocation decisions frozen,
  reality decides the finish times);
* :func:`alpha_misestimation_regret` / :func:`missrate_misestimation_regret`
  — the relative makespan cost of scheduling with a wrong power-law
  sensitivity or with systematically biased miss rates, versus having
  scheduled with the truth;
* :func:`parameter_elasticities` — finite-difference elasticities
  ``d log(makespan) / d log(param)`` per application parameter, which
  identify the measurements worth refining.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Callable, Optional

import numpy as np

from ..core.application import Application, Workload
from ..core.execution import execution_times
from ..core.platform import Platform
from ..core.registry import get_scheduler
from ..core.schedule import Schedule
from ..types import ModelError

__all__ = [
    "evaluate_under",
    "alpha_misestimation_regret",
    "missrate_misestimation_regret",
    "parameter_elasticities",
]


def evaluate_under(schedule: Schedule, true_platform: Platform,
                   true_workload: Workload | None = None) -> float:
    """Makespan of *schedule*'s allocations under the true model.

    The processor and cache decisions are kept; only the cost model
    changes.  This is what actually happens when a scheduler built on
    estimated parameters meets reality.
    """
    wl = true_workload if true_workload is not None else schedule.workload
    if wl.n != schedule.workload.n:
        raise ModelError("true workload must have the same number of applications")
    times = execution_times(wl, true_platform, schedule.procs, schedule.cache)
    return float(times.max())


def _regret(
    workload_assumed: Workload,
    platform_assumed: Platform,
    workload_true: Workload,
    platform_true: Platform,
    scheduler_name: str,
    rng: Optional[np.random.Generator],
) -> float:
    scheduler = get_scheduler(scheduler_name)
    naive = scheduler(workload_assumed, platform_assumed, rng)
    oracle = scheduler(workload_true, platform_true, rng)
    achieved = evaluate_under(naive, platform_true, workload_true)
    best = evaluate_under(oracle, platform_true, workload_true)
    return achieved / best - 1.0


def alpha_misestimation_regret(
    workload: Workload,
    platform: Platform,
    *,
    alpha_true: float,
    alpha_assumed: float,
    scheduler: str = "dominant-minratio",
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Regret of scheduling with ``alpha_assumed`` when reality is
    ``alpha_true`` (both in (0, 1])."""
    pf_true = dc_replace(platform, alpha=alpha_true)
    pf_assumed = dc_replace(platform, alpha=alpha_assumed)
    return _regret(workload, pf_assumed, workload, pf_true, scheduler, rng)


def missrate_misestimation_regret(
    workload: Workload,
    platform: Platform,
    *,
    bias: float,
    scheduler: str = "dominant-minratio",
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Regret when every measured ``m0`` is off by the factor *bias*.

    ``bias = 2`` means the profiler overestimated every miss rate 2x
    (true rates are half of what the scheduler believed).
    """
    if bias <= 0:
        raise ModelError(f"bias must be positive, got {bias}")
    truth = Workload([
        dc_replace(app, miss_rate=min(1.0, app.miss_rate / bias)) for app in workload
    ])
    return _regret(workload, platform, truth, platform, scheduler, rng)


def parameter_elasticities(
    workload: Workload,
    platform: Platform,
    *,
    scheduler: str = "dominant-minratio",
    rel_step: float = 0.05,
    rng: Optional[np.random.Generator] = None,
) -> dict[str, np.ndarray]:
    """Per-application makespan elasticities for ``w``, ``f``, ``m0``, ``s``.

    ``out[param][i] ~ dlog(makespan) / dlog(param_i)`` via a forward
    finite difference with relative step *rel_step*, re-running the
    full scheduler each time (so the allocation response is included,
    not just the cost response).
    """
    sched_fn = get_scheduler(scheduler)
    base = sched_fn(workload, platform, rng).makespan()

    def bump(app: Application, param: str) -> Application:
        if param == "work":
            return dc_replace(app, work=app.work * (1 + rel_step))
        if param == "freq":
            return dc_replace(app, access_freq=app.access_freq * (1 + rel_step))
        if param == "miss":
            return dc_replace(app, miss_rate=min(1.0, app.miss_rate * (1 + rel_step)))
        if param == "seq":
            bumped = app.seq_fraction * (1 + rel_step) if app.seq_fraction > 0 else rel_step * 0.01
            return dc_replace(app, seq_fraction=min(1.0, bumped))
        raise ModelError(f"unknown parameter {param!r}")

    out: dict[str, np.ndarray] = {}
    for param in ("work", "freq", "miss", "seq"):
        elast = np.empty(workload.n)
        for i in range(workload.n):
            apps = list(workload)
            apps[i] = bump(apps[i], param)
            span = sched_fn(Workload(apps), platform, rng).makespan()
            elast[i] = np.log(span / base) / np.log1p(rel_step)
        out[param] = elast
    return out
