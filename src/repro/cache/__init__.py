"""repro.cache — the one tiered cache subsystem.

The paper's co-schedulers are deterministic functions of a canonical
spec, which makes caching the biggest lever at every layer — and every
layer caches through this package:

* the decision service's in-memory serving tier
  (:mod:`repro.service.cache` re-exports the backends here),
* the experiment engine's content-addressed on-disk result store
  (:class:`repro.experiments.cache.ResultCache` rides
  :class:`ContentAddressedStore`),
* and the tiered composition (:class:`TieredCache`) that gives the
  decision service cross-restart warm starts from the disk tier.

Layout::

    TieredCache                          (tiered.py)
      ├── memory tier: LRUCache | ShardedClockCache   (memory.py)
      └── disk tier:   DecisionDiskTier               (disk.py)
                         └── ContentAddressedStore

Backends are a construction choice (:func:`make_memory_backend`), not
a class hierarchy callers must know about; the seam deliberately
leaves room for a shared-memory or external-KV backend with the same
get/put/stats contract.  Counters are uniform everywhere
(:mod:`repro.cache.stats`): hits + misses equals the exact number of
lookups on every backend and every tier, and ``/metrics`` and
``repro cache info`` render any of them identically.

Shard assignment and content addressing are **bit-stable across
processes** — derived from SHA-256 fingerprint bits
(:func:`stable_shard_index`), never from Python's per-process
randomized ``hash()``.
"""

from .disk import (
    ALL_TIER_PATTERNS,
    CACHE_DIR_ENV,
    ContentAddressedStore,
    DecisionDiskTier,
    PruneReport,
    resolve_cache_dir,
)
from .memory import (
    LRUCache,
    ShardedClockCache,
    make_memory_backend,
    stable_shard_index,
)
from .stats import CacheStats, ShardedCacheStats, TieredCacheStats
from .tiered import TieredCache

__all__ = [
    "ALL_TIER_PATTERNS",
    "CACHE_DIR_ENV",
    "CacheStats",
    "ContentAddressedStore",
    "DecisionDiskTier",
    "LRUCache",
    "PruneReport",
    "ShardedCacheStats",
    "ShardedClockCache",
    "TieredCache",
    "TieredCacheStats",
    "make_memory_backend",
    "resolve_cache_dir",
    "stable_shard_index",
]
