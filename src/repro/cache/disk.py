"""Content-addressed disk tier: atomic file store, byte-budget prune.

The persistent half of :mod:`repro.cache`.  Everything durable the
system caches — experiment result grids (npz, written by
:class:`repro.experiments.cache.ResultCache`) and service decisions
(json, written by :class:`DecisionDiskTier`) — lives in one cache
directory and shares one mechanical substrate:

:class:`ContentAddressedStore`
    The substrate: a directory plus the glob patterns naming its
    entries.  Provides atomic publication (write to a pid-tagged temp
    file, ``os.replace`` into place — readers never observe a torn
    entry), LRU enumeration by file mtime (loads touch the mtime, so
    mtime order *is* recency order), byte accounting, and the
    byte-budget :meth:`~ContentAddressedStore.prune` behind
    ``repro cache prune``.  Concurrently-vanished files are skipped,
    never errors — multiple processes may share the directory.

:class:`DecisionDiskTier`
    Decisions keyed by their SHA-256 request fingerprint, one small
    canonical-JSON file per decision under ``decisions/``.  This is
    what gives the decision service cross-restart warm starts: a
    decision computed by yesterday's process answers today's first
    request.  Anything that fails to parse is a miss, not an error.

The cache directory comes from an explicit argument or the
``REPRO_CACHE_DIR`` environment variable (:func:`resolve_cache_dir`);
when neither is set, disk caching is off.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

__all__ = ["CACHE_DIR_ENV", "ContentAddressedStore", "DecisionDiskTier",
           "PruneReport", "resolve_cache_dir"]

#: Env var naming the cache directory (disk caching disabled when unset).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Entry patterns of every known tier, for the unified CLI view.
ALL_TIER_PATTERNS: tuple[str, ...] = ("*.npz", "decisions/*.json")


def resolve_cache_dir(cache_dir: str | Path | None) -> Path | None:
    """Pick the cache directory: argument > REPRO_CACHE_DIR > disabled."""
    if cache_dir is None:
        cache_dir = os.environ.get(CACHE_DIR_ENV) or None
    return Path(cache_dir) if cache_dir is not None else None


@dataclass(frozen=True)
class PruneReport:
    """Outcome of a :meth:`ContentAddressedStore.prune` pass.

    Attributes
    ----------
    deleted : tuple[Path, ...]
        Entries removed, oldest first.
    freed_bytes, kept_bytes : int
        Bytes reclaimed / still on disk after the pass.
    """

    deleted: tuple[Path, ...]
    freed_bytes: int
    kept_bytes: int


class ContentAddressedStore:
    """A directory of content-addressed entries with LRU byte pruning.

    Parameters
    ----------
    cache_dir : str | Path
        The cache directory (created lazily on first store).
    patterns : iterable of str
        Glob patterns (relative to *cache_dir*) naming this store's
        entries.  Files not matching any pattern are invisible — a
        README or another tier's entries are never touched.
    """

    def __init__(self, cache_dir: str | Path,
                 patterns: Iterable[str] = ("*.npz",),
                 label: str = "cache"):
        self.cache_dir = Path(cache_dir)
        self.patterns = tuple(patterns)
        self.label = label

    @staticmethod
    def _stat_or_none(path: Path):
        """stat() tolerating a concurrently-deleted entry."""
        try:
            return path.stat()
        except OSError:
            return None

    def entries(self) -> list[Path]:
        """All entry files, least recently used first (by mtime).

        Enumeration is fully deterministic: ``glob`` yields in
        filesystem (inode-history) order, so it is sorted before use,
        and mtime ties break on the relative path — listings and prune
        victim order are identical on every machine holding the same
        entries, never an artifact of directory layout.
        """
        if not self.cache_dir.is_dir():
            return []
        stamped = []
        for pattern in self.patterns:
            for path in sorted(self.cache_dir.glob(pattern)):
                st = self._stat_or_none(path)
                if st is not None:
                    stamped.append(
                        (st.st_mtime, path.relative_to(self.cache_dir).as_posix(),
                         path))
        return [path for _, _, path in sorted(stamped)]

    def size_bytes(self) -> int:
        """Total bytes currently held by entries."""
        return sum(
            st.st_size
            for st in map(self._stat_or_none, self.entries())
            if st is not None
        )

    def prune(self, max_bytes: int, *, dry_run: bool = False) -> PruneReport:
        """Delete least-recently-used entries until under *max_bytes*.

        Recency is file mtime: loads touch an entry on every hit, so a
        result regenerated yesterday outlives one last read months ago
        regardless of creation order.  Concurrently-vanished files are
        skipped, not errors.  ``max_bytes=0`` empties the store.  With
        ``dry_run=True`` nothing is unlinked; the report lists what a
        real pass would delete.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = self.entries()
        sizes = {}
        for path in entries:
            st = self._stat_or_none(path)
            sizes[path] = st.st_size if st is not None else 0
        total = sum(sizes.values())
        deleted: list[Path] = []
        freed = 0
        for path in entries:  # oldest first
            if total <= max_bytes:
                break
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    continue
            total -= sizes[path]
            freed += sizes[path]
            deleted.append(path)
        return PruneReport(deleted=tuple(deleted), freed_bytes=freed,
                           kept_bytes=total)

    # -- write/read plumbing shared by the tiers ---------------------------
    def write_atomic(self, path: Path, data: bytes) -> bool:
        """Publish *data* at *path* atomically; False (and a warning) on failure.

        The temp name is tagged with pid *and* thread id so concurrent
        writers of the same entry — other processes or threads in this
        one — never collide, and ``os.replace`` makes publication
        atomic: a concurrent reader sees the old entry or the new one,
        never a torn file.  Storage failures only cost the cache
        entry, never the computed value.
        """
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}-{threading.get_ident()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError as exc:
            warnings.warn(f"{self.label}: could not store {path}: {exc}",
                          RuntimeWarning, stacklevel=3)
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        return True

    @staticmethod
    def touch(path: Path) -> None:
        """Refresh *path*'s mtime (a hit), tolerating a vanished file."""
        try:
            os.utime(path)
        except OSError:
            pass


class DecisionDiskTier:
    """Persistent decision store keyed by request fingerprint.

    One canonical-JSON file per decision under ``<cache_dir>/decisions``.
    Fingerprints are SHA-256 hex, so the key *is* a safe filename; any
    other key (tests, ad-hoc use) is rejected to keep the directory
    content-addressed.  The tier is payload-in/payload-out — the owning
    :class:`~repro.cache.tiered.TieredCache` carries the encode/decode
    step and all counters.
    """

    SUBDIR = "decisions"
    PATTERN = "decisions/*.json"

    def __init__(self, cache_dir: str | Path):
        self.cache_dir = Path(cache_dir)
        self.store = ContentAddressedStore(cache_dir,
                                           patterns=(self.PATTERN,),
                                           label="decision cache")

    @staticmethod
    def _is_safe_key(key: str) -> bool:
        return bool(key) and all(
            c.isalnum() or c in "-_." for c in key) and len(key) <= 255

    def path_for(self, key: str) -> Path:
        return self.cache_dir / self.SUBDIR / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """Load the payload for *key*, or None; a hit refreshes recency."""
        if not self._is_safe_key(key):
            return None
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_bytes())
        except (OSError, ValueError):
            # Absent, torn, or stale entries are all just misses.
            return None
        if not isinstance(payload, dict):
            return None
        self.store.touch(path)
        return payload

    def peek(self, key: str) -> dict[str, Any] | None:
        """Like :meth:`get` but without refreshing recency."""
        if not self._is_safe_key(key):
            return None
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_bytes())
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def put(self, key: str, payload: dict[str, Any]) -> bool:
        """Persist *payload* under *key* (atomic); False on failure."""
        if not self._is_safe_key(key):
            return False
        data = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode()
        return self.store.write_atomic(self.path_for(key), data)

    def __contains__(self, key: str) -> bool:
        return self._is_safe_key(key) and self.path_for(key).exists()

    def entries(self) -> list[Path]:
        return self.store.entries()

    def size_bytes(self) -> int:
        return self.store.size_bytes()
