"""In-memory cache backends: single-lock LRU and fingerprint-sharded CLOCK.

These are the memory tiers of :mod:`repro.cache`.  Both serve the same
contract — bounded capacity, O(1) thread-safe operations, exact
hit/miss/eviction counters (see :mod:`repro.cache.stats`) — and differ
only in how they pay for concurrency:

:class:`LRUCache`
    One lock, strict least-recently-used eviction.  Every operation —
    hits included — serializes on the lock, which is fine at modest
    concurrency and gives exactly reproducible eviction order.

:class:`ShardedClockCache`
    Keys spread over K independent shards, each with its own lock and
    its own second-chance (CLOCK) eviction ring, so concurrent traffic
    on distinct shards never serializes.  Hits touch only a reference
    flag (no reordering), and :meth:`~ShardedClockCache.get_many`
    probes a whole key batch lock-free, folding the burst's hit/miss
    tally into the counters under a single lock acquisition.

Shard assignment is derived from the *key's own bits*
(:func:`stable_shard_index`), never from Python's per-process
randomized ``hash()``: keys are typically SHA-256 hex fingerprints, so
the leading bits are already uniform, and the assignment is identical
in every process and across restarts.  That stability is the contract
a shard map shared between pre-forked workers depends on — with
``hash()``, each worker would scatter the same fingerprint onto a
different shard and cross-process hit rates would silently collapse.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from typing import Generic, Optional, Sequence, TypeVar

from ..types import ModelError
from .stats import CacheStats, ShardedCacheStats

__all__ = ["LRUCache", "ShardedClockCache", "make_memory_backend",
           "stable_shard_index"]

V = TypeVar("V")

#: Smallest per-shard capacity worth having: below this the shard
#: count is rounded down (a 2-entry cache gets 1 shard, not 8).
_MIN_SHARD_CAPACITY = 16


def stable_shard_index(key: str, mask: int) -> int:
    """Shard index from the key's own bits — stable across processes.

    Keys are normally SHA-256 hex fingerprints, so the first 8 hex
    digits are 32 uniformly distributed bits; masking them is both the
    cheapest and the most portable uniform hash available.  Non-hex
    keys (tests, ad-hoc callers) fall back to CRC-32, which is equally
    process-independent.  Never use builtin ``hash()`` here: its
    per-process randomization (PYTHONHASHSEED) silently breaks any
    assignment that must agree between processes or survive a restart.
    """
    try:
        return int(key[:8], 16) & mask
    except ValueError:
        return zlib.crc32(key.encode("utf-8", "surrogatepass")) & mask


class LRUCache(Generic[V]):
    """Thread-safe LRU map with exact serving counters.

    Parameters
    ----------
    capacity : int
        Maximum number of retained entries (>= 1).  Inserting into a
        full cache evicts the least-recently-*used* entry — a lookup
        hit refreshes recency, an insert counts as a use.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ModelError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[str, V] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> Optional[V]:
        """Return the cached value or None; counts a hit or a miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def get_many(self, keys: Sequence[str]) -> list[Optional[V]]:
        """Probe a key batch under one lock acquisition.

        Same hit/miss/recency semantics as per-key :meth:`get`, paid
        for with a single lock round-trip per burst.
        """
        out: list[Optional[V]] = []
        with self._lock:
            entries = self._entries
            for key in keys:
                try:
                    value = entries[key]
                except KeyError:
                    self._misses += 1
                    out.append(None)
                    continue
                entries.move_to_end(key)
                self._hits += 1
                out.append(value)
        return out

    def peek(self, key: str) -> Optional[V]:
        """Like :meth:`get` but without touching recency or counters."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, value: V) -> None:
        """Insert (or refresh) *key*, evicting the LRU entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = value

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are lifetime totals)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def count_hit(self) -> None:
        """Record a hit served on the cache's behalf by a front cache.

        The async front end keeps an L0 byte-level response cache; a
        repeat absorbed there is still a decision served from memory,
        so it counts here to keep the aggregate hit/miss accounting
        meaningful across front ends.
        """
        with self._lock:
            self._hits += 1

    def stats(self) -> CacheStats:
        """Consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )


class ShardedClockCache(Generic[V]):
    """Fingerprint-sharded cache: per-shard locks, batch probes.

    Keys map onto one of ``shards`` independent shards through
    :func:`stable_shard_index` — a pure function of the key bits, so a
    key lands on the same shard in every process, across restarts, for
    the cache's whole lifetime (the consistent assignment a shared
    shard map requires).  Each shard owns a lock, a dict, and a
    second-chance (CLOCK) eviction ring: a hit sets the entry's
    reference flag instead of reordering a linked list, so the hit
    path mutates nothing another thread must observe in order.

    Concurrency contract:

    * :meth:`get` and :meth:`put` take only their shard's lock —
      traffic on distinct shards never serializes.
    * :meth:`get_many` probes a whole key batch *lock-free* (CPython
      dict reads are safe against concurrent locked writers) and then
      folds the batch's hit/miss tally into the counters under one
      lock — one acquisition per burst instead of one per key.
    * All counters are updated under a lock (no benign-race drops):
      hits + misses always equals the exact number of lookups.

    Eviction is per-shard second-chance, which approximates LRU: a
    referenced entry gets one trip around the ring before it can be
    evicted.  Counter *semantics* (hits, misses, evictions, size,
    capacity, hit_rate) are identical to :class:`LRUCache`.
    """

    def __init__(self, capacity: int = 1024, shards: int = 8):
        if capacity < 1:
            raise ModelError(f"cache capacity must be >= 1, got {capacity}")
        if shards < 1:
            raise ModelError(f"shard count must be >= 1, got {shards}")
        self.capacity = int(capacity)
        # Power-of-two shard count for mask-based selection.  Small
        # caches round the shard count down so every shard keeps a
        # useful capacity: sharding exists to split lock traffic, and
        # a near-empty shard only distorts eviction behavior (exact
        # eviction counts stay deterministic on a single shard).
        nshards = 1
        while nshards < shards:
            nshards <<= 1
        while nshards > 1 and self.capacity < nshards * _MIN_SHARD_CAPACITY:
            nshards >>= 1
        self.shards = nshards
        self._mask = self.shards - 1
        # Per-shard capacities sum exactly to the configured capacity.
        base, extra = divmod(self.capacity, self.shards)
        self._caps = [base + (1 if i < extra else 0)
                      for i in range(self.shards)]
        self._dicts: list[dict[str, list]] = [dict() for _ in range(self.shards)]
        self._locks = [threading.Lock() for _ in range(self.shards)]
        self._hits = [0] * self.shards
        self._misses = [0] * self.shards
        self._evictions = [0] * self.shards
        # Batch-probe tallies (get_many) fold in here, one lock per burst.
        self._agg_lock = threading.Lock()
        self._agg_hits = 0
        self._agg_misses = 0

    # -- single-key operations ---------------------------------------------
    def get(self, key: str) -> Optional[V]:
        """Return the cached value or None; counts a hit or a miss."""
        i = stable_shard_index(key, self._mask)
        with self._locks[i]:
            entry = self._dicts[i].get(key)
            if entry is None:
                self._misses[i] += 1
                return None
            entry[1] = True
            self._hits[i] += 1
            return entry[0]

    def get_many(self, keys: Sequence[str]) -> list[Optional[V]]:
        """Probe a key batch lock-free; one counter tally per call.

        This is the bulk path batch producers use: per key it is a
        dict probe plus a reference-flag store, with no lock at all;
        the exact hit/miss counts fold into the aggregate counters
        under a single lock acquisition at the end.
        """
        dicts = self._dicts
        mask = self._mask
        out: list[Optional[V]] = []
        append = out.append
        misses = 0
        for key in keys:
            entry = dicts[stable_shard_index(key, mask)].get(key)
            if entry is None:
                misses += 1
                append(None)
            else:
                entry[1] = True
                append(entry[0])
        with self._agg_lock:
            self._agg_hits += len(out) - misses
            self._agg_misses += misses
        return out

    def peek(self, key: str) -> Optional[V]:
        """Like :meth:`get` but without touching recency or counters."""
        entry = self._dicts[stable_shard_index(key, self._mask)].get(key)
        return entry[0] if entry is not None else None

    def put(self, key: str, value: V) -> None:
        """Insert (or refresh) *key*; second-chance eviction when full."""
        i = stable_shard_index(key, self._mask)
        d = self._dicts[i]
        with self._locks[i]:
            entry = d.get(key)
            if entry is not None:
                entry[0] = value
                entry[1] = True
                return
            cap = self._caps[i]
            scans = 0
            while len(d) >= cap:
                # CLOCK hand: the oldest entry gets a second chance if
                # it was referenced since its last trip; the scan bound
                # guarantees an eviction even when everything is hot.
                old_key = next(iter(d))
                old = d.pop(old_key)
                if old[1] and scans <= len(d):
                    old[1] = False
                    d[old_key] = old
                    scans += 1
                else:
                    self._evictions[i] += 1
            d[key] = [value, False]

    def count_hit(self) -> None:
        """Record a front-cache (L0) hit in the aggregate counters."""
        with self._agg_lock:
            self._agg_hits += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are lifetime totals)."""
        for i in range(self.shards):
            with self._locks[i]:
                self._dicts[i].clear()

    def __len__(self) -> int:
        return sum(len(d) for d in self._dicts)

    def __contains__(self, key: str) -> bool:
        return key in self._dicts[stable_shard_index(key, self._mask)]

    def stats(self) -> ShardedCacheStats:
        """Aggregate counter snapshot across every shard."""
        with self._agg_lock:
            hits = self._agg_hits
            misses = self._agg_misses
        return ShardedCacheStats(
            hits=hits + sum(self._hits),
            misses=misses + sum(self._misses),
            evictions=sum(self._evictions),
            size=len(self),
            capacity=self.capacity,
            shards=self.shards,
        )


def make_memory_backend(capacity: int = 1024, shards: int = 8):
    """Pick the memory tier: sharding is a backend choice, not a class.

    ``shards <= 1`` selects the single-lock strict-LRU backend (exact,
    deterministic eviction order); anything larger selects the
    fingerprint-sharded CLOCK backend (the high-concurrency choice).
    """
    if shards > 1:
        return ShardedClockCache(capacity, shards=shards)
    return LRUCache(capacity)
