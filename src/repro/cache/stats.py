"""Uniform cache counter snapshots shared by every tier and backend.

Every cache in the system — the in-memory serving tiers, the sharded
backend, the tiered memory-over-disk composition — reports itself
through the same counter vocabulary: ``hits``, ``misses``,
``evictions``, ``size``, ``capacity``, and the derived ``hit_rate``.
That uniformity is what lets ``/metrics`` and ``repro cache info``
render any cache identically, and what keeps the counter-exactness
tests (hits + misses == lookups, always) meaningful across backends.

:class:`CacheStats` is the base snapshot; :class:`ShardedCacheStats`
adds the shard count; :class:`TieredCacheStats` adds the disk-tier
counters (``disk_hits``, ``disk_entries``, ``disk_bytes``) without
renaming or displacing any base key — metric names are an interface.
"""

from __future__ import annotations

__all__ = ["CacheStats", "ShardedCacheStats", "TieredCacheStats"]


class CacheStats:
    """A snapshot of the cache counters (plain attributes, no lock)."""

    __slots__ = ("hits", "misses", "evictions", "size", "capacity")

    def __init__(self, hits: int, misses: int, evictions: int,
                 size: int, capacity: int):
        self.hits = hits
        self.misses = misses
        self.evictions = evictions
        self.size = size
        self.capacity = capacity

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before any traffic."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(hits={self.hits}, "
                f"misses={self.misses}, evictions={self.evictions}, "
                f"size={self.size}/{self.capacity})")


class ShardedCacheStats(CacheStats):
    """Aggregate :class:`CacheStats` plus the shard count."""

    __slots__ = ("shards",)

    def __init__(self, hits: int, misses: int, evictions: int,
                 size: int, capacity: int, shards: int):
        super().__init__(hits, misses, evictions, size, capacity)
        self.shards = shards

    def as_dict(self) -> dict[str, float]:
        out = super().as_dict()
        out["shards"] = self.shards
        return out


class TieredCacheStats(CacheStats):
    """Memory-tier counters folded with the disk tier's.

    ``hits`` includes decisions promoted from the disk tier (a lookup
    answered from *any* tier is a hit), so ``hits + misses`` still
    equals the exact number of lookups; ``disk_hits`` says how many of
    those hits came off disk.  ``shards`` is present only when the
    memory backend is sharded, mirroring the memory-only stats shape.
    """

    __slots__ = ("shards", "disk_hits", "disk_entries", "disk_bytes")

    def __init__(self, hits: int, misses: int, evictions: int,
                 size: int, capacity: int, *, shards: int | None = None,
                 disk_hits: int = 0, disk_entries: int = 0,
                 disk_bytes: int = 0):
        super().__init__(hits, misses, evictions, size, capacity)
        self.shards = shards
        self.disk_hits = disk_hits
        self.disk_entries = disk_entries
        self.disk_bytes = disk_bytes

    def as_dict(self) -> dict[str, float]:
        out = super().as_dict()
        if self.shards is not None:
            out["shards"] = self.shards
        out["disk_hits"] = self.disk_hits
        out["disk_entries"] = self.disk_entries
        out["disk_bytes"] = self.disk_bytes
        return out
