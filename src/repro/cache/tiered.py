"""TieredCache: one cache, two tiers, one set of counters.

The composition the rest of the system talks to: a bounded in-memory
tier (:mod:`repro.cache.memory` — single-lock LRU or fingerprint-
sharded CLOCK, a backend choice) over an optional content-addressed
disk tier (:mod:`repro.cache.disk`).  Lookups probe memory first; a
memory miss falls through to disk, and a disk hit is decoded, promoted
into the memory tier, and *re-counted as a hit* — a lookup answered
from any tier is a hit, so ``hits + misses`` remains exactly the
number of lookups whatever the tier that answered.  Writes go through
to both tiers, which is what makes a fresh process warm: the memory
tier dies with the process, the disk tier does not.

Values cross the disk boundary through a pluggable ``encode``/
``decode`` pair (value ↔ JSON-safe payload); with the identity default
the tier stores plain payload dicts.  A decode failure (stale format)
is a miss, never an error.

Without a disk tier the composition is transparent: every operation
forwards to the memory backend and :meth:`TieredCache.stats` returns
the backend's own snapshot — bit-identical counters, same metric keys.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Generic, Optional, Sequence, TypeVar

from .disk import DecisionDiskTier
from .stats import CacheStats, TieredCacheStats

__all__ = ["TieredCache"]

V = TypeVar("V")


class TieredCache(Generic[V]):
    """Memory tier over an optional disk tier, uniform counters.

    Parameters
    ----------
    memory
        A memory backend (:class:`~repro.cache.memory.LRUCache` or
        :class:`~repro.cache.memory.ShardedClockCache`; anything with
        the same get/put/stats contract works).
    disk : DecisionDiskTier, optional
        The persistent tier; None (default) disables persistence and
        makes this a transparent wrapper.
    encode, decode : callable, optional
        ``encode(value) -> payload`` serializes a value for disk;
        ``decode(payload) -> value`` rebuilds it.  Identity by default.
    """

    def __init__(self, memory, *, disk: DecisionDiskTier | None = None,
                 encode: Callable[[V], dict[str, Any]] | None = None,
                 decode: Callable[[dict[str, Any]], V] | None = None):
        self.memory = memory
        self.disk = disk
        self._encode = encode
        self._decode = decode
        self._lock = threading.Lock()
        self._disk_hits = 0
        self._store_errors = 0

    # -- pass-through geometry ---------------------------------------------
    @property
    def capacity(self) -> int:
        return self.memory.capacity

    @property
    def shards(self) -> int | None:
        return getattr(self.memory, "shards", None)

    # -- lookups ------------------------------------------------------------
    def _from_disk(self, key: str) -> Optional[V]:
        """Disk probe on a memory miss: decode, promote, re-count."""
        payload = self.disk.get(key)
        if payload is None:
            return None
        try:
            value = self._decode(payload) if self._decode else payload
        except Exception:
            return None  # stale or foreign entry: a miss, not an error
        self.memory.put(key, value)
        # The memory tier already counted this lookup as a miss; the
        # tier aggregate reclassifies it (see stats()).
        with self._lock:
            self._disk_hits += 1
        return value

    def get(self, key: str) -> Optional[V]:
        """Probe memory, then disk; counts exactly one hit or miss."""
        value = self.memory.get(key)
        if value is not None or self.disk is None:
            return value
        return self._from_disk(key)

    def get_many(self, keys: Sequence[str]) -> list[Optional[V]]:
        """Bulk probe: the memory tier's batch path, disk on the misses.

        The memory probe keeps its backend's amortized counting (one
        tally per burst on the sharded backend); only the misses pay a
        disk lookup, which is cheap next to recomputing a decision.
        """
        out = self.memory.get_many(keys)
        if self.disk is not None:
            for i, value in enumerate(out):
                if value is None:
                    out[i] = self._from_disk(keys[i])
        return out

    def peek(self, key: str) -> Optional[V]:
        """Value without touching recency or counters, either tier."""
        value = self.memory.peek(key)
        if value is not None or self.disk is None:
            return value
        payload = self.disk.peek(key)
        if payload is None:
            return None
        try:
            return self._decode(payload) if self._decode else payload
        except Exception:
            return None

    # -- writes --------------------------------------------------------------
    def put(self, key: str, value: V) -> None:
        """Write-through: memory now, disk (when attached) durably.

        Persistence is best-effort — a failed encode/store only costs
        the durable copy, never the served value — but the failure is
        *counted* (:attr:`store_errors`), not swallowed: a disk tier
        that silently stopped persisting would look healthy until the
        next restart arrived cold.
        """
        self.memory.put(key, value)
        if self.disk is not None:
            try:
                payload = self._encode(value) if self._encode else value
                self.disk.put(key, payload)
            except Exception:
                with self._lock:
                    self._store_errors += 1

    @property
    def store_errors(self) -> int:
        """Disk-tier writes that failed (value still served from memory)."""
        with self._lock:
            return self._store_errors

    def count_hit(self) -> None:
        """Record a hit served on this cache's behalf by a front cache."""
        self.memory.count_hit()

    def clear(self) -> None:
        """Drop the *memory* tier (the disk tier persists by design)."""
        self.memory.clear()

    def __len__(self) -> int:
        return len(self.memory)

    def __contains__(self, key: str) -> bool:
        if key in self.memory:
            return True
        return self.disk is not None and key in self.disk

    # -- introspection -------------------------------------------------------
    def stats(self) -> CacheStats:
        """Counter snapshot; tier-aware but key-compatible.

        Without a disk tier this is exactly the memory backend's
        snapshot.  With one, lookups the memory tier counted as misses
        but the disk tier answered are reclassified as hits
        (``hits + misses`` still equals the exact lookup count) and
        the disk tier's footprint is appended as additional keys —
        existing counter names never change meaning or disappear.
        """
        mem = self.memory.stats()
        if self.disk is None:
            return mem
        with self._lock:
            disk_hits = self._disk_hits
        return TieredCacheStats(
            hits=mem.hits + disk_hits,
            misses=mem.misses - disk_hits,
            evictions=mem.evictions,
            size=mem.size,
            capacity=mem.capacity,
            shards=getattr(mem, "shards", None),
            disk_hits=disk_hits,
            disk_entries=len(self.disk.entries()),
            disk_bytes=self.disk.size_bytes(),
        )
