"""Cache-simulation substrate: LRU caches, way partitioning, profiling.

This package substitutes for the paper's PEBIL-instrumented hardware
measurements: synthetic address streams + an exact LRU simulator
(direct and Mattson-stack engines) + way partitioning (Intel CAT
style) + power-law fitting give an end-to-end path from "memory
behaviour" to the ``(w, f, m0)`` scalars the scheduling model consumes.
"""

from .address_stream import (
    LINE_BYTES,
    interleave,
    phased_stream,
    strided_stream,
    working_set_stream,
    zipf_stream,
)
from .lru import (
    LRUCache,
    miss_counts_by_ways,
    miss_rate_curve,
    set_stack_distances,
    stack_distances,
)
from .partitioned import (
    CorunResult,
    PartitionedCache,
    corun_partitioned,
    corun_shared,
    ways_from_fractions,
)
from .powerlaw_fit import PowerLawFit, fit_power_law
from .ucp import total_utility, ucp_allocate, utility_from_stack_distances
from .profiling import MissCurve, measure_miss_curve, profile_application

__all__ = [
    "LINE_BYTES",
    "strided_stream",
    "working_set_stream",
    "zipf_stream",
    "phased_stream",
    "interleave",
    "LRUCache",
    "stack_distances",
    "set_stack_distances",
    "miss_counts_by_ways",
    "miss_rate_curve",
    "PartitionedCache",
    "CorunResult",
    "ways_from_fractions",
    "corun_partitioned",
    "corun_shared",
    "PowerLawFit",
    "fit_power_law",
    "ucp_allocate",
    "utility_from_stack_distances",
    "total_utility",
    "MissCurve",
    "measure_miss_curve",
    "profile_application",
]
