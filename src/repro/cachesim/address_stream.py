"""Synthetic memory address streams.

The paper measured application parameters with PEBIL binary
instrumentation on real hardware; offline we substitute synthetic
cache-line access streams whose locality is controllable, so the LRU
simulator can regenerate miss-rate-vs-cache-size curves and the
power-law fit can recover ``(m0, alpha)``.

All generators return 1-D ``int64`` arrays of *cache line* ids (the
line size is applied later when sizing caches).  Locality knobs:

* :func:`strided_stream` — streaming sweeps: essentially no reuse, miss
  rate ~1 below the footprint (worst case for any cache).
* :func:`working_set_stream` — uniform draws from a working set: the
  classic "miss rate falls once the set fits" step curve.
* :func:`zipf_stream` — Zipf-popular lines: smooth power-law-ish
  miss-rate curves, the regime Eq. 1 models (Hartstein et al. observed
  the sqrt(2) rule on such workloads).
* :func:`phased_stream` — concatenated phases with different working
  sets, for interference and partitioning studies.
"""

from __future__ import annotations

import numpy as np

from ..types import ModelError

__all__ = [
    "LINE_BYTES",
    "strided_stream",
    "working_set_stream",
    "zipf_stream",
    "phased_stream",
    "interleave",
]

#: Default cache line size, bytes.
LINE_BYTES: int = 64


def _check_positive(value: int, name: str) -> None:
    if value <= 0:
        raise ModelError(f"{name} must be positive, got {value}")


def strided_stream(footprint_lines: int, length: int, *, stride: int = 1) -> np.ndarray:
    """Repeated strided sweep over ``footprint_lines`` distinct lines."""
    _check_positive(footprint_lines, "footprint_lines")
    _check_positive(length, "length")
    _check_positive(stride, "stride")
    idx = (np.arange(length, dtype=np.int64) * stride) % footprint_lines
    return idx


def working_set_stream(
    footprint_lines: int,
    length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Uniform random draws from a working set of ``footprint_lines``."""
    _check_positive(footprint_lines, "footprint_lines")
    _check_positive(length, "length")
    return rng.integers(footprint_lines, size=length, dtype=np.int64)


def zipf_stream(
    footprint_lines: int,
    length: int,
    rng: np.random.Generator,
    *,
    skew: float = 1.2,
) -> np.ndarray:
    """Zipf-distributed line popularity over ``footprint_lines`` lines.

    Lines are ranked by popularity with probability ``~ 1/rank^skew``.
    Ranks are randomly permuted over the address space so set-indexed
    caches see no artificial spatial correlation with popularity.
    """
    _check_positive(footprint_lines, "footprint_lines")
    _check_positive(length, "length")
    if skew <= 0:
        raise ModelError(f"skew must be positive, got {skew}")
    ranks = np.arange(1, footprint_lines + 1, dtype=np.float64)
    probs = ranks**-skew
    probs /= probs.sum()
    draws = rng.choice(footprint_lines, size=length, p=probs)
    perm = rng.permutation(footprint_lines).astype(np.int64)
    return perm[draws]


def phased_stream(
    phases: list[tuple[int, int]],
    rng: np.random.Generator,
    *,
    kind: str = "working-set",
    skew: float = 1.2,
) -> np.ndarray:
    """Concatenate phases ``(footprint_lines, length)`` with disjoint lines.

    Each phase draws from its own line range so successive phases evict
    each other — a template for capacity-pressure experiments.
    """
    if not phases:
        raise ModelError("need at least one phase")
    parts = []
    base = 0
    for footprint_lines, length in phases:
        if kind == "working-set":
            part = working_set_stream(footprint_lines, length, rng)
        elif kind == "zipf":
            part = zipf_stream(footprint_lines, length, rng, skew=skew)
        elif kind == "strided":
            part = strided_stream(footprint_lines, length)
        else:
            raise ModelError(f"unknown phase kind {kind!r}")
        parts.append(part + base)
        base += footprint_lines
    return np.concatenate(parts)


def interleave(streams: list[np.ndarray], *, tag_bits: int = 20) -> np.ndarray:
    """Round-robin interleave per-application streams into one trace.

    Each application's lines are tagged into a disjoint address range
    (shifted by ``app_index << tag_bits``) so that co-run traces never
    alias across applications — mirroring distinct physical address
    spaces.  Streams of unequal length are interleaved until each is
    exhausted.
    """
    if not streams:
        raise ModelError("need at least one stream")
    tagged = []
    for i, s in enumerate(streams):
        s = np.asarray(s, dtype=np.int64)
        if s.ndim != 1:
            raise ModelError("streams must be 1-D arrays of line ids")
        if s.size and int(s.max()) >= (1 << tag_bits):
            raise ModelError(
                f"stream {i} uses line ids >= 2^{tag_bits}; raise tag_bits"
            )
        tagged.append(s + (np.int64(i) << tag_bits))
    longest = max(s.size for s in tagged)
    out = np.empty(sum(s.size for s in tagged), dtype=np.int64)
    pos = 0
    for step in range(longest):
        for s in tagged:
            if step < s.size:
                out[pos] = s[step]
                pos += 1
    return out
