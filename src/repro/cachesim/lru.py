"""Set-associative LRU cache simulation.

Two engines with complementary strengths:

* :class:`LRUCache` — a direct simulator (per-access bookkeeping).
  Simple, obviously correct, used as the reference implementation and
  for partitioned co-run simulation.
* :func:`stack_distances` — Mattson's stack algorithm: the LRU *stack
  distance* of each access (number of distinct lines touched since the
  previous access to the same line).  A fully associative LRU cache of
  capacity ``W`` misses exactly the accesses with distance ``>= W``
  (cold accesses have infinite distance), so one pass prices **every**
  cache size at once — this is what makes miss-rate-vs-size sweeps
  cheap enough to fit a power law.

For a set-indexed cache, apply the stack algorithm within each set
(:func:`set_stack_distances`) — LRU is managed per set, so per-set
distances against the way count give exact set-associative miss counts
(:func:`miss_counts_by_ways`).

The stack algorithm uses a Fenwick (binary indexed) tree over access
positions: distance = number of *distinct* lines seen since the last
access to this line = count of currently-"live" positions after it.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..types import ModelError

__all__ = [
    "LRUCache",
    "stack_distances",
    "set_stack_distances",
    "miss_counts_by_ways",
    "miss_rate_curve",
]


class LRUCache:
    """A set-associative LRU cache of ``num_sets * ways`` lines.

    Parameters
    ----------
    num_sets : int
        Number of sets (power of two recommended; line ids index sets
        by modulo).
    ways : int
        Associativity.  ``num_sets=1`` gives a fully associative cache.

    Notes
    -----
    Addresses are *line ids* (already divided by the line size).  The
    capacity in bytes is ``num_sets * ways * line_bytes`` for whatever
    line size the trace generator assumed.
    """

    __slots__ = ("num_sets", "ways", "_sets", "hits", "misses")

    def __init__(self, num_sets: int, ways: int):
        if num_sets <= 0 or ways <= 0:
            raise ModelError(f"num_sets and ways must be positive, got {num_sets}, {ways}")
        self.num_sets = num_sets
        self.ways = ways
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0

    @property
    def capacity_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.num_sets * self.ways

    @property
    def accesses(self) -> int:
        """Total accesses simulated so far."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0 when nothing accessed)."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (contents are kept)."""
        self.hits = 0
        self.misses = 0

    def access(self, line: int) -> bool:
        """Access one line; returns True on hit.

        On a miss the LRU line of the set is evicted if the set is full.
        """
        s = self._sets[line % self.num_sets]
        if line in s:
            s.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        if len(s) >= self.ways:
            s.popitem(last=False)
        s[line] = None
        return False

    def run(self, trace: np.ndarray) -> int:
        """Access every line of *trace*; returns the miss count added."""
        trace = np.asarray(trace, dtype=np.int64)
        before = self.misses
        access = self.access  # bind once; the loop is the hot path
        for line in trace.tolist():
            access(line)
        return self.misses - before

    def contents(self) -> set[int]:
        """The set of resident line ids (for invariant checks)."""
        out: set[int] = set()
        for s in self._sets:
            out.update(s.keys())
        return out


class _Fenwick:
    """Binary indexed tree over positions 0..n-1 supporting point
    updates and suffix sums (used for live-position counting)."""

    __slots__ = ("n", "tree")

    def __init__(self, n: int):
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        tree = self.tree
        n = self.n
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of positions 0..i-1."""
        total = 0
        tree = self.tree
        while i > 0:
            total += int(tree[i])
            i -= i & (-i)
        return total


def stack_distances(trace: np.ndarray) -> np.ndarray:
    """LRU stack distance of every access (``inf`` for cold accesses).

    ``distances[k] = D`` means that between access ``k`` and the
    previous access to the same line, ``D`` *distinct* lines (counting
    this line) were touched; a fully associative LRU cache with
    capacity ``>= D`` hits this access, anything smaller misses it.
    Counting convention: an immediate re-access has distance 1.
    """
    trace = np.asarray(trace, dtype=np.int64)
    n = trace.size
    out = np.full(n, np.inf)
    if n == 0:
        return out
    fen = _Fenwick(n)
    last_pos: dict[int, int] = {}
    for k, line in enumerate(trace.tolist()):
        prev = last_pos.get(line)
        if prev is not None:
            # distinct lines touched in (prev, k) = live markers after prev
            live_after_prev = fen.prefix(k) - fen.prefix(prev + 1)
            out[k] = live_after_prev + 1
            fen.add(prev, -1)
        fen.add(k, 1)
        last_pos[line] = k
    return out


def set_stack_distances(trace: np.ndarray, num_sets: int) -> np.ndarray:
    """Per-set stack distances for a set-indexed cache.

    Splits the trace by ``line % num_sets`` and computes stack
    distances within each set; the result is re-assembled in trace
    order so ``miss_counts_by_ways`` can threshold it directly.
    """
    trace = np.asarray(trace, dtype=np.int64)
    if num_sets <= 0:
        raise ModelError(f"num_sets must be positive, got {num_sets}")
    if num_sets == 1:
        return stack_distances(trace)
    out = np.full(trace.size, np.inf)
    sets = trace % num_sets
    for s in np.unique(sets):
        mask = sets == s
        out[mask] = stack_distances(trace[mask])
    return out


def miss_counts_by_ways(distances: np.ndarray, ways) -> np.ndarray:
    """Miss counts for each associativity in *ways* from one distance pass.

    An access misses a ``W``-way set (or a capacity-``W`` fully
    associative cache) iff its stack distance exceeds ``W``.
    """
    distances = np.asarray(distances, dtype=np.float64)
    ways = np.atleast_1d(np.asarray(ways, dtype=np.int64))
    if np.any(ways <= 0):
        raise ModelError("way counts must be positive")
    # distances > W  <=>  miss; vectorized over both axes.
    return (distances[None, :] > ways[:, None]).sum(axis=1)


def miss_rate_curve(
    trace: np.ndarray,
    capacities_lines,
    *,
    num_sets: int = 1,
    exclude_cold: bool = False,
) -> np.ndarray:
    """Miss rate at each capacity (in lines) via the stack algorithm.

    ``capacities_lines`` are total line counts; with ``num_sets > 1``
    each capacity must be divisible by ``num_sets`` and associativity
    ``capacity / num_sets`` is priced.

    ``exclude_cold=True`` reports the steady-state *capacity* miss
    rate: compulsory (first-touch) accesses are dropped from both the
    numerator and the denominator, i.e. the rate is measured over warm
    accesses only.  A synthetic trace of ~1e5 accesses has a cold-miss
    transient that a real application amortizes over billions of
    accesses; in steady state every access is warm, so the warm-only
    rate is the right estimator (a strided sweep larger than the cache
    then measures exactly 1.0, and the power law of capacity misses is
    exposed without the cold floor).
    """
    trace = np.asarray(trace, dtype=np.int64)
    caps = np.atleast_1d(np.asarray(capacities_lines, dtype=np.int64))
    if np.any(caps <= 0):
        raise ModelError("capacities must be positive")
    if np.any(caps % num_sets != 0):
        raise ModelError("capacities must be divisible by num_sets")
    if trace.size == 0:
        return np.zeros(caps.size)
    distances = set_stack_distances(trace, num_sets)
    if exclude_cold:
        warm = distances[np.isfinite(distances)]
        if warm.size == 0:
            return np.zeros(caps.size)
        misses = miss_counts_by_ways(warm, caps // num_sets)
        return misses / warm.size
    misses = miss_counts_by_ways(distances, caps // num_sets)
    return misses / trace.size
