"""Way-partitioned shared cache (the Intel CAT mechanism).

A :class:`PartitionedCache` splits a shared set-associative LLC into
per-application *way* partitions: application ``i`` owns ``ways_i``
ways of every set and its lines can only occupy (and evict from) those
ways.  This is exactly the exclusivity guarantee the paper's model
assumes — and the simulator demonstrates the key behavioural fact the
model builds on:

* **isolation** — an application's hit/miss sequence in a co-run equals
  its standalone run on a private cache of ``ways_i`` ways
  (:func:`corun_partitioned` asserts this in tests);
* **interference** — without partitioning (:func:`corun_shared`), a
  streaming application can destroy a cache-friendly co-runner's hit
  rate, which is the motivation of Section 1.

Fractional cache allocations ``x_i`` map to way counts with
:func:`ways_from_fractions` (largest-remainder rounding over the
available ways).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import ModelError
from .lru import LRUCache

__all__ = [
    "CorunResult",
    "PartitionedCache",
    "ways_from_fractions",
    "corun_partitioned",
    "corun_shared",
]


@dataclass(frozen=True)
class CorunResult:
    """Per-application outcome of a co-run simulation.

    Attributes
    ----------
    accesses, misses : numpy.ndarray
        Per-application counters.
    miss_rates : numpy.ndarray
        ``misses / accesses`` (0 where an application made no access).
    """

    accesses: np.ndarray
    misses: np.ndarray

    @property
    def miss_rates(self) -> np.ndarray:
        out = np.zeros_like(self.misses, dtype=np.float64)
        nz = self.accesses > 0
        out[nz] = self.misses[nz] / self.accesses[nz]
        return out


class PartitionedCache:
    """A shared set-associative cache with exclusive way partitions.

    Parameters
    ----------
    num_sets : int
        Sets of the shared LLC.
    way_allocation : sequence of int
        ``ways_i`` per application; the total is the LLC associativity.
        Applications with 0 ways bypass the cache (every access misses).
    """

    def __init__(self, num_sets: int, way_allocation):
        ways = np.asarray(way_allocation, dtype=np.int64)
        if ways.ndim != 1 or ways.size == 0:
            raise ModelError("way_allocation must be a non-empty 1-D sequence")
        if np.any(ways < 0):
            raise ModelError("way counts must be >= 0")
        self.num_sets = num_sets
        self.way_allocation = ways
        self._partitions = [
            LRUCache(num_sets, int(w)) if w > 0 else None for w in ways
        ]

    @property
    def total_ways(self) -> int:
        """Associativity of the shared cache."""
        return int(self.way_allocation.sum())

    def access(self, app: int, line: int) -> bool:
        """One access by application *app*; True on hit."""
        part = self._partitions[app]
        if part is None:
            return False
        return part.access(line)

    def app_counters(self) -> tuple[np.ndarray, np.ndarray]:
        """(accesses, misses) per application."""
        n = len(self._partitions)
        acc = np.zeros(n, dtype=np.int64)
        mis = np.zeros(n, dtype=np.int64)
        for i, part in enumerate(self._partitions):
            if part is not None:
                acc[i] = part.accesses
                mis[i] = part.misses
        return acc, mis


def ways_from_fractions(fractions, total_ways: int) -> np.ndarray:
    """Round cache fractions to integer way counts (largest remainder).

    The rounded counts sum to at most ``total_ways`` and each
    application with a nonzero fraction that rounds to zero stays at
    zero — mirroring Eq. 3's "tiny fractions are wasted" observation at
    hardware granularity.
    """
    x = np.asarray(fractions, dtype=np.float64)
    if np.any(x < 0) or x.sum() > 1 + 1e-9:
        raise ModelError("fractions must be >= 0 and sum to <= 1")
    if total_ways <= 0:
        raise ModelError(f"total_ways must be positive, got {total_ways}")
    ideal = x * total_ways
    floor = np.floor(ideal).astype(np.int64)
    leftover = int(round(total_ways * float(x.sum()))) - int(floor.sum())
    if leftover > 0:
        remainders = ideal - floor
        for idx in np.argsort(-remainders)[:leftover]:
            floor[idx] += 1
    return floor


def corun_partitioned(
    streams: list[np.ndarray],
    num_sets: int,
    way_allocation,
) -> CorunResult:
    """Co-run per-application traces on a way-partitioned cache.

    Traces are interleaved round-robin (one access per application per
    round, skipping exhausted traces) — because partitions are
    exclusive, the interleaving order cannot change the per-application
    results, a property the test suite verifies.
    """
    ways = np.asarray(way_allocation, dtype=np.int64)
    if len(streams) != ways.size:
        raise ModelError("need one way count per stream")
    cache = PartitionedCache(num_sets, ways)
    _drive_round_robin(streams, cache.access)
    acc, mis = cache.app_counters()
    # Zero-way applications never enter the cache: count their accesses
    # as all-miss explicitly.
    for i, (s, w) in enumerate(zip(streams, ways)):
        if w == 0:
            acc[i] = len(s)
            mis[i] = len(s)
    return CorunResult(accesses=acc, misses=mis)


def corun_shared(
    streams: list[np.ndarray],
    num_sets: int,
    total_ways: int,
    *,
    tag_bits: int = 20,
) -> CorunResult:
    """Co-run on an *unpartitioned* shared cache (free-for-all LRU).

    Applications compete for every way; the per-application miss rates
    exhibit the interference that cache partitioning removes.  Line ids
    are tagged per application to keep address spaces disjoint.
    """
    if total_ways <= 0:
        raise ModelError(f"total_ways must be positive, got {total_ways}")
    cache = LRUCache(num_sets, total_ways)
    n = len(streams)
    acc = np.zeros(n, dtype=np.int64)
    mis = np.zeros(n, dtype=np.int64)

    def access(app: int, line: int) -> bool:
        tagged = line + (np.int64(app) << tag_bits)
        hit = cache.access(int(tagged))
        acc[app] += 1
        if not hit:
            mis[app] += 1
        return hit

    _drive_round_robin(streams, access)
    return CorunResult(accesses=acc, misses=mis)


def _drive_round_robin(streams: list[np.ndarray], access) -> None:
    iters = [np.asarray(s, dtype=np.int64).tolist() for s in streams]
    longest = max((len(s) for s in iters), default=0)
    for step in range(longest):
        for app, trace in enumerate(iters):
            if step < len(trace):
                access(app, trace[step])
