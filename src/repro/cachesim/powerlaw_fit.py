"""Fitting the power law of cache misses to simulated sweeps.

Given a measured miss-rate curve ``m(C_k)`` (from
:func:`repro.cachesim.lru.miss_rate_curve`), recover the Eq. 1
parameters: the sensitivity ``alpha`` and the baseline rate ``m0`` at a
reference size ``C0``.  In log space the model is affine,

    ``log m = log m0 + alpha * (log C0 - log C)``,

so a least-squares line on the *unsaturated* points (``m < 1`` — where
the ``min`` of Eq. 1 is inactive — and ``m > 0``) does it.  The fit
quality ``r2`` tells the caller whether the workload actually follows
a power law (streaming workloads do not; Zipf-like ones do).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..types import ModelError

__all__ = ["PowerLawFit", "fit_power_law"]


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a power-law regression.

    Attributes
    ----------
    m0 : float
        Fitted miss rate at the reference size ``c0``.
    alpha : float
        Fitted sensitivity (positive: bigger cache, fewer misses).
    c0 : float
        Reference cache size (bytes or lines — caller's unit).
    r2 : float
        Coefficient of determination in log space.
    points_used : int
        Number of unsaturated samples used.
    """

    m0: float
    alpha: float
    c0: float
    r2: float
    points_used: int

    def predict(self, cache_sizes) -> np.ndarray:
        """Eq. 1 at the fitted parameters."""
        c = np.asarray(cache_sizes, dtype=np.float64)
        return np.minimum(1.0, self.m0 * (self.c0 / c) ** self.alpha)


def fit_power_law(
    cache_sizes,
    miss_rates,
    *,
    c0: float | None = None,
    saturation: float = 0.999,
    floor: float = 1e-12,
) -> PowerLawFit:
    """Least-squares fit of Eq. 1 on the unsaturated part of a sweep.

    Parameters
    ----------
    cache_sizes : array_like
        Cache sizes (any consistent unit), strictly positive.
    miss_rates : array_like
        Measured miss rates in [0, 1], same length.
    c0 : float, optional
        Reference size for ``m0``; defaults to the largest size.
    saturation : float
        Points with miss rate >= this are considered saturated (the
        ``min(1, .)`` branch) and excluded.
    floor : float
        Points with miss rate <= this are excluded (log-domain).

    Raises
    ------
    ModelError
        If fewer than two unsaturated points remain.
    """
    sizes = np.asarray(cache_sizes, dtype=np.float64)
    rates = np.asarray(miss_rates, dtype=np.float64)
    if sizes.shape != rates.shape or sizes.ndim != 1:
        raise ModelError("cache_sizes and miss_rates must be equal-length 1-D arrays")
    if np.any(sizes <= 0):
        raise ModelError("cache sizes must be positive")
    if np.any((rates < 0) | (rates > 1)):
        raise ModelError("miss rates must lie in [0, 1]")
    if c0 is None:
        c0 = float(sizes.max())

    usable = (rates < saturation) & (rates > floor)
    if usable.sum() < 2:
        raise ModelError(
            f"need at least 2 unsaturated points to fit, got {int(usable.sum())}"
        )
    x = np.log(c0 / sizes[usable])
    y = np.log(rates[usable])
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(
        m0=float(np.exp(intercept)),
        alpha=float(slope),
        c0=float(c0),
        r2=r2,
        points_used=int(usable.sum()),
    )
