"""Trace-driven application profiling (the PEBIL substitute).

The paper obtained Table 2 by instrumenting the NPB binaries with PEBIL
and simulating their memory streams.  Offline, this module closes the
same loop against :mod:`repro.cachesim`: given a synthetic trace and
the computational intensity of the kernel it represents, measure the
miss-rate curve, fit the power law, and emit a ready-to-schedule
:class:`~repro.core.application.Application`.

The pipeline is

1. generate (or supply) a cache-line trace;
2. :func:`measure_miss_curve` — miss rates across a geometric sweep of
   cache sizes via one Mattson stack pass;
3. :func:`repro.cachesim.powerlaw_fit.fit_power_law` — recover
   ``(m0, alpha)`` at the 40 MB reference the paper uses;
4. :func:`profile_application` — package everything with the operation
   count and access frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.application import BASELINE_CACHE_BYTES, Application
from ..types import ModelError
from .address_stream import LINE_BYTES
from .lru import miss_rate_curve
from .powerlaw_fit import PowerLawFit, fit_power_law

__all__ = ["MissCurve", "measure_miss_curve", "profile_application"]


@dataclass(frozen=True)
class MissCurve:
    """A measured miss-rate-vs-cache-size curve.

    Attributes
    ----------
    cache_bytes : numpy.ndarray
        Cache sizes, bytes.
    miss_rates : numpy.ndarray
        Measured miss rate at each size.
    line_bytes : int
        Line size used for the conversion.
    accesses : int
        Trace length the rates were measured over.
    """

    cache_bytes: np.ndarray
    miss_rates: np.ndarray
    line_bytes: int
    accesses: int

    def fit(self, *, c0: float = BASELINE_CACHE_BYTES) -> PowerLawFit:
        """Power-law fit of this curve at reference size *c0* (bytes)."""
        return fit_power_law(self.cache_bytes, self.miss_rates, c0=c0)


def measure_miss_curve(
    trace: np.ndarray,
    cache_bytes,
    *,
    line_bytes: int = LINE_BYTES,
    num_sets: int = 1,
    exclude_cold: bool = False,
) -> MissCurve:
    """Miss rates of *trace* across the given cache sizes (bytes).

    Sizes are floored to whole multiples of ``line_bytes * num_sets``;
    one stack-distance pass prices all of them.  ``exclude_cold``
    drops compulsory misses (see
    :func:`repro.cachesim.lru.miss_rate_curve`).
    """
    trace = np.asarray(trace, dtype=np.int64)
    sizes = np.atleast_1d(np.asarray(cache_bytes, dtype=np.float64))
    if np.any(sizes < line_bytes * num_sets):
        raise ModelError("cache sizes must hold at least one line per set")
    lines = (sizes / line_bytes).astype(np.int64)
    lines -= lines % num_sets  # per-set associativity must be integral
    rates = miss_rate_curve(trace, lines, num_sets=num_sets, exclude_cold=exclude_cold)
    return MissCurve(
        cache_bytes=lines.astype(np.float64) * line_bytes,
        miss_rates=np.asarray(rates, dtype=np.float64),
        line_bytes=line_bytes,
        accesses=int(trace.size),
    )


def profile_application(
    name: str,
    trace: np.ndarray,
    *,
    work: float,
    operations_per_access: float = 1.0,
    cache_bytes=None,
    line_bytes: int = LINE_BYTES,
    num_sets: int = 1,
    seq_fraction: float = 0.0,
    baseline_cache: float = BASELINE_CACHE_BYTES,
    exclude_cold: bool = False,
) -> tuple[Application, MissCurve, PowerLawFit]:
    """Derive a schedulable application from a memory trace.

    Parameters
    ----------
    name : str
        Application label.
    trace : numpy.ndarray
        Cache-line access trace.
    work : float
        Total computing operations of the kernel the trace represents.
    operations_per_access : float
        Compute intensity; the access frequency is its inverse,
        ``f = 1 / operations_per_access``.
    cache_bytes : array_like, optional
        Sweep sizes; defaults to a geometric sweep from 64 KiB to twice
        the paper's 40 MB baseline.
    line_bytes, num_sets
        Cache geometry for the measurement.
    seq_fraction : float
        Amdahl fraction to stamp on the application.
    baseline_cache : float
        Reference size ``C0`` for the fitted ``m0``.

    Returns
    -------
    (Application, MissCurve, PowerLawFit)
        The application (with fitted ``m0`` at ``C0``), the raw curve,
        and the fit (including ``alpha`` and ``r2`` so callers can
        reject workloads that are not power-law shaped).
    """
    if work <= 0:
        raise ModelError(f"work must be positive, got {work}")
    if operations_per_access <= 0:
        raise ModelError(
            f"operations_per_access must be positive, got {operations_per_access}"
        )
    if cache_bytes is None:
        cache_bytes = np.geomspace(64 * 1024, 2 * baseline_cache, 16)
    curve = measure_miss_curve(
        trace, cache_bytes, line_bytes=line_bytes, num_sets=num_sets,
        exclude_cold=exclude_cold,
    )
    try:
        fit = curve.fit(c0=baseline_cache)
    except ModelError:
        # Step-shaped curves (e.g. pure streaming sweeps: all-miss below
        # the footprint, all-hit above) have no power-law segment to fit.
        # Fall back to a flat model pinned at the measured rate nearest
        # C0 - exactly what Eq. 1 degenerates to with alpha -> 0.
        idx = int(np.argmin(np.abs(curve.cache_bytes - baseline_cache)))
        fit = PowerLawFit(
            m0=float(curve.miss_rates[idx]),
            alpha=0.0,
            c0=baseline_cache,
            r2=0.0,
            points_used=0,
        )
    trace_arr = np.asarray(trace, dtype=np.int64)
    footprint_bytes = float(np.unique(trace_arr).size * line_bytes)
    app = Application(
        name=name,
        work=work,
        seq_fraction=seq_fraction,
        access_freq=1.0 / operations_per_access,
        miss_rate=min(1.0, fit.m0),
        footprint=footprint_bytes,
        baseline_cache=baseline_cache,
    )
    return app, curve, fit
