"""Utility-based cache partitioning (UCP) — Qureshi & Patt, MICRO'06.

The paper cites UCP ([24]) as the classic *dynamic* partitioning
mechanism; implementing it gives a second, measurement-driven
allocator to compare against the closed-form Theorem-3 fractions:

* a **utility curve** per application: ``misses(w)`` for ``w`` ways —
  obtainable exactly from one stack-distance pass
  (:func:`utility_from_stack_distances`), which is precisely the UMON
  shadow-tag mechanism of the original paper, idealized;
* the **lookahead** allocation algorithm: repeatedly grant the block
  of ways with the highest marginal utility per way, which handles the
  non-convex utility curves that defeat plain greedy.

:func:`ucp_allocate` works on any curves (measured or model-derived);
:mod:`repro.extensions.granularity` uses it with Eq. 2 model curves to
price the cost of discrete hardware ways vs the paper's continuous
fractions.
"""

from __future__ import annotations

import numpy as np

from ..types import ModelError
from .lru import miss_counts_by_ways, stack_distances

__all__ = ["utility_from_stack_distances", "ucp_allocate", "total_utility"]


def utility_from_stack_distances(trace, max_ways: int, *, num_sets: int = 1) -> np.ndarray:
    """Misses of *trace* for every way count ``0..max_ways``.

    Index ``w`` of the result is the miss count with ``w`` ways (0 ways
    = every access misses).  One stack pass prices all sizes — the
    idealized UMON monitor.
    """
    trace = np.asarray(trace, dtype=np.int64)
    if max_ways < 1:
        raise ModelError(f"max_ways must be >= 1, got {max_ways}")
    if num_sets != 1:
        from .lru import set_stack_distances

        distances = set_stack_distances(trace, num_sets)
    else:
        distances = stack_distances(trace)
    counts = miss_counts_by_ways(distances, np.arange(1, max_ways + 1))
    return np.concatenate(([trace.size], counts)).astype(np.float64)


def ucp_allocate(
    utility_curves,
    total_ways: int,
    *,
    min_ways: int = 0,
    max_lookahead: int | None = None,
) -> np.ndarray:
    """Partition *total_ways* among applications (UCP lookahead).

    Parameters
    ----------
    utility_curves : sequence of array_like
        ``curves[i][w]`` = cost (e.g. misses, or model time) of
        application ``i`` when holding ``w`` ways, for
        ``w = 0..W_i``; curves must be non-increasing in ``w``.  Apps
        may have different lengths (capped at their footprint).
    total_ways : int
        Ways available.
    min_ways : int
        Minimum ways granted to every application first (UCP uses 1 so
        nobody starves; 0 matches the paper's "no cache for some apps"
        regime).
    max_lookahead : int, optional
        Cap on the lookahead window (default: unlimited — the full
        remaining budget, the original algorithm).

    Returns
    -------
    numpy.ndarray
        Integer ways per application, summing to <= total_ways (less
        only when every application is saturated).
    """
    curves = [np.asarray(c, dtype=np.float64) for c in utility_curves]
    n = len(curves)
    if n == 0:
        raise ModelError("need at least one utility curve")
    for i, c in enumerate(curves):
        if c.ndim != 1 or c.size < 1:
            raise ModelError(f"curve {i} must be a non-empty 1-D array")
        if np.any(np.diff(c) > 1e-9 * max(1.0, abs(c[0]))):
            raise ModelError(f"curve {i} must be non-increasing in ways")
    if total_ways < n * min_ways:
        raise ModelError(
            f"total_ways={total_ways} cannot grant min_ways={min_ways} to {n} apps"
        )

    alloc = np.full(n, min_ways, dtype=np.int64)
    for i, c in enumerate(curves):
        alloc[i] = min(alloc[i], c.size - 1)
    budget = total_ways - int(alloc.sum())

    while budget > 0:
        best_gain_per_way = 0.0
        best_app = -1
        best_block = 0
        for i, c in enumerate(curves):
            have = int(alloc[i])
            room = min(c.size - 1 - have,
                       budget if max_lookahead is None else min(budget, max_lookahead))
            if room <= 0:
                continue
            # marginal utility of granting `b` more ways, per way
            gains = (c[have] - c[have + 1: have + room + 1]) / np.arange(1, room + 1)
            b = int(np.argmax(gains))
            if gains[b] > best_gain_per_way:
                best_gain_per_way = float(gains[b])
                best_app = i
                best_block = b + 1
        if best_app < 0:
            break  # everyone saturated; leftover ways are worthless
        alloc[best_app] += best_block
        budget -= best_block
    return alloc


def total_utility(utility_curves, allocation) -> float:
    """Total cost of an integer allocation under the given curves."""
    curves = [np.asarray(c, dtype=np.float64) for c in utility_curves]
    alloc = np.asarray(allocation, dtype=np.int64)
    if len(curves) != alloc.size:
        raise ModelError("allocation length must match the number of curves")
    total = 0.0
    for c, w in zip(curves, alloc):
        if w < 0:
            raise ModelError("allocations must be >= 0")
        total += float(c[min(int(w), c.size - 1)])
    return total
