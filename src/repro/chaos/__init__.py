"""Deterministic fault injection & elastic platforms (ROADMAP item 5).

The paper's platform never changes and its applications never fail;
this subsystem opens that axis on top of the shared event kernel:

* :mod:`repro.chaos.faults` — declarative, seedable fault sources
  (processor churn, crash/restart, preemption, priority classes) and
  the ``--faults`` spec grammar;
* :mod:`repro.chaos.injector` — :class:`FaultInjector`, threading a
  compiled stream through the kernel's allocate/timeline seams;
* :mod:`repro.chaos.probes` — fixed-cadence metric scraping into a
  typed timeline next to the event log;
* :mod:`repro.chaos.invariants` — the behavioral contract (work
  conservation, pool ceiling, no-starvation floor, completion);
* :mod:`repro.chaos.runner` — :func:`run_chaos`, the one-call front
  door every policy, the CLI, the experiment grids, and the resilience
  benchmark share.
"""

from .faults import (
    FAULT_KINDS,
    CompiledFaults,
    CrashRestart,
    FaultEvent,
    FaultSpec,
    Preemption,
    PriorityClasses,
    ProcessorChurn,
    parse_fault_spec,
)
from .injector import FaultInjector, inject_queue, pool_at, pool_trajectory
from .invariants import InvariantReport, check_invariants
from .probes import PROBE_COLUMNS, ProbeSample, ProbeTimeline
from .runner import ChaosResult, estimate_horizon, run_chaos

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "CompiledFaults",
    "FaultSpec",
    "ProcessorChurn",
    "CrashRestart",
    "Preemption",
    "PriorityClasses",
    "parse_fault_spec",
    "FaultInjector",
    "inject_queue",
    "pool_at",
    "pool_trajectory",
    "InvariantReport",
    "check_invariants",
    "ProbeSample",
    "ProbeTimeline",
    "PROBE_COLUMNS",
    "ChaosResult",
    "estimate_horizon",
    "run_chaos",
]
