"""Declarative, seedable fault sources.

The paper's platform is frozen: ``p`` processors from the first instant
to the last, applications that never fail, no tenant ever preempted.
This module opens that axis.  A *fault source* is a frozen dataclass
describing one class of disturbance; compiling a
:class:`FaultSpec` (a bundle of sources) against a workload size, a
processor count, a time horizon, and a seeded generator yields a
:class:`CompiledFaults` — a time-sorted tuple of :class:`FaultEvent`
records plus the static multi-tenant class assignment.  Compilation is
a pure function of ``(spec, n, p, horizon, rng)``: every policy
evaluated at the same experiment cell faces the **identical** fault
stream, the same per-cell RNG discipline
:mod:`repro.experiments.online` uses for arrival streams.

Sources and their spec grammar (parsed by :func:`parse_fault_spec`;
sources combine with ``+``):

``churn:period=P[,drop=D,min=F,max=G,start=S]``
    :class:`ProcessorChurn` — every *P* time units the pool gains or
    loses (seeded coin flip) a *D* fraction of its current size,
    clamped to ``[F * p, G * p]``.  Compilation simulates the pool
    trajectory, so events carry absolute processor deltas.
``crash:hazard=H,delay=R[,lost=L,start=S]``
    :class:`CrashRestart` — per-application Poisson crash candidates
    with rate *H* (crashes per time unit).  A candidate striking an
    application that is not running is a no-op.  A crash destroys an
    *L* fraction (default 1.0) of the work completed so far and takes
    the application down for *R* time units before it restarts.
``preempt:period=P,duration=D[,victims=K,start=S]``
    :class:`Preemption` — every *P* time units, *K* seeded victim
    applications are suspended for *D* time units (a higher-priority
    tenant borrowing their processors).
``classes:count=K[,share=S]``
    :class:`PriorityClasses` — seeded assignment of each application
    to one of *K* priority classes (0 is foreground).  Whenever
    foreground and background applications are runnable together, the
    background classes are collectively capped at an *S* fraction of
    the instantaneous pool — and guaranteed that floor, which is the
    no-starvation bound the invariant suite checks.

Every source also works alone; ``none`` parses to an empty spec (the
paper's fault-free platform).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..simulate.kernel import EVENT_KINDS
from ..types import ModelError

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "CompiledFaults",
    "FaultSpec",
    "ProcessorChurn",
    "CrashRestart",
    "Preemption",
    "PriorityClasses",
    "parse_fault_spec",
]

#: Spec prefixes understood by :func:`parse_fault_spec`.
FAULT_KINDS: tuple[str, ...] = ("churn", "crash", "preempt", "classes")

#: Event kinds a compiled fault stream may carry (all registered with
#: the kernel's event log).
_TIMED_KINDS: tuple[str, ...] = ("proc_join", "proc_leave", "crash", "preempt")


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One timed fault, compiled and ready for injection.

    Attributes
    ----------
    time : float
        Injection instant.
    kind : str
        ``proc_join`` / ``proc_leave`` (platform churn), ``crash``, or
        ``preempt``.
    target : int
        Application index, or ``-1`` for platform-wide events.
    magnitude : float
        Processor delta for churn events, outage duration for a crash
        (the restart delay) and for a preemption (the slice length).
    aux : float
        Second parameter where one is needed: the lost-work fraction
        of a crash.
    """

    time: float
    kind: str
    target: int = -1
    magnitude: float = 0.0
    aux: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _TIMED_KINDS:
            raise ModelError(
                f"unknown fault event kind {self.kind!r}; known: {_TIMED_KINDS}")
        if not (self.time >= 0 and math.isfinite(self.time)):
            raise ModelError(f"fault time must be finite and >= 0, got {self.time}")


def _sort_events(events: list[FaultEvent]) -> tuple[FaultEvent, ...]:
    """Deterministic chronological order (ties: kernel kind order, target)."""
    return tuple(sorted(
        events,
        key=lambda e: (e.time, EVENT_KINDS.index(e.kind), e.target),
    ))


@dataclass(frozen=True)
class CompiledFaults:
    """A fault stream pinned to one ``(n, p, horizon, rng)`` scenario.

    Attributes
    ----------
    events : tuple[FaultEvent, ...]
        Time-sorted timed faults.
    classes : numpy.ndarray or None
        Per-application priority class (0 = foreground), or ``None``
        when the spec carries no :class:`PriorityClasses` source.
    low_share : float
        Pool fraction the background classes are collectively capped
        at — and guaranteed — while foreground work is runnable.
    horizon : float
        The horizon events were drawn over; faults beyond it do not
        exist (the platform calms down).
    """

    events: tuple[FaultEvent, ...] = ()
    classes: np.ndarray | None = None
    low_share: float = 0.0
    horizon: float = 0.0


def _positive(name: str, value: float) -> float:
    if not (value > 0 and math.isfinite(value)):
        raise ModelError(f"{name} must be positive and finite, got {value}")
    return float(value)


def _fraction(name: str, value: float, *, closed_low: bool = False) -> float:
    lo_ok = value >= 0 if closed_low else value > 0
    if not (lo_ok and value <= 1):
        bound = "[0, 1]" if closed_low else "(0, 1]"
        raise ModelError(f"{name} must lie in {bound}, got {value}")
    return float(value)


@dataclass(frozen=True)
class ProcessorChurn:
    """Processors leaving and (re)joining the platform mid-run.

    Every *period* time units from *start* (default: one period in) the
    pool moves: a seeded coin picks the direction, and the pool loses
    or gains a *drop* fraction of its current size, clamped to
    ``[min_frac * p, max_frac * p]``.  A move that the clamp would
    reduce to nothing flips direction, so a pool sitting at its floor
    churns back up instead of idling.
    """

    period: float
    drop: float = 0.25
    min_frac: float = 0.25
    max_frac: float = 1.0
    start: float | None = None

    def __post_init__(self) -> None:
        _positive("churn period", self.period)
        _fraction("churn drop", self.drop)
        _fraction("churn min", self.min_frac)
        if not (self.max_frac >= self.min_frac and math.isfinite(self.max_frac)):
            raise ModelError(
                f"churn max must be finite and >= min ({self.min_frac}), "
                f"got {self.max_frac}")
        if self.start is not None and not (self.start >= 0 and math.isfinite(self.start)):
            raise ModelError(f"churn start must be finite and >= 0, got {self.start}")

    def events(self, n: int, p: float, horizon: float,
               rng: np.random.Generator) -> list[FaultEvent]:
        out: list[FaultEvent] = []
        pool = float(p)
        floor, ceil = self.min_frac * p, self.max_frac * p
        t = self.period if self.start is None else self.start
        while t < horizon:
            leave = bool(rng.random() < 0.5)
            step = self.drop * pool
            if leave:
                delta = min(step, pool - floor)
                if delta <= 0.0:
                    leave, delta = False, min(step, ceil - pool)
            else:
                delta = min(step, ceil - pool)
                if delta <= 0.0:
                    leave, delta = True, min(step, pool - floor)
            if delta > 0.0:
                pool += -delta if leave else delta
                out.append(FaultEvent(
                    time=t,
                    kind="proc_leave" if leave else "proc_join",
                    magnitude=delta,
                ))
            t += self.period
        return out


@dataclass(frozen=True)
class CrashRestart:
    """Per-application crash hazard with restart delay and lost work.

    Crash candidates are a per-application Poisson process with rate
    *hazard* drawn over the horizon at compile time (application order,
    so the stream is independent of anything the policies do).  At
    injection, a candidate striking an application that is not
    currently running is dropped; otherwise the application loses a
    *lost* fraction of the work it had completed (parallel-phase
    progress is rolled back before sequential-phase progress — the most
    recent work is the least likely to have been checkpointed) and
    stalls for *delay* time units before restarting.
    """

    hazard: float
    delay: float
    lost: float = 1.0
    start: float = 0.0

    def __post_init__(self) -> None:
        _positive("crash hazard", self.hazard)
        _positive("crash delay", self.delay)
        _fraction("crash lost", self.lost, closed_low=True)
        if not (self.start >= 0 and math.isfinite(self.start)):
            raise ModelError(f"crash start must be finite and >= 0, got {self.start}")

    def events(self, n: int, p: float, horizon: float,
               rng: np.random.Generator) -> list[FaultEvent]:
        out: list[FaultEvent] = []
        for i in range(n):
            t = self.start
            while True:
                t += rng.exponential(1.0 / self.hazard)
                if t >= horizon:
                    break
                out.append(FaultEvent(
                    time=t, kind="crash", target=i,
                    magnitude=self.delay, aux=self.lost,
                ))
        return out


@dataclass(frozen=True)
class Preemption:
    """Periodic preemption slices against seeded victim applications.

    Every *period* time units from *start* (default: one period in),
    *victims* distinct applications — drawn at compile time, so every
    policy faces the same victims — are suspended for *duration* time
    units.  A slice hitting an application that is not running is a
    no-op; overlapping outages extend, never shorten.
    """

    period: float
    duration: float
    victims: int = 1
    start: float | None = None

    def __post_init__(self) -> None:
        _positive("preempt period", self.period)
        _positive("preempt duration", self.duration)
        if self.victims < 1:
            raise ModelError(f"preempt victims must be >= 1, got {self.victims}")
        if self.start is not None and not (self.start >= 0 and math.isfinite(self.start)):
            raise ModelError(f"preempt start must be finite and >= 0, got {self.start}")

    def events(self, n: int, p: float, horizon: float,
               rng: np.random.Generator) -> list[FaultEvent]:
        out: list[FaultEvent] = []
        t = self.period if self.start is None else self.start
        k = min(self.victims, n)
        while t < horizon:
            for i in rng.choice(n, size=k, replace=False):
                out.append(FaultEvent(
                    time=t, kind="preempt", target=int(i),
                    magnitude=self.duration,
                ))
            t += self.period
        return out


@dataclass(frozen=True)
class PriorityClasses:
    """Multi-tenant priority classes with background demotion.

    Applications are assigned (seeded, at compile time) to one of
    *count* classes; class 0 is the foreground tenant.  Whenever
    foreground and background applications are runnable at the same
    instant, the background classes collectively hold exactly a
    *share* fraction of the instantaneous pool — a cap (foreground
    latency is protected) that is simultaneously a floor (background
    work cannot be starved below it), which is the bound the
    no-starvation invariant checks.
    """

    count: int = 2
    share: float = 0.25

    def __post_init__(self) -> None:
        if self.count < 2:
            raise ModelError(f"classes count must be >= 2, got {self.count}")
        if not (0.0 < self.share < 1.0):
            raise ModelError(f"classes share must lie in (0, 1), got {self.share}")

    def events(self, n: int, p: float, horizon: float,
               rng: np.random.Generator) -> list[FaultEvent]:
        return []

    def assign(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, self.count, size=n)


#: Anything compilable into fault events.
FaultSource = ProcessorChurn | CrashRestart | Preemption | PriorityClasses


@dataclass(frozen=True)
class FaultSpec:
    """A bundle of fault sources, compiled together against one scenario."""

    sources: tuple[FaultSource, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        n_classes = sum(isinstance(s, PriorityClasses) for s in self.sources)
        if n_classes > 1:
            raise ModelError(
                "a fault spec may carry at most one classes: source, "
                f"got {n_classes}")

    @property
    def empty(self) -> bool:
        return not self.sources

    def compile(self, n: int, p: float, horizon: float,
                rng: np.random.Generator) -> CompiledFaults:
        """Draw the concrete fault stream for one scenario.

        Sources consume *rng* in declaration order, so the compiled
        stream is a pure function of ``(spec, n, p, horizon, rng
        state)`` — byte-identical for the same fault seed wherever it
        is evaluated.
        """
        if n < 1:
            raise ModelError(f"need at least one application, got n={n}")
        _positive("fault horizon", horizon)
        events: list[FaultEvent] = []
        classes: np.ndarray | None = None
        low_share = 0.0
        for source in self.sources:
            events.extend(source.events(n, p, horizon, rng))
            if isinstance(source, PriorityClasses):
                classes = source.assign(n, rng)
                low_share = source.share
        return CompiledFaults(
            events=_sort_events(events),
            classes=classes,
            low_share=low_share,
            horizon=float(horizon),
        )


_SPEC_EXAMPLES = (
    "none, churn:period=P[,drop=D,min=F,max=G,start=S], "
    "crash:hazard=H,delay=R[,lost=L,start=S], "
    "preempt:period=P,duration=D[,victims=K,start=S], "
    "classes:count=K[,share=S] — combined with '+'"
)


def _parse_kv(body: str, spec: str, allowed: dict[str, float]) -> dict[str, float]:
    """Parse ``key=value`` float pairs, seeded with *allowed* defaults."""
    out = dict(allowed)
    if not body:
        return out
    for item in body.split(","):
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or key not in allowed:
            raise ModelError(
                f"bad fault spec {spec!r}: unknown or malformed field {item!r} "
                f"(known: {', '.join(allowed)})"
            )
        try:
            out[key] = float(value)
        except ValueError:
            raise ModelError(
                f"bad fault spec {spec!r}: {key} needs a number, got {value!r}"
            ) from None
    return out


def _require(fields: dict[str, float], spec: str, *names: str) -> None:
    for name in names:
        if math.isnan(fields[name]):
            raise ModelError(f"bad fault spec {spec!r}: {name}= is required")


def parse_fault_spec(spec: str) -> FaultSpec:
    """Turn a CLI fault spec string into a :class:`FaultSpec`.

    Examples::

        none
        churn:period=2e8,drop=0.25
        crash:hazard=4e-9,delay=5e7,lost=1
        churn:period=2e8+crash:hazard=4e-9,delay=5e7+classes:count=2,share=0.2
    """
    text = spec.strip()
    if text.lower() in ("", "none"):
        return FaultSpec()
    sources: list[FaultSource] = []
    for segment in text.split("+"):
        kind, _, body = segment.strip().partition(":")
        kind = kind.lower()
        if kind == "churn":
            f = _parse_kv(body, spec, {"period": math.nan, "drop": 0.25,
                                       "min": 0.25, "max": 1.0,
                                       "start": math.nan})
            _require(f, spec, "period")
            sources.append(ProcessorChurn(
                period=f["period"], drop=f["drop"], min_frac=f["min"],
                max_frac=f["max"],
                start=None if math.isnan(f["start"]) else f["start"],
            ))
        elif kind == "crash":
            f = _parse_kv(body, spec, {"hazard": math.nan, "delay": math.nan,
                                       "lost": 1.0, "start": 0.0})
            _require(f, spec, "hazard", "delay")
            sources.append(CrashRestart(
                hazard=f["hazard"], delay=f["delay"], lost=f["lost"],
                start=f["start"],
            ))
        elif kind == "preempt":
            f = _parse_kv(body, spec, {"period": math.nan, "duration": math.nan,
                                       "victims": 1.0, "start": math.nan})
            _require(f, spec, "period", "duration")
            victims = int(f["victims"])
            if victims != f["victims"]:
                raise ModelError(
                    f"bad fault spec {spec!r}: victims must be an integer, "
                    f"got {f['victims']}")
            sources.append(Preemption(
                period=f["period"], duration=f["duration"], victims=victims,
                start=None if math.isnan(f["start"]) else f["start"],
            ))
        elif kind == "classes":
            f = _parse_kv(body, spec, {"count": 2.0, "share": 0.25})
            count = int(f["count"])
            if count != f["count"]:
                raise ModelError(
                    f"bad fault spec {spec!r}: count must be an integer, "
                    f"got {f['count']}")
            sources.append(PriorityClasses(count=count, share=f["share"]))
        else:
            raise ModelError(
                f"unknown fault spec {segment.strip()!r}; expected one of: "
                f"{_SPEC_EXAMPLES}"
            )
    return FaultSpec(sources=tuple(sources))
