"""Threading compiled fault streams through the event kernel.

The kernel (:func:`repro.simulate.kernel.run_phase_kernel`) was built
with three seams — the ``allocate`` hook (invoked at every event with
the active set and the *live* remaining-work arrays), the arrival
admission path, and the exogenous ``timeline`` hook.
:class:`FaultInjector` drives all of it through those seams, without
forking the kernel:

* the **timeline** hook reports the next fault instant, pending
  restart/resume, or probe tick, so the kernel never steps across one
  while work is in flight and the injector observes every fault at
  (within tolerance of) its own timestamp;
* the **allocate** hook applies every due fault in chronological
  order, then delegates to the wrapped policy allocator
  (:func:`repro.online.make_policy_allocator`) over the applications
  that are both active and *up*, rescales the decision to the
  instantaneous pool, and enforces the multi-tenant class cap;
* **crashed work is re-queued in place**: the kernel hands ``allocate``
  references to its internal ``seq_left`` / ``par_left`` arrays, so
  restoring lost operations is two in-place additions — the kernel's
  own phase logic takes it from there.

Idle gaps are the one place the kernel's clock jumps without calling
``allocate`` (straight to the next arrival).  Fault events falling
inside such a gap are applied *lazily* at the next allocation — in
time order, logged at their own timestamps — which is observationally
equivalent: nothing was running, so nothing could crash, be preempted,
or use the processors that left.

The absolute-time queue kernel is covered by :func:`inject_queue`,
which replays platform churn against
:func:`repro.simulate.kernel.run_queue_kernel` by scaling each batch's
service time by the pool available at its arrival.
"""

from __future__ import annotations

import numpy as np

from ..core.application import Workload
from ..core.platform import Platform
from ..simulate.kernel import (
    EventLog,
    QueueKernelResult,
    at_or_before,
    run_queue_kernel,
)
from ..types import ModelError
from .faults import CompiledFaults
from .probes import ProbeSample, ProbeTimeline

__all__ = [
    "FaultInjector",
    "pool_at",
    "pool_trajectory",
    "inject_queue",
]


def pool_trajectory(compiled: CompiledFaults, p: float) -> list[tuple[float, float]]:
    """Stepwise ``(time, pool size)`` trajectory of a compiled stream.

    Starts at ``(0.0, p)``; each churn event appends the post-event
    pool, which holds until the next entry.
    """
    timeline = [(0.0, float(p))]
    pool = float(p)
    for ev in compiled.events:
        if ev.kind == "proc_join":
            pool += ev.magnitude
        elif ev.kind == "proc_leave":
            pool -= ev.magnitude
        else:
            continue
        timeline.append((ev.time, pool))
    return timeline


def pool_at(timeline: list[tuple[float, float]], t: float) -> float:
    """Pool size at instant *t* under a stepwise trajectory."""
    pool = timeline[0][1]
    for time, size in timeline:
        if at_or_before(time, t):
            pool = size
        else:
            break
    return pool


class FaultInjector:
    """Inject a compiled fault stream into a phase-kernel run.

    Wire-up (what :func:`repro.chaos.run_chaos` does)::

        log = EventLog()
        allocate = make_policy_allocator(workload, platform, policy, ...)
        injector = FaultInjector(workload, platform, compiled,
                                 allocate=allocate, log=log,
                                 arrivals=arrivals, probe=probe)
        result = run_phase_kernel(..., allocate=injector.allocate,
                                  timeline=injector.timeline, log=log)
        injector.finalize(result.now)

    Parameters
    ----------
    workload, platform : the scenario under test.
    compiled : CompiledFaults
        The fault stream (see :meth:`repro.chaos.FaultSpec.compile`).
    allocate : AllocateFn
        The wrapped policy allocator; it sees only the applications
        that are active *and* up, against the nominal platform — the
        injector rescales its decision to the instantaneous pool.
    log : EventLog
        Shared log; fault events are recorded at their own timestamps,
        interleaved chronologically with the kernel's events.  Pass
        the same object to the kernel.
    arrivals : numpy.ndarray, optional
        Arrival instants (zeros by default); probes use them for
        per-class latency.
    probe : ProbeTimeline, optional
        Cadence scraper; ticks become timeline breakpoints, so while
        work is in flight every sample lands at its exact tick time.

    Attributes
    ----------
    pool : float
        Instantaneous processor pool.
    pool_timeline : list[tuple[float, float]]
        Stepwise pool history, starting ``(0.0, platform.p)``.
    crashes, preemptions : int
        Faults that actually struck a running application.
    dropped_faults : int
        Crash/preempt candidates that hit an idle, finished, or
        already-down application (no-ops by construction).
    lost_work : float
        Total operations destroyed by crashes and re-queued.
    """

    def __init__(
        self,
        workload: Workload,
        platform: Platform,
        compiled: CompiledFaults,
        *,
        allocate,
        log: EventLog,
        arrivals: np.ndarray | None = None,
        probe: ProbeTimeline | None = None,
    ) -> None:
        n = workload.n
        self._platform = platform
        self._compiled = compiled
        self._base = allocate
        self._log = log
        self._probe = probe
        self._arrivals = (np.zeros(n) if arrivals is None
                          else np.asarray(arrivals, dtype=np.float64))
        self._init_seq = workload.seq * workload.work
        self._init_par = (1.0 - workload.seq) * workload.work
        self._classes = (None if compiled.classes is None
                         else np.asarray(compiled.classes))
        self._n_classes = (1 if self._classes is None
                           else int(self._classes.max()) + 1)
        self._cursor = 0
        self._down_until = np.zeros(n)
        self._restart_at = np.full(n, np.inf)
        self._finish_time = np.full(n, np.nan)
        self._log_cursor = 0

        self.pool = float(platform.p)
        self.pool_timeline: list[tuple[float, float]] = [(0.0, self.pool)]
        self.crashes = 0
        self.preemptions = 0
        self.dropped_faults = 0
        self.lost_work = 0.0

    # -- kernel hooks ---------------------------------------------------

    def timeline(self, now: float) -> float:
        """Next exogenous instant: fault event, restart/resume, probe tick."""
        nxt = np.inf
        if self._cursor < len(self._compiled.events):
            nxt = self._compiled.events[self._cursor].time
        pending = self._down_until[~at_or_before(self._down_until, now)]
        if pending.size:
            nxt = min(nxt, float(pending.min()))
        if self._probe is not None:
            nxt = min(nxt, self._probe.next_tick())
        return nxt

    def allocate(self, now, active, seq_left, par_left):
        """The kernel's reallocation hook, fault-aware."""
        self._harvest_finishes()
        self._apply_due(now, active, seq_left, par_left)

        up = at_or_before(self._down_until, now)
        available = active & up

        n = active.size
        if available.any():
            procs, factors = self._base(now, available, seq_left, par_left)
            procs = np.asarray(procs, dtype=np.float64).copy()
            factors = np.asarray(factors, dtype=np.float64)
            procs[~available] = 0.0
            # The wrapped policy allocated against the nominal machine;
            # rescale its decision to the processors actually present.
            procs *= self.pool / self._platform.p
            self._apply_class_cap(procs, available)
        else:
            # Everyone active is down: hold (the timeline hook reports
            # the next resume, so the kernel's stall guard stays quiet).
            procs = np.zeros(n)
            factors = np.ones(n)

        if self._probe is not None:
            self._probe.poll(
                now,
                lambda t: self._sample(t, now, active, seq_left, par_left,
                                       procs),
            )
        return procs, factors

    def finalize(self, now: float) -> None:
        """Force one last probe sample; restore global log order.

        Lazy idle-gap catch-up can append a fault event stamped
        earlier than an arrival the kernel logged at the same
        allocation instant, so the shared log gets one stable
        chronological sort here.
        """
        self._harvest_finishes()
        self._log.sort()
        if self._probe is not None:
            n = self._arrivals.size
            zeros = np.zeros(n)
            self._probe.force(
                now,
                lambda t: self._sample(
                    t, now, np.zeros(n, dtype=bool), zeros, zeros, zeros),
            )

    # -- fault application ----------------------------------------------

    def _apply_due(self, now, active, seq_left, par_left) -> None:
        """Apply every fault/restart due by *now*, in time order.

        Events are logged at their own timestamps — during in-flight
        work the kernel stops at each one, so ``now`` matches; across
        an idle gap this is the lazy catch-up described in the module
        docstring.
        """
        events = self._compiled.events
        while True:
            t_ev = (events[self._cursor].time
                    if self._cursor < len(events) else np.inf)
            due = np.flatnonzero(at_or_before(self._restart_at, now))
            t_rs = float(self._restart_at[due].min()) if due.size else np.inf
            if np.isfinite(t_rs) and t_rs <= t_ev:
                i = int(due[np.argmin(self._restart_at[due])])
                self._log.record(self._restart_at[i], "restart", i)
                self._restart_at[i] = np.inf
                continue
            if not at_or_before(t_ev, now):
                break
            ev = events[self._cursor]
            self._cursor += 1
            if ev.kind in ("proc_join", "proc_leave"):
                delta = ev.magnitude if ev.kind == "proc_join" else -ev.magnitude
                self.pool += delta
                self.pool_timeline.append((ev.time, self.pool))
                self._log.record(ev.time, ev.kind, -1)
            elif ev.kind == "crash":
                self._apply_crash(ev, seq_left, par_left)
            elif ev.kind == "preempt":
                i = ev.target
                if self._active_at(i, ev.time):
                    self._down_until[i] = max(self._down_until[i],
                                              ev.time + ev.magnitude)
                    self.preemptions += 1
                    self._log.record(ev.time, "preempt", i)
                else:
                    self.dropped_faults += 1

    def _active_at(self, i: int, t: float) -> bool:
        """Was application *i* arrived, unfinished, and up at instant *t*?

        Judged at the event's own timestamp, not the catch-up instant:
        a crash candidate compiled into an idle gap must not strike an
        application that only arrived after it (faults do not travel
        forward in time).  An application that *was* active at *t*
        implies the kernel was not idle then, so the timeline hook
        stopped the clock there and live and lazy application agree.
        """
        if not at_or_before(self._arrivals[i], t):
            return False
        fin = self._finish_time[i]
        if not np.isnan(fin) and at_or_before(fin, t):
            return False
        return bool(at_or_before(self._down_until[i], t))

    def _apply_crash(self, ev, seq_left, par_left) -> None:
        i = ev.target
        if not self._active_at(i, ev.time):
            self.dropped_faults += 1
            return
        # Destroy a `lost` fraction of the completed work and put it
        # back on the queue, in place, parallel phase first (the most
        # recent progress is the least likely to be checkpointed).
        done_seq = max(float(self._init_seq[i] - seq_left[i]), 0.0)
        done_par = max(float(self._init_par[i] - par_left[i]), 0.0)
        restore = ev.aux * (done_seq + done_par)
        back_par = min(restore, done_par)
        par_left[i] += back_par
        seq_left[i] += min(restore - back_par, done_seq)
        self.lost_work += restore
        self.crashes += 1
        self._down_until[i] = ev.time + ev.magnitude
        self._restart_at[i] = ev.time + ev.magnitude
        self._log.record(ev.time, "crash", i)

    def _apply_class_cap(self, procs: np.ndarray, available: np.ndarray) -> None:
        """Background classes collectively hold exactly ``low_share`` of
        the pool whenever foreground work is also runnable — a cap on
        background and, symmetrically, its no-starvation floor."""
        if self._classes is None:
            return
        fg = available & (self._classes == 0)
        bg = available & (self._classes > 0)
        if not (fg.any() and bg.any()):
            return
        bg_target = self._compiled.low_share * self.pool
        for mask, target in ((fg, self.pool - bg_target), (bg, bg_target)):
            current = float(procs[mask].sum())
            if current > 0.0:
                procs[mask] *= target / current
            else:
                # The wrapped policy gave this class nothing (e.g. fcfs
                # serializes on the other class's head); split its
                # guaranteed share equally so the floor actually holds.
                procs[mask] = target / int(mask.sum())

    # -- probe support ---------------------------------------------------

    def _harvest_finishes(self) -> None:
        """Pick exact completion instants out of the shared event log."""
        fresh = self._log.since(self._log_cursor)
        for ev in fresh:
            if ev.kind == "done":
                self._finish_time[ev.index] = ev.time
        self._log_cursor += len(fresh)

    def _sample(self, t, now, active, seq_left, par_left, procs) -> ProbeSample:
        """State at tick *t*, scraped while the kernel clock sits at *now*.

        While work is in flight the tick is a timeline breakpoint, so
        ``t == now`` (a *live* tick) and the kernel's own state is the
        truth.  A tick with ``t < now`` was skipped by an idle jump —
        nothing was arrived-and-unfinished at *t* — so its state is
        reconstructed: no one active, no processors in use, the pool as
        of *t* (churn history is in :attr:`pool_timeline` regardless of
        when the events were lazily applied).
        """
        fin = np.where(np.isnan(self._finish_time), np.inf, self._finish_time)
        arrived = at_or_before(self._arrivals, t)
        finished = at_or_before(fin, t)
        live = at_or_before(now, t)
        if live:
            act = active
            pr = procs
            pool = self.pool
            up = at_or_before(self._down_until, t)
        else:
            act = arrived & ~finished
            pr = np.zeros(active.size)
            pool = pool_at(self.pool_timeline, t)
            up = np.ones(active.size, dtype=bool)
        down = act & ~up
        running = act & up & (pr > 0.0)
        left = seq_left + par_left
        total = self._init_seq + self._init_par
        classes = (np.zeros(act.size, dtype=np.intp)
                   if self._classes is None else self._classes)
        class_procs = []
        class_active = []
        class_mean_flow = []
        for c in range(self._n_classes):
            sel = classes == c
            class_procs.append(float(pr[sel].sum()))
            class_active.append(int((act & sel).sum()))
            flows = (fin - self._arrivals)[sel & finished]
            class_mean_flow.append(float(flows.mean()) if flows.size else 0.0)
        return ProbeSample(
            time=float(t),
            pool=float(pool),
            arrived=int(arrived.sum()),
            active=int(act.sum()),
            running=int(running.sum()),
            down=int(down.sum()),
            finished=int(finished.sum()),
            procs_in_use=float(pr[act].sum()),
            queue_depth=int((act & (pr <= 0.0)).sum()),
            work_done=float((total - left)[arrived].sum()) if arrived.any() else 0.0,
            work_remaining=float(left[act].sum()),
            class_procs=tuple(class_procs),
            class_active=tuple(class_active),
            class_mean_flow=tuple(class_mean_flow),
        )


def inject_queue(
    arrivals,
    service,
    compiled: CompiledFaults,
    p: float,
    *,
    buffer_capacity: int | None = None,
    log: EventLog | None = None,
) -> tuple[QueueKernelResult, list[tuple[float, float]]]:
    """Replay platform churn against the absolute-time queue kernel.

    The queue kernel serves one batch at a time on the whole machine,
    so an elastic pool rescales each batch's service time by
    ``p / pool(arrival instant)`` — the pool in force when the batch
    arrives serves it to completion (no mid-batch rescaling; a batch
    is the atomic unit of the queue model).  Churn events are recorded
    into the shared log first (the queue kernel then appends its own
    chronologically-sorted events), and the stepwise pool trajectory is
    returned alongside the result.

    Crash / preempt / class events are application-level and have no
    queue-kernel meaning; they are ignored here.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    service = np.asarray(service, dtype=np.float64)
    timeline = pool_trajectory(compiled, p)
    if any(size <= 0.0 for _, size in timeline):
        raise ModelError("churn trajectory empties the pool; the queue "
                         "kernel needs at least a fractional processor")
    if log is None:
        log = EventLog()
    pool = timeline[0][1]
    for time, size in timeline[1:]:
        log.record(time, "proc_join" if size > pool else "proc_leave", -1)
        pool = size
    scaled = service * np.array([p / pool_at(timeline, a) for a in arrivals])
    result = run_queue_kernel(
        arrivals, scaled, buffer_capacity=buffer_capacity, log=log)
    return result, timeline
