"""Invariants a policy must hold under fault injection.

A policy surviving a chaos scenario is not the same as a policy
behaving well under it.  These checks pin the behavioral contract:

* **work conservation** — whenever at least one application is up and
  holding processors, the allocation uses the whole instantaneous
  pool (an elastic platform is no excuse to idle processors);
* **pool ceiling** — the in-use total never exceeds the instantaneous
  pool (shrinking the platform must actually shrink the allocation);
* **no starvation** — while foreground and background classes are both
  runnable (and nobody is down), the background classes collectively
  hold at least their guaranteed ``low_share`` floor of the pool;
* **completion** — every application finishes, at or after its
  arrival, and the final probe sample reports no outstanding work.

:func:`check_invariants` runs all of them against a
:class:`~repro.chaos.runner.ChaosResult` and returns an
:class:`InvariantReport` listing every violation with its timestamp —
empty means the contract held.  The scenario corpus
(``tests/chaos/scenarios/``) and the CI smoke job are built on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .injector import pool_at

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import ChaosResult

__all__ = ["InvariantReport", "check_invariants"]

#: Relative slack for the conservation / ceiling / floor comparisons —
#: loose enough to absorb the kernel's accumulated ulps, far tighter
#: than any real violation.
_REL_SLACK = 1e-9


@dataclass(frozen=True)
class InvariantReport:
    """Outcome of :func:`check_invariants`.

    ``failures`` carries one human-readable line per violation;
    ``checked`` counts the individual comparisons made (a report that
    checked nothing is suspicious, not reassuring).
    """

    failures: list[str] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def assert_ok(self) -> None:
        if self.failures:
            raise AssertionError(
                "chaos invariants violated:\n  " + "\n  ".join(self.failures))


def check_invariants(result: "ChaosResult") -> InvariantReport:
    """Audit a chaos run against the behavioral contract above."""
    failures: list[str] = []
    checked = 0
    timeline = result.pool_timeline
    low_share = result.faults.low_share

    # Pool ceiling: every kernel allocation sample.
    for t, used in result.processor_usage:
        checked += 1
        pool = pool_at(timeline, t)
        if used > pool * (1.0 + _REL_SLACK):
            failures.append(
                f"t={t:.6g}: {used:.6g} processors in use exceeds the "
                f"instantaneous pool {pool:.6g}")

    for s in result.probe:
        # The sample's own pool field is the instantaneous pool the
        # injector saw when scraping (== pool_at(timeline, s.time) for
        # live ticks, reconstructed for idle-gap ticks).
        pool = s.pool
        # Work conservation: someone is up and running, so the whole
        # pool must be working.
        if s.running > 0:
            checked += 1
            if s.procs_in_use < pool * (1.0 - _REL_SLACK):
                failures.append(
                    f"t={s.time:.6g}: only {s.procs_in_use:.6g} of "
                    f"{pool:.6g} processors in use with {s.running} "
                    "applications running (not work-conserving)")
        # No starvation: both classes runnable, nobody down — the
        # background floor must hold.  (Samples with an application
        # down are skipped: the probe cannot see which class it is.)
        if (len(s.class_active) > 1 and s.down == 0
                and s.class_active[0] > 0 and sum(s.class_active[1:]) > 0):
            checked += 1
            bg_procs = sum(s.class_procs[1:])
            floor = low_share * pool
            if bg_procs < floor * (1.0 - _REL_SLACK):
                failures.append(
                    f"t={s.time:.6g}: background classes hold "
                    f"{bg_procs:.6g} processors, below their "
                    f"{floor:.6g} no-starvation floor")

    # Completion: everyone finishes, at or after arrival.
    finish = result.finish_times
    arrivals = result.arrival_times
    checked += 1
    if not np.all(np.isfinite(finish)):
        failures.append("some applications never finished")
    else:
        late = np.flatnonzero(finish < arrivals)
        for i in late:
            failures.append(
                f"application {i} finished at {finish[i]:.6g}, before "
                f"its arrival at {arrivals[i]:.6g}")
        checked += len(arrivals)
    if len(result.probe):
        last = result.probe.samples[-1]
        checked += 1
        if last.work_remaining > 0.0 or last.active > 0:
            failures.append(
                f"final probe sample (t={last.time:.6g}) still reports "
                f"{last.work_remaining:.6g} outstanding operations across "
                f"{last.active} active applications")

    return InvariantReport(failures=failures, checked=checked)
