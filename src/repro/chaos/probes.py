"""Step-wise metric scraping on a fixed cadence.

The kernel's :class:`~repro.simulate.kernel.EventLog` answers *what
happened*; end-of-run aggregates answer *how it ended*.  Neither shows
the shape of a run — how deep the queue got while half the pool was
away, how long the background class sat at its floor.  This module
adds the third view: a :class:`ProbeTimeline` polled on a fixed
interval, the ``scrape_metrics``-style cadence scraper serving stacks
use, emitting typed :class:`ProbeSample` rows next to the event log.

Exactness: probe ticks are exogenous breakpoints (the injector's
``timeline`` hook reports the next tick), so while work is in flight
the kernel stops *at* each tick and the sample carries the true state
at its own timestamp.  Ticks falling inside an idle gap are scraped
lazily at the next allocation — still stamped with their tick time,
with the post-gap state (nothing ran in between, so only arrivals
differ).

Samples are plain frozen dataclasses of floats/ints/tuples; two runs
of the same seeded scenario produce byte-identical
:meth:`ProbeTimeline.as_rows` output, which is what the determinism
tests and the CI smoke job compare across backends.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable

from ..types import ModelError

__all__ = ["ProbeSample", "ProbeTimeline", "PROBE_COLUMNS"]


@dataclass(frozen=True, slots=True)
class ProbeSample:
    """One cadence scrape of a fault-injected run.

    Attributes
    ----------
    time : float
        Tick instant the sample describes.
    pool : float
        Instantaneous processor pool (elastic under churn).
    arrived, active, running, down, finished : int
        Application counts: admitted so far; admitted and unfinished;
        actually progressing (up, holding processors); taken out by a
        crash/preemption; completed.
    procs_in_use : float
        Processors allocated across the active set.
    queue_depth : int
        Active applications holding zero processors (stalled behind a
        serializing policy, a class cap, or an outage).
    work_done, work_remaining : float
        Operations retired (net of crash-destroyed work) / outstanding.
    class_procs, class_active : tuple
        Per-priority-class processor totals and active counts
        (single-class runs have one entry).
    class_mean_flow : tuple
        Mean flow time (finish - arrival) of the applications of each
        class that have finished by this tick; 0.0 while none have.
    """

    time: float
    pool: float
    arrived: int
    active: int
    running: int
    down: int
    finished: int
    procs_in_use: float
    queue_depth: int
    work_done: float
    work_remaining: float
    class_procs: tuple[float, ...]
    class_active: tuple[int, ...]
    class_mean_flow: tuple[float, ...]

    def as_row(self) -> tuple:
        """Flat, comparison-friendly view (tuples stay nested)."""
        return tuple(getattr(self, f.name) for f in fields(self))


#: Header matching :meth:`ProbeSample.as_row` column order.
PROBE_COLUMNS: tuple[str, ...] = tuple(f.name for f in fields(ProbeSample))


class ProbeTimeline:
    """Fixed-cadence scraper: one :class:`ProbeSample` per *interval*.

    The first tick is at ``t == 0``; *max_samples* bounds the tick
    count (and therefore the kernel's extra event budget) — a run
    outliving its sample budget simply stops scraping, it does not
    fail.  :meth:`force` appends one final out-of-cadence sample, which
    :meth:`repro.chaos.FaultInjector.finalize` uses to pin the
    end-of-run state.
    """

    __slots__ = ("interval", "max_samples", "samples", "_next")

    def __init__(self, interval: float, *, max_samples: int = 2048) -> None:
        if not interval > 0:
            raise ModelError(f"probe interval must be positive, got {interval}")
        if max_samples < 1:
            raise ModelError(f"max_samples must be >= 1, got {max_samples}")
        self.interval = float(interval)
        self.max_samples = int(max_samples)
        self.samples: list[ProbeSample] = []
        self._next = 0.0

    def next_tick(self) -> float:
        """Next pending tick instant, ``inf`` once the budget is spent."""
        if len(self.samples) >= self.max_samples:
            return float("inf")
        return self._next

    def poll(self, now: float, sample: Callable[[float], ProbeSample]) -> None:
        """Scrape every tick due by *now* (tolerantly), stamping each
        sample with its own tick time."""
        from ..simulate.kernel import at_or_before  # cycle-free at runtime

        while (len(self.samples) < self.max_samples
               and at_or_before(self._next, now)):
            self.samples.append(sample(self._next))
            self._next += self.interval

    def force(self, now: float, sample: Callable[[float], ProbeSample]) -> None:
        """Append one sample at *now* regardless of cadence or budget."""
        if self.samples and self.samples[-1].time == float(now):
            return
        self.samples.append(sample(float(now)))

    def as_rows(self) -> list[tuple]:
        """All samples as flat tuples (see :data:`PROBE_COLUMNS`)."""
        return [s.as_row() for s in self.samples]

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)
