"""One-call chaos runs: policy + fault spec -> audited result.

:func:`run_chaos` is the subsystem's front door.  It compiles the
fault spec against a pessimistic horizon estimate, builds the policy's
kernel allocator through the same seam :func:`repro.online.simulate_online`
uses (:func:`repro.online.make_policy_allocator` — every builtin and
every registered concurrent scheduler works unchanged), wires the
:class:`~repro.chaos.injector.FaultInjector` and a cadence
:class:`~repro.chaos.probes.ProbeTimeline` into the kernel, and
returns a :class:`ChaosResult` bundling the classic online metrics
with the fault counters, the probe timeline, and the pool history.

Determinism contract: ``run_chaos(..., fault_rng=default_rng(seed))``
is a pure function of its arguments — the fault stream is compiled
ahead of the run from *fault_rng* alone, so every policy evaluated
with the same seed faces the identical stream, and two runs with the
same seed produce byte-identical event logs and probe timelines on
any backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.application import Workload
from ..core.platform import Platform
from ..online.engine import arrival_order, make_policy_allocator
from ..simulate.kernel import EventLog, run_phase_kernel
from ..types import ModelError
from .faults import CompiledFaults, FaultSpec, parse_fault_spec
from .injector import FaultInjector
from .probes import ProbeTimeline

__all__ = ["ChaosResult", "run_chaos", "estimate_horizon"]


def estimate_horizon(workload: Workload, platform: Platform,
                     arrivals: np.ndarray, *, slack: float = 2.0) -> float:
    """Pessimistic completion bound used as the fault-drawing horizon.

    Serialize everything — the fcfs worst case: each application runs
    alone on the whole machine with the whole cache (so its Eq. 2
    factor is its best one), its sequential phase on one processor —
    and multiply by *slack* to absorb crash-destroyed work and outage
    time.  Faults are only drawn up to the horizon; a run outliving it
    (possible in principle, with enough lost work) simply sees a calm
    platform afterwards.  Tighter is better here: the horizon sets how
    many hazard-driven events are compiled, and with it the kernel's
    event budget.
    """
    from ..core.execution import access_cost_factor

    factor_alone = access_cost_factor(workload, platform,
                                      np.ones(workload.n))
    serial = (workload.seq * workload.work
              + (1.0 - workload.seq) * workload.work / platform.p)
    return float(arrivals.max() + slack * (serial * factor_alone).sum())


@dataclass(frozen=True)
class ChaosResult:
    """Outcome of a fault-injected online run.

    Carries the same core metrics as
    :class:`repro.online.OnlineResult` (arrival/finish times, flow
    times, makespan, processor usage, event log) plus the chaos view:
    the compiled fault stream, the stepwise pool history, the probe
    timeline, and the fault counters.
    """

    policy: str
    faults: CompiledFaults
    arrival_times: np.ndarray
    finish_times: np.ndarray
    events: int
    log: EventLog = field(repr=False)
    processor_usage: list[tuple[float, float]] = field(repr=False)
    probe: ProbeTimeline = field(repr=False)
    pool_timeline: list[tuple[float, float]] = field(repr=False)
    crashes: int = 0
    preemptions: int = 0
    dropped_faults: int = 0
    lost_work: float = 0.0
    total_work: float = 0.0

    @property
    def flow_times(self) -> np.ndarray:
        return self.finish_times - self.arrival_times

    @property
    def makespan(self) -> float:
        return float(self.finish_times.max())

    @property
    def mean_flow(self) -> float:
        return float(self.flow_times.mean())

    @property
    def max_flow(self) -> float:
        return float(self.flow_times.max())

    @property
    def peak_processors(self) -> float:
        if not self.processor_usage:
            return 0.0
        return max(used for _, used in self.processor_usage)

    @property
    def goodput(self) -> float:
        """Useful operations retired per unit time over the whole run.

        ``total_work / makespan`` — crash-destroyed (re-queued and
        redone) operations are not useful work, so they depress this
        through the longer makespan, which is exactly the resilience
        signal the benchmark's *goodput retained* curve plots.
        """
        return self.total_work / self.makespan

    def metrics(self) -> dict[str, float]:
        """Scalar metric row (experiment-grid friendly)."""
        return {
            "makespan": self.makespan,
            "mean_flow": self.mean_flow,
            "max_flow": self.max_flow,
            "peak_processors": self.peak_processors,
            "goodput": self.goodput,
            "crashes": float(self.crashes),
            "preemptions": float(self.preemptions),
            "lost_work": self.lost_work,
        }


def run_chaos(
    workload: Workload,
    platform: Platform,
    arrival_times=None,
    *,
    faults: FaultSpec | CompiledFaults | str = "none",
    policy: str = "dominant",
    rng: np.random.Generator | None = None,
    fault_rng: np.random.Generator | None = None,
    probe_interval: float | None = None,
    horizon: float | None = None,
    max_samples: int = 2048,
    max_events: int | None = None,
) -> ChaosResult:
    """Run one policy under one fault stream, with cadence probes.

    Parameters
    ----------
    arrival_times : array-like, optional
        Per-application arrival instants (zeros: everyone present at
        the start, the offline convention with faults on top).
    faults : FaultSpec, CompiledFaults, or spec string
        The disturbance.  A string goes through
        :func:`repro.chaos.parse_fault_spec` (``"none"`` for a clean
        run); a :class:`FaultSpec` is compiled here against *fault_rng*
        and the horizon; a pre-compiled stream is injected as-is (how
        experiment cells share one stream across policies).
    policy : str
        Builtin online policy or registered concurrent scheduler.
    rng : numpy.random.Generator, optional
        Feeds randomized registry policies (builtins ignore it).
    fault_rng : numpy.random.Generator, optional
        Sole entropy source for fault compilation; defaults to
        ``default_rng(0)``.  Ignored for pre-compiled streams.
    probe_interval : float, optional
        Cadence of the metric probes; defaults to ``horizon / 128``.
    horizon : float, optional
        Fault-drawing horizon; defaults to :func:`estimate_horizon`.
    max_samples : int
        Probe budget (see :class:`~repro.chaos.probes.ProbeTimeline`).
    max_events : int, optional
        Kernel event budget; the default covers the base online budget
        plus every fault event, restart, and probe tick.
    """
    if arrival_times is None:
        arrivals = np.zeros(workload.n)
    else:
        arrivals = np.asarray(arrival_times, dtype=np.float64)
        if arrivals.shape != (workload.n,):
            raise ModelError(f"arrival_times must have shape ({workload.n},)")
        if np.any(arrivals < 0):
            raise ModelError("arrival times must be >= 0")

    if horizon is None:
        horizon = estimate_horizon(workload, platform, arrivals)
    if isinstance(faults, str):
        faults = parse_fault_spec(faults)
    if isinstance(faults, FaultSpec):
        if fault_rng is None:
            fault_rng = np.random.default_rng(0)
        compiled = faults.compile(workload.n, platform.p, horizon, fault_rng)
    else:
        compiled = faults

    if probe_interval is None:
        probe_interval = horizon / 128.0
    probe = ProbeTimeline(probe_interval, max_samples=max_samples)

    log = EventLog()
    allocate = make_policy_allocator(
        workload, platform, policy,
        fcfs_order=arrival_order(arrivals), rng=rng,
    )
    injector = FaultInjector(
        workload, platform, compiled,
        allocate=allocate, log=log, arrivals=arrivals, probe=probe,
    )

    if max_events is None:
        max_events = (20 * workload.n + 10
                      + 8 * len(compiled.events)
                      + 2 * probe.max_samples + 64)

    result = run_phase_kernel(
        workload.work,
        workload.seq * workload.work,
        (1.0 - workload.seq) * workload.work,
        allocate=injector.allocate,
        arrivals=arrivals if arrival_times is not None else None,
        timeline=injector.timeline,
        max_events=max_events,
        budget_message=(
            f"chaos run ({policy!r}) exceeded its event budget of "
            f"{max_events}; raise max_events or loosen the fault spec"),
        log=log,
    )
    injector.finalize(result.now)

    return ChaosResult(
        policy=policy,
        faults=compiled,
        arrival_times=arrivals.copy(),
        finish_times=result.finish_times,
        events=result.events,
        log=log,
        processor_usage=result.usage,
        probe=probe,
        pool_timeline=injector.pool_timeline,
        crashes=injector.crashes,
        preemptions=injector.preemptions,
        dropped_faults=injector.dropped_faults,
        lost_work=injector.lost_work,
        total_work=float(workload.work.sum()),
    )
