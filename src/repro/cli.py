"""Command-line interface: regenerate any paper figure or table.

Examples::

    python -m repro figure fig1 --reps 10 --plot
    python -m repro figure fig3 --csv out/fig3.csv
    python -m repro table2
    python -m repro schedule --dataset npb-synth --napps 32 --scheduler dominant-minratio
    python -m repro cluster --napps 48 --nodes 4
    python -m repro pipeline --napps 16
    python -m repro online --napps 16 --policy fair --arrivals poisson:rate=5e-9
    python -m repro validate --napps 32
    python -m repro list
    python -m repro serve --port 8765
    python -m repro request --url http://127.0.0.1:8765 --napps 8
    python -m repro cache info
    python -m repro cache prune --max-bytes 500M
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path

import numpy as np

from . import __version__
from .core.registry import entries, get_scheduler, scheduler_names
from .experiments.engine import BACKENDS
from .experiments.figures import FIGURE_NORMALIZATIONS, build_figure, figure_ids
from .experiments.runner import run_experiment
from .experiments.table2 import regenerate_table2
from .experiments.tables import format_table, render_result
from .machine.presets import PRESETS, get_preset
from .viz.ascii_plot import plot_result
from .workloads.synthetic import DATASETS, generate

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-cosched",
        description="Reproduce 'Co-scheduling algorithms for cache-partitioned systems'",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("figure_id", choices=list(figure_ids()))
    fig.add_argument("--reps", type=int, default=10, help="repetitions (paper: 50)")
    fig.add_argument("--seed", type=int, default=2017)
    fig.add_argument("--plot", action="store_true", help="also render an ASCII plot")
    fig.add_argument("--csv", type=Path, default=None, help="write series to CSV")
    fig.add_argument(
        "--normalize",
        default=None,
        help="normalize by this scheduler (default: the paper's choice)",
    )
    fig.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="execution backend (default: $REPRO_BACKEND or serial); "
             "results are bit-identical either way",
    )
    fig.add_argument("--workers", type=int, default=None,
                     help="process-pool size (default: $REPRO_WORKERS or all cores)")
    fig.add_argument("--cache-dir", type=Path, default=None,
                     help="result-cache directory (default: $REPRO_CACHE_DIR; unset = off)")
    fig.add_argument("--no-cache", action="store_true",
                     help="bypass the result cache for this run")

    sub.add_parser("table2", help="regenerate Table 2 via the trace-driven profiler")

    sched = sub.add_parser("schedule", help="schedule one workload and print it")
    sched.add_argument("--dataset", choices=list(DATASETS), default="npb-synth")
    sched.add_argument("--napps", type=int, default=16)
    sched.add_argument("--scheduler", choices=list(scheduler_names()),
                       default="dominant-minratio")
    sched.add_argument("--platform", choices=list(PRESETS), default="taihulight")
    sched.add_argument("--seed", type=int, default=2017)

    cluster = sub.add_parser("cluster", help="multi-node assignment study")
    cluster.add_argument("--dataset", choices=list(DATASETS), default="npb-synth")
    cluster.add_argument("--napps", type=int, default=48)
    cluster.add_argument("--nodes", type=int, default=4)
    cluster.add_argument("--platform", choices=list(PRESETS), default="taihulight")
    cluster.add_argument("--seed", type=int, default=2017)

    pipe = sub.add_parser("pipeline", help="in-situ sustainability report")
    pipe.add_argument("--dataset", choices=list(DATASETS), default="npb-synth")
    pipe.add_argument("--napps", type=int, default=16)
    pipe.add_argument("--platform", choices=list(PRESETS), default="taihulight")
    pipe.add_argument("--seed", type=int, default=2017)

    onl = sub.add_parser(
        "online",
        help="simulate dynamic arrivals under a reallocation policy")
    onl.add_argument("--dataset", choices=list(DATASETS), default="npb-synth")
    onl.add_argument("--napps", type=int, default=16)
    onl.add_argument("--platform", choices=list(PRESETS), default="taihulight")
    onl.add_argument(
        "--policy", default="dominant",
        help="builtin policy (dominant, fair, fcfs) or any registered "
             "concurrent scheduler name")
    onl.add_argument(
        "--arrivals", default="batch",
        help="arrival source spec: batch[:at=T], constant:period=P[,start=S], "
             "poisson:rate=R[,burst=B,period=P], trace:PATH "
             "(rates are arrivals per model time unit; NPB-scale workloads "
             "run ~1e8-1e9 time units, so e.g. poisson:rate=5e-9)")
    onl.add_argument(
        "--faults", default="none",
        help="fault spec: none, churn:period=P[,drop=D,min=F,max=G], "
             "crash:hazard=H,delay=R[,lost=L], "
             "preempt:period=P,duration=D[,victims=K], "
             "classes:count=K[,share=S] — combined with '+'. Times share "
             "the model's units (NPB-scale runs span ~1e10-1e12), so e.g. "
             "churn:period=2e10+crash:hazard=2e-11,delay=1e9")
    onl.add_argument(
        "--probe-interval", type=float, default=None,
        help="metric-probe cadence in model time units "
             "(default: fault horizon / 128; only used with --faults)")
    onl.add_argument("--seed", type=int, default=2017)

    val = sub.add_parser("validate",
                         help="check model vs discrete-event simulation")
    val.add_argument("--dataset", choices=list(DATASETS), default="npb-synth")
    val.add_argument("--napps", type=int, default=32)
    val.add_argument("--platform", choices=list(PRESETS), default="taihulight")
    val.add_argument("--seed", type=int, default=2017)

    sub.add_parser("list", help="list schedulers, figures, datasets, platforms")

    srv = sub.add_parser("serve", help="run the co-scheduling decision service")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8765)
    srv.add_argument("--cache-capacity", type=int, default=1024,
                     help="decision-cache entries (LRU beyond this)")
    srv.add_argument("--max-batch", type=int, default=16,
                     help="largest request batch dispatched at once")
    srv.add_argument("--max-wait-ms", type=float, default=2.0,
                     help="linger time filling a batch before dispatch")
    srv.add_argument("--workers", type=int, default=None,
                     help="dispatch pool size; with --async, the number of "
                          "pre-forked server processes "
                          "(default: $REPRO_WORKERS, capped)")
    srv.add_argument("--async", dest="use_async", action="store_true",
                     help="serve from an asyncio event loop instead of a "
                          "thread per request")
    srv.add_argument("--cache-shards", type=int, default=8,
                     help="decision-cache shard count (1 = single-lock LRU)")
    srv.add_argument("--cache-dir", type=Path, default=None,
                     help="persistent decision-cache directory for "
                          "cross-restart warm starts "
                          "(default: $REPRO_CACHE_DIR; unset = memory-only)")
    srv.add_argument("--max-queue-depth", type=int, default=None,
                     help="batcher backpressure limit; beyond this many "
                          "queued requests the service answers 503 + "
                          "Retry-After (default: unbounded)")

    req = sub.add_parser("request",
                         help="send one allocation request to a running service")
    req.add_argument("--url", default="http://127.0.0.1:8765",
                     help="service base URL")
    req.add_argument("--dataset", choices=list(DATASETS), default="npb-synth")
    req.add_argument("--napps", type=int, default=8)
    req.add_argument("--scheduler", choices=list(scheduler_names()),
                     default="dominant-minratio")
    req.add_argument("--platform", choices=list(PRESETS), default="taihulight")
    req.add_argument("--seed", type=int, default=2017)
    req.add_argument("--repeat", type=int, default=1,
                     help="send the identical request N times (shows cache hits)")
    req.add_argument("--json", action="store_true",
                     help="print the raw JSON response instead of a table")

    lint = sub.add_parser(
        "lint",
        help="run the determinism & concurrency contract checker")
    lint.add_argument("paths", nargs="*", type=Path,
                      help="files or directories (default: src benchmarks)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="report format (json is the CI contract)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list registered rules and per-path profiles")
    lint.add_argument("--profile", choices=("strict", "default", "relaxed"),
                      default=None,
                      help="force one rule profile instead of per-path mapping")

    cache = sub.add_parser("cache", help="inspect or prune the on-disk result cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    info = cache_sub.add_parser("info", help="show entry count and total bytes")
    info.add_argument("--cache-dir", type=Path, default=None,
                      help="cache directory (default: $REPRO_CACHE_DIR)")
    prune = cache_sub.add_parser(
        "prune", help="delete least-recently-used entries over a byte budget")
    prune.add_argument("--max-bytes", type=parse_bytes, required=True,
                       help="byte budget to prune down to (suffixes K/M/G ok)")
    prune.add_argument("--cache-dir", type=Path, default=None,
                       help="cache directory (default: $REPRO_CACHE_DIR)")
    prune.add_argument("--dry-run", action="store_true",
                       help="report what would be deleted without deleting")
    return parser


def parse_bytes(text: str) -> int:
    """Parse a byte size: plain int or K/M/G-suffixed (decimal, e.g. 500M)."""
    raw = text.strip().upper().removesuffix("B")
    factor = 1
    for suffix, mult in (("K", 10**3), ("M", 10**6), ("G", 10**9)):
        if raw.endswith(suffix):
            raw = raw[:-1]
            factor = mult
            break
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"cannot parse byte size {text!r} (use e.g. 1048576, 500M, 2G)"
        ) from None
    if value < 0 or not math.isfinite(value):
        raise argparse.ArgumentTypeError(
            f"byte size must be finite and >= 0, got {text!r}")
    return int(value * factor)


def _cmd_figure(args) -> int:
    exp = build_figure(args.figure_id, reps=args.reps, seed=args.seed)
    result = run_experiment(
        exp,
        progress=lambda msg: print(msg, file=sys.stderr),
        backend=args.backend,
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )
    norms = (
        (args.normalize,)
        if args.normalize is not None
        else FIGURE_NORMALIZATIONS[args.figure_id]
    )
    for norm in norms:
        print(render_result(result, normalize_by=norm))
        print()
        if args.plot:
            logx = "Applications" in result.xlabel
            print(plot_result(result, normalize_by=norm, logx=logx))
            print()
    if args.csv is not None:
        args.csv.parent.mkdir(parents=True, exist_ok=True)
        result.to_csv(args.csv, normalize_by=norms[0])
        print(f"wrote {args.csv}", file=sys.stderr)
    return 0


def _cmd_table2(_args) -> int:
    rows = []
    for bench in regenerate_table2():
        rows.append([
            bench.name,
            bench.paper_work,
            bench.paper_freq,
            bench.paper_miss,
            bench.app.miss_rate,
            bench.fit_alpha,
            bench.fit_r2,
        ])
    header = ["app", "paper w", "paper f", "paper m40MB", "sim m40MB",
              "fit alpha", "fit r2"]
    print("Table 2: NPB parameters, paper vs trace-driven simulation")
    print(format_table(header, rows))
    return 0


def _cmd_schedule(args) -> int:
    rng = np.random.default_rng(args.seed)
    workload = generate(args.dataset, args.napps, rng)
    platform = get_preset(args.platform)
    schedule = get_scheduler(args.scheduler)(workload, platform, rng)
    print(schedule.describe())
    return 0


def _cmd_cluster(args) -> int:
    from .multinode import (
        lpt_assignment,
        lpt_refined_assignment,
        round_robin_assignment,
        schedule_cluster,
    )

    rng = np.random.default_rng(args.seed)
    workload = generate(args.dataset, args.napps, rng)
    platform = get_preset(args.platform)
    rows = []
    for name, assigner in (("round-robin", round_robin_assignment),
                           ("lpt", lpt_assignment),
                           ("lpt-refined", lpt_refined_assignment)):
        cs = schedule_cluster(
            workload, platform, assigner(workload, platform, args.nodes))
        rows.append([name, cs.makespan(), cs.imbalance()])
    print(f"{args.napps} applications on {args.nodes} nodes "
          f"({platform.name}, p={platform.p:g}/node)")
    print(format_table(["assignment", "makespan", "imbalance"], rows))
    best = lpt_refined_assignment(workload, platform, args.nodes)
    print()
    print(schedule_cluster(workload, platform, best).describe())
    return 0


def _cmd_pipeline(args) -> int:
    from .pipeline import min_sustainable_period

    rng = np.random.default_rng(args.seed)
    workload = generate(args.dataset, args.napps, rng)
    platform = get_preset(args.platform)
    rows = []
    base = None
    for name in ("dominant-minratio", "randompart", "0cache", "fair",
                 "allproccache"):
        period = min_sustainable_period(
            workload, platform, scheduler=name, rng=np.random.default_rng(1))
        if base is None:
            base = period
        rows.append([name, period, period / base])
    print(f"sustainable in-situ period per strategy "
          f"({args.napps} kernels, {platform.name})")
    print(format_table(["strategy", "min period", "vs dominant"], rows))
    return 0


def _cmd_online(args) -> int:
    from .online import parse_arrival_spec, simulate_online

    source = parse_arrival_spec(args.arrivals)
    rng = np.random.default_rng(args.seed)
    workload = generate(args.dataset, args.napps, rng)
    platform = get_preset(args.platform)
    # One seeded stream drives workload, arrivals, faults, and any
    # randomized policy in sequence — the whole scenario replays from
    # --seed.
    arrivals = source.times(args.napps, rng)
    faulty = args.faults.strip().lower() not in ("", "none")
    if faulty:
        from .chaos import check_invariants, run_chaos

        result = run_chaos(workload, platform, arrivals,
                           faults=args.faults, policy=args.policy,
                           fault_rng=rng, rng=rng,
                           probe_interval=args.probe_interval)
    else:
        result = simulate_online(workload, platform, arrivals,
                                 policy=args.policy, rng=rng)
    print(f"{args.policy} on {platform.name}: {args.napps} apps, "
          f"arrivals {args.arrivals}"
          + (f", faults {args.faults}" if faulty else ""))
    rows = [
        [name, arr, fin, flow]
        for name, arr, fin, flow in zip(
            workload.names, result.arrival_times, result.finish_times,
            result.flow_times)
    ]
    print(format_table(["app", "arrival", "finish", "flow"], rows))
    print()
    print(f"makespan:  {result.makespan:.6g}")
    print(f"mean flow: {result.mean_flow:.6g}")
    print(f"max flow:  {result.max_flow:.6g}")
    print(f"events:    {result.events}")
    if faulty:
        report = check_invariants(result)
        print(f"goodput:   {result.goodput:.6g}")
        print(f"faults:    {result.crashes} crashes, "
              f"{result.preemptions} preemptions, "
              f"{result.dropped_faults} dropped, "
              f"lost work {result.lost_work:.6g}")
        print(f"pool:      {len(result.pool_timeline) - 1} churn events, "
              f"probe samples {len(result.probe)}")
        print("invariants: " + ("ok" if report.ok else "VIOLATED"))
        for line in report.failures:
            print(f"  {line}")
        return 0 if report.ok else 1
    return 0


def _cmd_validate(args) -> int:
    from .simulate import validate_schedule

    rng = np.random.default_rng(args.seed)
    workload = generate(args.dataset, args.napps, rng)
    platform = get_preset(args.platform)
    rows = []
    worst = 0.0
    for name in sorted(scheduler_names()):
        schedule = get_scheduler(name)(workload, platform,
                                       np.random.default_rng(1))
        if not hasattr(schedule, "times") or not schedule.concurrent:
            continue
        report = validate_schedule(schedule)
        worst = max(worst, report.max_relative_error)
        rows.append([name, report.max_relative_error,
                     "ok" if report.agrees else "MISMATCH"])
    print("model vs discrete-event simulation (max relative error)")
    print(format_table(["strategy", "max rel err", "status"], rows, precision=2))
    return 0 if worst <= 1e-9 else 1


def _cmd_list(_args) -> int:
    print("schedulers:")
    # entries() is name-sorted already; sort again so the output stays
    # deterministic even if the registry's iteration contract changes.
    rows = [
        [e.name, "yes" if e.randomized else "no", e.provenance, e.description]
        for e in sorted(entries(), key=lambda e: e.name)
    ]
    print(format_table(["name", "randomized", "provenance", "description"], rows))
    print()
    print("figures:    " + ", ".join(figure_ids()))
    print("datasets:   " + ", ".join(DATASETS))
    print("platforms:  " + ", ".join(sorted(PRESETS)))
    print("backends:   " + ", ".join(BACKENDS))
    return 0


def _cmd_serve(args) -> int:
    from .service import DecisionService

    announce = lambda msg: print(msg, file=sys.stderr, flush=True)
    if args.use_async:
        # --workers means server processes here; each forked worker
        # builds its own service (and its own default dispatch pool).
        from .service.aserver import serve_async

        def factory() -> DecisionService:
            return DecisionService(
                cache_capacity=args.cache_capacity,
                cache_shards=args.cache_shards,
                max_batch_size=args.max_batch,
                max_wait_ms=args.max_wait_ms,
                max_queue_depth=args.max_queue_depth,
                cache_dir=args.cache_dir,
            )

        serve_async(args.host, args.port, factory,
                    workers=args.workers or 1, announce=announce)
        return 0
    from .service.server import serve

    service = DecisionService(
        cache_capacity=args.cache_capacity,
        cache_shards=args.cache_shards,
        max_batch_size=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue_depth=args.max_queue_depth,
        workers=args.workers,
        cache_dir=args.cache_dir,
    )
    serve(args.host, args.port, service, announce=announce)
    return 0


def _cmd_request(args) -> int:
    import json as _json

    from .service.client import ServiceClient

    rng = np.random.default_rng(args.seed)
    workload = generate(args.dataset, args.napps, rng)
    client = ServiceClient(args.url)
    replies = [
        client.allocate(workload, args.platform,
                        scheduler=args.scheduler, seed=args.seed)
        for _ in range(max(1, args.repeat))
    ]
    reply = replies[0]
    if args.json:
        print(_json.dumps(reply, indent=2))
        return 0
    decision = reply["decision"]
    rows = [
        [name, p, x, t]
        for name, p, x, t in zip(decision["names"], decision["procs"],
                                 decision["cache"], decision["times"])
    ]
    print(f"{decision['scheduler']} on {args.platform}: "
          f"makespan={decision['makespan']:.6g}")
    print(format_table(["app", "procs", "cache x", "time"], rows))
    for i, r in enumerate(replies):
        source = "decision-cache hit" if r["cache_hit"] else (
            f"computed (batch of {r['batch_size']}"
            + (", coalesced)" if r["coalesced"] else ")"))
        print(f"request {i + 1}: {source}, {r['latency_ms']:.3f} ms "
              f"[{r['request_id'][:16]}]", file=sys.stderr)
    return 0


def _cmd_lint(args) -> int:
    from .lint import all_rules, lint_paths, render_json, render_text
    from .lint.config import profile_table

    if args.list_rules:
        rows = [[r.id, r.name, r.category, r.summary()] for r in all_rules()]
        print(format_table(["id", "name", "category", "checks for"], rows))
        print()
        for profile, ids in profile_table():
            print(f"profile {profile}: {', '.join(ids)}")
        return 0
    paths = args.paths or [Path("src"), Path("benchmarks")]
    try:
        report = lint_paths(paths, profile=args.profile)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    render = render_json if args.format == "json" else render_text
    print(render(report))
    return 0 if report.ok else 1


def _cmd_cache(args) -> int:
    from .cache import ALL_TIER_PATTERNS, ContentAddressedStore, resolve_cache_dir

    cache_dir = resolve_cache_dir(args.cache_dir)
    if cache_dir is None:
        print("no cache directory: pass --cache-dir or set REPRO_CACHE_DIR",
              file=sys.stderr)
        return 2
    # One view over every tier sharing the directory: experiment
    # results (*.npz) and persisted service decisions (decisions/*.json).
    cache = ContentAddressedStore(cache_dir, patterns=ALL_TIER_PATTERNS)
    if args.cache_command == "info":
        entries_lru = cache.entries()
        print(f"{cache_dir}: {len(entries_lru)} entries, "
              f"{cache.size_bytes()} bytes")
        for pattern in ALL_TIER_PATTERNS:
            tier = ContentAddressedStore(cache_dir, patterns=(pattern,))
            tier_entries = tier.entries()
            print(f"  tier {pattern}: {len(tier_entries)} entries, "
                  f"{tier.size_bytes()} bytes")
        for path in entries_lru:
            try:
                size = path.stat().st_size
            except OSError:
                continue  # vanished under a concurrent prune
            name = path.relative_to(cache_dir)
            print(f"  {name}  {size} bytes")
        return 0
    report = cache.prune(args.max_bytes, dry_run=args.dry_run)
    if args.dry_run:
        print(f"would delete {len(report.deleted)} entries "
              f"(keeping {report.kept_bytes} bytes <= {args.max_bytes})")
        for path in report.deleted:
            print(f"  {path.name}")
        return 0
    print(f"deleted {len(report.deleted)} entries, freed {report.freed_bytes} "
          f"bytes; {report.kept_bytes} bytes kept (budget {args.max_bytes})")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "figure": _cmd_figure,
        "table2": _cmd_table2,
        "schedule": _cmd_schedule,
        "cluster": _cmd_cluster,
        "pipeline": _cmd_pipeline,
        "online": _cmd_online,
        "validate": _cmd_validate,
        "list": _cmd_list,
        "serve": _cmd_serve,
        "request": _cmd_request,
        "lint": _cmd_lint,
        "cache": _cmd_cache,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
