"""Core model and algorithms of the paper.

Public surface:

* :class:`Application`, :class:`Workload` — the application model.
* :class:`Platform` — machine parameters.
* Eq. 1 / Eq. 2 evaluators (:mod:`repro.core.powerlaw`,
  :mod:`repro.core.execution`).
* :class:`Schedule` / :class:`SequentialSchedule` — solution objects.
* Dominance theory (:mod:`repro.core.dominance`) and the processor
  allocators (:mod:`repro.core.processor_allocation`).
* The six heuristics, four baselines, and the name registry.
* The structure-of-arrays batch API (:mod:`repro.core.batch`):
  :class:`BatchProblem` / :class:`BatchSchedule`, the ``*_batch``
  twins of the scalar kernels, and :func:`schedule_batch`.
"""

from .application import BASELINE_CACHE_BYTES, Application, Workload
from .baselines import all_proc_cache, fair, random_partition, zero_cache
from .batch import (
    BatchProblem,
    BatchSchedule,
    access_cost_factor_batch,
    equal_finish_allocation_batch,
    equal_finish_makespan_batch,
    execution_times_batch,
    miss_rates_batch,
    sequential_times_batch,
)
from .dominance import (
    cache_weights,
    cache_weights_batch,
    dominance_ratios,
    dominance_ratios_batch,
    is_dominant,
    optimal_cache_fractions,
    optimal_cache_fractions_batch,
    violating_applications,
)
from .execution import (
    amdahl_flops,
    amdahl_speedup,
    execution_time_single,
    execution_times,
    miss_rates,
    sequential_times,
)
from .heuristics import (
    DOMINANT_HEURISTICS,
    dominant_partition,
    dominant_partition_batch,
    dominant_rev_partition,
    dominant_rev_partition_batch,
    dominant_schedule,
    dominant_schedule_batch,
)
from .platform import Platform
from .powerlaw import (
    cache_for_target_miss_rate,
    effective_cache,
    miss_rate,
    miss_rate_fraction,
    useful_fraction_bounds,
)
from .processor_allocation import (
    build_equal_finish_schedule,
    equal_finish_allocation,
    equal_finish_batch,
    equal_finish_makespan,
    lemma2_processor_allocation,
    perfectly_parallel_makespan,
)
from .registry import (
    PAPER_BASELINES,
    PAPER_HEURISTICS,
    SchedulerEntry,
    entries,
    get_entry,
    get_scheduler,
    is_randomized,
    register,
    schedule_batch,
    scheduler_names,
)
from .schedule import BaseSchedule, Schedule, SequentialSchedule

__all__ = [
    "Application",
    "Workload",
    "Platform",
    "BASELINE_CACHE_BYTES",
    "BaseSchedule",
    "Schedule",
    "SequentialSchedule",
    "miss_rate",
    "miss_rate_fraction",
    "effective_cache",
    "useful_fraction_bounds",
    "cache_for_target_miss_rate",
    "amdahl_flops",
    "amdahl_speedup",
    "miss_rates",
    "sequential_times",
    "execution_times",
    "execution_time_single",
    "cache_weights",
    "dominance_ratios",
    "is_dominant",
    "violating_applications",
    "optimal_cache_fractions",
    "lemma2_processor_allocation",
    "perfectly_parallel_makespan",
    "equal_finish_makespan",
    "equal_finish_allocation",
    "build_equal_finish_schedule",
    "dominant_partition",
    "dominant_rev_partition",
    "dominant_schedule",
    "DOMINANT_HEURISTICS",
    "all_proc_cache",
    "fair",
    "zero_cache",
    "random_partition",
    "register",
    "get_scheduler",
    "get_entry",
    "entries",
    "SchedulerEntry",
    "scheduler_names",
    "is_randomized",
    "PAPER_HEURISTICS",
    "PAPER_BASELINES",
    "BatchProblem",
    "BatchSchedule",
    "miss_rates_batch",
    "access_cost_factor_batch",
    "sequential_times_batch",
    "execution_times_batch",
    "cache_weights_batch",
    "dominance_ratios_batch",
    "optimal_cache_fractions_batch",
    "equal_finish_batch",
    "equal_finish_allocation_batch",
    "equal_finish_makespan_batch",
    "dominant_partition_batch",
    "dominant_rev_partition_batch",
    "dominant_schedule_batch",
    "schedule_batch",
]
