"""Application model and vectorized workload container.

An :class:`Application` carries the five scalars the paper's model
needs (Section 3):

``w``
    number of computing operations,
``s``
    Amdahl sequential fraction (``s = 0`` means perfectly parallel),
``f``
    data accesses per computing operation,
``a``
    memory footprint in bytes (``inf`` when larger than any cache,
    which is the assumption of Sections 4.2-6),
``m0``
    miss rate measured on a baseline cache of size ``C0`` (40 MB for
    the NPB measurements of Table 2).

A :class:`Workload` packs ``n`` applications into contiguous numpy
arrays so the cost model, dominance ratios, and heuristics can operate
vectorized — the experiments sweep up to 256 applications times many
seeds, and per-application Python loops would dominate the runtime.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from ..types import ModelError, as_float_array
from .platform import Platform

__all__ = ["Application", "Workload", "BASELINE_CACHE_BYTES"]

#: Baseline cache size ``C0`` used for the NPB miss rates of Table 2.
BASELINE_CACHE_BYTES: float = 40e6


@dataclass(frozen=True, slots=True)
class Application:
    """A single parallel application with an Amdahl speedup profile.

    Parameters
    ----------
    name : str
        Label for reports (e.g. ``"CG"``).
    work : float
        ``w``: total number of computing operations (> 0).
    seq_fraction : float
        ``s`` in [0, 1]: sequential fraction of the work.
    access_freq : float
        ``f`` >= 0: data accesses per computing operation.
    miss_rate : float
        ``m0`` in [0, 1]: miss rate on a cache of ``baseline_cache`` bytes.
    footprint : float
        ``a`` > 0 bytes, or ``inf`` (default) when the footprint exceeds
        any cache of interest.
    baseline_cache : float
        ``C0``: cache size at which ``miss_rate`` was measured.
    """

    name: str
    work: float
    seq_fraction: float = 0.0
    access_freq: float = 0.0
    miss_rate: float = 0.0
    footprint: float = math.inf
    baseline_cache: float = BASELINE_CACHE_BYTES

    def __post_init__(self) -> None:
        if not (self.work > 0 and math.isfinite(self.work)):
            raise ModelError(f"{self.name}: work must be positive and finite, got {self.work}")
        if not (0.0 <= self.seq_fraction <= 1.0):
            raise ModelError(
                f"{self.name}: seq_fraction must be in [0, 1], got {self.seq_fraction}"
            )
        if self.access_freq < 0 or not math.isfinite(self.access_freq):
            raise ModelError(
                f"{self.name}: access_freq must be >= 0 and finite, got {self.access_freq}"
            )
        if not (0.0 <= self.miss_rate <= 1.0):
            raise ModelError(f"{self.name}: miss_rate must be in [0, 1], got {self.miss_rate}")
        if self.footprint <= 0:
            raise ModelError(f"{self.name}: footprint must be positive, got {self.footprint}")
        if not (self.baseline_cache > 0 and math.isfinite(self.baseline_cache)):
            raise ModelError(
                f"{self.name}: baseline_cache must be positive and finite, "
                f"got {self.baseline_cache}"
            )

    @property
    def is_perfectly_parallel(self) -> bool:
        """True when ``s == 0`` so ``Exe(p, x) = Exe(1, x) / p``."""
        return self.seq_fraction == 0.0

    def miss_coefficient(self, platform: Platform) -> float:
        """Return ``d = m0 * (C0 / Cs)^alpha`` for *platform*.

        ``d`` is the miss rate the application would see if it owned the
        *entire* LLC of the platform; with a fraction ``x`` of the LLC
        its miss rate is ``min(1, d / x^alpha)`` (Eq. 1 rewritten).
        """
        return self.miss_rate * (self.baseline_cache / platform.cache_size) ** platform.alpha

    def scaled(self, *, work: float | None = None,
               seq_fraction: float | None = None) -> "Application":
        """Return a copy with ``work`` and/or ``seq_fraction`` replaced."""
        kwargs = {}
        if work is not None:
            kwargs["work"] = work
        if seq_fraction is not None:
            kwargs["seq_fraction"] = seq_fraction
        return replace(self, **kwargs)


class Workload(Sequence[Application]):
    """An immutable collection of applications with vectorized columns.

    The columns (``work``, ``seq``, ``freq``, ``miss0``, ``footprint``,
    ``baseline_cache``) are read-only ``float64`` arrays of length
    ``n``; downstream code indexes them with boolean masks to express
    partitions ``(IC, not IC)``.
    """

    __slots__ = ("_apps", "work", "seq", "freq", "miss0", "footprint", "baseline_cache")

    def __init__(self, applications: Iterable[Application]):
        apps = tuple(applications)
        if not apps:
            raise ModelError("a workload needs at least one application")
        self._apps = apps
        self.work = _readonly([a.work for a in apps], "work")
        self.seq = _readonly([a.seq_fraction for a in apps], "seq_fraction")
        self.freq = _readonly([a.access_freq for a in apps], "access_freq")
        self.miss0 = _readonly([a.miss_rate for a in apps], "miss_rate")
        self.footprint = np.asarray([a.footprint for a in apps], dtype=np.float64)
        self.footprint.flags.writeable = False
        self.baseline_cache = _readonly([a.baseline_cache for a in apps], "baseline_cache")

    # -- Sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._apps)

    def __iter__(self) -> Iterator[Application]:
        return iter(self._apps)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Workload(self._apps[index])
        return self._apps[index]

    def __repr__(self) -> str:
        names = ", ".join(a.name for a in self._apps[:6])
        more = "" if len(self) <= 6 else f", ... ({len(self)} total)"
        return f"Workload([{names}{more}])"

    # -- derived vectorized quantities -------------------------------------
    @property
    def n(self) -> int:
        """Number of applications."""
        return len(self._apps)

    @property
    def names(self) -> tuple[str, ...]:
        """Application labels, in order."""
        return tuple(a.name for a in self._apps)

    @property
    def is_perfectly_parallel(self) -> bool:
        """True when every application has ``s == 0``."""
        return bool(np.all(self.seq == 0.0))

    def miss_coefficients(self, platform: Platform) -> np.ndarray:
        """Vector of ``d_i = m0_i * (C0_i / Cs)^alpha`` (read-write copy)."""
        return self.miss0 * (self.baseline_cache / platform.cache_size) ** platform.alpha

    def subset(self, mask) -> "Workload":
        """Return a new workload of the applications selected by *mask*.

        Parameters
        ----------
        mask : array_like of bool or of int
            Boolean mask of length ``n`` or integer index array.
        """
        idx = np.asarray(mask)
        if idx.dtype == bool:
            if idx.shape != (self.n,):
                raise ModelError(f"boolean mask must have length {self.n}, got {idx.shape}")
            chosen = [a for a, keep in zip(self._apps, idx) if keep]
        else:
            chosen = [self._apps[int(i)] for i in idx]
        return Workload(chosen)

    def with_sequential_fraction(self, s) -> "Workload":
        """Return a copy whose applications all have sequential fraction *s*.

        *s* may be a scalar or a length-``n`` sequence.
        """
        svals = np.broadcast_to(np.asarray(s, dtype=np.float64), (self.n,))
        return Workload(
            app.scaled(seq_fraction=float(si)) for app, si in zip(self._apps, svals)
        )

    def with_miss_rate(self, m0) -> "Workload":
        """Return a copy whose applications all have baseline miss rate *m0*."""
        mvals = np.broadcast_to(np.asarray(m0, dtype=np.float64), (self.n,))
        return Workload(
            replace(app, miss_rate=float(mi)) for app, mi in zip(self._apps, mvals)
        )


def _readonly(values, name: str) -> np.ndarray:
    arr = as_float_array(values, name=name)
    arr.flags.writeable = False
    return arr
