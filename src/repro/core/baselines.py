"""Baseline scheduling strategies of Section 6.3.

* :func:`all_proc_cache` — no co-scheduling: applications run in
  sequence, each on all ``p`` processors with the whole LLC.  Every
  figure in the paper is normalized against this strategy (or against
  DominantMinRatio).
* :func:`fair` — every application gets ``p/n`` processors and a cache
  share proportional to its access frequency, ``x_i = f_i / sum_j f_j``.
* :func:`zero_cache` — nobody gets cache (``x_i = 0``); processors are
  assigned so all applications finish together.  Isolates the value of
  the *cache-allocation* decision: the only difference between this and
  the dominant heuristics is the cache partition.
* :func:`random_partition` — a uniformly random subset shares the
  cache with Theorem-3 fractions inside it; processors equal-finish.
  Isolates the value of choosing a *dominant* subset rather than an
  arbitrary one.
"""

from __future__ import annotations

import numpy as np

from .application import Workload
from .dominance import cache_weights, optimal_cache_fractions
from .platform import Platform
from .processor_allocation import build_equal_finish_schedule
from .schedule import Schedule, SequentialSchedule

__all__ = ["all_proc_cache", "fair", "zero_cache", "random_partition"]


def all_proc_cache(workload: Workload, platform: Platform) -> SequentialSchedule:
    """Sequential execution, whole machine per application (AllProcCache)."""
    return SequentialSchedule(workload, platform)


def fair(workload: Workload, platform: Platform) -> Schedule:
    """Equal processors, frequency-proportional cache shares (Fair).

    When every application has ``f == 0`` the cache is split equally —
    the shares are irrelevant in that case since nobody accesses data.
    """
    n = workload.n
    procs = np.full(n, platform.p / n)
    total_freq = float(workload.freq.sum())
    if total_freq > 0:
        cache = workload.freq / total_freq
    else:
        cache = np.full(n, 1.0 / n)
    return Schedule(workload, platform, procs, cache)


def zero_cache(workload: Workload, platform: Platform) -> Schedule:
    """No cache for anyone; equal-finish processor allocation (0cache)."""
    x = np.zeros(workload.n)
    return build_equal_finish_schedule(workload, platform, x)


def random_partition(
    workload: Workload,
    platform: Platform,
    rng: np.random.Generator | None = None,
) -> Schedule:
    """Random cache subset with Theorem-3 fractions inside (RandomPart).

    Each application joins the cache subset independently with
    probability 1/2, restricted to applications that can profit from
    cache (positive weight).  If the draw selects nobody, the schedule
    degenerates to 0cache — exactly the paper's "for those in cache"
    formulation.
    """
    rng = rng if rng is not None else np.random.default_rng()
    weights = cache_weights(workload, platform)
    eligible = weights > 0
    mask = eligible & (rng.random(workload.n) < 0.5)
    if mask.any():
        x = optimal_cache_fractions(workload, platform, mask)
    else:
        x = np.zeros(workload.n)
    return build_equal_finish_schedule(workload, platform, x)
