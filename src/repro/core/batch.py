"""Structure-of-arrays batching across independent problem instances.

The scheduling core is already vectorized *within* one instance (one
workload on one platform).  This module vectorizes *across* instances:
a :class:`BatchProblem` packs ``B`` (workload, platform) pairs into
padded ``(B, N)`` arrays — ``N`` being the widest instance — with a
prefix validity mask, so the cost model, the dominance machinery, the
eviction loops, and the equal-finish solver advance a whole batch per
NumPy call instead of per Python call.  The natural producers of such
batches are the experiment engine's task chunks, the service's
coalesced request batches, and the benchmark grids.

Bit-identity contract
---------------------
A padded row computes the **same bits** as the scalar path on the
compressed arrays.  Three disciplines make that true:

* every elementwise expression is transcribed from the scalar module
  it mirrors, in the same operation order (IEEE elementwise ops are
  value-determined, so broadcasting over extra rows changes nothing);
* every reduction is padding-invariant: totals use left-to-right
  accumulation (see :func:`repro.core.dominance.masked_total`), maxima
  fill padding with ``-inf``;
* padding values are chosen so no intermediate produces NaN (work 1.0,
  sequential fraction 0.0, access frequency 0.0, baseline miss rate
  0.0, footprint ``inf``, baseline cache 1.0 — giving a padded
  sequential time of exactly 1.0 and zero cache weight).

The golden suite (``tests/golden/test_batch_equivalence.py``) asserts
this with ``==`` on floats over seeded ragged sweeps.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..types import ModelError
from .application import Workload
from .platform import Platform
from .powerlaw import pow_rowwise
from .processor_allocation import equal_finish_batch
from .schedule import Schedule

__all__ = [
    "BatchProblem",
    "BatchSchedule",
    "miss_rates_batch",
    "access_cost_factor_batch",
    "sequential_times_batch",
    "execution_times_batch",
    "equal_finish_allocation_batch",
    "equal_finish_makespan_batch",
]

#: Padding values per application column — chosen so padded cells flow
#: through the whole model without producing NaN (see module docstring).
_PAD = {
    "work": 1.0,
    "seq": 0.0,
    "freq": 0.0,
    "miss0": 0.0,
    "footprint": np.inf,
    "baseline_cache": 1.0,
}


class BatchProblem:
    """``B`` independent (workload, platform) instances as padded arrays.

    Application columns (``work``, ``seq``, ``freq``, ``miss0``,
    ``footprint``, ``baseline_cache``) have shape ``(B, N)`` where
    ``N = max_i n_i``; ``valid`` is the boolean prefix mask of real
    applications and ``counts`` the per-row ``n_i``.  Platform columns
    (``p``, ``cache_size``, ``latency_cache``, ``latency_memory``,
    ``alpha``) have shape ``(B,)`` — instances may mix platforms
    freely.  The original pairs stay reachable through
    :attr:`instances` / :meth:`row` so results can be materialized back
    into per-instance :class:`~repro.core.schedule.Schedule` objects.
    """

    __slots__ = (
        "instances", "counts", "valid",
        "work", "seq", "freq", "miss0", "footprint", "baseline_cache",
        "p", "cache_size", "latency_cache", "latency_memory", "alpha",
    )

    def __init__(self, instances: Iterable[tuple[Workload, Platform]]):
        pairs = tuple(instances)
        if not pairs:
            raise ModelError("a batch needs at least one instance")
        for i, pair in enumerate(pairs):
            if (not isinstance(pair, Sequence) or len(pair) != 2
                    or not isinstance(pair[0], Workload)
                    or not isinstance(pair[1], Platform)):
                raise ModelError(
                    f"instance {i} must be a (Workload, Platform) pair, "
                    f"got {pair!r}")
        self.instances = pairs
        B = len(pairs)
        counts = np.array([wl.n for wl, _ in pairs], dtype=np.intp)
        N = int(counts.max())
        self.counts = counts
        valid = np.zeros((B, N), dtype=bool)
        cols = {name: np.full((B, N), fill) for name, fill in _PAD.items()}
        for i, (wl, _) in enumerate(pairs):
            n = wl.n
            valid[i, :n] = True
            cols["work"][i, :n] = wl.work
            cols["seq"][i, :n] = wl.seq
            cols["freq"][i, :n] = wl.freq
            cols["miss0"][i, :n] = wl.miss0
            cols["footprint"][i, :n] = wl.footprint
            cols["baseline_cache"][i, :n] = wl.baseline_cache
        self.valid = valid
        for name, arr in cols.items():
            setattr(self, name, arr)
        self.p = np.array([pf.p for _, pf in pairs])
        self.cache_size = np.array([pf.cache_size for _, pf in pairs])
        self.latency_cache = np.array([pf.latency_cache for _, pf in pairs])
        self.latency_memory = np.array([pf.latency_memory for _, pf in pairs])
        self.alpha = np.array([pf.alpha for _, pf in pairs])

    @classmethod
    def from_instances(
        cls, instances: Iterable[tuple[Workload, Platform]]
    ) -> "BatchProblem":
        """Alias constructor, matching the ``*_batch`` naming scheme."""
        return cls(instances)

    # -- container protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self.instances)

    @property
    def n_instances(self) -> int:
        """Batch size ``B``."""
        return len(self.instances)

    @property
    def max_apps(self) -> int:
        """Padded width ``N`` (the widest instance)."""
        return self.valid.shape[1]

    def row(self, i: int) -> tuple[Workload, Platform]:
        """The original (workload, platform) pair of row *i*."""
        return self.instances[i]

    def __repr__(self) -> str:
        return (f"BatchProblem({self.n_instances} instances, "
                f"max {self.max_apps} apps)")

    # -- derived quantities ------------------------------------------------
    def miss_coefficients(self) -> np.ndarray:
        """``d = m0 * (C0 / Cs)^alpha`` per cell, shape ``(B, N)``.

        Mirrors :meth:`repro.core.application.Workload.miss_coefficients`
        elementwise; padding yields 0.
        """
        return self.miss0 * pow_rowwise(
            self.baseline_cache / self.cache_size[:, None], self.alpha)


def miss_rates_batch(problem: BatchProblem, cache_fractions) -> np.ndarray:
    """Batched :func:`repro.core.execution.miss_rates`: ``(B, N)``.

    Inputs were validated when the individual applications/platforms
    were built, so this applies Eq. 1 plus the footprint clamp
    directly.  Padding (``m0 == 0``) yields 0.
    """
    x = np.asarray(cache_fractions, dtype=np.float64)
    cache_bytes = np.minimum(
        x * problem.cache_size[:, None], problem.footprint)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        scaled = problem.miss0 * pow_rowwise(
            problem.baseline_cache / cache_bytes, problem.alpha)
    return np.where(problem.miss0 == 0.0, 0.0, np.minimum(1.0, scaled))


def access_cost_factor_batch(problem: BatchProblem, cache_fractions) -> np.ndarray:
    """Batched ``1 + f*(ls + ll*m(x))`` of Eq. 2; padding yields 1."""
    m = miss_rates_batch(problem, cache_fractions)
    return 1.0 + problem.freq * (
        problem.latency_cache[:, None] + problem.latency_memory[:, None] * m
    )


def sequential_times_batch(problem: BatchProblem, cache_fractions) -> np.ndarray:
    """Batched single-processor times ``c_i``; padding yields 1."""
    return problem.work * access_cost_factor_batch(problem, cache_fractions)


def execution_times_batch(problem: BatchProblem, procs, cache_fractions) -> np.ndarray:
    """Batched ``Exe_i(p_i, x_i)`` (Eq. 2); padding yields 0.

    Unlike the scalar :func:`repro.core.execution.execution_times`,
    padded cells may carry ``procs == 0`` — they are masked out rather
    than rejected.
    """
    procs = np.asarray(procs, dtype=np.float64)
    if np.any(problem.valid & (procs <= 0.0)):
        raise ModelError("processor allocation must be positive")
    with np.errstate(divide="ignore", invalid="ignore"):
        flops = problem.seq * problem.work + (
            1.0 - problem.seq) * problem.work / procs
        times = flops * access_cost_factor_batch(problem, cache_fractions)
    return np.where(problem.valid, times, 0.0)


def equal_finish_allocation_batch(
    problem: BatchProblem, cache_fractions, *, xtol: float = 1e-12
) -> tuple[np.ndarray, np.ndarray]:
    """Batched equal-finish allocation for given cache fractions.

    Returns ``(procs, K)`` with ``procs`` of shape ``(B, N)`` (zeros in
    padding) and ``K`` the per-row makespans, shape ``(B,)``.
    """
    c = sequential_times_batch(problem, cache_fractions)
    return equal_finish_batch(problem.seq, c, problem.valid, problem.p,
                              xtol=xtol)


def equal_finish_makespan_batch(
    problem: BatchProblem, cache_fractions, *, xtol: float = 1e-12
) -> np.ndarray:
    """Per-row equal-finish makespans, shape ``(B,)``."""
    return equal_finish_allocation_batch(problem, cache_fractions,
                                         xtol=xtol)[1]


class BatchSchedule:
    """Equal-finish schedules for a whole batch, kept as arrays.

    The result of :func:`repro.core.heuristics.dominant_schedule_batch`:
    processor and cache arrays of shape ``(B, N)`` plus the originating
    :class:`BatchProblem`.  Execution times and makespans are computed
    vectorized; :meth:`schedules` materializes per-row
    :class:`~repro.core.schedule.Schedule` objects (with full
    validation) only when a consumer needs them — constructing ``B``
    Schedule objects costs more than solving the batch, so the hot
    paths stay on the arrays.
    """

    __slots__ = ("problem", "procs", "cache", "makespans_", "_times")

    def __init__(self, problem: BatchProblem, procs: np.ndarray,
                 cache: np.ndarray, makespans: np.ndarray | None = None):
        self.problem = problem
        self.procs = procs
        self.cache = cache
        self.makespans_ = makespans
        self._times = None

    def __len__(self) -> int:
        return len(self.problem)

    def __repr__(self) -> str:
        return f"BatchSchedule({len(self)} instances)"

    def times(self) -> np.ndarray:
        """Per-cell execution times ``Exe_i(p_i, x_i)``, zeros in padding."""
        if self._times is None:
            self._times = execution_times_batch(
                self.problem, self.procs, self.cache)
        return self._times

    def makespans(self) -> np.ndarray:
        """Per-row makespans ``max_i Exe_i``, shape ``(B,)``."""
        return np.where(self.problem.valid, self.times(), -np.inf).max(axis=1)

    def schedules(self, *, validate: bool = True) -> list[Schedule]:
        """Materialize one :class:`Schedule` per row."""
        out = []
        for i, (wl, pf) in enumerate(self.problem.instances):
            n = wl.n
            out.append(Schedule(wl, pf, self.procs[i, :n].copy(),
                                self.cache[i, :n].copy(), validate=validate))
        return out

    def schedule(self, i: int) -> Schedule:
        """Materialize the :class:`Schedule` of row *i*."""
        wl, pf = self.problem.row(i)
        n = wl.n
        return Schedule(wl, pf, self.procs[i, :n].copy(),
                        self.cache[i, :n].copy())
