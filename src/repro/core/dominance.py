"""Dominant partitions: Definition 4, Lemma 4, and Theorem 3.

The intractability of CoSchedCache (Theorem 1) boils down to choosing
the subset ``IC`` of applications that share the LLC.  Once ``IC`` is
fixed, the optimal fractions have the closed form of Lemma 4 /
Theorem 3:

    ``x_i = (w_i f_i d_i)^(1/(alpha+1)) / sum_{j in IC} (w_j f_j d_j)^(1/(alpha+1))``

and the partition is worth keeping only if it is *dominant*
(Definition 4): for every ``i in IC``,

    ``ratio_i := (w_i f_i d_i)^(1/(alpha+1)) / d_i^(1/alpha) > sum_{j in IC} (w_j f_j d_j)^(1/(alpha+1))``

which is exactly the statement that the closed-form ``x_i`` lands
strictly above the useless-allocation threshold ``d_i^(1/alpha)`` of
Eq. 3.  Theorem 2 shows a non-dominant partition can always be strictly
improved by evicting an offending application.

This module provides the vectorized building blocks shared by the six
greedy heuristics, the exact solver, and the baselines.

Batch variants
--------------
Every building block has a ``*_batch`` twin operating on a
:class:`~repro.core.batch.BatchProblem` — structure-of-arrays over
``n_instances x max_apps`` with a prefix validity mask — so one NumPy
call prices a whole batch of independent problem instances.  The
scalar and batch paths are **bit-identical**: both compute subset
totals with :func:`masked_total`, a strict left-to-right summation
that is invariant to trailing padding (NumPy's pairwise ``sum`` is
not, so sharing it is what makes a padded row reproduce the compressed
scalar arrays float for float).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..types import ModelError
from .application import Workload
from .platform import Platform
from .powerlaw import pow_rowwise

if TYPE_CHECKING:  # pragma: no cover - typing only (batch imports us)
    from .batch import BatchProblem

__all__ = [
    "masked_total",
    "masked_totals",
    "cache_weights",
    "cache_weights_batch",
    "dominance_ratios",
    "dominance_ratios_batch",
    "is_dominant",
    "violating_applications",
    "optimal_cache_fractions",
    "optimal_cache_fractions_batch",
    "cache_fractions_for_subset",
    "bounded_optimal_cache_fractions",
]


def masked_total(values: np.ndarray, mask: np.ndarray) -> float:
    """Strict left-to-right total of ``values[mask]``.

    The one summation discipline shared by the scalar and batch
    dominance paths.  A left-to-right accumulation is invariant to
    interleaved (and trailing-padding) zeros — ``x + 0.0 == x`` exactly
    — whereas NumPy's pairwise ``sum`` reassociates differently for a
    compressed length-``k`` array than for a padded length-``N`` row.
    Using this helper everywhere is what makes
    ``evict_until_dominant_batch`` bit-identical to the scalar loop.
    """
    return float(np.add.accumulate(np.where(mask, values, 0.0))[-1])


def masked_totals(values: np.ndarray, masks: np.ndarray) -> np.ndarray:
    """Row-wise :func:`masked_total` over ``(B, N)`` arrays."""
    return np.add.accumulate(np.where(masks, values, 0.0), axis=1)[:, -1]


def cache_weights(workload: Workload, platform: Platform, *,
                  work=None) -> np.ndarray:
    """Per-application weights ``(w_i f_i d_i)^(1/(alpha+1))``.

    These are the unnormalized optimal cache shares of Lemma 4: within
    a subset ``IC`` the optimal fraction of application ``i`` is its
    weight divided by the subset's total weight.  Applications that
    never touch memory (``f == 0``) or never miss (``m0 == 0``) have
    weight 0.

    *work* overrides the workload's total operations — the online
    engine passes each application's *remaining* work so a nearly done
    application does not hold a large partition.
    """
    d = workload.miss_coefficients(platform)
    w = workload.work if work is None else np.asarray(work, dtype=np.float64)
    base = w * workload.freq * d
    return base ** (1.0 / (platform.alpha + 1.0))


def dominance_ratios(workload: Workload, platform: Platform, *,
                     work=None) -> np.ndarray:
    """Per-application ratios ``weight_i / d_i^(1/alpha)`` of Definition 4.

    An application belongs to a dominant subset only when its ratio
    exceeds the subset's total weight.  Applications with ``d_i == 0``
    (no misses even with no cache) get ratio ``+inf``: giving them any
    epsilon of cache is never *harmful* under the convention of Eq. 3,
    but their weight is 0 so they also never attract cache.  The
    heuristics therefore naturally leave them out of ``IC``.

    *work* overrides the total operations, as in :func:`cache_weights`.
    """
    d = workload.miss_coefficients(platform)
    weights = cache_weights(workload, platform, work=work)
    thresholds = d ** (1.0 / platform.alpha)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = weights / thresholds
    # d == 0: threshold is 0.  weight is 0 too (w*f*d == 0), 0/0 -> inf
    # by the convention described above.
    ratios = np.where(thresholds == 0.0, np.inf, ratios)
    return ratios


def is_dominant(workload: Workload, platform: Platform, subset) -> bool:
    """Check Definition 4 for the boolean mask *subset*.

    The empty subset is vacuously dominant.  The check ignores
    applications outside the subset.
    """
    mask = _as_mask(subset, workload.n)
    if not mask.any():
        return True
    weights = cache_weights(workload, platform)
    ratios = dominance_ratios(workload, platform)
    total = masked_total(weights, mask)
    return bool(np.all(ratios[mask] > total))


def violating_applications(workload: Workload, platform: Platform, subset) -> np.ndarray:
    """Indices inside *subset* whose ratio fails the dominance test.

    These are the candidates Theorem 2 says can be evicted to strictly
    improve the solution.
    """
    mask = _as_mask(subset, workload.n)
    if not mask.any():
        return np.array([], dtype=np.intp)
    weights = cache_weights(workload, platform)
    ratios = dominance_ratios(workload, platform)
    total = masked_total(weights, mask)
    bad = mask & (ratios <= total)
    return np.flatnonzero(bad)


def optimal_cache_fractions(workload: Workload, platform: Platform, subset) -> np.ndarray:
    """Closed-form optimal fractions of Theorem 3 for the mask *subset*.

    Returns the full length-``n`` vector: Theorem-3 fractions inside the
    subset (summing to 1 whenever the subset has positive total weight)
    and zeros outside.  Raises when every selected application has zero
    weight — such a subset cannot use the cache at all.
    """
    mask = _as_mask(subset, workload.n)
    x = np.zeros(workload.n)
    if not mask.any():
        return x
    weights = cache_weights(workload, platform)
    total = masked_total(weights, mask)
    if total <= 0.0:
        raise ModelError(
            "cannot partition cache: every selected application has zero weight "
            "(w*f*d == 0)"
        )
    x[mask] = weights[mask] / total
    return x


def cache_weights_batch(problem: "BatchProblem", *, work=None) -> np.ndarray:
    """Batched :func:`cache_weights`: ``(B, N)`` weights, zero in padding.

    *work* optionally overrides the per-cell total operations (same
    shape as the batch), mirroring the scalar override used by the
    online engine.
    """
    d = problem.miss_coefficients()
    w = problem.work if work is None else np.asarray(work, dtype=np.float64)
    base = w * problem.freq * d
    return pow_rowwise(base, 1.0 / (problem.alpha + 1.0))


def dominance_ratios_batch(problem: "BatchProblem", *, work=None) -> np.ndarray:
    """Batched :func:`dominance_ratios`: ``(B, N)`` Definition-4 ratios."""
    d = problem.miss_coefficients()
    weights = cache_weights_batch(problem, work=work)
    thresholds = pow_rowwise(d, 1.0 / problem.alpha)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = weights / thresholds
    ratios = np.where(thresholds == 0.0, np.inf, ratios)
    return ratios


def optimal_cache_fractions_batch(
    problem: "BatchProblem", masks: np.ndarray, *, weights=None
) -> np.ndarray:
    """Batched Theorem-3 fractions for per-row boolean *masks*.

    Rows with an empty mask get all-zero fractions (the scalar
    convention).  Pass precomputed *weights* to skip recomputing them.
    Raises when some nonempty row selects only zero-weight
    applications, like the scalar function does.
    """
    masks = np.asarray(masks, dtype=bool)
    if weights is None:
        weights = cache_weights_batch(problem)
    totals = masked_totals(weights, masks)
    bad = masks.any(axis=1) & (totals <= 0.0)
    if bad.any():
        raise ModelError(
            "cannot partition cache: every selected application has zero "
            f"weight (w*f*d == 0) in batch rows {np.flatnonzero(bad).tolist()}"
        )
    with np.errstate(invalid="ignore", divide="ignore"):
        x = np.where(masks, weights / totals[:, None], 0.0)
    return x


def cache_fractions_for_subset(
    workload: Workload, platform: Platform, subset, *, require_dominant: bool = False
) -> np.ndarray:
    """Theorem-3 fractions with an optional dominance assertion.

    Convenience wrapper used by heuristics: same as
    :func:`optimal_cache_fractions` but optionally verifies that the
    subset is dominant first (so the closed form is the true optimum of
    CoSchedCache-Part, not just of the relaxed -Ext problem).
    """
    if require_dominant and not is_dominant(workload, platform, subset):
        raise ModelError("subset is not dominant; Theorem 3 does not apply")
    return optimal_cache_fractions(workload, platform, subset)


def bounded_optimal_cache_fractions(
    coefficients,
    upper_bounds,
    alpha: float,
    *,
    budget: float = 1.0,
) -> np.ndarray:
    """Minimize ``sum_i k_i / x_i^alpha`` s.t. ``sum x <= budget``, ``x <= b``.

    Generalizes Lemma 4 to per-application *upper bounds* (footprints
    smaller than the LLC, Eq. 3's ``x_i <= a_i/Cs``).  The KKT solution
    is the waterfilling ``x_i = min(b_i, c * k_i^(1/(alpha+1)))`` with
    the scale ``c`` chosen so the budget is met; when even the bounds
    fit within the budget, ``x = b`` is optimal (cost is decreasing in
    every ``x_i``).

    Parameters
    ----------
    coefficients : array_like
        Nonnegative ``k_i`` (in Lemma 4, ``k_i = w_i f_i d_i``).  Zero
        coefficients receive zero cache.
    upper_bounds : array_like
        Per-application maxima ``b_i > 0`` (use 1.0 or the footprint
        fraction).
    alpha : float
        Power-law sensitivity in (0, 1].
    budget : float
        Total fraction available (1.0 for the whole LLC).

    Returns
    -------
    numpy.ndarray
        The optimal ``x`` (same shape as *coefficients*).
    """
    k = np.asarray(coefficients, dtype=np.float64)
    b = np.broadcast_to(np.asarray(upper_bounds, dtype=np.float64), k.shape).copy()
    if np.any(k < 0):
        raise ModelError("coefficients must be >= 0")
    if np.any(b <= 0):
        raise ModelError("upper bounds must be positive")
    if budget <= 0:
        raise ModelError("budget must be positive")
    if not 0 < alpha <= 1:
        raise ModelError(f"alpha must be in (0, 1], got {alpha}")

    x = np.zeros_like(k)
    active = k > 0
    if not active.any():
        return x
    b = np.minimum(b, budget)
    if float(b[active].sum()) <= budget:
        x[active] = b[active]
        return x

    g = k[active] ** (1.0 / (alpha + 1.0))
    bounds = b[active]
    # Saturation thresholds: item i is at its bound once c >= b_i / g_i.
    thresholds = bounds / g
    order = np.argsort(thresholds)
    g_sorted = g[order]
    b_sorted = bounds[order]
    t_sorted = thresholds[order]
    # Prefix sums: saturated mass and unsaturated weight for each cut.
    sat_mass = np.concatenate(([0.0], np.cumsum(b_sorted)))
    unsat_weight = g_sorted[::-1].cumsum()[::-1]
    unsat_weight = np.concatenate((unsat_weight, [0.0]))
    m = len(g_sorted)
    for cut in range(m):
        # Items order[:cut] saturated, the rest scale with c.
        if unsat_weight[cut] == 0.0:
            continue
        c = (budget - sat_mass[cut]) / unsat_weight[cut]
        lo = t_sorted[cut - 1] if cut > 0 else 0.0
        if lo <= c <= t_sorted[cut] * (1 + 1e-15):
            vals = np.minimum(b_sorted, c * g_sorted)
            out_active = np.empty(m)
            out_active[order] = vals
            x[active] = out_active
            return x
    # All saturated (numerically): fall back to the bounds.
    x[active] = bounds
    return x


def _as_mask(subset, n: int) -> np.ndarray:
    mask = np.asarray(subset)
    if mask.dtype != bool:
        idx = mask.astype(np.intp, copy=False)
        mask = np.zeros(n, dtype=bool)
        mask[idx] = True
    if mask.shape != (n,):
        raise ModelError(f"subset mask must have shape ({n},), got {mask.shape}")
    return mask
