"""The execution-time model of Eq. 2, vectorized over applications.

For application ``Ti`` on ``pi`` processors with a fraction ``xi`` of
the LLC:

    ``Exe_i(pi, xi) = Fl_i(pi) * (1 + fi * (ls + ll * m_i(xi)))``

where ``Fl_i(pi) = si*wi + (1-si)*wi/pi`` is Amdahl's per-processor
operation count and ``m_i(xi)`` is the power-law miss rate of the
allocation, clamped by the memory footprint (second branch of Eq. 2).

The module exposes both a scalar convenience entry point
(:func:`execution_time_single`) and the vectorized
:func:`execution_times` used by schedules, heuristics, and experiment
sweeps.
"""

from __future__ import annotations

import numpy as np

from ..types import ModelError
from .application import Application, Workload
from .platform import Platform
from .powerlaw import effective_cache, miss_rate

__all__ = [
    "amdahl_flops",
    "amdahl_speedup",
    "miss_rates",
    "access_cost_factor",
    "sequential_times",
    "execution_times",
    "execution_time_single",
]


def amdahl_flops(work, seq, procs):
    """Per-processor operation count ``Fl(p) = s*w + (1-s)*w/p``.

    Broadcasts over its arguments.  ``procs`` must be positive.
    """
    work = np.asarray(work, dtype=np.float64)
    seq = np.asarray(seq, dtype=np.float64)
    procs = np.asarray(procs, dtype=np.float64)
    if np.any(procs <= 0):
        raise ModelError("processor allocation must be positive")
    out = seq * work + (1.0 - seq) * work / procs
    if out.ndim == 0:
        return float(out)
    return out


def amdahl_speedup(seq, procs):
    """Amdahl speedup ``1 / (s + (1-s)/p)``."""
    seq = np.asarray(seq, dtype=np.float64)
    procs = np.asarray(procs, dtype=np.float64)
    if np.any(procs <= 0):
        raise ModelError("processor allocation must be positive")
    out = 1.0 / (seq + (1.0 - seq) / procs)
    if out.ndim == 0:
        return float(out)
    return out


def miss_rates(workload: Workload, platform: Platform, cache_fractions) -> np.ndarray:
    """Per-application miss rates for the given cache fractions.

    Applies both the power law and the footprint clamp: the bytes that
    actually count are ``min(x_i * Cs, a_i)``.
    """
    x = np.asarray(cache_fractions, dtype=np.float64)
    if x.shape != (workload.n,):
        raise ModelError(f"cache_fractions must have shape ({workload.n},), got {x.shape}")
    if np.any(x < 0):
        raise ModelError("cache fractions must be >= 0")
    cache_bytes = effective_cache(x * platform.cache_size, workload.footprint)
    return np.asarray(
        miss_rate(workload.miss0, workload.baseline_cache, cache_bytes, platform.alpha)
    )


def access_cost_factor(workload: Workload, platform: Platform, cache_fractions) -> np.ndarray:
    """Per-operation cost multiplier ``1 + f*(ls + ll*m(x))`` of Eq. 2."""
    m = miss_rates(workload, platform, cache_fractions)
    return 1.0 + workload.freq * (
        platform.latency_cache + platform.latency_memory * m
    )


def sequential_times(workload: Workload, platform: Platform, cache_fractions) -> np.ndarray:
    """``Exeseq_i(x_i) = Exe_i(1, x_i)`` for every application.

    This is the quantity the theory calls ``c_i``: total work times the
    access-cost factor, on a single processor.
    """
    return workload.work * access_cost_factor(workload, platform, cache_fractions)


def execution_times(
    workload: Workload,
    platform: Platform,
    procs,
    cache_fractions,
) -> np.ndarray:
    """Vector of ``Exe_i(p_i, x_i)`` (Eq. 2) for the whole workload.

    Parameters
    ----------
    workload : Workload
        Applications to evaluate.
    platform : Platform
        Machine parameters.
    procs : array_like
        Positive processor allocations, shape ``(n,)``.
    cache_fractions : array_like
        Cache fractions in ``[0, 1]``, shape ``(n,)``.

    Returns
    -------
    numpy.ndarray
        Execution times, shape ``(n,)``.
    """
    p = np.asarray(procs, dtype=np.float64)
    if p.shape != (workload.n,):
        raise ModelError(f"procs must have shape ({workload.n},), got {p.shape}")
    flops = amdahl_flops(workload.work, workload.seq, p)
    return flops * access_cost_factor(workload, platform, cache_fractions)


def execution_time_single(
    app: Application, platform: Platform, procs: float, cache_fraction: float
) -> float:
    """Scalar ``Exe(p, x)`` for one application (convenience wrapper)."""
    wl = Workload([app])
    return float(
        execution_times(wl, platform, np.array([procs]), np.array([cache_fraction]))[0]
    )
