"""The six dominant-partition heuristics of Section 5.

Two greedy strategies build a dominant subset ``IC``:

* :func:`dominant_partition` (Algorithm 1) starts from ``IC = I`` and
  evicts applications until Definition 4 holds;
* :func:`dominant_rev_partition` (Algorithm 2) starts from ``IC = {}``
  and adds applications while the subset stays dominant.

Each is parameterized by a *choice function* picking the next
application to evict/add: ``Random``, ``MinRatio`` (smallest dominance
ratio first) or ``MaxRatio`` (largest first).  The paper's intuition —
confirmed by its Fig. 2 and our benches — is that ``Dominant`` pairs
well with ``MinRatio`` (evict the worst offenders) and ``DominantRev``
with ``MaxRatio`` (admit the strongest candidates).

Note on the paper's pseudo-code: the loop guards printed in Algorithms
1 and 2 are inconsistent with Definition 4 (they would exit/continue on
the *dominant* condition).  We implement the intent stated in the
text: Algorithm 1 removes applications **while the subset is not
dominant**; Algorithm 2 adds applications **while the grown subset
remains dominant**.

Once ``IC`` is chosen, the schedule is completed with the Theorem-3
cache fractions and the equal-finish processor allocation
(:func:`repro.core.processor_allocation.build_equal_finish_schedule`).
"""

from __future__ import annotations

from typing import Callable, Literal, Sequence

import numpy as np

from ..types import ModelError
from .application import Workload
from .batch import BatchProblem, BatchSchedule, equal_finish_allocation_batch
from .dominance import (
    cache_weights,
    cache_weights_batch,
    dominance_ratios,
    dominance_ratios_batch,
    masked_total,
    masked_totals,
    optimal_cache_fractions,
    optimal_cache_fractions_batch,
)
from .platform import Platform
from .processor_allocation import build_equal_finish_schedule
from .schedule import Schedule

__all__ = [
    "ChoiceName",
    "make_choice",
    "evict_until_dominant",
    "evict_until_dominant_batch",
    "dominant_partition",
    "dominant_partition_batch",
    "dominant_rev_partition",
    "dominant_rev_partition_batch",
    "dominant_schedule",
    "dominant_schedule_batch",
    "DOMINANT_HEURISTICS",
]

ChoiceName = Literal["random", "minratio", "maxratio"]

#: choice(candidates, ratios, rng) -> index into candidates
ChoiceFn = Callable[[np.ndarray, np.ndarray, np.random.Generator], int]


def _choice_random(candidates: np.ndarray, ratios: np.ndarray,
                   rng: np.random.Generator) -> int:
    return int(rng.integers(len(candidates)))


def _choice_minratio(candidates: np.ndarray, ratios: np.ndarray,
                     rng: np.random.Generator) -> int:
    return int(np.argmin(ratios[candidates]))


def _choice_maxratio(candidates: np.ndarray, ratios: np.ndarray,
                     rng: np.random.Generator) -> int:
    return int(np.argmax(ratios[candidates]))


_CHOICES: dict[str, ChoiceFn] = {
    "random": _choice_random,
    "minratio": _choice_minratio,
    "maxratio": _choice_maxratio,
}


def make_choice(name: ChoiceName) -> ChoiceFn:
    """Look up a choice function by its paper name (case-insensitive)."""
    try:
        return _CHOICES[name.lower()]
    except KeyError:
        raise ModelError(
            f"unknown choice function {name!r}; expected one of {sorted(_CHOICES)}"
        ) from None


def evict_until_dominant(
    weights: np.ndarray,
    ratios: np.ndarray,
    mask: np.ndarray,
    choice: ChoiceName | ChoiceFn = "minratio",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Algorithm 1's eviction core over raw weight / ratio arrays.

    Starting from *mask*, applications are evicted (picked by the
    *choice* function among the current members) until Definition 4
    holds: every member's dominance ratio exceeds the subset's total
    weight.  Shared by :func:`dominant_partition` (full work) and the
    online engine's remaining-work repartitioning — one eviction loop,
    one set of boundary semantics.

    Returns a new mask; the input is not mutated.
    """
    choice_fn = make_choice(choice) if isinstance(choice, str) else choice
    rng = rng if rng is not None else np.random.default_rng()

    mask = np.asarray(mask, dtype=bool).copy()
    # For the deterministic choices the eviction order is fixed up
    # front: MinRatio walks the members by ascending ratio, MaxRatio by
    # descending.  A stable sort breaks ties toward the lowest index,
    # exactly like the per-step argmin/argmax over the shrinking
    # candidate set — but one O(n log n) sort replaces the O(n^2)
    # rescans.
    walk = _eviction_walk(ratios, mask, choice_fn)
    while mask.any():
        total = masked_total(weights, mask)
        violating = mask & (ratios <= total)
        if not violating.any():
            break
        if walk is not None:
            k = next(walk)
        else:
            candidates = np.flatnonzero(mask)
            k = candidates[choice_fn(candidates, ratios, rng)]
        mask[k] = False
    return mask


def _eviction_walk(ratios, mask, choice_fn):
    """Presorted pick order for the deterministic choice functions.

    Returns an iterator of member indices (ascending ratio for
    MinRatio, descending for MaxRatio, ties toward the lowest index) or
    None for choices whose picks depend on runtime state.
    """
    if choice_fn is _choice_minratio:
        keys = ratios
    elif choice_fn is _choice_maxratio:
        keys = -ratios
    else:
        return None
    members = np.flatnonzero(mask)
    return iter(members[np.argsort(keys[members], kind="stable")])


def dominant_partition(
    workload: Workload,
    platform: Platform,
    choice: ChoiceName | ChoiceFn = "minratio",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Algorithm 1: start with every application, evict until dominant.

    Returns the boolean mask of ``IC``.  Applications with zero weight
    (``w*f*d == 0`` — they cannot profit from cache) are evicted first
    unconditionally; they would otherwise linger with ratio ``inf``
    while contributing nothing.
    """
    weights = cache_weights(workload, platform)
    ratios = dominance_ratios(workload, platform)
    return evict_until_dominant(weights, ratios, weights > 0.0, choice, rng)


def dominant_rev_partition(
    workload: Workload,
    platform: Platform,
    choice: ChoiceName | ChoiceFn = "maxratio",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Algorithm 2: start empty, add applications while still dominant.

    Candidates are drawn from the applications with positive weight;
    the growth stops at the first candidate whose addition breaks
    Definition 4 (greedy, no backtracking — as in the paper).
    """
    choice_fn = make_choice(choice) if isinstance(choice, str) else choice
    rng = rng if rng is not None else np.random.default_rng()

    weights = cache_weights(workload, platform)
    ratios = dominance_ratios(workload, platform)

    remaining = weights > 0.0
    mask = np.zeros(workload.n, dtype=bool)
    total = 0.0
    walk = _eviction_walk(ratios, remaining, choice_fn)
    if walk is not None:
        # Deterministic choices admit candidates in presorted order
        # (see _eviction_walk), so the whole growth is one walk.
        for k in walk:
            new_total = total + float(weights[k])
            trial = mask.copy()
            trial[k] = True
            if np.all(ratios[trial] > new_total):
                mask = trial
                total = new_total
            else:
                break
        return mask
    while remaining.any():
        candidates = np.flatnonzero(remaining)
        k = candidates[choice_fn(candidates, ratios, rng)]
        new_total = total + float(weights[k])
        trial = mask.copy()
        trial[k] = True
        if np.all(ratios[trial] > new_total):
            mask = trial
            total = new_total
            remaining[k] = False
        else:
            break
    return mask


def dominant_schedule(
    workload: Workload,
    platform: Platform,
    *,
    strategy: Literal["dominant", "dominantrev"] = "dominant",
    choice: ChoiceName | ChoiceFn = "minratio",
    rng: np.random.Generator | None = None,
) -> Schedule:
    """Full heuristic: partition, Theorem-3 fractions, equal-finish procs."""
    if strategy == "dominant":
        mask = dominant_partition(workload, platform, choice, rng)
    elif strategy == "dominantrev":
        mask = dominant_rev_partition(workload, platform, choice, rng)
    else:
        raise ModelError(f"unknown strategy {strategy!r}")
    x = optimal_cache_fractions(workload, platform, mask) if mask.any() else np.zeros(workload.n)
    return build_equal_finish_schedule(workload, platform, x)


def _row_rngs(rngs, B: int) -> list:
    """Normalize a per-row rng sequence (None entries filled lazily)."""
    if rngs is None:
        return [None] * B
    rngs = list(rngs)
    if len(rngs) != B:
        raise ModelError(f"expected {B} per-row rngs, got {len(rngs)}")
    return rngs


def _pick_rows(masks_rows, ratios_rows, rows, choice_fn, rngs, ratios):
    """Per-needy-row victim/candidate pick, vectorized when possible.

    For MinRatio/MaxRatio one argmin/argmax over masked-filled rows
    reproduces the scalar pick including first-occurrence tie-breaks;
    Random (and custom choices) consume each row's own generator with
    exactly the calls the scalar loop would make.
    """
    if choice_fn is _choice_minratio:
        k = np.argmin(np.where(masks_rows, ratios_rows, np.inf), axis=1)
    elif choice_fn is _choice_maxratio:
        k = np.argmax(np.where(masks_rows, ratios_rows, -np.inf), axis=1)
    else:
        k = np.empty(len(rows), dtype=np.intp)
        for j, r in enumerate(rows):
            candidates = np.flatnonzero(masks_rows[j])
            rng = rngs[r]
            if rng is None:
                rng = rngs[r] = np.random.default_rng()
            k[j] = candidates[choice_fn(candidates, ratios[r], rng)]
        return k
    # Degenerate rows whose members all carry the fill value can land
    # outside the mask; redirect to the first member (the scalar
    # argmin/argmax over candidates would pick exactly that).
    bad = ~masks_rows[np.arange(len(rows)), k]
    if bad.any():
        k = np.where(bad, masks_rows.argmax(axis=1), k)
    return k


def evict_until_dominant_batch(
    weights: np.ndarray,
    ratios: np.ndarray,
    masks: np.ndarray,
    choice: ChoiceName | ChoiceFn = "minratio",
    rngs: Sequence[np.random.Generator | None] | None = None,
) -> np.ndarray:
    """Batched Algorithm-1 eviction over masked ``(B, N)`` arrays.

    One iteration of the outer loop advances *every* row that still
    violates Definition 4 by one eviction — subset totals, violation
    tests, and MinRatio/MaxRatio victim picks are single NumPy calls
    over the batch, so the Python loop runs O(max evictions) times
    instead of O(total evictions).  Rows follow exactly the scalar
    :func:`evict_until_dominant` trajectory (same totals, same
    tie-breaks, same per-row rng draws), so the result is bit-identical
    per row.

    Returns a new mask array; the input is not mutated.
    """
    choice_fn = make_choice(choice) if isinstance(choice, str) else choice
    masks = np.array(masks, dtype=bool, copy=True)
    B, _ = masks.shape
    rngs = _row_rngs(rngs, B)
    while True:
        totals = masked_totals(weights, masks)
        violating = masks & (ratios <= totals[:, None])
        need = violating.any(axis=1)
        if not need.any():
            break
        rows = np.flatnonzero(need)
        k = _pick_rows(masks[rows], ratios[rows], rows, choice_fn, rngs, ratios)
        masks[rows, k] = False
    return masks


def dominant_partition_batch(
    problem: BatchProblem,
    choice: ChoiceName | ChoiceFn = "minratio",
    rngs: Sequence[np.random.Generator | None] | None = None,
) -> np.ndarray:
    """Batched Algorithm 1: per-row ``IC`` masks, shape ``(B, N)``."""
    weights = cache_weights_batch(problem)
    ratios = dominance_ratios_batch(problem)
    start = (weights > 0.0) & problem.valid
    return evict_until_dominant_batch(weights, ratios, start, choice, rngs)


def dominant_rev_partition_batch(
    problem: BatchProblem,
    choice: ChoiceName | ChoiceFn = "maxratio",
    rngs: Sequence[np.random.Generator | None] | None = None,
) -> np.ndarray:
    """Batched Algorithm 2: grow per-row subsets while dominant.

    Each outer iteration admits (or rejects, stopping that row) one
    candidate per still-growing row; totals grow by the same float
    additions as the scalar loop, so rows match bit for bit.
    """
    choice_fn = make_choice(choice) if isinstance(choice, str) else choice
    weights = cache_weights_batch(problem)
    ratios = dominance_ratios_batch(problem)

    remaining = (weights > 0.0) & problem.valid
    B, N = remaining.shape
    rngs = _row_rngs(rngs, B)
    masks = np.zeros((B, N), dtype=bool)
    totals = np.zeros(B)
    active = remaining.any(axis=1)
    while active.any():
        rows = np.flatnonzero(active)
        k = _pick_rows(remaining[rows], ratios[rows], rows, choice_fn, rngs,
                       ratios)
        new_totals = totals[rows] + weights[rows, k]
        trial = masks[rows]
        trial[np.arange(len(rows)), k] = True  # masks[rows] is a copy
        ok = ~(trial & (ratios[rows] <= new_totals[:, None])).any(axis=1)
        okrows = rows[ok]
        kok = k[ok]
        masks[okrows, kok] = True
        totals[okrows] = new_totals[ok]
        remaining[okrows, kok] = False
        active[rows[~ok]] = False
        active[okrows] = remaining[okrows].any(axis=1)
    return masks


def dominant_schedule_batch(
    problem: BatchProblem,
    *,
    strategy: Literal["dominant", "dominantrev"] = "dominant",
    choice: ChoiceName | ChoiceFn = "minratio",
    rngs: Sequence[np.random.Generator | None] | None = None,
) -> BatchSchedule:
    """Batched :func:`dominant_schedule`: one solve for ``B`` instances.

    Partition masks, Theorem-3 fractions, and the equal-finish
    processor allocation are each one vectorized pass over the batch;
    the result stays in array form (see
    :class:`~repro.core.batch.BatchSchedule`) and each row is
    bit-identical to running :func:`dominant_schedule` on that instance
    alone with the corresponding rng.
    """
    if strategy == "dominant":
        masks = dominant_partition_batch(problem, choice, rngs)
    elif strategy == "dominantrev":
        masks = dominant_rev_partition_batch(problem, choice, rngs)
    else:
        raise ModelError(f"unknown strategy {strategy!r}")
    x = optimal_cache_fractions_batch(problem, masks)
    procs, _ = equal_finish_allocation_batch(problem, x)
    return BatchSchedule(problem, procs, x)


#: The six heuristic names of the paper, mapping to (strategy, choice).
DOMINANT_HEURISTICS: dict[str, tuple[str, str]] = {
    "dominant-random": ("dominant", "random"),
    "dominant-minratio": ("dominant", "minratio"),
    "dominant-maxratio": ("dominant", "maxratio"),
    "dominantrev-random": ("dominantrev", "random"),
    "dominantrev-minratio": ("dominantrev", "minratio"),
    "dominantrev-maxratio": ("dominantrev", "maxratio"),
}
