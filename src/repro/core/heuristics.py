"""The six dominant-partition heuristics of Section 5.

Two greedy strategies build a dominant subset ``IC``:

* :func:`dominant_partition` (Algorithm 1) starts from ``IC = I`` and
  evicts applications until Definition 4 holds;
* :func:`dominant_rev_partition` (Algorithm 2) starts from ``IC = {}``
  and adds applications while the subset stays dominant.

Each is parameterized by a *choice function* picking the next
application to evict/add: ``Random``, ``MinRatio`` (smallest dominance
ratio first) or ``MaxRatio`` (largest first).  The paper's intuition —
confirmed by its Fig. 2 and our benches — is that ``Dominant`` pairs
well with ``MinRatio`` (evict the worst offenders) and ``DominantRev``
with ``MaxRatio`` (admit the strongest candidates).

Note on the paper's pseudo-code: the loop guards printed in Algorithms
1 and 2 are inconsistent with Definition 4 (they would exit/continue on
the *dominant* condition).  We implement the intent stated in the
text: Algorithm 1 removes applications **while the subset is not
dominant**; Algorithm 2 adds applications **while the grown subset
remains dominant**.

Once ``IC`` is chosen, the schedule is completed with the Theorem-3
cache fractions and the equal-finish processor allocation
(:func:`repro.core.processor_allocation.build_equal_finish_schedule`).
"""

from __future__ import annotations

from typing import Callable, Literal

import numpy as np

from ..types import ModelError
from .application import Workload
from .dominance import cache_weights, dominance_ratios, optimal_cache_fractions
from .platform import Platform
from .processor_allocation import build_equal_finish_schedule
from .schedule import Schedule

__all__ = [
    "ChoiceName",
    "make_choice",
    "evict_until_dominant",
    "dominant_partition",
    "dominant_rev_partition",
    "dominant_schedule",
    "DOMINANT_HEURISTICS",
]

ChoiceName = Literal["random", "minratio", "maxratio"]

#: choice(candidates, ratios, rng) -> index into candidates
ChoiceFn = Callable[[np.ndarray, np.ndarray, np.random.Generator], int]


def _choice_random(candidates: np.ndarray, ratios: np.ndarray,
                   rng: np.random.Generator) -> int:
    return int(rng.integers(len(candidates)))


def _choice_minratio(candidates: np.ndarray, ratios: np.ndarray,
                     rng: np.random.Generator) -> int:
    return int(np.argmin(ratios[candidates]))


def _choice_maxratio(candidates: np.ndarray, ratios: np.ndarray,
                     rng: np.random.Generator) -> int:
    return int(np.argmax(ratios[candidates]))


_CHOICES: dict[str, ChoiceFn] = {
    "random": _choice_random,
    "minratio": _choice_minratio,
    "maxratio": _choice_maxratio,
}


def make_choice(name: ChoiceName) -> ChoiceFn:
    """Look up a choice function by its paper name (case-insensitive)."""
    try:
        return _CHOICES[name.lower()]
    except KeyError:
        raise ModelError(
            f"unknown choice function {name!r}; expected one of {sorted(_CHOICES)}"
        ) from None


def evict_until_dominant(
    weights: np.ndarray,
    ratios: np.ndarray,
    mask: np.ndarray,
    choice: ChoiceName | ChoiceFn = "minratio",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Algorithm 1's eviction core over raw weight / ratio arrays.

    Starting from *mask*, applications are evicted (picked by the
    *choice* function among the current members) until Definition 4
    holds: every member's dominance ratio exceeds the subset's total
    weight.  Shared by :func:`dominant_partition` (full work) and the
    online engine's remaining-work repartitioning — one eviction loop,
    one set of boundary semantics.

    Returns a new mask; the input is not mutated.
    """
    choice_fn = make_choice(choice) if isinstance(choice, str) else choice
    rng = rng if rng is not None else np.random.default_rng()

    mask = np.asarray(mask, dtype=bool).copy()
    while mask.any():
        total = float(weights[mask].sum())
        violating = mask & (ratios <= total)
        if not violating.any():
            break
        candidates = np.flatnonzero(mask)
        k = candidates[choice_fn(candidates, ratios, rng)]
        mask[k] = False
    return mask


def dominant_partition(
    workload: Workload,
    platform: Platform,
    choice: ChoiceName | ChoiceFn = "minratio",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Algorithm 1: start with every application, evict until dominant.

    Returns the boolean mask of ``IC``.  Applications with zero weight
    (``w*f*d == 0`` — they cannot profit from cache) are evicted first
    unconditionally; they would otherwise linger with ratio ``inf``
    while contributing nothing.
    """
    weights = cache_weights(workload, platform)
    ratios = dominance_ratios(workload, platform)
    return evict_until_dominant(weights, ratios, weights > 0.0, choice, rng)


def dominant_rev_partition(
    workload: Workload,
    platform: Platform,
    choice: ChoiceName | ChoiceFn = "maxratio",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Algorithm 2: start empty, add applications while still dominant.

    Candidates are drawn from the applications with positive weight;
    the growth stops at the first candidate whose addition breaks
    Definition 4 (greedy, no backtracking — as in the paper).
    """
    choice_fn = make_choice(choice) if isinstance(choice, str) else choice
    rng = rng if rng is not None else np.random.default_rng()

    weights = cache_weights(workload, platform)
    ratios = dominance_ratios(workload, platform)

    remaining = weights > 0.0
    mask = np.zeros(workload.n, dtype=bool)
    total = 0.0
    while remaining.any():
        candidates = np.flatnonzero(remaining)
        k = candidates[choice_fn(candidates, ratios, rng)]
        new_total = total + float(weights[k])
        trial = mask.copy()
        trial[k] = True
        if np.all(ratios[trial] > new_total):
            mask = trial
            total = new_total
            remaining[k] = False
        else:
            break
    return mask


def dominant_schedule(
    workload: Workload,
    platform: Platform,
    *,
    strategy: Literal["dominant", "dominantrev"] = "dominant",
    choice: ChoiceName | ChoiceFn = "minratio",
    rng: np.random.Generator | None = None,
) -> Schedule:
    """Full heuristic: partition, Theorem-3 fractions, equal-finish procs."""
    if strategy == "dominant":
        mask = dominant_partition(workload, platform, choice, rng)
    elif strategy == "dominantrev":
        mask = dominant_rev_partition(workload, platform, choice, rng)
    else:
        raise ModelError(f"unknown strategy {strategy!r}")
    x = optimal_cache_fractions(workload, platform, mask) if mask.any() else np.zeros(workload.n)
    return build_equal_finish_schedule(workload, platform, x)


#: The six heuristic names of the paper, mapping to (strategy, choice).
DOMINANT_HEURISTICS: dict[str, tuple[str, str]] = {
    "dominant-random": ("dominant", "random"),
    "dominant-minratio": ("dominant", "minratio"),
    "dominant-maxratio": ("dominant", "maxratio"),
    "dominantrev-random": ("dominantrev", "random"),
    "dominantrev-minratio": ("dominantrev", "minratio"),
    "dominantrev-maxratio": ("dominantrev", "maxratio"),
}
