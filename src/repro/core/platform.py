"""Platform model: processors sharing a partitionable last-level cache.

The paper's architecture (Section 3) is a multi-core node with ``p``
homogeneous processors, a small fast storage ``Ss`` of size ``Cs``
(the shared LLC, LRU-managed, partitionable a la Intel CAT) with access
latency ``ls``, and an infinite slow storage with latency ``ll``.  The
power-law sensitivity ``alpha`` is a property of the miss-rate model
and is carried on the platform because every application shares it in
the paper's experiments (``alpha = 0.5``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..types import ModelError

__all__ = ["Platform"]


@dataclass(frozen=True, slots=True)
class Platform:
    """A cache-partitioned execution platform.

    Parameters
    ----------
    p : float
        Number of identical processors.  Rational (fractional) processor
        counts are allowed throughout the model, so this is a float; the
        paper uses ``p = 256``.
    cache_size : float
        Size ``Cs`` of the shared last-level cache, in bytes.
    latency_cache : float
        ``ls``: time per access served by the LLC (paper: 0.17).
    latency_memory : float
        ``ll``: *additional* time per access on an LLC miss (paper: 1).
    alpha : float
        Power-law sensitivity factor (paper: 0.5, literature range
        0.3-0.7).
    name : str
        Optional human-readable label (e.g. ``"taihulight"``).

    Notes
    -----
    Every access costs ``ls``; a miss costs ``ls + ll``.  This matches
    Eq. (2) of the paper where the per-operation access cost is
    ``fi * (ls + ll * miss_rate)``.
    """

    p: float
    cache_size: float
    latency_cache: float = 0.17
    latency_memory: float = 1.0
    alpha: float = 0.5
    name: str = field(default="custom", compare=False)

    def __post_init__(self) -> None:
        if not (self.p > 0 and math.isfinite(self.p)):
            raise ModelError(f"processor count p must be positive and finite, got {self.p}")
        if not (self.cache_size > 0 and math.isfinite(self.cache_size)):
            raise ModelError(f"cache_size must be positive and finite, got {self.cache_size}")
        if self.latency_cache < 0 or not math.isfinite(self.latency_cache):
            raise ModelError(f"latency_cache must be >= 0, got {self.latency_cache}")
        if self.latency_memory < 0 or not math.isfinite(self.latency_memory):
            raise ModelError(f"latency_memory must be >= 0, got {self.latency_memory}")
        if not (0 < self.alpha <= 1):
            raise ModelError(f"alpha must lie in (0, 1], got {self.alpha}")

    @property
    def miss_penalty_ratio(self) -> float:
        """Ratio ``(ls + ll) / ls`` — how much worse a miss is than a hit.

        The paper enforces a ratio of about 5.88 / 1 -> with ls=0.17,
        ll=1 the full-miss access cost is 1.17 vs 0.17, i.e. ~6.9x; the
        paper's quoted "ratio of 5.88" is ``ll / ls = 1 / 0.17``.
        """
        if self.latency_cache == 0:
            return math.inf
        return self.latency_memory / self.latency_cache

    def with_processors(self, p: float) -> "Platform":
        """Return a copy of this platform with a different processor count."""
        return replace(self, p=p)

    def with_cache_size(self, cache_size: float) -> "Platform":
        """Return a copy of this platform with a different LLC size."""
        return replace(self, cache_size=cache_size)

    def with_latencies(self, *, latency_cache: float | None = None,
                       latency_memory: float | None = None) -> "Platform":
        """Return a copy with one or both latencies replaced."""
        return replace(
            self,
            latency_cache=self.latency_cache if latency_cache is None else latency_cache,
            latency_memory=self.latency_memory if latency_memory is None else latency_memory,
        )
