"""Power law of cache misses (Eq. 1) and its footprint-aware variant.

The model: if a workload has miss rate ``m0`` on a baseline cache of
size ``C0``, its miss rate on a cache of size ``C`` is

    ``m(C) = min(1, m0 * (C0 / C)^alpha)``

with sensitivity ``alpha`` in (0, 1].  A cache allocation larger than
the application's memory footprint ``a`` brings no further benefit, so
the effective cache size is ``min(C, a)`` (second branch of Eq. 2).

All functions are numpy ufunc-style: scalars in, scalar out; arrays in,
array out (with broadcasting).
"""

from __future__ import annotations

import numpy as np

from ..types import ModelError

__all__ = [
    "miss_rate",
    "miss_rate_fraction",
    "effective_cache",
    "useful_fraction_bounds",
    "cache_for_target_miss_rate",
    "pow_rowwise",
]


def pow_rowwise(base: np.ndarray, exponents: np.ndarray) -> np.ndarray:
    """``base ** exponents[:, None]``, bit-identical per row to the
    scalar expression ``row ** float(exponent)``.

    NumPy special-cases a *Python-float scalar* exponent in
    ``ndarray.__pow__`` (e.g. ``x ** 2.0`` becomes ``square``,
    ``x ** 0.5`` becomes ``sqrt``) — fast paths a broadcast exponent
    *array* never takes, and whose results can differ from the generic
    ``pow`` ufunc in the last ulp.  The batch modules therefore raise
    to per-row powers through this helper: one vectorized ``**`` with a
    genuine Python-float exponent per *distinct* exponent value, which
    reproduces whatever fast path the scalar code hit.  Batches usually
    share one platform ``alpha``, so this is one pass in practice.
    """
    exponents = np.asarray(exponents, dtype=np.float64)
    out = np.empty_like(base, dtype=np.float64)
    for e in np.unique(exponents):
        rows = exponents == e
        out[rows] = base[rows] ** float(e)
    return out


def miss_rate(m0, c0, cache, alpha):
    """Miss rate on a cache of *cache* bytes (Eq. 1).

    Parameters
    ----------
    m0 : array_like
        Baseline miss rate(s) in [0, 1].
    c0 : array_like
        Baseline cache size(s), bytes, > 0.
    cache : array_like
        Allocated cache size(s), bytes, >= 0.  Zero means "no cache":
        the miss rate saturates at 1 (if ``m0 > 0``).
    alpha : float
        Power-law sensitivity in (0, 1].

    Returns
    -------
    numpy.ndarray or float
        ``min(1, m0 * (c0 / cache)^alpha)`` with the convention that a
        zero allocation yields a miss rate of 1 for any ``m0 > 0`` and
        0 when ``m0 == 0`` (an application that never misses anywhere).
    """
    m0 = np.asarray(m0, dtype=np.float64)
    c0 = np.asarray(c0, dtype=np.float64)
    cache = np.asarray(cache, dtype=np.float64)
    if np.any(m0 < 0) or np.any(m0 > 1):
        raise ModelError("m0 must lie in [0, 1]")
    if np.any(c0 <= 0):
        raise ModelError("baseline cache size c0 must be positive")
    if np.any(cache < 0):
        raise ModelError("cache size must be >= 0")
    if not 0 < alpha <= 1:
        raise ModelError(f"alpha must be in (0, 1], got {alpha}")

    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        scaled = m0 * (c0 / cache) ** alpha
    out = np.minimum(1.0, scaled)
    # cache == 0 with m0 == 0 produces 0 * inf = nan; define it as 0.
    out = np.where(m0 == 0.0, 0.0, out)
    if out.ndim == 0:
        return float(out)
    return out


def miss_rate_fraction(d, x, alpha):
    """Miss rate from the miss coefficient ``d`` and cache fraction ``x``.

    This is Eq. 1 rewritten for a *fraction* ``x`` of a platform LLC:
    ``min(1, d / x^alpha)`` where ``d = m0 * (C0 / Cs)^alpha`` (see
    :meth:`repro.core.application.Application.miss_coefficient`).
    ``x == 0`` yields 1 (or 0 when ``d == 0``).
    """
    d = np.asarray(d, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if np.any(d < 0):
        raise ModelError("miss coefficient d must be >= 0")
    if np.any(x < 0) or np.any(x > 1):
        raise ModelError("cache fraction x must lie in [0, 1]")
    if not 0 < alpha <= 1:
        raise ModelError(f"alpha must be in (0, 1], got {alpha}")

    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.minimum(1.0, d / x**alpha)
    out = np.where(d == 0.0, 0.0, out)
    if out.ndim == 0:
        return float(out)
    return out


def effective_cache(cache, footprint):
    """Clamp an allocation to the application's memory footprint.

    Cache beyond the footprint is wasted (second branch of Eq. 2):
    the application's resident set simply fits.
    """
    cache = np.asarray(cache, dtype=np.float64)
    footprint = np.asarray(footprint, dtype=np.float64)
    if np.any(footprint <= 0):
        raise ModelError("footprint must be positive")
    out = np.minimum(cache, footprint)
    if out.ndim == 0:
        return float(out)
    return out


def useful_fraction_bounds(d, footprint, cache_size, alpha):
    """Per-application open/closed bounds on useful cache fractions.

    Returns the pair ``(lo, hi)`` of Eq. 3: a nonzero allocation is
    only useful when ``d^(1/alpha) < x <= a / Cs``.  Any ``x`` in
    ``(0, lo]`` is wasted (miss rate stays 1) and any ``x > hi`` is
    wasted (footprint already fits).  When ``lo >= hi`` the application
    should receive no cache at all.

    Parameters
    ----------
    d : array_like
        Miss coefficient(s) ``d_i``.
    footprint : array_like
        Footprint(s) ``a_i`` in bytes (may be ``inf``).
    cache_size : float
        Platform LLC size ``Cs`` in bytes.
    alpha : float
        Power-law sensitivity.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        Arrays ``lo = d^(1/alpha)`` and ``hi = min(1, a / Cs)``.
    """
    d = np.asarray(d, dtype=np.float64)
    footprint = np.asarray(footprint, dtype=np.float64)
    if cache_size <= 0:
        raise ModelError("cache_size must be positive")
    if not 0 < alpha <= 1:
        raise ModelError(f"alpha must be in (0, 1], got {alpha}")
    lo = d ** (1.0 / alpha)
    hi = np.minimum(1.0, footprint / cache_size)
    return lo, hi


def cache_for_target_miss_rate(m0, c0, target, alpha):
    """Invert Eq. 1: cache bytes needed to reach miss rate *target*.

    Returns ``c0 * (m0 / target)^(1/alpha)``; raises when the target is
    not reachable (``target <= 0``) or trivially met (``target >= 1``
    needs no cache, returns 0).
    """
    m0 = np.asarray(m0, dtype=np.float64)
    c0 = np.asarray(c0, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if np.any(target <= 0):
        raise ModelError("target miss rate must be positive")
    out = np.where(target >= 1.0, 0.0, c0 * (m0 / target) ** (1.0 / alpha))
    if out.ndim == 0:
        return float(out)
    return out
