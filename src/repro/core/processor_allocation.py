"""Processor allocation: Lemma 2 and the equal-finish binary search.

Two regimes:

* **Perfectly parallel** (``s_i = 0``): Lemma 2 gives the closed form
  ``p_i = p * c_i / sum_j c_j`` with ``c_i = Exe_i(1, x_i)``, and the
  common makespan is ``sum_i c_i / p`` (Lemma 3).

* **Amdahl** (``s_i > 0`` allowed): Section 5 of the paper imposes the
  equal-finish property and solves ``sum_i (1-s_i) / (K/c_i - s_i) = p``
  for the makespan ``K`` by binary search; each application then gets
  ``p_i = (1-s_i) / (K/c_i - s_i)`` processors.

The left-hand side ``g(K)`` is strictly decreasing in ``K`` on
``(max_i s_i c_i, inf)`` and tends to ``sum_i (1-s_i) * c_i / K -> 0``,
so a unique root exists for every ``p > 0``.  We bracket it with the
paper's bounds (every application on ``p`` processors, respectively on
1 processor — expanded geometrically when ``n > p`` makes the upper
bound insufficient).

Root finders
------------
``"hybrid"`` (default) is a safeguarded Newton-bisection implemented
directly on ``(B, N)`` arrays — :func:`equal_finish_batch` solves a
whole batch of independent instances in lockstep, and the scalar entry
points route through it as a batch of one, which is what makes the
scalar and batch paths bit-identical by construction.  ``g`` is convex
and decreasing on the bracket, so a Newton step from the left bracket
edge can never overshoot the root; whenever the step is unusable
(singular ``g``, out of bracket) the iteration falls back to plain
bisection, keeping convergence guaranteed.  ``"brentq"`` (SciPy) and
``"bisect"`` (the paper's literal binary search) are retained for the
solver-ablation benchmark.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.optimize import brentq

from ..types import SolverError
from .application import Workload
from .execution import sequential_times
from .platform import Platform
from .schedule import Schedule

__all__ = [
    "lemma2_processor_allocation",
    "perfectly_parallel_makespan",
    "equal_finish_makespan",
    "equal_finish_allocation",
    "equal_finish_batch",
    "build_equal_finish_schedule",
    "processor_demand",
]


def lemma2_processor_allocation(
    workload: Workload, platform: Platform, cache_fractions
) -> np.ndarray:
    """Closed-form allocation ``p_i = p * c_i / sum_j c_j`` (Lemma 2).

    Exactly optimal for perfectly parallel applications; used as the
    paper does — a guide — otherwise.
    """
    c = sequential_times(workload, platform, cache_fractions)
    return platform.p * c / c.sum()


def perfectly_parallel_makespan(
    workload: Workload, platform: Platform, cache_fractions
) -> float:
    """Makespan ``(1/p) sum_i Exe_i(1, x_i)`` of Lemma 3."""
    c = sequential_times(workload, platform, cache_fractions)
    return float(c.sum() / platform.p)


def processor_demand(seq: np.ndarray, c: np.ndarray, makespan: float) -> float:
    """Total processors needed for every app to finish at *makespan*.

    Evaluates ``g(K) = sum_i (1-s_i) / (K/c_i - s_i)``.  Infinite when
    ``K <= s_i * c_i`` for some ``i`` (no processor count suffices).
    Applications whose work is entirely sequential (``s_i == 1``)
    contribute 0 processors-of-demand beyond feasibility: they finish at
    ``c_i`` regardless, so ``K >= c_i`` is required and the demand is
    the limit value 0 there.
    """
    denom = makespan / c - seq
    if np.any(denom <= 0):
        return np.inf
    return float(((1.0 - seq) / denom).sum())


def equal_finish_batch(
    seq: np.ndarray,
    c: np.ndarray,
    valid: np.ndarray,
    p: np.ndarray,
    *,
    xtol: float = 1e-12,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized equal-finish solve for a batch of independent instances.

    Parameters
    ----------
    seq, c : (B, N) float arrays
        Sequential fractions and single-processor times, padded to the
        widest instance.
    valid : (B, N) bool array
        Prefix validity mask (True for real applications, False for
        padding).  Every row needs at least one valid application.
    p : (B,) float array
        Per-row processor budget.
    xtol : float
        Relative tolerance on the makespan ``K``.

    Returns
    -------
    (procs, K)
        ``procs`` is ``(B, N)`` with zeros in padding; ``K`` is ``(B,)``.

    All row-wise reductions (totals via left-to-right accumulation,
    maxima over ``-inf``-filled padding) are invariant to trailing
    padding, so a row of this solver reproduces the scalar path float
    for float — the scalar entry points below *are* this function at
    ``B = 1``.
    """
    seq = np.asarray(seq, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    valid = np.asarray(valid, dtype=bool)
    p = np.asarray(p, dtype=np.float64)
    B, N = c.shape
    counts = valid.sum(axis=1)
    if (counts < 1).any():
        raise SolverError("every batch row needs at least one valid application")

    if B == 1:
        # Scalar fast path: the same algorithm on Python floats (see
        # _equal_finish_single) — array-op dispatch overhead dominates
        # at B == 1.  Bit-identical to the vectorized body below, which
        # the golden batch-equivalence sweep asserts.
        idx = np.flatnonzero(valid[0])
        procs_row, K1 = _equal_finish_single(
            seq[0, idx].tolist(), c[0, idx].tolist(), float(p[0]), xtol)
        procs = np.zeros((1, N))
        procs[0, idx] = procs_row
        return procs, np.array([K1])
    one_minus = np.where(valid, 1.0 - seq, 0.0)
    pcol = p[:, None]

    def demand(K: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Row-wise ``(g(K) - p, g'(K))``; ``(+inf, -inf)`` past the pole."""
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            denom = K[:, None] / c - seq
            term = np.where(valid, one_minus / denom, 0.0)
            slope = np.where(valid, term / (denom * c), 0.0)
        bad = (valid & (denom <= 0.0)).any(axis=1)
        f = np.where(bad, np.inf, np.add.accumulate(term, axis=1)[:, -1] - p)
        fp = np.where(bad, -np.inf, -np.add.accumulate(slope, axis=1)[:, -1])
        return f, fp

    # Lower bound: every application on all p processors (finishing
    # earlier than that is impossible).  -inf fill keeps the row maxima
    # padding-invariant.
    lo = np.where(valid, (seq + (1.0 - seq) / pcol) * c, -np.inf).max(axis=1)
    # Upper bound: every application on one processor.
    hi = np.where(valid, c, -np.inf).max(axis=1)
    hi = np.where(hi <= lo, lo * (1.0 + 1e-9) + 1e-300, hi)

    K = lo.copy()
    # One application takes the whole machine: K is the closed form
    # (s + (1-s)/p) * c, which is exactly this row's lo.
    single = counts == 1
    f_lo, fp_lo = demand(lo)
    # Degenerate rows: even the fastest possible finish needs fewer than
    # p processors in total; the solution saturates at lo.
    active = ~(single | (f_lo <= 0.0))

    # Expand hi geometrically for rows where one processor each is not
    # enough (n > p).
    expansions = np.zeros(B, dtype=np.int64)
    while True:
        f_hi, _ = demand(hi)
        need = active & (f_hi > 0.0)
        if not need.any():
            break
        hi = np.where(need, hi * 2.0, hi)
        expansions[need] += 1
        if (expansions > 200).any():
            raise SolverError("could not bracket the equal-finish makespan")

    # Safeguarded pincer iteration in lockstep.  g is convex decreasing
    # on the bracket, so a Newton step from the left edge a (where
    # f(a) > 0) never overshoots the root, and the chord between the
    # bracket edges lies above the curve — its zero crossing is always a
    # valid new right edge.  Alternating the two closes the bracket from
    # both sides superlinearly; midpoint bisection is the safeguard
    # whenever either step is unusable.  Converged rows are frozen with
    # np.where so later iterations cannot drift them — which keeps every
    # row's trajectory identical to solving it alone.
    a = lo.copy()
    b = hi.copy()
    fa, fpa = f_lo, fp_lo
    fb = f_hi
    live = active.copy()
    for it in range(200):
        live &= (b - a) > xtol * np.maximum(1.0, a)
        if not live.any():
            break
        with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
            newton = a - fa / fpa
            falsepos = a + fa * (b - a) / (fa - fb)
        n_ok = np.isfinite(newton) & (newton > a) & (newton < b)
        f_ok = np.isfinite(falsepos) & (falsepos > a) & (falsepos < b)
        mid = 0.5 * (a + b)
        if it % 2 == 0:
            cand = np.where(n_ok, newton, np.where(f_ok, falsepos, mid))
        else:
            cand = np.where(f_ok, falsepos, np.where(n_ok, newton, mid))
        fc, fpc = demand(np.where(live, cand, a))
        hit = live & (fc == 0.0)
        move_a = live & (fc > 0.0)
        move_b = live & ~move_a
        a = np.where(move_a | hit, cand, a)
        fa = np.where(move_a, fc, fa)
        fpa = np.where(move_a, fpc, fpa)
        b = np.where(move_b, cand, b)
        fb = np.where(move_b, fc, fb)
    K = np.where(active, 0.5 * (a + b), K)

    # Allocation: p_i = (1-s_i) / (K/c_i - s_i), clamped exactly like the
    # scalar path, with leftover processors rescaled proportionally.
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        denom = np.maximum(K[:, None] / c - seq, 1e-300)
        procs = np.where(valid, np.maximum(one_minus / denom, 1e-9), 0.0)
    totals = np.add.accumulate(procs, axis=1)[:, -1]
    scale = np.where(totals > p, p / totals, 1.0)
    procs = procs * scale[:, None]
    if single.any():
        rows = np.flatnonzero(single)
        procs[rows, :] = 0.0
        procs[rows, valid.argmax(axis=1)[rows]] = p[rows]
    return procs, K


def _equal_finish_single(seq, c, p, xtol):
    """:func:`equal_finish_batch` for one instance, on Python floats.

    Exact transcription of the vectorized body for a single row —
    Python floats and NumPy float64 are both IEEE doubles, the
    left-to-right accumulations become plain loops, and every branch
    decision mirrors the np.where masks, so the two produce identical
    bits.  Exists purely because array-op dispatch overhead at
    ``B == 1`` would otherwise dominate the scalar scheduling path.
    """
    n = len(c)
    one_minus = [1.0 - s for s in seq]

    def demand(K):
        f = 0.0
        fp = 0.0
        for i in range(n):
            denom = K / c[i] - seq[i]
            if denom <= 0.0:
                return np.inf, -np.inf
            term = one_minus[i] / denom
            f += term
            fp += term / (denom * c[i])
        return f - p, -fp

    lo = max((s + (1.0 - s) / p) * ci for s, ci in zip(seq, c))
    if n == 1:
        return [p], lo
    hi = max(c)
    if hi <= lo:
        hi = lo * (1.0 + 1e-9) + 1e-300

    K = lo
    fa, fpa = demand(lo)
    if fa > 0.0:
        expansions = 0
        while True:
            fb, _ = demand(hi)
            if fb <= 0.0:
                break
            hi *= 2.0
            expansions += 1
            if expansions > 200:
                raise SolverError("could not bracket the equal-finish makespan")
        a, b = lo, hi
        for it in range(200):
            if not (b - a) > xtol * max(1.0, a):
                break
            newton = a - fa / fpa if fpa != 0.0 else np.inf
            n_ok = np.isfinite(newton) and a < newton < b
            if fa != fb:
                falsepos = a + fa * (b - a) / (fa - fb)
            else:
                falsepos = np.inf
            f_ok = np.isfinite(falsepos) and a < falsepos < b
            mid = 0.5 * (a + b)
            if it % 2 == 0:
                cand = newton if n_ok else (falsepos if f_ok else mid)
            else:
                cand = falsepos if f_ok else (newton if n_ok else mid)
            fc, fpc = demand(cand)
            if fc > 0.0:
                a, fa, fpa = cand, fc, fpc
            else:
                b, fb = cand, fc
                if fc == 0.0:
                    a = cand
        K = 0.5 * (a + b)

    procs = [max(om / max(K / ci - s, 1e-300), 1e-9)
             for om, s, ci in zip(one_minus, seq, c)]
    total = 0.0
    for q in procs:
        total += q
    if total > p:
        scale = p / total
        procs = [q * scale for q in procs]
    return procs, K


def equal_finish_makespan(
    workload: Workload,
    platform: Platform,
    cache_fractions,
    *,
    xtol: float = 1e-12,
    method: str = "hybrid",
) -> float:
    """Solve ``g(K) = p`` for the equal-finish makespan ``K``.

    Parameters
    ----------
    workload, platform, cache_fractions
        The co-schedule being priced.
    xtol : float
        Relative tolerance on ``K``.
    method : {"hybrid", "brentq", "bisect"}
        Root finder.  ``"hybrid"`` (default) is the vectorized
        Newton-bisection shared with :func:`equal_finish_batch`;
        ``"bisect"`` is the paper's literal binary search and
        ``"brentq"`` the previous SciPy default, both kept for the
        solver-ablation benchmark.

    Returns
    -------
    float
        The common finish time ``K``.
    """
    seq = workload.seq
    c = sequential_times(workload, platform, cache_fractions)
    p = platform.p

    if workload.n == 1:
        # One application takes the whole machine.
        return float((seq[0] + (1.0 - seq[0]) / p) * c[0])

    if method == "hybrid":
        _, K = equal_finish_batch(
            seq[None, :], c[None, :],
            np.ones((1, workload.n), dtype=bool),
            np.array([float(p)]), xtol=xtol)
        return float(K[0])

    # Lower bound: every application on all p processors (finishing
    # earlier than that is impossible).  Strictly above the singularity
    # max_i s_i * c_i, so g(lo) is finite and >= p.
    lo = float(((seq + (1.0 - seq) / p) * c).max())
    # Upper bound: every application on one processor; expand when
    # n > p makes even that insufficient.
    hi = float(c.max())
    if hi <= lo:
        hi = lo * (1.0 + 1e-9) + 1e-300
    g = lambda K: processor_demand(seq, c, K) - p  # noqa: E731
    g_lo = g(lo)
    if g_lo <= 0:
        # Degenerate: even the fastest possible finish needs fewer than
        # p processors in total (can happen when n is tiny and the
        # budget huge); the equal-finish solution then saturates at lo.
        return lo
    expansions = 0
    while g(hi) > 0:
        hi *= 2.0
        expansions += 1
        if expansions > 200:
            raise SolverError("could not bracket the equal-finish makespan")

    if method == "bisect":
        return _bisect(g, lo, hi, xtol=xtol)
    if method != "brentq":
        raise ValueError(f"unknown method {method!r}")
    try:
        return float(brentq(g, lo, hi, xtol=max(xtol * lo, 1e-300), rtol=1e-14))
    except ValueError as exc:  # pragma: no cover - bracket guaranteed above
        raise SolverError(f"brentq failed on [{lo}, {hi}]: {exc}") from exc


def _bisect(g: Callable[[float], float], lo: float, hi: float, *, xtol: float) -> float:
    """Plain binary search on a decreasing function, paper-style."""
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if g(mid) > 0:
            lo = mid
        else:
            hi = mid
        if hi - lo <= xtol * max(1.0, lo):
            break
    return 0.5 * (lo + hi)


def equal_finish_allocation(
    workload: Workload,
    platform: Platform,
    cache_fractions,
    *,
    method: str = "hybrid",
) -> tuple[np.ndarray, float]:
    """Processor allocation making all applications finish together.

    Returns ``(procs, makespan)`` where
    ``procs_i = (1-s_i) / (K/c_i - s_i)`` and ``K`` solves ``g(K)=p``.
    When the solution saturates (fewer than ``p`` processors needed in
    total), leftover processors are spread proportionally — they change
    nothing for perfectly parallel apps already at their bound and keep
    the schedule feasible.
    """
    seq = workload.seq
    c = sequential_times(workload, platform, cache_fractions)
    if method == "hybrid":
        procs2, K2 = equal_finish_batch(
            seq[None, :], c[None, :],
            np.ones((1, workload.n), dtype=bool),
            np.array([float(platform.p)]))
        return procs2[0].copy(), float(K2[0])
    K = equal_finish_makespan(workload, platform, cache_fractions, method=method)
    if workload.n == 1:
        return np.array([float(platform.p)]), K
    denom = K / c - seq
    # Guard against roundoff putting a denominator at/below zero for the
    # slowest application: clamp to the smallest positive share.
    denom = np.maximum(denom, 1e-300)
    procs = (1.0 - seq) / denom
    # A fully sequential application (s == 1) demands 0 processors in
    # the limit; give it an epsilon so the schedule stays valid.
    procs = np.maximum(procs, 1e-9)
    total = procs.sum()
    if total > platform.p:
        procs *= platform.p / total
    return procs, float(K)


def build_equal_finish_schedule(
    workload: Workload,
    platform: Platform,
    cache_fractions,
    *,
    method: str = "hybrid",
) -> Schedule:
    """Construct the :class:`Schedule` for a given cache partition.

    This is the final step shared by every co-scheduling heuristic in
    the paper: fractions come from the partitioning strategy, processors
    from the equal-finish solver.
    """
    procs, _ = equal_finish_allocation(workload, platform, cache_fractions, method=method)
    return Schedule(workload, platform, procs, cache_fractions)
