"""Processor allocation: Lemma 2 and the equal-finish binary search.

Two regimes:

* **Perfectly parallel** (``s_i = 0``): Lemma 2 gives the closed form
  ``p_i = p * c_i / sum_j c_j`` with ``c_i = Exe_i(1, x_i)``, and the
  common makespan is ``sum_i c_i / p`` (Lemma 3).

* **Amdahl** (``s_i > 0`` allowed): Section 5 of the paper imposes the
  equal-finish property and solves ``sum_i (1-s_i) / (K/c_i - s_i) = p``
  for the makespan ``K`` by binary search; each application then gets
  ``p_i = (1-s_i) / (K/c_i - s_i)`` processors.

The left-hand side ``g(K)`` is strictly decreasing in ``K`` on
``(max_i s_i c_i, inf)`` and tends to ``sum_i (1-s_i) * c_i / K -> 0``,
so a unique root exists for every ``p > 0``.  We bracket it with the
paper's bounds (every application on ``p`` processors, respectively on
1 processor — expanded geometrically when ``n > p`` makes the upper
bound insufficient) and use Brent's method with a plain-bisection
fallback.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.optimize import brentq

from ..types import SolverError
from .application import Workload
from .execution import sequential_times
from .platform import Platform
from .schedule import Schedule

__all__ = [
    "lemma2_processor_allocation",
    "perfectly_parallel_makespan",
    "equal_finish_makespan",
    "equal_finish_allocation",
    "build_equal_finish_schedule",
    "processor_demand",
]


def lemma2_processor_allocation(
    workload: Workload, platform: Platform, cache_fractions
) -> np.ndarray:
    """Closed-form allocation ``p_i = p * c_i / sum_j c_j`` (Lemma 2).

    Exactly optimal for perfectly parallel applications; used as the
    paper does — a guide — otherwise.
    """
    c = sequential_times(workload, platform, cache_fractions)
    return platform.p * c / c.sum()


def perfectly_parallel_makespan(
    workload: Workload, platform: Platform, cache_fractions
) -> float:
    """Makespan ``(1/p) sum_i Exe_i(1, x_i)`` of Lemma 3."""
    c = sequential_times(workload, platform, cache_fractions)
    return float(c.sum() / platform.p)


def processor_demand(seq: np.ndarray, c: np.ndarray, makespan: float) -> float:
    """Total processors needed for every app to finish at *makespan*.

    Evaluates ``g(K) = sum_i (1-s_i) / (K/c_i - s_i)``.  Infinite when
    ``K <= s_i * c_i`` for some ``i`` (no processor count suffices).
    Applications whose work is entirely sequential (``s_i == 1``)
    contribute 0 processors-of-demand beyond feasibility: they finish at
    ``c_i`` regardless, so ``K >= c_i`` is required and the demand is
    the limit value 0 there.
    """
    denom = makespan / c - seq
    if np.any(denom <= 0):
        return np.inf
    return float(((1.0 - seq) / denom).sum())


def equal_finish_makespan(
    workload: Workload,
    platform: Platform,
    cache_fractions,
    *,
    xtol: float = 1e-12,
    method: str = "brentq",
) -> float:
    """Solve ``g(K) = p`` for the equal-finish makespan ``K``.

    Parameters
    ----------
    workload, platform, cache_fractions
        The co-schedule being priced.
    xtol : float
        Relative tolerance on ``K``.
    method : {"brentq", "bisect"}
        Root finder.  ``"bisect"`` is the paper's literal binary search
        and is kept for the solver-ablation benchmark; ``"brentq"`` is
        the default (same bracket, fewer iterations).

    Returns
    -------
    float
        The common finish time ``K``.
    """
    seq = workload.seq
    c = sequential_times(workload, platform, cache_fractions)
    p = platform.p

    if workload.n == 1:
        # One application takes the whole machine.
        return float((seq[0] + (1.0 - seq[0]) / p) * c[0])

    # Lower bound: every application on all p processors (finishing
    # earlier than that is impossible).  Strictly above the singularity
    # max_i s_i * c_i, so g(lo) is finite and >= p.
    lo = float(((seq + (1.0 - seq) / p) * c).max())
    # Upper bound: every application on one processor; expand when
    # n > p makes even that insufficient.
    hi = float(c.max())
    if hi <= lo:
        hi = lo * (1.0 + 1e-9) + 1e-300
    g = lambda K: processor_demand(seq, c, K) - p  # noqa: E731
    g_lo = g(lo)
    if g_lo <= 0:
        # Degenerate: even the fastest possible finish needs fewer than
        # p processors in total (can happen when n is tiny and the
        # budget huge); the equal-finish solution then saturates at lo.
        return lo
    expansions = 0
    while g(hi) > 0:
        hi *= 2.0
        expansions += 1
        if expansions > 200:
            raise SolverError("could not bracket the equal-finish makespan")

    if method == "bisect":
        return _bisect(g, lo, hi, xtol=xtol)
    if method != "brentq":
        raise ValueError(f"unknown method {method!r}")
    try:
        return float(brentq(g, lo, hi, xtol=max(xtol * lo, 1e-300), rtol=1e-14))
    except ValueError as exc:  # pragma: no cover - bracket guaranteed above
        raise SolverError(f"brentq failed on [{lo}, {hi}]: {exc}") from exc


def _bisect(g: Callable[[float], float], lo: float, hi: float, *, xtol: float) -> float:
    """Plain binary search on a decreasing function, paper-style."""
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if g(mid) > 0:
            lo = mid
        else:
            hi = mid
        if hi - lo <= xtol * max(1.0, lo):
            break
    return 0.5 * (lo + hi)


def equal_finish_allocation(
    workload: Workload,
    platform: Platform,
    cache_fractions,
    *,
    method: str = "brentq",
) -> tuple[np.ndarray, float]:
    """Processor allocation making all applications finish together.

    Returns ``(procs, makespan)`` where
    ``procs_i = (1-s_i) / (K/c_i - s_i)`` and ``K`` solves ``g(K)=p``.
    When the solution saturates (fewer than ``p`` processors needed in
    total), leftover processors are spread proportionally — they change
    nothing for perfectly parallel apps already at their bound and keep
    the schedule feasible.
    """
    seq = workload.seq
    c = sequential_times(workload, platform, cache_fractions)
    K = equal_finish_makespan(workload, platform, cache_fractions, method=method)
    if workload.n == 1:
        return np.array([float(platform.p)]), K
    denom = K / c - seq
    # Guard against roundoff putting a denominator at/below zero for the
    # slowest application: clamp to the smallest positive share.
    denom = np.maximum(denom, 1e-300)
    procs = (1.0 - seq) / denom
    # A fully sequential application (s == 1) demands 0 processors in
    # the limit; give it an epsilon so the schedule stays valid.
    procs = np.maximum(procs, 1e-9)
    total = procs.sum()
    if total > platform.p:
        procs *= platform.p / total
    return procs, float(K)


def build_equal_finish_schedule(
    workload: Workload,
    platform: Platform,
    cache_fractions,
    *,
    method: str = "brentq",
) -> Schedule:
    """Construct the :class:`Schedule` for a given cache partition.

    This is the final step shared by every co-scheduling heuristic in
    the paper: fractions come from the partitioning strategy, processors
    from the equal-finish solver.
    """
    procs, _ = equal_finish_allocation(workload, platform, cache_fractions, method=method)
    return Schedule(workload, platform, procs, cache_fractions)
