"""Scheduler registry: string name -> metadata-rich scheduler entry.

Experiments, benchmarks, and the CLI refer to strategies by the names
the paper uses in its figure legends.  Every registered scheduler has
the uniform signature::

    scheduler(workload, platform, rng=None) -> BaseSchedule

Each registry slot holds a :class:`SchedulerEntry` — the callable plus
the metadata the orchestration layers need: whether the strategy is
``randomized`` (its result depends on ``rng``), a one-line
``description``, and ``provenance`` (which part of the paper — or
which extension package — it comes from).  Entries are callable, so
``get_scheduler(name)(workload, platform, rng)`` keeps working
unchanged.

Deterministic strategies ignore ``rng``.  Use :func:`register` to add
custom strategies (the extensions package registers itself on import).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

import numpy as np

from ..types import ModelError
from .application import Workload
from .baselines import all_proc_cache, fair, random_partition, zero_cache
from .batch import BatchProblem
from .heuristics import DOMINANT_HEURISTICS, dominant_schedule, dominant_schedule_batch
from .platform import Platform
from .schedule import BaseSchedule

__all__ = [
    "SchedulerFn",
    "BatchSchedulerFn",
    "SchedulerEntry",
    "register",
    "get_scheduler",
    "get_entry",
    "entries",
    "scheduler_names",
    "is_randomized",
    "schedule_batch",
    "PAPER_HEURISTICS",
    "PAPER_BASELINES",
]

SchedulerFn = Callable[[Workload, Platform, Optional[np.random.Generator]], BaseSchedule]

#: batch_fn(instances, rngs) -> one schedule per (workload, platform) pair.
BatchSchedulerFn = Callable[
    [list, list], list
]


@dataclass(frozen=True)
class SchedulerEntry:
    """One registry slot: the scheduler callable plus its metadata.

    Attributes
    ----------
    name : str
        Canonical (lowercase) registry key.
    fn : SchedulerFn
        Callable building a schedule.
    randomized : bool
        Whether the result depends on ``rng`` — the experiment runner
        averages these over repetitions and must feed each invocation
        an independent stream.
    description : str
        One-line human-readable summary (shown by ``repro list``).
    provenance : str
        Where the strategy comes from (paper section, extension
        package, user registration).
    batch_fn : BatchSchedulerFn, optional
        Vectorized batch evaluator: ``batch_fn(instances, rngs)`` takes
        a list of (workload, platform) pairs plus a same-length list of
        per-instance generators (None for deterministic strategies) and
        returns one schedule per instance, each bit-identical to
        ``fn(workload, platform, rng)``.  The experiment engine, the
        service dispatcher, and :func:`schedule_batch` use it when
        present; strategies without one are evaluated per instance.
    """

    name: str
    fn: SchedulerFn
    randomized: bool = False
    description: str = ""
    provenance: str = ""
    batch_fn: Optional[BatchSchedulerFn] = None

    def __call__(
        self,
        workload: Workload,
        platform: Platform,
        rng: Optional[np.random.Generator] = None,
    ) -> BaseSchedule:
        return self.fn(workload, platform, rng)


_REGISTRY: dict[str, SchedulerEntry] = {}

#: The six dominant-partition heuristics of Section 5 (figure legend order).
PAPER_HEURISTICS: tuple[str, ...] = tuple(DOMINANT_HEURISTICS)

#: The comparison baselines of Section 6.3.
PAPER_BASELINES: tuple[str, ...] = ("allproccache", "fair", "0cache", "randompart")


def register(name: str, fn: SchedulerFn, *, randomized: bool | None = None,
             description: str | None = None, provenance: str | None = None,
             batch_fn: BatchSchedulerFn | None = None,
             overwrite: bool = False) -> SchedulerEntry:
    """Register *fn* under *name* (lowercase canonical).

    Parameters
    ----------
    name : str
        Registry key; looked up case-insensitively.
    fn : SchedulerFn
        Callable building a schedule.  Passing an existing
        :class:`SchedulerEntry` re-registers it, keeping its metadata
        unless overridden here.
    randomized : bool, optional
        Mark strategies whose result depends on ``rng`` — the
        experiment runner averages these over repetitions.
    description, provenance : str, optional
        Metadata recorded on the entry.
    batch_fn : BatchSchedulerFn, optional
        Vectorized batch evaluator (see :class:`SchedulerEntry`).
    overwrite : bool
        Allow replacing an existing entry.

    Returns
    -------
    SchedulerEntry
        The entry now stored in the registry.
    """
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ModelError(f"scheduler {name!r} is already registered")
    if isinstance(fn, SchedulerEntry):
        entry = fn
        updates = {}
        if entry.name != key:
            updates["name"] = key
        if randomized is not None and randomized != entry.randomized:
            updates["randomized"] = randomized
        if description is not None and description != entry.description:
            updates["description"] = description
        if provenance is not None and provenance != entry.provenance:
            updates["provenance"] = provenance
        if batch_fn is not None and batch_fn is not entry.batch_fn:
            updates["batch_fn"] = batch_fn
        if updates:
            entry = replace(entry, **updates)
    else:
        entry = SchedulerEntry(
            name=key,
            fn=fn,
            randomized=bool(randomized),
            description=description or "",
            provenance=provenance or "",
            batch_fn=batch_fn,
        )
    _REGISTRY[key] = entry
    return entry


def get_entry(name: str) -> SchedulerEntry:
    """Look up a scheduler entry by name; raises with the known names listed."""
    key = name.lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ModelError(
            f"unknown scheduler {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def get_scheduler(name: str) -> SchedulerEntry:
    """Look up a scheduler by name.

    Returns the (callable) :class:`SchedulerEntry`, so existing call
    sites — ``get_scheduler(name)(workload, platform, rng)`` — keep
    working while new code can read the metadata off the same object.
    """
    return get_entry(name)


def entries() -> tuple[SchedulerEntry, ...]:
    """All registered entries, sorted by name."""
    return tuple(_REGISTRY[k] for k in sorted(_REGISTRY))


def scheduler_names() -> tuple[str, ...]:
    """All registered scheduler names, sorted."""
    return tuple(sorted(_REGISTRY))


def is_randomized(name: str) -> bool:
    """Whether the strategy's output depends on the RNG."""
    return get_entry(name).randomized


def _make_dominant(strategy: str, choice: str) -> SchedulerFn:
    def scheduler(workload: Workload, platform: Platform,
                  rng: Optional[np.random.Generator] = None) -> BaseSchedule:
        return dominant_schedule(
            workload, platform, strategy=strategy, choice=choice, rng=rng
        )

    scheduler.__name__ = f"{strategy}_{choice}_scheduler"
    return scheduler


def _make_dominant_batch(strategy: str, choice: str) -> BatchSchedulerFn:
    def batch(instances, rngs=None) -> list[BaseSchedule]:
        problem = BatchProblem(instances)
        return dominant_schedule_batch(
            problem, strategy=strategy, choice=choice, rngs=rngs
        ).schedules()

    batch.__name__ = f"{strategy}_{choice}_batch_scheduler"
    return batch


def schedule_batch(name: str, instances, rngs=None) -> list[BaseSchedule]:
    """Schedule many (workload, platform) instances under one strategy.

    Uses the entry's vectorized ``batch_fn`` when it has one (all six
    paper heuristics do); otherwise falls back to one scalar call per
    instance.  ``rngs``, when given, must hold one generator (or None)
    per instance — randomized strategies draw each row's choices from
    its own stream, exactly as the scalar path would.

    Returns one schedule per instance, in input order, bit-identical to
    ``get_scheduler(name)(workload, platform, rng)`` per instance.
    """
    entry = get_entry(name)
    instances = list(instances)
    if rngs is None:
        rngs = [None] * len(instances)
    else:
        rngs = list(rngs)
        if len(rngs) != len(instances):
            raise ModelError(
                f"rngs has {len(rngs)} entries for {len(instances)} instances")
    if not instances:
        return []
    if entry.batch_fn is not None:
        return entry.batch_fn(instances, rngs)
    return [entry(wl, pf, rng) for (wl, pf), rng in zip(instances, rngs)]


for _name, (_strategy, _choice) in DOMINANT_HEURISTICS.items():
    register(
        _name,
        _make_dominant(_strategy, _choice),
        randomized=(_choice == "random"),
        description=f"dominant partition, strategy={_strategy}, choice={_choice}",
        provenance="paper §5 (dominant heuristics)",
        batch_fn=_make_dominant_batch(_strategy, _choice),
    )

register("allproccache", lambda wl, pf, rng=None: all_proc_cache(wl, pf),
         description="applications run in sequence, each owning machine + cache",
         provenance="paper §6.3 (baseline)")
register("fair", lambda wl, pf, rng=None: fair(wl, pf),
         description="equal processors, access-frequency-proportional cache",
         provenance="paper §6.3 (baseline)")
register("0cache", lambda wl, pf, rng=None: zero_cache(wl, pf),
         description="equal-finish processors, no cache partitioned",
         provenance="paper §6.3 (baseline)")
register("randompart", lambda wl, pf, rng=None: random_partition(wl, pf, rng),
         randomized=True,
         description="random cache fractions, equal-finish processors",
         provenance="paper §6.3 (baseline)")
