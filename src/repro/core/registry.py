"""Scheduler registry: string name -> metadata-rich scheduler entry.

Experiments, benchmarks, and the CLI refer to strategies by the names
the paper uses in its figure legends.  Every registered scheduler has
the uniform signature::

    scheduler(workload, platform, rng=None) -> BaseSchedule

Each registry slot holds a :class:`SchedulerEntry` — the callable plus
the metadata the orchestration layers need: whether the strategy is
``randomized`` (its result depends on ``rng``), a one-line
``description``, and ``provenance`` (which part of the paper — or
which extension package — it comes from).  Entries are callable, so
``get_scheduler(name)(workload, platform, rng)`` keeps working
unchanged.

Deterministic strategies ignore ``rng``.  Use :func:`register` to add
custom strategies (the extensions package registers itself on import).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

import numpy as np

from ..types import ModelError
from .application import Workload
from .baselines import all_proc_cache, fair, random_partition, zero_cache
from .heuristics import DOMINANT_HEURISTICS, dominant_schedule
from .platform import Platform
from .schedule import BaseSchedule

__all__ = [
    "SchedulerFn",
    "SchedulerEntry",
    "register",
    "get_scheduler",
    "get_entry",
    "entries",
    "scheduler_names",
    "is_randomized",
    "PAPER_HEURISTICS",
    "PAPER_BASELINES",
]

SchedulerFn = Callable[[Workload, Platform, Optional[np.random.Generator]], BaseSchedule]


@dataclass(frozen=True)
class SchedulerEntry:
    """One registry slot: the scheduler callable plus its metadata.

    Attributes
    ----------
    name : str
        Canonical (lowercase) registry key.
    fn : SchedulerFn
        Callable building a schedule.
    randomized : bool
        Whether the result depends on ``rng`` — the experiment runner
        averages these over repetitions and must feed each invocation
        an independent stream.
    description : str
        One-line human-readable summary (shown by ``repro list``).
    provenance : str
        Where the strategy comes from (paper section, extension
        package, user registration).
    """

    name: str
    fn: SchedulerFn
    randomized: bool = False
    description: str = ""
    provenance: str = ""

    def __call__(
        self,
        workload: Workload,
        platform: Platform,
        rng: Optional[np.random.Generator] = None,
    ) -> BaseSchedule:
        return self.fn(workload, platform, rng)


_REGISTRY: dict[str, SchedulerEntry] = {}

#: The six dominant-partition heuristics of Section 5 (figure legend order).
PAPER_HEURISTICS: tuple[str, ...] = tuple(DOMINANT_HEURISTICS)

#: The comparison baselines of Section 6.3.
PAPER_BASELINES: tuple[str, ...] = ("allproccache", "fair", "0cache", "randompart")


def register(name: str, fn: SchedulerFn, *, randomized: bool | None = None,
             description: str | None = None, provenance: str | None = None,
             overwrite: bool = False) -> SchedulerEntry:
    """Register *fn* under *name* (lowercase canonical).

    Parameters
    ----------
    name : str
        Registry key; looked up case-insensitively.
    fn : SchedulerFn
        Callable building a schedule.  Passing an existing
        :class:`SchedulerEntry` re-registers it, keeping its metadata
        unless overridden here.
    randomized : bool, optional
        Mark strategies whose result depends on ``rng`` — the
        experiment runner averages these over repetitions.
    description, provenance : str, optional
        Metadata recorded on the entry.
    overwrite : bool
        Allow replacing an existing entry.

    Returns
    -------
    SchedulerEntry
        The entry now stored in the registry.
    """
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ModelError(f"scheduler {name!r} is already registered")
    if isinstance(fn, SchedulerEntry):
        entry = fn
        updates = {}
        if entry.name != key:
            updates["name"] = key
        if randomized is not None and randomized != entry.randomized:
            updates["randomized"] = randomized
        if description is not None and description != entry.description:
            updates["description"] = description
        if provenance is not None and provenance != entry.provenance:
            updates["provenance"] = provenance
        if updates:
            entry = replace(entry, **updates)
    else:
        entry = SchedulerEntry(
            name=key,
            fn=fn,
            randomized=bool(randomized),
            description=description or "",
            provenance=provenance or "",
        )
    _REGISTRY[key] = entry
    return entry


def get_entry(name: str) -> SchedulerEntry:
    """Look up a scheduler entry by name; raises with the known names listed."""
    key = name.lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ModelError(
            f"unknown scheduler {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def get_scheduler(name: str) -> SchedulerEntry:
    """Look up a scheduler by name.

    Returns the (callable) :class:`SchedulerEntry`, so existing call
    sites — ``get_scheduler(name)(workload, platform, rng)`` — keep
    working while new code can read the metadata off the same object.
    """
    return get_entry(name)


def entries() -> tuple[SchedulerEntry, ...]:
    """All registered entries, sorted by name."""
    return tuple(_REGISTRY[k] for k in sorted(_REGISTRY))


def scheduler_names() -> tuple[str, ...]:
    """All registered scheduler names, sorted."""
    return tuple(sorted(_REGISTRY))


def is_randomized(name: str) -> bool:
    """Whether the strategy's output depends on the RNG."""
    return get_entry(name).randomized


def _make_dominant(strategy: str, choice: str) -> SchedulerFn:
    def scheduler(workload: Workload, platform: Platform,
                  rng: Optional[np.random.Generator] = None) -> BaseSchedule:
        return dominant_schedule(
            workload, platform, strategy=strategy, choice=choice, rng=rng
        )

    scheduler.__name__ = f"{strategy}_{choice}_scheduler"
    return scheduler


for _name, (_strategy, _choice) in DOMINANT_HEURISTICS.items():
    register(
        _name,
        _make_dominant(_strategy, _choice),
        randomized=(_choice == "random"),
        description=f"dominant partition, strategy={_strategy}, choice={_choice}",
        provenance="paper §5 (dominant heuristics)",
    )

register("allproccache", lambda wl, pf, rng=None: all_proc_cache(wl, pf),
         description="applications run in sequence, each owning machine + cache",
         provenance="paper §6.3 (baseline)")
register("fair", lambda wl, pf, rng=None: fair(wl, pf),
         description="equal processors, access-frequency-proportional cache",
         provenance="paper §6.3 (baseline)")
register("0cache", lambda wl, pf, rng=None: zero_cache(wl, pf),
         description="equal-finish processors, no cache partitioned",
         provenance="paper §6.3 (baseline)")
register("randompart", lambda wl, pf, rng=None: random_partition(wl, pf, rng),
         randomized=True,
         description="random cache fractions, equal-finish processors",
         provenance="paper §6.3 (baseline)")
