"""Scheduler registry: string name -> schedule-building callable.

Experiments, benchmarks, and the CLI refer to strategies by the names
the paper uses in its figure legends.  Every registered scheduler has
the uniform signature::

    scheduler(workload, platform, rng=None) -> BaseSchedule

Deterministic strategies ignore ``rng``.  Use :func:`register` to add
custom strategies (the extensions package registers itself on import).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..types import ModelError
from .application import Workload
from .baselines import all_proc_cache, fair, random_partition, zero_cache
from .heuristics import DOMINANT_HEURISTICS, dominant_schedule
from .platform import Platform
from .schedule import BaseSchedule

__all__ = [
    "SchedulerFn",
    "register",
    "get_scheduler",
    "scheduler_names",
    "is_randomized",
    "PAPER_HEURISTICS",
    "PAPER_BASELINES",
]

SchedulerFn = Callable[[Workload, Platform, Optional[np.random.Generator]], BaseSchedule]

_REGISTRY: dict[str, SchedulerFn] = {}
_RANDOMIZED: set[str] = set()

#: The six dominant-partition heuristics of Section 5 (figure legend order).
PAPER_HEURISTICS: tuple[str, ...] = tuple(DOMINANT_HEURISTICS)

#: The comparison baselines of Section 6.3.
PAPER_BASELINES: tuple[str, ...] = ("allproccache", "fair", "0cache", "randompart")


def register(name: str, fn: SchedulerFn, *, randomized: bool = False,
             overwrite: bool = False) -> None:
    """Register *fn* under *name* (lowercase canonical).

    Parameters
    ----------
    name : str
        Registry key; looked up case-insensitively.
    fn : SchedulerFn
        Callable building a schedule.
    randomized : bool
        Mark strategies whose result depends on ``rng`` — the
        experiment runner averages these over repetitions.
    overwrite : bool
        Allow replacing an existing entry.
    """
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ModelError(f"scheduler {name!r} is already registered")
    _REGISTRY[key] = fn
    if randomized:
        _RANDOMIZED.add(key)
    else:
        _RANDOMIZED.discard(key)


def get_scheduler(name: str) -> SchedulerFn:
    """Look up a scheduler by name; raises with the known names listed."""
    key = name.lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ModelError(
            f"unknown scheduler {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def scheduler_names() -> tuple[str, ...]:
    """All registered scheduler names, sorted."""
    return tuple(sorted(_REGISTRY))


def is_randomized(name: str) -> bool:
    """Whether the strategy's output depends on the RNG."""
    return name.lower() in _RANDOMIZED


def _make_dominant(strategy: str, choice: str) -> SchedulerFn:
    def scheduler(workload: Workload, platform: Platform,
                  rng: Optional[np.random.Generator] = None) -> BaseSchedule:
        return dominant_schedule(
            workload, platform, strategy=strategy, choice=choice, rng=rng
        )

    scheduler.__name__ = f"{strategy}_{choice}_scheduler"
    return scheduler


for _name, (_strategy, _choice) in DOMINANT_HEURISTICS.items():
    register(_name, _make_dominant(_strategy, _choice), randomized=(_choice == "random"))

register("allproccache", lambda wl, pf, rng=None: all_proc_cache(wl, pf))
register("fair", lambda wl, pf, rng=None: fair(wl, pf))
register("0cache", lambda wl, pf, rng=None: zero_cache(wl, pf))
register("randompart", lambda wl, pf, rng=None: random_partition(wl, pf, rng),
         randomized=True)
