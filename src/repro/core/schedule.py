"""Schedule data structures: co-schedules and sequential schedules.

A :class:`Schedule` is the paper's solution object — one pair
``(p_i, x_i)`` per application, all applications starting at time 0 and
running concurrently; its makespan is ``max_i Exe_i(p_i, x_i)``
(Definition 1).  A :class:`SequentialSchedule` models the
``AllProcCache`` baseline where applications run one after another,
each owning the whole machine; its makespan is the *sum* of the
per-application times.

Both expose the same small interface (``times()``, ``makespan()``,
``describe()``) so experiment code can treat every scheduling strategy
uniformly.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..types import FEASIBILITY_SLACK, InfeasibleScheduleError, ModelError
from .application import Workload
from .execution import execution_times
from .platform import Platform

__all__ = ["BaseSchedule", "Schedule", "SequentialSchedule"]


class BaseSchedule(abc.ABC):
    """Common interface for concurrent and sequential schedules."""

    workload: Workload
    platform: Platform

    @abc.abstractmethod
    def times(self) -> np.ndarray:
        """Per-application execution times (not completion times)."""

    @abc.abstractmethod
    def makespan(self) -> float:
        """Time at which the last application completes."""

    @property
    @abc.abstractmethod
    def concurrent(self) -> bool:
        """Whether applications run simultaneously (True) or in sequence."""

    def describe(self) -> str:
        """Multi-line human-readable allocation table."""
        lines = [
            f"{type(self).__name__} on {self.platform.name} "
            f"(p={self.platform.p:g}, Cs={self.platform.cache_size:g}B): "
            f"makespan={self.makespan():.6g}",
            f"{'app':<12}{'procs':>12}{'cache x':>12}{'time':>16}",
        ]
        times = self.times()
        procs = getattr(self, "procs", np.full(self.workload.n, self.platform.p))
        cache = getattr(self, "cache", np.ones(self.workload.n))
        for name, p, x, t in zip(self.workload.names, procs, cache, times):
            lines.append(f"{name:<12}{p:>12.4f}{x:>12.6f}{t:>16.6g}")
        return "\n".join(lines)


class Schedule(BaseSchedule):
    """A concurrent cache-partitioned schedule ``{(p_i, x_i)}``.

    Parameters
    ----------
    workload : Workload
        The applications being co-scheduled.
    platform : Platform
        The machine they share.
    procs : array_like
        Processor allocations ``p_i > 0``, shape ``(n,)``.
    cache : array_like
        Cache fractions ``x_i in [0, 1]``, shape ``(n,)``.
    validate : bool
        When True (default), resource-capacity constraints are checked
        at construction and :class:`InfeasibleScheduleError` is raised
        on violation (with :data:`~repro.types.FEASIBILITY_SLACK`
        slack to absorb solver tolerance).
    """

    def __init__(
        self,
        workload: Workload,
        platform: Platform,
        procs,
        cache,
        *,
        validate: bool = True,
    ):
        self.workload = workload
        self.platform = platform
        self.procs = np.ascontiguousarray(procs, dtype=np.float64)
        self.cache = np.ascontiguousarray(cache, dtype=np.float64)
        if self.procs.shape != (workload.n,):
            raise ModelError(
                f"procs must have shape ({workload.n},), got {self.procs.shape}"
            )
        if self.cache.shape != (workload.n,):
            raise ModelError(
                f"cache must have shape ({workload.n},), got {self.cache.shape}"
            )
        self._times: Optional[np.ndarray] = None
        if validate:
            self.assert_feasible()

    @property
    def concurrent(self) -> bool:
        return True

    @property
    def cache_subset(self) -> np.ndarray:
        """Boolean mask of the applications receiving a nonzero fraction."""
        return self.cache > 0.0

    def feasibility_violations(self, *, slack: float = FEASIBILITY_SLACK) -> list[str]:
        """Return a list of violated-constraint descriptions (empty if OK)."""
        issues: list[str] = []
        if np.any(self.procs <= 0):
            bad = np.flatnonzero(self.procs <= 0)
            issues.append(f"non-positive processor allocation at indices {bad.tolist()}")
        if np.any(self.cache < 0) or np.any(self.cache > 1):
            bad = np.flatnonzero((self.cache < 0) | (self.cache > 1))
            issues.append(f"cache fraction outside [0, 1] at indices {bad.tolist()}")
        total_p = float(self.procs.sum())
        if total_p > self.platform.p * (1 + slack) + slack:
            issues.append(f"sum of processors {total_p:.9g} exceeds p={self.platform.p:g}")
        total_x = float(self.cache.sum())
        if total_x > 1 + slack:
            issues.append(f"sum of cache fractions {total_x:.9g} exceeds 1")
        return issues

    def is_feasible(self, *, slack: float = FEASIBILITY_SLACK) -> bool:
        """True when all resource constraints hold (up to *slack*)."""
        return not self.feasibility_violations(slack=slack)

    def assert_feasible(self, *, slack: float = FEASIBILITY_SLACK) -> None:
        """Raise :class:`InfeasibleScheduleError` listing any violations."""
        issues = self.feasibility_violations(slack=slack)
        if issues:
            raise InfeasibleScheduleError("; ".join(issues))

    def times(self) -> np.ndarray:
        if self._times is None:
            self._times = execution_times(
                self.workload, self.platform, self.procs, self.cache
            )
        return self._times

    def makespan(self) -> float:
        return float(self.times().max())

    def finish_time_spread(self) -> float:
        """Relative gap ``(max - min) / max`` of the finish times.

        An equal-finish schedule (Lemma 1) has spread ~0; large spread
        signals wasted processors.
        """
        t = self.times()
        mx = float(t.max())
        if mx == 0:
            return 0.0
        return float((t.max() - t.min()) / mx)

    def with_cache(self, cache) -> "Schedule":
        """Copy of this schedule with a different cache partition."""
        return Schedule(self.workload, self.platform, self.procs, cache)

    def with_procs(self, procs) -> "Schedule":
        """Copy of this schedule with a different processor allocation."""
        return Schedule(self.workload, self.platform, procs, self.cache)


class SequentialSchedule(BaseSchedule):
    """Applications executed one after another, each owning the machine.

    This is the paper's ``AllProcCache`` reference point: every
    application gets all ``p`` processors and the whole LLC, and the
    makespan is the sum of the individual execution times.
    """

    def __init__(self, workload: Workload, platform: Platform):
        self.workload = workload
        self.platform = platform
        self.procs = np.full(workload.n, float(platform.p))
        self.cache = np.ones(workload.n)
        self._times: Optional[np.ndarray] = None

    @property
    def concurrent(self) -> bool:
        return False

    def times(self) -> np.ndarray:
        if self._times is None:
            self._times = execution_times(
                self.workload, self.platform, self.procs, self.cache
            )
        return self._times

    def completion_times(self) -> np.ndarray:
        """Cumulative completion instants (prefix sums of the times)."""
        return np.cumsum(self.times())

    def makespan(self) -> float:
        return float(self.times().sum())
