"""Experiment harness: engine, cache, runner, figure definitions, tables."""

from .cache import PruneReport, ResultCache, resolve_cache_dir, spec_fingerprint
from .engine import (
    BACKENDS,
    Task,
    execute_tasks,
    generate_tasks,
    resolve_backend,
    resolve_workers,
)
from .figures import (
    FIGURE_NORMALIZATIONS,
    FIGURES,
    build_figure,
    figure_ids,
)
from .chaos import CHAOS_METRICS, build_chaos_experiment
from .online import ONLINE_METRICS, build_online_experiment
from .results import MAKESPAN, ExperimentResult
from .runner import DEFAULT_METRICS, Experiment, run_experiment
from .table2 import ProfiledBenchmark, regenerate_table2
from .tables import format_table, render_result

__all__ = [
    "Experiment",
    "run_experiment",
    "DEFAULT_METRICS",
    "Task",
    "BACKENDS",
    "generate_tasks",
    "execute_tasks",
    "resolve_backend",
    "resolve_workers",
    "ResultCache",
    "PruneReport",
    "resolve_cache_dir",
    "spec_fingerprint",
    "ExperimentResult",
    "MAKESPAN",
    "FIGURES",
    "FIGURE_NORMALIZATIONS",
    "build_figure",
    "figure_ids",
    "format_table",
    "render_result",
    "ONLINE_METRICS",
    "build_online_experiment",
    "CHAOS_METRICS",
    "build_chaos_experiment",
    "ProfiledBenchmark",
    "regenerate_table2",
]
