"""Experiment harness: runner, per-figure definitions, tables, CSV."""

from .figures import (
    FIGURE_NORMALIZATIONS,
    FIGURES,
    build_figure,
    figure_ids,
)
from .results import MAKESPAN, ExperimentResult
from .runner import DEFAULT_METRICS, Experiment, run_experiment
from .table2 import ProfiledBenchmark, regenerate_table2
from .tables import format_table, render_result

__all__ = [
    "Experiment",
    "run_experiment",
    "DEFAULT_METRICS",
    "ExperimentResult",
    "MAKESPAN",
    "FIGURES",
    "FIGURE_NORMALIZATIONS",
    "build_figure",
    "figure_ids",
    "format_table",
    "render_result",
    "ProfiledBenchmark",
    "regenerate_table2",
]
