"""Content-addressed on-disk cache for experiment results (stage 3).

A cache key is a SHA-256 fingerprint of the experiment *spec* — sweep
points, reps, root seed, and the identities of the instance factory,
the registered scheduler entries, and the metric functions (module,
qualname, bytecode, defaults, and closure values, so
``_synth_nprocs(16)`` and ``_synth_nprocs(64)`` hash differently and
editing a scheduler's or metric's own code invalidates its entries).
The hash does not chase functions reached through module globals, so
after changing a deep callee of a scheduler, clear the cache directory
(or run once with ``use_cache=False``).  Because every backend produces bit-identical
arrays from the same spec (see :mod:`repro.experiments.engine`), a
result computed once — serially, or on a process pool — satisfies
every later run of the same figure: regenerating a figure or re-running
a benchmark with a warm cache does no scheduling work at all.

The cache directory comes from the ``cache_dir=`` argument or the
``REPRO_CACHE_DIR`` environment variable; when neither is set, caching
is off.  Entries are ``<experiment_id>-<digest>.npz`` files holding
the raw sample arrays plus a JSON metadata blob; anything that fails
to load (truncated file, stale format) is treated as a miss.

The directory grows without bound by default; :meth:`ResultCache.prune`
applies a byte budget, deleting least-recently-used entries first
(loads touch the file mtime, so mtime order *is* recency order) —
``repro cache prune --max-bytes 500M`` from the CLI.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..core.registry import SchedulerEntry, get_entry
from ..types import ModelError
from .results import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runner import Experiment

__all__ = ["ResultCache", "PruneReport", "spec_fingerprint", "resolve_cache_dir"]

#: Env var naming the cache directory (cache disabled when unset).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump when the on-disk layout changes; part of every fingerprint.
_FORMAT_VERSION = 1


#: Closure values hashed by content; anything else hashes by type only
#: (a mutable object's repr is not a stable identity).
_ATOMIC_TYPES = (str, bytes, int, float, complex, bool, type(None), tuple, frozenset)


def _callable_fingerprint(fn: Callable, parts: list[str], *, depth: int = 0) -> None:
    """Append a stable description of *fn* (qualname, bytecode, closure)."""
    if isinstance(fn, SchedulerEntry):
        parts.append(f"entry={fn.name},randomized={fn.randomized}")
        if depth < 3:
            _callable_fingerprint(fn.fn, parts, depth=depth + 1)
        return
    parts.append(f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', type(fn).__qualname__)}")
    code = getattr(fn, "__code__", None)
    if code is not None:
        parts.append(hashlib.sha256(code.co_code).hexdigest())
        parts.append(repr(code.co_consts))
    defaults = getattr(fn, "__defaults__", None)
    if defaults:
        parts.append(repr(defaults))
    closure = getattr(fn, "__closure__", None)
    if closure and depth < 3:
        for cell in closure:
            try:
                value = cell.cell_contents
            except ValueError:  # pragma: no cover - empty cell
                parts.append("<empty-cell>")
                continue
            if callable(value):
                _callable_fingerprint(value, parts, depth=depth + 1)
            elif isinstance(value, np.ndarray):
                parts.append(value.tobytes().hex())
            elif isinstance(value, _ATOMIC_TYPES):
                parts.append(repr(value))
            else:
                parts.append(f"<{type(value).__module__}.{type(value).__qualname__}>")


def spec_fingerprint(exp: "Experiment") -> str:
    """Hex digest identifying the experiment spec (not its backend)."""
    parts: list[str] = [
        f"format={_FORMAT_VERSION}",
        exp.experiment_id,
        exp.title,
        exp.xlabel,
        exp.points.tobytes().hex(),
        f"reps={exp.reps}",
        f"seed={exp.seed}",
    ]
    for name in exp.schedulers:
        parts.append(f"scheduler={name}")
        if exp.evaluate is None:
            _callable_fingerprint(get_entry(name), parts)
        else:
            # With a direct evaluator the names are policy labels the
            # evaluator interprets; those that do resolve to registry
            # entries are still fingerprinted (the evaluator may run
            # them — editing such a scheduler must invalidate the
            # entry), while evaluator-private labels hash by name.
            try:
                entry = get_entry(name)
            except ModelError:
                continue
            _callable_fingerprint(entry, parts)
    for metric in sorted(exp.metrics):
        parts.append(f"metric={metric}")
        fn = exp.metrics[metric]
        if fn is not None:
            _callable_fingerprint(fn, parts)
    _callable_fingerprint(exp.factory, parts)
    if exp.evaluate is not None:
        parts.append("evaluate")
        _callable_fingerprint(exp.evaluate, parts)
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def resolve_cache_dir(cache_dir: str | Path | None) -> Path | None:
    """Pick the cache directory: argument > REPRO_CACHE_DIR > disabled."""
    if cache_dir is None:
        cache_dir = os.environ.get(CACHE_DIR_ENV) or None
    return Path(cache_dir) if cache_dir is not None else None


@dataclass(frozen=True)
class PruneReport:
    """Outcome of a :meth:`ResultCache.prune` pass.

    Attributes
    ----------
    deleted : tuple[Path, ...]
        Entries removed, oldest first.
    freed_bytes, kept_bytes : int
        Bytes reclaimed / still on disk after the pass.
    """

    deleted: tuple[Path, ...]
    freed_bytes: int
    kept_bytes: int


class ResultCache:
    """npz-file result store keyed by :func:`spec_fingerprint`."""

    def __init__(self, cache_dir: str | Path):
        self.cache_dir = Path(cache_dir)

    @staticmethod
    def _stat_or_none(path: Path):
        """stat() tolerating a concurrently-deleted entry."""
        try:
            return path.stat()
        except OSError:
            return None

    def entries(self) -> list[Path]:
        """All cache entry files, least recently used first (by mtime)."""
        if not self.cache_dir.is_dir():
            return []
        stamped = []
        for path in self.cache_dir.glob("*.npz"):
            st = self._stat_or_none(path)
            if st is not None:
                stamped.append((st.st_mtime, path.name, path))
        return [path for _, _, path in sorted(stamped)]

    def size_bytes(self) -> int:
        """Total bytes currently held by cache entries."""
        return sum(
            st.st_size
            for st in map(self._stat_or_none, self.entries())
            if st is not None
        )

    def prune(self, max_bytes: int, *, dry_run: bool = False) -> PruneReport:
        """Delete least-recently-used entries until under *max_bytes*.

        Recency is file mtime: :meth:`load` touches an entry on every
        hit, so a figure regenerated yesterday outlives one last read
        months ago regardless of creation order.  Concurrently-vanished
        files are skipped, not errors.  ``max_bytes=0`` empties the
        cache.  With ``dry_run=True`` nothing is unlinked; the report
        lists what a real pass would delete.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = self.entries()
        sizes = {}
        for path in entries:
            st = self._stat_or_none(path)
            sizes[path] = st.st_size if st is not None else 0
        total = sum(sizes.values())
        deleted: list[Path] = []
        freed = 0
        for path in entries:  # oldest first
            if total <= max_bytes:
                break
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    continue
            total -= sizes[path]
            freed += sizes[path]
            deleted.append(path)
        return PruneReport(deleted=tuple(deleted), freed_bytes=freed,
                           kept_bytes=total)

    def path_for(self, exp: "Experiment") -> Path:
        return self.cache_dir / f"{exp.experiment_id}-{spec_fingerprint(exp)[:24]}.npz"

    def load(self, exp: "Experiment") -> ExperimentResult | None:
        """Return the cached result for *exp*'s spec, or None on a miss."""
        path = self.path_for(exp)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                meta = json.loads(str(archive["meta_json"]))
                data = {
                    name: {
                        metric: archive[f"data|{name}|{metric}"]
                        for metric in meta["metrics"]
                    }
                    for name in meta["schedulers"]
                }
                result = ExperimentResult(
                    experiment_id=meta["experiment_id"],
                    title=meta["title"],
                    xlabel=meta["xlabel"],
                    x=archive["x"],
                    data=data,
                    meta=meta["result_meta"],
                )
        except Exception:
            # A corrupt or stale entry is just a miss; it will be rewritten.
            return None
        try:
            # A hit refreshes the entry's mtime so prune() evicts in
            # true least-recently-used order, not creation order.
            os.utime(path)
        except OSError:
            pass
        return result

    def store(self, exp: "Experiment", result: ExperimentResult) -> Path | None:
        """Persist *result* under *exp*'s fingerprint (atomic rename).

        Storage failures (unwritable directory, path collisions) only
        cost the cache entry, never the computed result: they warn and
        return None.
        """
        meta = {
            "experiment_id": result.experiment_id,
            "title": result.title,
            "xlabel": result.xlabel,
            "schedulers": list(result.data),
            "metrics": sorted(next(iter(result.data.values()))),
            "result_meta": result.meta,
        }
        arrays: dict[str, np.ndarray] = {"x": result.x}
        for name, metrics in result.data.items():
            for metric, samples in metrics.items():
                arrays[f"data|{name}|{metric}"] = samples
        buffer = io.BytesIO()
        np.savez(buffer, meta_json=np.str_(json.dumps(meta)), **arrays)
        path = self.path_for(exp)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(buffer.getvalue())
            os.replace(tmp, path)
        except OSError as exc:
            warnings.warn(
                f"result cache: could not store {path}: {exc}",
                RuntimeWarning, stacklevel=2)
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return None
        return path
