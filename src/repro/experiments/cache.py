"""Content-addressed on-disk cache for experiment results (stage 3).

A cache key is a SHA-256 fingerprint of the experiment *spec* — sweep
points, reps, root seed, and the identities of the instance factory,
the registered scheduler entries, and the metric functions (module,
qualname, bytecode, defaults, and closure values, so
``_synth_nprocs(16)`` and ``_synth_nprocs(64)`` hash differently and
editing a scheduler's or metric's own code invalidates its entries).
Functions nested inside a hashed function (a ``def`` or ``lambda`` in
its body) are hashed by their *bytecode*, recursively — never by the
``repr`` of the code object, which embeds a memory address and would
silently give every process a fresh fingerprint (a permanent cache
miss).  The hash does not chase functions reached through module
globals, so after changing a deep callee of a scheduler, clear the
cache directory (or run once with ``use_cache=False``).  Because every
backend produces bit-identical arrays from the same spec (see
:mod:`repro.experiments.engine`), a result computed once — serially,
or on a process pool — satisfies every later run of the same figure:
regenerating a figure or re-running a benchmark with a warm cache does
no scheduling work at all.

The file mechanics — atomic publication, LRU-by-mtime enumeration,
the byte-budget prune behind ``repro cache prune`` — are the unified
disk tier's (:class:`repro.cache.ContentAddressedStore`); this module
owns only what is experiment-specific: the spec fingerprint and the
npz codec.  Entries are ``<experiment_id>-<digest>.npz`` files holding
the raw sample arrays plus a JSON metadata blob; anything that fails
to load (truncated file, stale format) is treated as a miss.

The cache directory comes from the ``cache_dir=`` argument or the
``REPRO_CACHE_DIR`` environment variable; when neither is set, caching
is off.
"""

from __future__ import annotations

import hashlib
import io
import json
import types
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..cache.disk import (
    CACHE_DIR_ENV,
    ContentAddressedStore,
    PruneReport,
    resolve_cache_dir,
)
from ..core.registry import SchedulerEntry, get_entry
from ..types import ModelError
from .results import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runner import Experiment

__all__ = ["ResultCache", "PruneReport", "spec_fingerprint",
           "resolve_cache_dir", "CACHE_DIR_ENV"]

#: Bump when the on-disk layout changes; part of every fingerprint.
_FORMAT_VERSION = 2


#: Closure values hashed by content; anything else hashes by type only
#: (a mutable object's repr is not a stable identity).
_ATOMIC_TYPES = (str, bytes, int, float, complex, bool, type(None), tuple, frozenset)


def _consts_fingerprint(consts: tuple) -> str:
    """Stable description of a code object's constant pool.

    ``repr(co_consts)`` is *not* stable: a nested function or lambda
    appears in the pool as a code object whose repr embeds its memory
    address, different in every process — so any factory or metric
    with a nested ``def`` would fingerprint fresh on every run, a
    permanent silent cache miss.  Code objects are therefore described
    by name plus a digest of their bytecode and (recursively) their
    own constant pool; everything else keeps its literal repr.
    """
    parts = []
    for const in consts:
        if isinstance(const, types.CodeType):
            parts.append(
                f"<code:{const.co_name}:"
                f"{hashlib.sha256(const.co_code).hexdigest()}:"
                f"{_consts_fingerprint(const.co_consts)}>")
        else:
            # Non-code co_consts members are compile-time literals
            # (str/int/float/tuple-of-literals/...): their reprs are
            # value-based by construction, never memory addresses.
            parts.append(repr(const))  # repro-lint: disable=REP106 -- compile-time literals repr by value
    return "(" + ",".join(parts) + ")"


def _deeply_atomic(value) -> bool:
    """True when *value*'s repr is value-based all the way down.

    Containers in :data:`_ATOMIC_TYPES` (tuple, frozenset) are only
    atomic if every member is — a tuple holding a function would repr
    by memory address, the exact instability fingerprints must never
    absorb.
    """
    if isinstance(value, (tuple, frozenset)):
        return all(_deeply_atomic(v) for v in value)
    return isinstance(value, _ATOMIC_TYPES) and not isinstance(
        value, (tuple, frozenset))


def _callable_fingerprint(fn: Callable, parts: list[str], *, depth: int = 0) -> None:
    """Append a stable description of *fn* (qualname, bytecode, closure)."""
    if isinstance(fn, SchedulerEntry):
        parts.append(f"entry={fn.name},randomized={fn.randomized}")
        if depth < 3:
            _callable_fingerprint(fn.fn, parts, depth=depth + 1)
        return
    parts.append(f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', type(fn).__qualname__)}")
    code = getattr(fn, "__code__", None)
    if code is not None:
        parts.append(hashlib.sha256(code.co_code).hexdigest())
        parts.append(_consts_fingerprint(code.co_consts))
    defaults = getattr(fn, "__defaults__", None)
    if defaults and depth < 3:
        # Each default through the per-value logic: repr of the whole
        # tuple would embed memory addresses for callable or object
        # defaults — the spec_fingerprint bug class all over again.
        for value in defaults:
            _value_fingerprint(value, parts, depth=depth + 1)
    closure = getattr(fn, "__closure__", None)
    if closure and depth < 3:
        for cell in closure:
            try:
                value = cell.cell_contents
            except ValueError:  # pragma: no cover - empty cell
                parts.append("<empty-cell>")
                continue
            _value_fingerprint(value, parts, depth=depth + 1)


def _value_fingerprint(value, parts: list[str], *, depth: int) -> None:
    """Append a stable description of one captured/default value."""
    if callable(value):
        _callable_fingerprint(value, parts, depth=depth)
    elif isinstance(value, np.ndarray):
        parts.append(value.tobytes().hex())
    elif _deeply_atomic(value):
        parts.append(repr(value))  # repro-lint: disable=REP106 -- deeply-atomic values repr by value (checked above)
    else:
        parts.append(f"<{type(value).__module__}.{type(value).__qualname__}>")


def spec_fingerprint(exp: "Experiment") -> str:
    """Hex digest identifying the experiment spec (not its backend)."""
    parts: list[str] = [
        f"format={_FORMAT_VERSION}",
        exp.experiment_id,
        exp.title,
        exp.xlabel,
        exp.points.tobytes().hex(),
        f"reps={exp.reps}",
        f"seed={exp.seed}",
    ]
    for name in exp.schedulers:
        parts.append(f"scheduler={name}")
        if exp.evaluate is None:
            _callable_fingerprint(get_entry(name), parts)
        else:
            # With a direct evaluator the names are policy labels the
            # evaluator interprets; those that do resolve to registry
            # entries are still fingerprinted (the evaluator may run
            # them — editing such a scheduler must invalidate the
            # entry), while evaluator-private labels hash by name.
            try:
                entry = get_entry(name)
            except ModelError:
                continue
            _callable_fingerprint(entry, parts)
    for metric in sorted(exp.metrics):
        parts.append(f"metric={metric}")
        fn = exp.metrics[metric]
        if fn is not None:
            _callable_fingerprint(fn, parts)
    _callable_fingerprint(exp.factory, parts)
    if exp.evaluate is not None:
        parts.append("evaluate")
        _callable_fingerprint(exp.evaluate, parts)
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


class ResultCache:
    """npz-file result store keyed by :func:`spec_fingerprint`.

    The experiment-result tier of the unified cache subsystem: this
    class is the npz codec over a
    :class:`repro.cache.ContentAddressedStore` scoped to ``*.npz``
    entries (the service's decision tier shares the same directory
    under ``decisions/`` without collision).
    """

    def __init__(self, cache_dir: str | Path):
        self.cache_dir = Path(cache_dir)
        self._store = ContentAddressedStore(self.cache_dir,
                                            patterns=("*.npz",),
                                            label="result cache")

    def entries(self) -> list[Path]:
        """All cache entry files, least recently used first (by mtime)."""
        return self._store.entries()

    def size_bytes(self) -> int:
        """Total bytes currently held by cache entries."""
        return self._store.size_bytes()

    def prune(self, max_bytes: int, *, dry_run: bool = False) -> PruneReport:
        """Delete least-recently-used entries until under *max_bytes*.

        Recency is file mtime: :meth:`load` touches an entry on every
        hit, so a figure regenerated yesterday outlives one last read
        months ago regardless of creation order.  Concurrently-vanished
        files are skipped, not errors.  ``max_bytes=0`` empties the
        cache.  With ``dry_run=True`` nothing is unlinked; the report
        lists what a real pass would delete.
        """
        return self._store.prune(max_bytes, dry_run=dry_run)

    def path_for(self, exp: "Experiment") -> Path:
        return self.cache_dir / f"{exp.experiment_id}-{spec_fingerprint(exp)[:24]}.npz"

    def load(self, exp: "Experiment") -> ExperimentResult | None:
        """Return the cached result for *exp*'s spec, or None on a miss."""
        path = self.path_for(exp)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                meta = json.loads(str(archive["meta_json"]))
                data = {
                    name: {
                        metric: archive[f"data|{name}|{metric}"]
                        for metric in meta["metrics"]
                    }
                    for name in meta["schedulers"]
                }
                result = ExperimentResult(
                    experiment_id=meta["experiment_id"],
                    title=meta["title"],
                    xlabel=meta["xlabel"],
                    x=archive["x"],
                    data=data,
                    meta=meta["result_meta"],
                )
        except Exception:
            # A corrupt or stale entry is just a miss; it will be rewritten.
            return None
        # A hit refreshes the entry's mtime so prune() evicts in
        # true least-recently-used order, not creation order.
        self._store.touch(path)
        return result

    def store(self, exp: "Experiment",
              result: ExperimentResult) -> Path | None:
        """Persist *result* under *exp*'s fingerprint (atomic rename).

        Storage failures (unwritable directory, path collisions) only
        cost the cache entry, never the computed result: they warn and
        return None.
        """
        # A result with no schedulers still round-trips: its metric
        # list is empty rather than StopIteration on the first value.
        first = next(iter(result.data.values()), {})
        meta = {
            "experiment_id": result.experiment_id,
            "title": result.title,
            "xlabel": result.xlabel,
            "schedulers": list(result.data),
            "metrics": sorted(first),
            "result_meta": result.meta,
        }
        arrays: dict[str, np.ndarray] = {"x": result.x}
        for name, metrics in result.data.items():
            for metric, samples in metrics.items():
                arrays[f"data|{name}|{metric}"] = samples
        buffer = io.BytesIO()
        np.savez(buffer, meta_json=np.str_(json.dumps(meta)), **arrays)
        path = self.path_for(exp)
        if not self._store.write_atomic(path, buffer.getvalue()):
            return None
        return path
