"""Fault-injection experiments on the experiment grid.

The chaos analogue of :mod:`repro.experiments.online`: an
:class:`~repro.experiments.runner.Experiment` whose ``evaluate`` hook
runs :func:`repro.chaos.run_chaos` under a generated arrival stream
*and* a compiled fault stream.  The grid, the serial/process backends,
and the tiered on-disk result cache all apply unchanged, so a
resilience sweep is bit-identical across backends and cacheable like
any figure.

Seed discipline (the part that makes policy curves comparable): both
the arrival stream and the fault stream are drawn from the per-cell
*scenario* generator — shared by every policy at the same
``(rep, point)`` cell — in a fixed order (arrivals first, then
faults), so every policy at a cell faces the identical arrivals and
the identical compiled faults.  Randomized registry policies consume
the separate per-policy stream, which cannot perturb the scenario.

Example::

    from repro.experiments.chaos import build_chaos_experiment
    from repro.experiments.runner import run_experiment

    exp = build_chaos_experiment(
        faults="churn:period=2e8+crash:hazard=4e-9,delay=5e7",
        policies=("dominant", "fair"),
        napps_points=(4, 8, 16),
    )
    result = run_experiment(exp, backend="process")
"""

from __future__ import annotations

import numpy as np

from ..chaos.faults import parse_fault_spec
from ..chaos.runner import estimate_horizon, run_chaos
from ..machine.presets import get_preset
from ..online.arrivals import parse_arrival_spec
from ..workloads.synthetic import generate
from .runner import Experiment

__all__ = ["CHAOS_METRICS", "build_chaos_experiment"]

#: Metrics recorded per (policy, rep, point) cell.
CHAOS_METRICS: tuple[str, ...] = (
    "makespan", "mean_flow", "max_flow", "goodput",
    "peak_processors", "crashes", "preemptions", "lost_work",
)


def build_chaos_experiment(
    *,
    faults: str,
    arrivals: str = "poisson:rate=5e-9",
    policies: tuple[str, ...] = ("dominant", "fair", "fcfs"),
    napps_points: tuple[int, ...] = (4, 8, 16),
    dataset: str = "npb-synth",
    platform: str = "taihulight",
    reps: int = 5,
    seed: int = 2017,
    probe_samples: int = 256,
) -> Experiment:
    """Declare a resilience sweep: policies x #applications x reps.

    Parameters
    ----------
    faults : str
        Fault spec (see :func:`repro.chaos.parse_fault_spec`); parsed
        per evaluation so the experiment fingerprint depends only on
        the spec string.  ``"none"`` degrades to a clean online sweep
        with chaos metrics.
    arrivals : str
        Arrival spec (:func:`repro.online.arrivals.parse_arrival_spec`).
    policies, napps_points, dataset, platform, reps, seed
        As in :func:`repro.experiments.online.build_online_experiment`.
    probe_samples : int
        Probe budget per run (cells are small; 256 keeps the cadence
        fine without inflating the kernel's event budget).
    """
    parse_fault_spec(faults)      # fail fast on bad specs
    parse_arrival_spec(arrivals)

    def factory(point, rng):
        return generate(dataset, int(point), rng), get_preset(platform)

    def evaluate(workload, platform_obj, policy, scenario_rng, policy_rng):
        # Scenario draws in fixed order: arrivals, then faults — every
        # policy at this cell sees both streams identically.
        stream = parse_arrival_spec(arrivals).times(workload.n, scenario_rng)
        horizon = estimate_horizon(workload, platform_obj, stream)
        compiled = parse_fault_spec(faults).compile(
            workload.n, platform_obj.p, horizon, scenario_rng)
        res = run_chaos(
            workload, platform_obj, stream,
            faults=compiled, policy=policy, rng=policy_rng,
            horizon=horizon, max_samples=probe_samples,
        )
        return res.metrics()

    return Experiment(
        experiment_id=f"chaos-{dataset}",
        title=f"online policies under {faults} faults ({dataset})",
        xlabel="Applications",
        points=np.asarray(napps_points, dtype=np.float64),
        factory=factory,
        schedulers=tuple(policies),
        metrics={name: None for name in CHAOS_METRICS},
        reps=reps,
        seed=seed,
        evaluate=evaluate,
    )
