"""Orchestration engine: task generation and pluggable execution backends.

The experiment grid ``points x reps x schedulers`` is flattened into
self-describing :class:`Task` records (stage 1), which an execution
backend evaluates in chunked batches (stage 2); the runner assembles
the per-task metric dicts back into :class:`ExperimentResult` arrays
and consults the on-disk result cache (stage 3, see
:mod:`repro.experiments.cache`).

Seed discipline is the one the serial runner has always used — one
:class:`numpy.random.SeedSequence` child per ``(rep, point)`` pair for
the instance factory and an independent child per ``(rep, point,
scheduler)`` for randomized schedulers — so every backend produces
**bit-identical** results: a task carries its seeds, and evaluating it
is a pure function of the task record.  That is what makes the grid
embarrassingly parallel and the results cacheable.

Within each chunk, tasks for schedulers that expose a vectorized
``batch_fn`` (the six paper heuristics) are evaluated through one
structure-of-arrays batch call (:mod:`repro.core.batch`) rather than
one Python call per task; the batch path is bit-identical to the
scalar path, so this too is a pure optimization.

Backends
--------
``"serial"``
    In-process loop over the tasks (the default; no new behavior).
``"process"``
    A ``multiprocessing`` pool (fork start method) over chunked task
    batches.  Worker processes inherit the experiment object through
    the fork, so factories and metric functions may be closures — only
    the task records and the metric floats cross process boundaries.
    On platforms without ``fork`` the engine falls back to ``serial``
    with a warning.

Backend selection precedence: explicit ``backend=`` argument, then the
:attr:`Experiment.backend` field, then the ``REPRO_BACKEND``
environment variable, then ``"serial"``.  Worker count: ``workers=``
argument, then ``REPRO_WORKERS``, then ``os.cpu_count()``.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from ..cache import LRUCache
from ..core.registry import get_entry
from ..types import ModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from .runner import Experiment

__all__ = [
    "Task",
    "BACKENDS",
    "generate_tasks",
    "execute_tasks",
    "resolve_backend",
    "resolve_workers",
]

#: Supported execution backends.
BACKENDS: tuple[str, ...] = ("serial", "process")

#: Env var naming the default backend (overridden by Experiment.backend
#: and the ``backend=`` argument).
BACKEND_ENV = "REPRO_BACKEND"

#: Env var naming the process-pool size (default: ``os.cpu_count()``).
WORKERS_ENV = "REPRO_WORKERS"


@dataclass(frozen=True)
class Task:
    """One cell of the experiment grid: ``(rep, point, scheduler)``.

    A task is self-describing: evaluating it needs only the experiment
    (for the factory and the metric functions) and the record itself —
    the seeds pin down the workload instance and the scheduler stream,
    so any backend, any chunking, and any execution order produce the
    same floats.

    Attributes
    ----------
    rep, point_index : int
        Grid coordinates.
    point : float
        Sweep value (``experiment.points[point_index]``).
    scheduler : str
        Registry name.
    instance_seed : numpy.random.SeedSequence
        Child seed driving the instance factory; shared by every
        scheduler at the same ``(rep, point)`` cell so all schedulers
        see the same workload.
    scheduler_seed : numpy.random.SeedSequence
        Independent child driving this scheduler's own stream.
    """

    rep: int
    point_index: int
    point: float
    scheduler: str
    instance_seed: np.random.SeedSequence
    scheduler_seed: np.random.SeedSequence


def generate_tasks(exp: "Experiment") -> list[Task]:
    """Flatten the grid into task records (stage 1).

    The spawn tree is exactly the historical serial runner's: root ->
    reps -> points -> (instance, scheduler...), so results are
    bit-identical to every earlier version of the runner regardless of
    the backend that later evaluates the tasks.
    """
    npoints = exp.points.size
    root = np.random.SeedSequence(exp.seed)
    rep_seeds = root.spawn(exp.reps)
    tasks: list[Task] = []
    for r in range(exp.reps):
        point_seeds = rep_seeds[r].spawn(npoints)
        for j, point in enumerate(exp.points):
            instance_seed, *sched_seeds = point_seeds[j].spawn(1 + len(exp.schedulers))
            for k, name in enumerate(exp.schedulers):
                tasks.append(Task(
                    rep=r,
                    point_index=j,
                    point=float(point),
                    scheduler=name,
                    instance_seed=instance_seed,
                    scheduler_seed=sched_seeds[k],
                ))
    return tasks


def resolve_backend(backend: str | None, exp: "Experiment" | None = None) -> str:
    """Pick the backend: argument > Experiment field > env > serial."""
    if backend is None and exp is not None:
        backend = exp.backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or "serial"
    backend = backend.lower()
    if backend not in BACKENDS:
        raise ModelError(
            f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}"
        )
    return backend


def resolve_workers(workers: int | None) -> int:
    """Pick the pool size: argument > REPRO_WORKERS > cpu_count."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ModelError(
                    f"{WORKERS_ENV} must be an integer, got {env!r}") from None
        else:
            workers = os.cpu_count() or 1
    if workers < 1:
        raise ModelError(f"workers must be >= 1, got {workers}")
    return workers


def _chunk(tasks: Sequence[Task], nchunks: int) -> list[list[Task]]:
    """Split *tasks* into at most *nchunks* contiguous batches.

    Contiguity matters: tasks are generated scheduler-innermost, so a
    contiguous batch keeps the tasks sharing one ``(rep, point)``
    workload instance together and the per-batch factory memo (see
    :func:`_run_batch`) stays effective.
    """
    n = len(tasks)
    nchunks = max(1, min(nchunks, n))
    bounds = np.linspace(0, n, nchunks + 1).astype(int)
    return [list(tasks[a:b]) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


def _split_indices(indices: Sequence[int], nchunks: int) -> list[list[int]]:
    """Split an index list into at most *nchunks* contiguous parts."""
    n = len(indices)
    nchunks = max(1, min(nchunks, n))
    bounds = np.linspace(0, n, nchunks + 1).astype(int)
    return [list(indices[a:b]) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


def _plan_process_chunks(
    exp: "Experiment", tasks: Sequence[Task], nchunks: int,
) -> tuple[list[list[Task]], list[int]]:
    """Scheduler-major chunk plan: ship whole batches to workers.

    The naive contiguous chunking hands each worker a slice of the
    scheduler-innermost grid, so a chunk's tasks for any one vectorized
    scheduler form only a sliver of a batch — each worker re-batches
    its own fragment.  This plan instead groups every batchable
    scheduler's tasks together and chunks *within* the group, so each
    worker chunk is one whole structure-of-arrays batch call (plus a
    shared pool of scalar-only tasks, kept in original order).

    Returns ``(chunks, perm)`` where ``perm[i]`` is the original task
    index of the i-th result in concatenated chunk order — evaluation
    is a pure function of the task record, so reordering is invisible
    once results are permuted back.

    Experiments with a custom ``evaluate`` keep the historical
    contiguous chunking (that path is scalar and leans on the
    per-cell factory memo, which contiguity keeps warm).
    """
    if exp.evaluate is not None:
        return _chunk(tasks, nchunks), list(range(len(tasks)))
    groups: dict[str, list[int]] = {}
    scalar: list[int] = []
    for i, task in enumerate(tasks):
        try:
            entry = get_entry(task.scheduler)
        except Exception:
            # Unknown scheduler: route to the scalar loop, where the
            # worker raises the same error the serial engine would.
            scalar.append(i)
            continue
        if entry.batch_fn is not None:
            groups.setdefault(entry.name, []).append(i)
        else:
            scalar.append(i)
    segments = ([scalar] if scalar else []) + [
        groups[name] for name in sorted(groups)]
    total = len(tasks)
    chunks: list[list[Task]] = []
    perm: list[int] = []
    for segment in segments:
        share = max(1, round(nchunks * len(segment) / total))
        for part in _split_indices(segment, share):
            chunks.append([tasks[i] for i in part])
            perm.extend(part)
    return chunks, perm


def _scenario_seed(instance_seed: np.random.SeedSequence) -> np.random.SeedSequence:
    """The per-cell scenario stream, derived without mutating the tree.

    Reconstructs ``instance_seed.spawn(1)[0]`` explicitly (the factory
    only ever consumes the *generator* built from ``instance_seed``,
    never spawns from the sequence itself, so child 0 is free) — the
    historical spawn counts, and therefore every existing result and
    cache entry, are untouched, and the derivation is stable across
    chunkings and backends.
    """
    return np.random.SeedSequence(
        entropy=instance_seed.entropy,
        spawn_key=tuple(instance_seed.spawn_key) + (0,),
    )


def _run_batch(exp: "Experiment", batch: Iterable[Task]) -> list[dict[str, float]]:
    """Evaluate a batch of tasks; returns one metric dict per task.

    Workload instances are memoized per ``(rep, point)`` cell within
    the batch — rebuilding from ``instance_seed`` is deterministic, so
    the memo is a pure optimization.

    Tasks whose scheduler entry carries a vectorized ``batch_fn`` (and
    whose experiment uses the default schedule-metric evaluation) are
    collected per scheduler and shipped through one batch call instead
    of one Python call each.  The batch path is bit-identical to the
    scalar path by construction (see :mod:`repro.core.batch`) and each
    task still gets its own generator seeded from ``scheduler_seed``,
    so results do not depend on grouping.  If a batch call fails, the
    group falls back to the scalar loop so error messages (and any
    partial successes) match the serial engine exactly.
    """
    tasks = list(batch)
    # The per-batch factory memo rides the unified in-memory backend
    # (counter-free peek/put).  Capacity covers every distinct cell in
    # the batch, so nothing is ever evicted and rebuilding from
    # instance_seed stays a pure optimization.
    memo: LRUCache = LRUCache(max(len(tasks), 1))
    out: list[dict[str, float] | None] = [None] * len(tasks)
    deferred: dict[str, list[tuple[int, object, object, object]]] = {}
    for idx, task in enumerate(tasks):
        cell = (task.rep, task.point_index)
        pair = memo.peek(cell)
        if pair is None:
            pair = exp.factory(
                task.point, np.random.default_rng(task.instance_seed))
            memo.put(cell, pair)
        workload, platform = pair
        if exp.evaluate is not None:
            sample = exp.evaluate(
                workload, platform, task.scheduler,
                np.random.default_rng(_scenario_seed(task.instance_seed)),
                np.random.default_rng(task.scheduler_seed))
            missing = exp.metrics.keys() - sample.keys()
            if missing:
                raise ModelError(
                    f"evaluator returned no value for metric(s) "
                    f"{sorted(missing)} (declared: {sorted(exp.metrics)})")
            out[idx] = {metric: sample[metric] for metric in exp.metrics}
            continue
        entry = get_entry(task.scheduler)
        if entry.batch_fn is not None:
            deferred.setdefault(task.scheduler, []).append(
                (idx, workload, platform, task.scheduler_seed))
            continue
        schedule = entry(workload, platform,
                         np.random.default_rng(task.scheduler_seed))
        out[idx] = {metric: fn(schedule) for metric, fn in exp.metrics.items()}
    for name, group in deferred.items():
        entry = get_entry(name)
        schedules = None
        if len(group) > 1:
            instances = [(wl, pf) for _, wl, pf, _ in group]
            rngs = [np.random.default_rng(seed) for _, _, _, seed in group]
            try:
                schedules = entry.batch_fn(instances, rngs)
            except Exception:
                schedules = None  # scalar loop below reproduces the error
        if schedules is None:
            schedules = [entry(wl, pf, np.random.default_rng(seed))
                         for _, wl, pf, seed in group]
        for (idx, _, _, _), schedule in zip(group, schedules):
            out[idx] = {metric: fn(schedule)
                        for metric, fn in exp.metrics.items()}
    return out


# The experiment travels to pool workers through fork inheritance of
# this module global (factories and metrics are often closures, which
# do not pickle); tasks and metric floats are what actually cross the
# process boundary.
_WORKER_EXPERIMENT: "Experiment | None" = None


def _run_batch_worker(batch: list[Task]) -> list[dict[str, float]]:
    assert _WORKER_EXPERIMENT is not None, "worker initialized without experiment"
    return _run_batch(_WORKER_EXPERIMENT, batch)


def _execute_serial(
    exp: "Experiment",
    tasks: Sequence[Task],
    progress: Callable[[str], None] | None,
) -> list[dict[str, float]]:
    per_rep = exp.points.size * len(exp.schedulers)
    results: list[dict[str, float]] = []
    for r in range(exp.reps):
        batch = tasks[r * per_rep:(r + 1) * per_rep]
        results.extend(_run_batch(exp, batch))
        if progress is not None:
            progress(f"{exp.experiment_id}: rep {r + 1}/{exp.reps} done")
    return results


def _execute_process(
    exp: "Experiment",
    tasks: Sequence[Task],
    workers: int,
    progress: Callable[[str], None] | None,
) -> list[dict[str, float]]:
    global _WORKER_EXPERIMENT
    workers = min(workers, len(tasks))
    # ~4 chunks per worker balances load without drowning in IPC;
    # chunks are planned scheduler-major so each one ships a whole
    # structure-of-arrays batch to its worker (see _plan_process_chunks).
    chunks, perm = _plan_process_chunks(exp, tasks, workers * 4)
    ctx = multiprocessing.get_context("fork")
    _WORKER_EXPERIMENT = exp
    try:
        with ctx.Pool(processes=workers) as pool:
            done = 0
            flat: list[dict[str, float]] = []
            for i, chunk_result in enumerate(pool.imap(_run_batch_worker, chunks)):
                flat.extend(chunk_result)
                done += len(chunks[i])
                if progress is not None:
                    progress(
                        f"{exp.experiment_id}: {done}/{len(tasks)} tasks done"
                    )
    finally:
        _WORKER_EXPERIMENT = None
    # Invert the plan's permutation: result i answers task perm[i].
    results: list[dict[str, float]] = [None] * len(tasks)  # type: ignore[list-item]
    for position, original in enumerate(perm):
        results[original] = flat[position]
    return results


def execute_tasks(
    exp: "Experiment",
    tasks: Sequence[Task],
    *,
    backend: str = "serial",
    workers: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[dict[str, float]]:
    """Evaluate *tasks* with *backend* (stage 2); order-preserving.

    The returned list is parallel to *tasks* whatever the backend or
    chunking, so the runner can assemble result arrays positionally.
    """
    if backend == "process":
        if "fork" not in multiprocessing.get_all_start_methods():
            warnings.warn(
                "process backend needs the fork start method; "
                "falling back to serial", RuntimeWarning, stacklevel=2)
            backend = "serial"
        elif len(tasks) <= 1:
            backend = "serial"
    if backend == "serial":
        return _execute_serial(exp, tasks, progress)
    if backend == "process":
        return _execute_process(exp, tasks, resolve_workers(workers), progress)
    raise ModelError(f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}")
