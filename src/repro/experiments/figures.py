"""Experiment definitions for every figure of the paper.

Each ``figureNN`` builder returns an :class:`Experiment` reproducing
the corresponding figure's sweep; run it with
:func:`repro.experiments.runner.run_experiment` and normalize per the
paper's caption (the benchmark harness and the CLI do this).  Figure
numbering follows the research report RR-8965: Figs. 1-7 in the body,
Figs. 8-18 in Appendix A.

Repetitions default to 10 to keep a full regeneration on a laptop
quick; pass ``reps=50`` for the paper's protocol (results are already
stable at 10 — the series are ratios of averages over many random
applications).
"""

from __future__ import annotations

import numpy as np

from ..core.application import Workload
from ..core.platform import Platform
from ..core.registry import PAPER_HEURISTICS
from ..machine.presets import small_llc, taihulight
from ..types import ModelError
from ..workloads.synthetic import npb6, npb_synth, random_workload
from .results import MAKESPAN
from .runner import Experiment

__all__ = [
    "FIGURES",
    "FIGURE_NORMALIZATIONS",
    "build_figure",
    "figure_ids",
    "NAPPS_POINTS",
    "NPROCS_POINTS",
    "SEQ_POINTS",
    "MISS_POINTS",
    "LS_POINTS",
]

#: Default sweep grids (the paper's axis ranges).
NAPPS_POINTS = np.array([1, 2, 4, 8, 16, 32, 64, 128, 192, 256], dtype=float)
NPROCS_POINTS = np.array([16, 32, 64, 96, 128, 160, 192, 224, 256], dtype=float)
SEQ_POINTS = np.array([0.0, 0.01, 0.02, 0.04, 0.06, 0.08, 0.11, 0.15])
MISS_POINTS = np.array([0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0])
LS_POINTS = np.array([0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0])
RATIO_POINTS = np.array([1, 2, 4, 8, 16, 32, 64, 128], dtype=float)

_MAIN_FIVE = ("allproccache", "dominant-minratio", "randompart", "fair", "0cache")
_COSCHED_FOUR = ("dominant-minratio", "randompart", "fair", "0cache")

# -- instance factories -----------------------------------------------------


def _synth_napps(point: float, rng: np.random.Generator) -> tuple[Workload, Platform]:
    return npb_synth(max(1, int(round(point))), rng), taihulight()


def _random_napps(point: float, rng: np.random.Generator) -> tuple[Workload, Platform]:
    return random_workload(max(1, int(round(point))), rng), taihulight()


def _synth_nprocs(n: int):
    def factory(point: float, rng: np.random.Generator) -> tuple[Workload, Platform]:
        return npb_synth(n, rng), taihulight(p=float(point))

    return factory


def _random_nprocs(n: int):
    def factory(point: float, rng: np.random.Generator) -> tuple[Workload, Platform]:
        return random_workload(n, rng), taihulight(p=float(point))

    return factory


def _npb6_nprocs(point: float, rng: np.random.Generator) -> tuple[Workload, Platform]:
    return npb6(rng=rng), taihulight(p=float(point))


def _synth_seq(n: int):
    def factory(point: float, rng: np.random.Generator) -> tuple[Workload, Platform]:
        return npb_synth(n, rng).with_sequential_fraction(point), taihulight()

    return factory


def _npb6_seq(point: float, rng: np.random.Generator) -> tuple[Workload, Platform]:
    return npb6(rng=rng).with_sequential_fraction(point), taihulight()


def _random_seq(n: int):
    def factory(point: float, rng: np.random.Generator) -> tuple[Workload, Platform]:
        return random_workload(n, rng).with_sequential_fraction(point), taihulight()

    return factory


def _synth_missrate(n: int):
    def factory(point: float, rng: np.random.Generator) -> tuple[Workload, Platform]:
        return npb_synth(n, rng).with_miss_rate(point), small_llc()

    return factory


def _synth_latency(n: int, seq: float):
    def factory(point: float, rng: np.random.Generator) -> tuple[Workload, Platform]:
        wl = npb_synth(n, rng).with_sequential_fraction(seq)
        return wl, taihulight().with_latencies(latency_cache=float(point))

    return factory


def _ratio_factory(point: float, rng: np.random.Generator) -> tuple[Workload, Platform]:
    n = max(1, int(round(256.0 / point)))
    return npb_synth(n, rng), taihulight()


# -- repartition metrics (Figs. 7, 17) ---------------------------------------


def _proc_metric(stat: str):
    fn = {"min": np.min, "mean": np.mean, "max": np.max}[stat]
    return lambda s: float(fn(s.procs))


def _cache_metric(stat: str):
    fn = {"min": np.min, "mean": np.mean, "max": np.max}[stat]
    return lambda s: float(fn(s.cache))


_REPARTITION_METRICS = {
    MAKESPAN: lambda s: s.makespan(),
    "proc_min": _proc_metric("min"),
    "proc_mean": _proc_metric("mean"),
    "proc_max": _proc_metric("max"),
    "cache_min": _cache_metric("min"),
    "cache_mean": _cache_metric("mean"),
    "cache_max": _cache_metric("max"),
}

# -- figure builders ----------------------------------------------------------


def figure1(*, reps: int = 10, seed: int = 2017, points=None) -> Experiment:
    """Fig. 1: the six dominant heuristics vs AllProcCache, n sweep."""
    return Experiment(
        experiment_id="fig1",
        title="Comparison of the six dominant partition heuristics (NPB-SYNTH)",
        xlabel="#Applications",
        points=NAPPS_POINTS if points is None else points,
        factory=_synth_napps,
        schedulers=("allproccache",) + PAPER_HEURISTICS,
        reps=reps,
        seed=seed,
    )


def figure2(*, reps: int = 10, seed: int = 2017, points=None, napps: int = 16) -> Experiment:
    """Fig. 2: impact of the cache miss rate with a 1 GB LLC."""
    return Experiment(
        experiment_id="fig2",
        title="Impact of cache miss rate using a 1GB LLC (NPB-SYNTH)",
        xlabel="Cache miss rate",
        points=MISS_POINTS if points is None else points,
        factory=_synth_missrate(napps),
        schedulers=PAPER_HEURISTICS,
        reps=reps,
        seed=seed,
    )


def figure3(*, reps: int = 10, seed: int = 2017, points=None) -> Experiment:
    """Fig. 3: impact of the number of applications (NPB-SYNTH, p=256)."""
    return Experiment(
        experiment_id="fig3",
        title="Impact of the number of applications (NPB-SYNTH)",
        xlabel="#Applications",
        points=NAPPS_POINTS if points is None else points,
        factory=_synth_napps,
        schedulers=_MAIN_FIVE,
        reps=reps,
        seed=seed,
    )


def figure4(*, reps: int = 10, seed: int = 2017, points=None) -> Experiment:
    """Fig. 4: impact of the average number of processors per application."""
    return Experiment(
        experiment_id="fig4",
        title="Impact of the average #processors per application (NPB-SYNTH)",
        xlabel="#Processors/#Applications",
        points=RATIO_POINTS if points is None else points,
        factory=_ratio_factory,
        schedulers=_COSCHED_FOUR,
        reps=reps,
        seed=seed,
    )


def figure5(*, reps: int = 10, seed: int = 2017, points=None, napps: int = 16) -> Experiment:
    """Fig. 5: impact of the number of processors (16 applications)."""
    return Experiment(
        experiment_id="fig5",
        title="Impact of the number of processors (NPB-SYNTH, 16 apps)",
        xlabel="#Processors",
        points=NPROCS_POINTS if points is None else points,
        factory=_synth_nprocs(napps),
        schedulers=_MAIN_FIVE,
        reps=reps,
        seed=seed,
    )


def figure6(*, reps: int = 10, seed: int = 2017, points=None, napps: int = 16) -> Experiment:
    """Fig. 6: impact of the sequential fraction (16 apps, p=256)."""
    return Experiment(
        experiment_id="fig6",
        title="Impact of the sequential fraction of work (NPB-SYNTH, 16 apps)",
        xlabel="Sequential part",
        points=SEQ_POINTS if points is None else points,
        factory=_synth_seq(napps),
        schedulers=_MAIN_FIVE,
        reps=reps,
        seed=seed,
    )


def figure7(*, reps: int = 10, seed: int = 2017, points=None) -> Experiment:
    """Fig. 7: processor and cache repartition (min/avg/max), NPB-SYNTH."""
    return Experiment(
        experiment_id="fig7",
        title="Processor and cache repartition with 256 processors (NPB-SYNTH)",
        xlabel="#Applications",
        points=NAPPS_POINTS if points is None else points,
        factory=_synth_napps,
        schedulers=("dominant-minratio", "fair", "0cache"),
        metrics=dict(_REPARTITION_METRICS),
        reps=reps,
        seed=seed,
    )


def figure8(*, reps: int = 10, seed: int = 2017, points=None) -> Experiment:
    """Fig. 8 (A.1): number of applications with the RANDOM data set."""
    return Experiment(
        experiment_id="fig8",
        title="Impact of the number of applications (RANDOM)",
        xlabel="#Applications",
        points=NAPPS_POINTS if points is None else points,
        factory=_random_napps,
        schedulers=_MAIN_FIVE,
        reps=reps,
        seed=seed,
    )


def figure9(*, reps: int = 10, seed: int = 2017, points=None, napps: int = 64) -> Experiment:
    """Fig. 9 (A.2): number of processors, NPB-SYNTH with 64 apps."""
    return Experiment(
        experiment_id="fig9",
        title="Impact of the number of processors (NPB-SYNTH, 64 apps)",
        xlabel="#Processors",
        points=NPROCS_POINTS if points is None else points,
        factory=_synth_nprocs(napps),
        schedulers=_COSCHED_FOUR,
        reps=reps,
        seed=seed,
    )


def figure10(*, reps: int = 10, seed: int = 2017, points=None) -> Experiment:
    """Fig. 10 (A.2): number of processors with NPB-6 (6 apps)."""
    return Experiment(
        experiment_id="fig10",
        title="Impact of the number of processors (NPB-6)",
        xlabel="#Processors",
        points=NPROCS_POINTS if points is None else points,
        factory=_npb6_nprocs,
        schedulers=_MAIN_FIVE,
        reps=reps,
        seed=seed,
    )


def figure11(*, reps: int = 10, seed: int = 2017, points=None, napps: int = 16) -> Experiment:
    """Fig. 11 (A.2): number of processors, RANDOM with 16 apps."""
    return Experiment(
        experiment_id="fig11",
        title="Impact of the number of processors (RANDOM, 16 apps)",
        xlabel="#Processors",
        points=NPROCS_POINTS if points is None else points,
        factory=_random_nprocs(napps),
        schedulers=_MAIN_FIVE,
        reps=reps,
        seed=seed,
    )


def figure12(*, reps: int = 10, seed: int = 2017, points=None, napps: int = 64) -> Experiment:
    """Fig. 12 (A.2): number of processors, RANDOM with 64 apps."""
    return Experiment(
        experiment_id="fig12",
        title="Impact of the number of processors (RANDOM, 64 apps)",
        xlabel="#Processors",
        points=NPROCS_POINTS if points is None else points,
        factory=_random_nprocs(napps),
        schedulers=_COSCHED_FOUR,
        reps=reps,
        seed=seed,
    )


def figure13(*, reps: int = 10, seed: int = 2017, points=None) -> Experiment:
    """Fig. 13 (A.3): sequential fraction with NPB-6."""
    return Experiment(
        experiment_id="fig13",
        title="Impact of the sequential fraction of work (NPB-6)",
        xlabel="Sequential part",
        points=SEQ_POINTS if points is None else points,
        factory=_npb6_seq,
        schedulers=_MAIN_FIVE,
        reps=reps,
        seed=seed,
    )


def figure14(*, reps: int = 10, seed: int = 2017, points=None, napps: int = 16) -> Experiment:
    """Fig. 14 (A.3): sequential fraction with RANDOM (16 apps)."""
    return Experiment(
        experiment_id="fig14",
        title="Impact of the sequential fraction of work (RANDOM, 16 apps)",
        xlabel="Sequential part",
        points=SEQ_POINTS if points is None else points,
        factory=_random_seq(napps),
        schedulers=_MAIN_FIVE,
        reps=reps,
        seed=seed,
    )


def figure15(*, reps: int = 10, seed: int = 2017, points=None, napps: int = 16) -> Experiment:
    """Fig. 15 (A.4): cache latency ls, 16 apps, s=1e-4."""
    return Experiment(
        experiment_id="fig15",
        title="Impact of latency ls (NPB-SYNTH, 16 apps, s=1e-4)",
        xlabel="ls value",
        points=LS_POINTS if points is None else points,
        factory=_synth_latency(napps, 1e-4),
        schedulers=_MAIN_FIVE,
        reps=reps,
        seed=seed,
    )


def figure16(*, reps: int = 10, seed: int = 2017, points=None, napps: int = 64) -> Experiment:
    """Fig. 16 (A.4): cache latency ls, 64 apps, s=1e-4."""
    return Experiment(
        experiment_id="fig16",
        title="Impact of latency ls (NPB-SYNTH, 64 apps, s=1e-4)",
        xlabel="ls value",
        points=LS_POINTS if points is None else points,
        factory=_synth_latency(napps, 1e-4),
        schedulers=_MAIN_FIVE,
        reps=reps,
        seed=seed,
    )


def figure17(*, reps: int = 10, seed: int = 2017, points=None) -> Experiment:
    """Fig. 17 (A.5): processor and cache repartition with RANDOM."""
    return Experiment(
        experiment_id="fig17",
        title="Processor and cache repartition with 256 processors (RANDOM)",
        xlabel="#Applications",
        points=NAPPS_POINTS if points is None else points,
        factory=_random_napps,
        schedulers=("dominant-minratio", "fair", "0cache"),
        metrics=dict(_REPARTITION_METRICS),
        reps=reps,
        seed=seed,
    )


def figure18(*, reps: int = 10, seed: int = 2017, points=None, napps: int = 16) -> Experiment:
    """Fig. 18 (A.6): miss-rate sweep with all nine heuristics, 1 GB LLC."""
    return Experiment(
        experiment_id="fig18",
        title="Impact of cache miss rate using a 1GB LLC, all heuristics (NPB-SYNTH)",
        xlabel="Cache miss rate",
        points=MISS_POINTS if points is None else points,
        factory=_synth_missrate(napps),
        schedulers=PAPER_HEURISTICS + ("randompart", "fair", "0cache"),
        reps=reps,
        seed=seed,
    )


#: Figure id -> builder.
FIGURES = {
    f"fig{i}": fn
    for i, fn in enumerate(
        (figure1, figure2, figure3, figure4, figure5, figure6, figure7, figure8,
         figure9, figure10, figure11, figure12, figure13, figure14, figure15,
         figure16, figure17, figure18),
        start=1,
    )
}

#: Figure id -> the normalization the paper's plot uses
#: (None = raw; tuple = the paper shows both normalizations).
FIGURE_NORMALIZATIONS: dict[str, tuple[str | None, ...]] = {
    "fig1": ("allproccache",),
    "fig2": ("dominant-minratio",),
    "fig3": ("allproccache", "dominant-minratio"),
    "fig4": ("dominant-minratio",),
    "fig5": ("allproccache", "dominant-minratio"),
    "fig6": ("allproccache", "dominant-minratio"),
    "fig7": (None,),
    "fig8": ("allproccache", "dominant-minratio"),
    "fig9": ("dominant-minratio",),
    "fig10": ("allproccache", "dominant-minratio"),
    "fig11": ("allproccache", "dominant-minratio"),
    "fig12": ("dominant-minratio",),
    "fig13": ("allproccache", "dominant-minratio"),
    "fig14": ("allproccache", "dominant-minratio"),
    "fig15": ("allproccache",),
    "fig16": ("allproccache",),
    "fig17": (None,),
    "fig18": ("dominant-minratio",),
}


def figure_ids() -> tuple[str, ...]:
    """All known figure ids, in paper order."""
    return tuple(FIGURES)


def build_figure(figure_id: str, **kwargs) -> Experiment:
    """Build a figure's experiment by id (e.g. ``"fig3"``)."""
    try:
        builder = FIGURES[figure_id.lower()]
    except KeyError:
        raise ModelError(
            f"unknown figure {figure_id!r}; known: {', '.join(FIGURES)}"
        ) from None
    return builder(**kwargs)
