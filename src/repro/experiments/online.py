"""Online-arrival experiments on the offline experiment grid.

Bridges the two engines: an :class:`~repro.experiments.runner.Experiment`
whose :attr:`~repro.experiments.runner.Experiment.evaluate` hook runs
:func:`repro.online.simulate_online` under a *generated* arrival
stream (:mod:`repro.online.arrivals`) instead of pricing an offline
schedule.  The grid, the serial/process backends, and the on-disk
result cache all apply unchanged — an online sweep is bit-identical
across backends and cacheable like any figure.

Seed discipline: the arrival stream is drawn from the per-cell
*scenario* stream (shared by every policy at the same ``(rep, point)``
cell, so all policies face the same arrivals), while randomized
registry policies consume the per-policy stream.

Example::

    from repro.experiments.online import build_online_experiment
    from repro.experiments.runner import run_experiment

    exp = build_online_experiment(
        arrivals="poisson:rate=5e-9",
        policies=("dominant", "fair", "fcfs"),
        napps_points=(4, 8, 16),
        reps=5,
    )
    result = run_experiment(exp, backend="process")
"""

from __future__ import annotations

import numpy as np

from ..machine.presets import get_preset
from ..online.arrivals import parse_arrival_spec
from ..online.engine import simulate_online
from ..workloads.synthetic import generate
from .runner import Experiment

__all__ = ["ONLINE_METRICS", "build_online_experiment"]

#: Metrics recorded per (policy, rep, point) cell.
ONLINE_METRICS: tuple[str, ...] = ("makespan", "mean_flow", "max_flow")


def build_online_experiment(
    *,
    arrivals: str = "poisson:rate=5e-9",
    policies: tuple[str, ...] = ("dominant", "fair", "fcfs"),
    napps_points: tuple[int, ...] = (4, 8, 16),
    dataset: str = "npb-synth",
    platform: str = "taihulight",
    reps: int = 5,
    seed: int = 2017,
) -> Experiment:
    """Declare an online sweep: policies x #applications x reps.

    Parameters
    ----------
    arrivals : str
        Arrival spec (see :func:`repro.online.arrivals.parse_arrival_spec`);
        parsed per evaluation so the experiment fingerprint depends
        only on the spec string.
    policies : tuple[str, ...]
        Online builtin policies and/or registered concurrent
        scheduler names.
    napps_points : tuple[int, ...]
        Sweep over the number of applications.
    dataset, platform : str
        Workload generator and platform preset names.
    reps, seed : int
        Grid repetitions and root seed.
    """
    parse_arrival_spec(arrivals)  # fail fast on bad specs

    def factory(point, rng):
        return generate(dataset, int(point), rng), get_preset(platform)

    def evaluate(workload, platform_obj, policy, scenario_rng, policy_rng):
        stream = parse_arrival_spec(arrivals).times(workload.n, scenario_rng)
        res = simulate_online(workload, platform_obj, stream, policy=policy,
                              rng=policy_rng)
        return {"makespan": res.makespan, "mean_flow": res.mean_flow,
                "max_flow": res.max_flow}

    return Experiment(
        experiment_id=f"online-{dataset}",
        title=f"online policies under {arrivals} arrivals ({dataset})",
        xlabel="Applications",
        points=np.asarray(napps_points, dtype=np.float64),
        factory=factory,
        schedulers=tuple(policies),
        metrics={name: None for name in ONLINE_METRICS},
        reps=reps,
        seed=seed,
        evaluate=evaluate,
    )
