"""Experiment result containers, normalization, and CSV export.

An :class:`ExperimentResult` holds, for one experiment (one figure of
the paper), the raw metric samples for every scheduler at every sweep
point across every repetition, so the figure's series can be derived
in any normalization the paper uses:

* ``normalized(by=...)`` — per-repetition ratio to a reference
  scheduler, then averaged (this matches the paper's "results are
  normalized with X" protocol applied per random instance);
* ``mean`` / ``spread`` — raw statistics (used by the repartition
  figures 7 and 17, which plot min/avg/max of per-application
  allocations rather than makespans).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..types import ModelError

__all__ = ["ExperimentResult", "MAKESPAN"]

#: Canonical metric name for the makespan.
MAKESPAN = "makespan"


@dataclass
class ExperimentResult:
    """Raw samples of one experiment.

    Attributes
    ----------
    experiment_id : str
        e.g. ``"fig1"``.
    title : str
        Human-readable description (figure caption).
    xlabel : str
        Sweep-axis label.
    x : numpy.ndarray
        Sweep points, shape ``(npoints,)``.
    data : dict[str, dict[str, numpy.ndarray]]
        ``data[scheduler][metric]`` has shape ``(reps, npoints)``.
    meta : dict
        Free-form provenance (seed, reps, platform, dataset...).
    """

    experiment_id: str
    title: str
    xlabel: str
    x: np.ndarray
    data: dict[str, dict[str, np.ndarray]]
    meta: dict = field(default_factory=dict)

    # -- access -------------------------------------------------------------
    @property
    def schedulers(self) -> tuple[str, ...]:
        return tuple(self.data)

    @property
    def reps(self) -> int:
        first = next(iter(self.data.values()))
        return next(iter(first.values())).shape[0]

    def samples(self, scheduler: str, metric: str = MAKESPAN) -> np.ndarray:
        """Raw samples, shape ``(reps, npoints)``."""
        try:
            return self.data[scheduler][metric]
        except KeyError:
            raise ModelError(
                f"no samples for scheduler={scheduler!r} metric={metric!r}; "
                f"have schedulers {list(self.data)}"
            ) from None

    def mean(self, scheduler: str, metric: str = MAKESPAN) -> np.ndarray:
        """Across-repetition mean, shape ``(npoints,)``."""
        return self.samples(scheduler, metric).mean(axis=0)

    def spread(self, scheduler: str, metric: str = MAKESPAN) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(min, mean, max) across repetitions, each ``(npoints,)``."""
        s = self.samples(scheduler, metric)
        return s.min(axis=0), s.mean(axis=0), s.max(axis=0)

    def normalized(self, by: str, metric: str = MAKESPAN) -> dict[str, np.ndarray]:
        """Per-repetition normalization to scheduler *by*, then mean.

        Returns ``{scheduler: series}`` including the reference (whose
        series is identically 1).
        """
        ref = self.samples(by, metric)
        if np.any(ref <= 0):
            raise ModelError(f"reference scheduler {by!r} has non-positive samples")
        return {
            name: (self.samples(name, metric) / ref).mean(axis=0)
            for name in self.data
            if metric in self.data[name]
        }

    # -- presentation ---------------------------------------------------------
    def to_rows(
        self,
        *,
        normalize_by: str | None = None,
        metric: str = MAKESPAN,
    ) -> tuple[list[str], list[list[float]]]:
        """(header, rows) for tabular printing — one row per sweep point."""
        if normalize_by is not None:
            series = self.normalized(normalize_by, metric)
        else:
            series = {name: self.mean(name, metric) for name in self.data
                      if metric in self.data[name]}
        header = [self.xlabel] + list(series)
        rows = [
            [float(self.x[i])] + [float(series[name][i]) for name in series]
            for i in range(len(self.x))
        ]
        return header, rows

    def to_csv(
        self,
        path: str | Path,
        *,
        normalize_by: str | None = None,
        metric: str = MAKESPAN,
    ) -> None:
        """Write the series table to *path*."""
        header, rows = self.to_rows(normalize_by=normalize_by, metric=metric)
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(header)
            writer.writerows(rows)

    @staticmethod
    def read_csv(path: str | Path) -> tuple[list[str], np.ndarray]:
        """Read back a table written by :meth:`to_csv`."""
        with open(path, newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            rows = np.asarray([[float(v) for v in row] for row in reader])
        return header, rows
