"""The seeded experiment runner.

An :class:`Experiment` bundles everything one figure needs: the sweep
points, a factory producing ``(workload, platform)`` for a point, the
schedulers to compare, and the per-schedule metrics to record.
:func:`run_experiment` executes the full ``points x reps x schedulers``
grid with independent but reproducible RNG streams (spawned from one
seed, so adding a scheduler does not perturb the workloads).

Execution is delegated to the orchestration engine
(:mod:`repro.experiments.engine`): the grid is flattened into
self-describing task records and evaluated by a pluggable backend —
``"serial"`` (default) or ``"process"`` (a fork-based pool) — with
bit-identical results either way.  When a cache directory is
configured (``cache_dir=`` or ``REPRO_CACHE_DIR``), results are
content-addressed by the experiment spec
(:mod:`repro.experiments.cache`) and a re-run is a cache hit that does
no scheduling work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.application import Workload
from ..core.platform import Platform
from ..core.schedule import BaseSchedule
from ..types import ModelError
from .cache import ResultCache, resolve_cache_dir
from .engine import execute_tasks, generate_tasks, resolve_backend
from .results import MAKESPAN, ExperimentResult

__all__ = ["Experiment", "run_experiment", "DEFAULT_METRICS"]

#: Factory: (sweep point, rng) -> (workload, platform).
InstanceFactory = Callable[[float, np.random.Generator], tuple[Workload, Platform]]

#: Metric: schedule -> float.
MetricFn = Callable[[BaseSchedule], float]

#: Direct evaluator: (workload, platform, strategy name, scenario rng,
#: strategy rng) -> {metric: float}.  The scenario rng is shared by
#: every strategy at the same (rep, point) cell — e.g. so all online
#: policies face the same generated arrival stream — while the
#: strategy rng is that strategy's independent stream.
EvaluateFn = Callable[
    [Workload, Platform, str, np.random.Generator, np.random.Generator],
    dict[str, float],
]

DEFAULT_METRICS: dict[str, MetricFn] = {MAKESPAN: lambda s: s.makespan()}


@dataclass
class Experiment:
    """Declarative description of one experiment (one paper figure).

    Attributes
    ----------
    experiment_id, title, xlabel
        Identification / presentation strings.
    points : numpy.ndarray
        Sweep values (the x axis).
    factory : InstanceFactory
        Builds the random instance for a sweep point.
    schedulers : tuple[str, ...]
        Registry names to compare.
    metrics : dict[str, MetricFn]
        What to record per schedule; defaults to the makespan.
    reps : int
        Repetitions (the paper uses 50).
    seed : int
        Root seed for the reproducible RNG tree.
    backend : str | None
        Preferred execution backend (``"serial"`` or ``"process"``);
        None defers to the ``REPRO_BACKEND`` environment variable and
        ultimately to ``"serial"``.  The backend never changes the
        result, only how fast it arrives.
    evaluate : EvaluateFn | None
        When set, replaces the registry-scheduler + metric-function
        path entirely: each grid cell calls ``evaluate(workload,
        platform, name, scenario_rng, strategy_rng)`` and records the
        returned dict, whose keys must be exactly ``metrics``' keys
        (their values are then unused — ``None`` is fine).  This is
        how non-schedule evaluations (e.g. the online engine under
        generated arrival streams, see
        :mod:`repro.experiments.online`) ride the same grid, backends,
        and result cache.  ``schedulers`` may then name anything the
        evaluator understands (e.g. online builtin policies).
    """

    experiment_id: str
    title: str
    xlabel: str
    points: np.ndarray
    factory: InstanceFactory
    schedulers: tuple[str, ...]
    metrics: dict[str, MetricFn] = field(default_factory=lambda: dict(DEFAULT_METRICS))
    reps: int = 10
    seed: int = 2017
    backend: str | None = None
    evaluate: EvaluateFn | None = None

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.float64)
        if self.points.ndim != 1 or self.points.size == 0:
            raise ModelError("points must be a non-empty 1-D array")
        if self.reps < 1:
            raise ModelError(f"reps must be >= 1, got {self.reps}")
        if not self.schedulers:
            raise ModelError("need at least one scheduler")


def run_experiment(
    exp: Experiment,
    *,
    progress: Callable[[str], None] | None = None,
    backend: str | None = None,
    workers: int | None = None,
    cache_dir=None,
    use_cache: bool = True,
) -> ExperimentResult:
    """Execute the grid and collect an :class:`ExperimentResult`.

    RNG discipline: one child seed per (rep, point) pair drives the
    instance factory, and an independent child per (rep, point,
    scheduler) drives randomized schedulers — so every scheduler sees
    the *same* workload instance, and randomized heuristics do not
    share streams.

    Parameters
    ----------
    progress : callable, optional
        Called with short status strings as work completes.
    backend : str, optional
        ``"serial"`` or ``"process"``; defaults to
        ``exp.backend``/``REPRO_BACKEND``/``"serial"``.  Results are
        bit-identical across backends.
    workers : int, optional
        Process-pool size (``REPRO_WORKERS``/cpu count by default).
    cache_dir : str | Path, optional
        Result-cache directory; defaults to ``REPRO_CACHE_DIR``;
        caching is disabled when neither is set.
    use_cache : bool
        Set False to bypass the cache entirely (no read, no write).
    """
    cache = None
    if use_cache:
        resolved_dir = resolve_cache_dir(cache_dir)
        if resolved_dir is not None:
            cache = ResultCache(resolved_dir)
    if cache is not None:
        cached = cache.load(exp)
        if cached is not None:
            if progress is not None:
                progress(f"{exp.experiment_id}: cache hit ({cache.path_for(exp).name})")
            return cached

    backend = resolve_backend(backend, exp)
    tasks = generate_tasks(exp)
    samples = execute_tasks(exp, tasks, backend=backend, workers=workers,
                            progress=progress)

    npoints = exp.points.size
    data = {
        name: {metric: np.empty((exp.reps, npoints)) for metric in exp.metrics}
        for name in exp.schedulers
    }
    for task, metrics in zip(tasks, samples):
        for metric, value in metrics.items():
            data[task.scheduler][metric][task.rep, task.point_index] = value

    result = ExperimentResult(
        experiment_id=exp.experiment_id,
        title=exp.title,
        xlabel=exp.xlabel,
        x=exp.points.copy(),
        data=data,
        meta={"reps": exp.reps, "seed": exp.seed,
              "schedulers": list(exp.schedulers), "backend": backend},
    )
    if cache is not None:
        cache.store(exp, result)
    return result
