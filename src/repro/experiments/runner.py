"""The seeded experiment runner.

An :class:`Experiment` bundles everything one figure needs: the sweep
points, a factory producing ``(workload, platform)`` for a point, the
schedulers to compare, and the per-schedule metrics to record.
:func:`run_experiment` executes the full ``points x reps x schedulers``
grid with independent but reproducible RNG streams (spawned from one
seed, so adding a scheduler does not perturb the workloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.application import Workload
from ..core.platform import Platform
from ..core.registry import get_scheduler
from ..core.schedule import BaseSchedule
from ..types import ModelError
from .results import MAKESPAN, ExperimentResult

__all__ = ["Experiment", "run_experiment", "DEFAULT_METRICS"]

#: Factory: (sweep point, rng) -> (workload, platform).
InstanceFactory = Callable[[float, np.random.Generator], tuple[Workload, Platform]]

#: Metric: schedule -> float.
MetricFn = Callable[[BaseSchedule], float]

DEFAULT_METRICS: dict[str, MetricFn] = {MAKESPAN: lambda s: s.makespan()}


@dataclass
class Experiment:
    """Declarative description of one experiment (one paper figure).

    Attributes
    ----------
    experiment_id, title, xlabel
        Identification / presentation strings.
    points : numpy.ndarray
        Sweep values (the x axis).
    factory : InstanceFactory
        Builds the random instance for a sweep point.
    schedulers : tuple[str, ...]
        Registry names to compare.
    metrics : dict[str, MetricFn]
        What to record per schedule; defaults to the makespan.
    reps : int
        Repetitions (the paper uses 50).
    seed : int
        Root seed for the reproducible RNG tree.
    """

    experiment_id: str
    title: str
    xlabel: str
    points: np.ndarray
    factory: InstanceFactory
    schedulers: tuple[str, ...]
    metrics: dict[str, MetricFn] = field(default_factory=lambda: dict(DEFAULT_METRICS))
    reps: int = 10
    seed: int = 2017

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.float64)
        if self.points.ndim != 1 or self.points.size == 0:
            raise ModelError("points must be a non-empty 1-D array")
        if self.reps < 1:
            raise ModelError(f"reps must be >= 1, got {self.reps}")
        if not self.schedulers:
            raise ModelError("need at least one scheduler")


def run_experiment(exp: Experiment, *, progress: Callable[[str], None] | None = None) -> ExperimentResult:
    """Execute the grid and collect an :class:`ExperimentResult`.

    RNG discipline: one child seed per (rep, point) pair drives the
    instance factory, and an independent child per (rep, point,
    scheduler) drives randomized schedulers — so every scheduler sees
    the *same* workload instance, and randomized heuristics do not
    share streams.
    """
    npoints = self_points = exp.points.size
    data = {
        name: {metric: np.empty((exp.reps, self_points)) for metric in exp.metrics}
        for name in exp.schedulers
    }
    root = np.random.SeedSequence(exp.seed)
    rep_seeds = root.spawn(exp.reps)
    for r in range(exp.reps):
        point_seeds = rep_seeds[r].spawn(npoints)
        for j, point in enumerate(exp.points):
            instance_seed, *sched_seeds = point_seeds[j].spawn(1 + len(exp.schedulers))
            workload, platform = exp.factory(float(point), np.random.default_rng(instance_seed))
            for k, name in enumerate(exp.schedulers):
                scheduler = get_scheduler(name)
                schedule = scheduler(workload, platform, np.random.default_rng(sched_seeds[k]))
                for metric, fn in exp.metrics.items():
                    data[name][metric][r, j] = fn(schedule)
        if progress is not None:
            progress(f"{exp.experiment_id}: rep {r + 1}/{exp.reps} done")
    return ExperimentResult(
        experiment_id=exp.experiment_id,
        title=exp.title,
        xlabel=exp.xlabel,
        x=exp.points.copy(),
        data=data,
        meta={"reps": exp.reps, "seed": exp.seed, "schedulers": list(exp.schedulers)},
    )
