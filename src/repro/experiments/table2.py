"""Table 2 regeneration: trace-driven application profiling.

The paper's Table 2 was produced by instrumenting the NPB benchmarks
with PEBIL and measuring ``(w, f, m_40MB)``.  This module performs the
substitute pipeline end-to-end: for each NPB benchmark we generate a
synthetic memory trace whose locality is tuned to land near the
measured miss rate, push it through the LRU stack simulator, fit the
power law, and report measured-vs-paper values side by side.

The synthetic locality knobs (working-set size, Zipf skew) were chosen
so the *simulated* miss rate at 40 MB falls in the same regime as the
measurement — the point of the exercise is to exercise the full
trace -> miss-curve -> fit -> Application path, not to reverse-engineer
NPB memory behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cachesim.address_stream import LINE_BYTES, zipf_stream
from ..cachesim.profiling import profile_application
from ..core.application import BASELINE_CACHE_BYTES, Application
from ..workloads.npb import NPB_TABLE2

__all__ = ["ProfiledBenchmark", "TABLE2_TRACE_RECIPES", "regenerate_table2"]


@dataclass(frozen=True)
class ProfiledBenchmark:
    """Paper-vs-simulated parameters for one benchmark.

    Attributes
    ----------
    name : str
        Benchmark label.
    paper_work, paper_freq, paper_miss : float
        The Table-2 constants.
    app : Application
        The application produced by the trace-driven pipeline.
    fit_alpha, fit_r2 : float
        Power-law fit quality of the simulated miss curve.
    """

    name: str
    paper_work: float
    paper_freq: float
    paper_miss: float
    app: Application
    fit_alpha: float
    fit_r2: float


#: Per-benchmark synthetic trace recipes: (footprint_lines, skew).
#: Lower skew = heavier popularity tail = higher miss rate across the
#: sweep; the skews are ordered like the paper's m_40MB column (CG the
#: most cache-friendly, MG/FT/SP the least).
TABLE2_TRACE_RECIPES: dict[str, tuple[int, float]] = {
    "CG": (400_000, 1.30),
    "BT": (400_000, 1.10),
    "LU": (400_000, 1.25),
    "SP": (400_000, 1.02),
    "MG": (500_000, 0.95),
    "FT": (400_000, 1.00),
}


def regenerate_table2(
    *,
    trace_length: int = 100_000,
    seed: int = 2017,
    cache_points: int = 12,
) -> list[ProfiledBenchmark]:
    """Run the profiling pipeline for all six NPB benchmarks.

    ``trace_length`` trades fidelity for runtime (the stack algorithm
    is ``O(L log L)`` per cache geometry); the default completes in a
    few seconds and already yields stable fits.  Compulsory misses are
    excluded (``exclude_cold``): a 1e5-access synthetic trace has a
    cold-miss floor a real benchmark amortizes over billions of
    accesses, and the power law of Eq. 1 describes capacity misses.
    The fitted ``m0`` at 40 MB extrapolates the capacity-miss power law
    measured on a 16 KB - 16 MB sweep.
    """
    rng = np.random.default_rng(seed)
    sweeps = np.geomspace(16 * 1024, 0.4 * BASELINE_CACHE_BYTES, cache_points)
    out: list[ProfiledBenchmark] = []
    for name, (w, f, m40) in NPB_TABLE2.items():
        footprint_lines, skew = TABLE2_TRACE_RECIPES[name]
        trace = zipf_stream(footprint_lines, trace_length, rng, skew=skew)
        app, _curve, fit = profile_application(
            name,
            trace,
            work=w,
            operations_per_access=1.0 / f,
            cache_bytes=sweeps,
            line_bytes=LINE_BYTES,
            exclude_cold=True,
        )
        out.append(
            ProfiledBenchmark(
                name=name,
                paper_work=w,
                paper_freq=f,
                paper_miss=m40,
                app=app,
                fit_alpha=fit.alpha,
                fit_r2=fit.r2,
            )
        )
    return out
