"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from ..types import ModelError

__all__ = ["format_table", "render_result"]


def format_table(header: list[str], rows: list[list], *, precision: int = 4) -> str:
    """Render a header + numeric rows as an aligned monospace table."""
    if not header:
        raise ModelError("header must be non-empty")
    str_rows = []
    for row in rows:
        if len(row) != len(header):
            raise ModelError(
                f"row width {len(row)} does not match header width {len(header)}"
            )
        str_rows.append([_fmt(v, precision) for v in row])
    widths = [
        max(len(header[j]), *(len(r[j]) for r in str_rows)) if str_rows else len(header[j])
        for j in range(len(header))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in str_rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def render_result(result, *, normalize_by: str | None = None,
                  metric: str = "makespan", precision: int = 4) -> str:
    """Render an :class:`ExperimentResult` as a titled table."""
    header, rows = result.to_rows(normalize_by=normalize_by, metric=metric)
    norm = f" (normalized by {normalize_by})" if normalize_by else ""
    title = f"{result.experiment_id}: {result.title}{norm}"
    return f"{title}\n{format_table(header, rows, precision=precision)}"


def _fmt(value, precision: int) -> str:
    if isinstance(value, str):
        return value
    v = float(value)
    if v == int(v) and abs(v) < 1e6:
        return str(int(v))
    if abs(v) >= 1e5 or (v != 0 and abs(v) < 1e-3):
        return f"{v:.{precision}e}"
    return f"{v:.{precision}f}"
