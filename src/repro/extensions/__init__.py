"""Extensions beyond the paper (its Section 7 future-work directions).

Importing this package registers three additional schedulers:

* ``speedup-aware`` — dominant subset + Amdahl-aware KKT cache fractions;
* ``localsearch``   — dominant subset refined by add/drop/swap search;
* ``continuous-opt`` — SLSQP over the fractions (reference upper bound).
"""

from ..core.registry import register
from .continuous import continuous_schedule, optimize_fractions
from .granularity import granularity_penalty, model_utility_curves, ways_schedule
from .integer_procs import integer_schedule, round_processors, rounding_penalty
from .local_search import LocalSearchResult, local_search_partition, local_search_schedule
from .speedup_aware import speedup_aware_fractions, speedup_aware_schedule


def _register_extensions() -> None:
    from ..core.registry import scheduler_names

    existing = set(scheduler_names())
    if "speedup-aware" not in existing:
        register("speedup-aware",
                 lambda wl, pf, rng=None: speedup_aware_schedule(wl, pf, rng),
                 description="dominant subset + Amdahl-aware KKT cache fractions",
                 provenance="extensions (paper §7 future work)")
    if "localsearch" not in existing:
        register("localsearch",
                 lambda wl, pf, rng=None: local_search_schedule(wl, pf, rng),
                 description="dominant subset refined by add/drop/swap search",
                 provenance="extensions (paper §7 future work)")
    if "continuous-opt" not in existing:
        register("continuous-opt",
                 lambda wl, pf, rng=None: continuous_schedule(wl, pf, rng),
                 description="SLSQP over cache fractions (reference upper bound)",
                 provenance="extensions (paper §7 future work)")


_register_extensions()

__all__ = [
    "speedup_aware_fractions",
    "speedup_aware_schedule",
    "LocalSearchResult",
    "local_search_partition",
    "local_search_schedule",
    "optimize_fractions",
    "continuous_schedule",
    "round_processors",
    "integer_schedule",
    "rounding_penalty",
    "model_utility_curves",
    "ways_schedule",
    "granularity_penalty",
]
