"""Continuous optimization of the cache partition (scipy SLSQP).

The strongest (and costliest) point of the design space: treat the
cache fractions ``x`` directly as decision variables and minimize the
equal-finish makespan ``K(x)`` under ``sum x <= 1``, ``x >= 0`` with a
sequential quadratic programming solver.  The objective is smooth
wherever no application sits exactly at its Eq. 3 threshold; SLSQP
handles the remaining kinks well in practice when warm-started from
the dominant heuristic's solution.

This optimizer subsumes both the Theorem-3 closed form (it recovers it
for perfectly parallel workloads) and the speedup-aware fixed point —
the benchmarks use it as the reference upper bound on what *any*
fraction-based strategy can achieve for a given platform.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from ..core.application import Workload
from ..core.dominance import optimal_cache_fractions
from ..core.heuristics import dominant_partition
from ..core.platform import Platform
from ..core.processor_allocation import (
    build_equal_finish_schedule,
    equal_finish_makespan,
)
from ..core.schedule import Schedule
from ..types import SolverError

__all__ = ["optimize_fractions", "continuous_schedule"]


def optimize_fractions(
    workload: Workload,
    platform: Platform,
    *,
    x0=None,
    max_iter: int = 200,
    tol: float = 1e-12,
) -> np.ndarray:
    """Minimize the equal-finish makespan over cache fractions.

    Parameters
    ----------
    workload, platform
        The instance.
    x0 : array_like, optional
        Warm start; defaults to the Theorem-3 fractions of the
        all-positive-weight subset.
    max_iter, tol
        SLSQP knobs.

    Returns
    -------
    numpy.ndarray
        Fractions with ``sum <= 1`` (tiny allocations below 1e-12 are
        snapped to zero).  Guaranteed no worse than the warm start.
    """
    n = workload.n
    if x0 is None:
        d = workload.miss_coefficients(platform)
        eligible = (workload.work * workload.freq * d) > 0
        x0 = (
            optimal_cache_fractions(workload, platform, eligible)
            if eligible.any()
            else np.zeros(n)
        )
    x0 = np.asarray(x0, dtype=np.float64)

    def objective(x: np.ndarray) -> float:
        x = np.clip(x, 0.0, 1.0)
        return equal_finish_makespan(workload, platform, x)

    baseline = objective(x0)
    scale = baseline if baseline > 0 else 1.0

    result = minimize(
        lambda x: objective(x) / scale,
        x0,
        method="SLSQP",
        bounds=[(0.0, 1.0)] * n,
        constraints=[{"type": "ineq", "fun": lambda x: 1.0 - x.sum()}],
        options={"maxiter": max_iter, "ftol": tol},
    )
    if not np.all(np.isfinite(result.x)):
        raise SolverError("SLSQP returned non-finite fractions")
    x = np.clip(result.x, 0.0, 1.0)
    total = float(x.sum())
    if total > 1.0:
        x /= total
    x[x < 1e-12] = 0.0
    # Keep the warm start if the solver wandered (SLSQP can stall on
    # the min() kinks of Eq. 2).
    if objective(x) > baseline:
        return x0
    return x


def continuous_schedule(
    workload: Workload,
    platform: Platform,
    rng: np.random.Generator | None = None,
) -> Schedule:
    """Schedule from SLSQP-optimized fractions (warm-started dominant)."""
    mask = dominant_partition(workload, platform, "minratio", rng)
    warm = (
        optimal_cache_fractions(workload, platform, mask)
        if mask.any()
        else np.zeros(workload.n)
    )
    x = optimize_fractions(workload, platform, x0=warm)
    return build_equal_finish_schedule(workload, platform, x)
