"""Hardware-granularity study: discrete ways vs continuous fractions.

Intel CAT partitions by *ways* (typically 11-20 of them), while the
paper's model allocates arbitrary real fractions.  This module bridges
the two with UCP: build each application's Eq. 2 cost-vs-ways curve
from the model, allocate whole ways with the UCP lookahead algorithm
(:func:`repro.cachesim.ucp.ucp_allocate`), and rebuild the schedule —
giving both

* a *deployable* scheduler (``ways_schedule``) whose cache allocation
  a real CAT mask can express, and
* the granularity penalty vs the continuous Theorem-3 optimum
  (``granularity_penalty``), reported by ``bench_ablation_ucp.py``.

For perfectly parallel applications, minimizing the makespan is
minimizing ``sum_i Exe_i(1, x_i)`` (Lemma 3), so the per-application
utility curve is simply its sequential time at each way count — UCP's
additive objective is exactly the right one here.
"""

from __future__ import annotations

import numpy as np

from ..cachesim.ucp import ucp_allocate
from ..core.application import Workload
from ..core.execution import sequential_times
from ..core.platform import Platform
from ..core.processor_allocation import build_equal_finish_schedule
from ..core.schedule import Schedule
from ..types import ModelError

__all__ = ["model_utility_curves", "ways_schedule", "granularity_penalty"]


def model_utility_curves(
    workload: Workload, platform: Platform, total_ways: int
) -> list[np.ndarray]:
    """Per-application sequential time for every way count 0..W.

    Curve ``i`` has ``W+1`` entries: ``Exeseq_i(w / W)`` — the Eq. 2
    cost of holding ``w`` of the ``W`` ways.
    """
    if total_ways < 1:
        raise ModelError(f"total_ways must be >= 1, got {total_ways}")
    fractions = np.arange(total_ways + 1, dtype=np.float64) / total_ways
    curves = []
    for i in range(workload.n):
        single = workload.subset(np.array([i]))
        costs = np.array([
            sequential_times(single, platform, np.array([x]))[0] for x in fractions
        ])
        # guard against flat tails drifting upward by fp noise
        curves.append(np.minimum.accumulate(costs))
    return curves


def ways_schedule(
    workload: Workload,
    platform: Platform,
    total_ways: int = 20,
    *,
    min_ways: int = 0,
) -> tuple[Schedule, np.ndarray]:
    """UCP-over-the-model schedule with whole-way cache allocation.

    Returns ``(schedule, ways)``; the schedule's fractions are
    ``ways / total_ways`` and the processors equal-finish.
    """
    curves = model_utility_curves(workload, platform, total_ways)
    ways = ucp_allocate(curves, total_ways, min_ways=min_ways)
    x = ways.astype(np.float64) / total_ways
    return build_equal_finish_schedule(workload, platform, x), ways


def granularity_penalty(
    workload: Workload,
    platform: Platform,
    total_ways: int = 20,
) -> float:
    """Relative makespan cost of way-granular allocation.

    ``ways_makespan / continuous_makespan - 1`` where the continuous
    reference is the dominant-partition heuristic.  Nonnegative up to
    the heuristic's own suboptimality (UCP can occasionally *beat* the
    greedy subset choice under pressure, so small negative values are
    possible and reported as such).
    """
    from ..core.heuristics import dominant_schedule

    discrete, _ = ways_schedule(workload, platform, total_ways)
    continuous = dominant_schedule(workload, platform,
                                   strategy="dominant", choice="minratio")
    return discrete.makespan() / continuous.makespan() - 1.0
