"""Integer processor allocation (deployment-grade rounding).

The paper deliberately uses rational processor counts (shareable via
multi-threading) to expose the problem's intrinsic structure.  Real
resource managers often need integers; this module quantifies the cost
of that restriction:

* :func:`round_processors` — round a fractional allocation to integers
  under ``sum p_i <= p`` with one of three strategies;
* :func:`integer_schedule` — apply the rounding to any scheduler's
  output and rebuild the schedule;
* :func:`rounding_penalty` — the relative makespan degradation, the
  quantity reported by ``benchmarks/bench_ablation_integer.py``.

Rounding floors every allocation (never exceeding the budget), then
redistributes the leftover whole processors greedily:

* ``"largest-remainder"`` — by fractional remainder (classic);
* ``"critical-path"`` — to whichever application currently finishes
  last (repeatedly), directly targeting the makespan;
* ``"floor"`` — keep the floors (baseline for comparison).
"""

from __future__ import annotations

import numpy as np

from ..core.application import Workload
from ..core.execution import execution_times
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..types import ModelError

__all__ = ["round_processors", "integer_schedule", "rounding_penalty"]


def round_processors(
    procs,
    workload: Workload,
    platform: Platform,
    cache,
    *,
    strategy: str = "critical-path",
) -> np.ndarray:
    """Integer allocation from fractional *procs* (each app gets >= 1).

    Requires ``n <= p`` (otherwise an integer schedule in one wave is
    impossible and co-scheduling must batch — out of scope here).
    """
    procs = np.asarray(procs, dtype=np.float64)
    n = workload.n
    p_total = int(np.floor(platform.p))
    if n > p_total:
        raise ModelError(
            f"cannot give {n} applications >= 1 integer processor each "
            f"out of {p_total}"
        )
    base = np.maximum(np.floor(procs).astype(np.int64), 1)
    while int(base.sum()) > p_total:  # floors + the >=1 lift may overshoot
        i = int(np.argmax(base))
        base[i] -= 1
    leftover = p_total - int(base.sum())

    if strategy == "floor":
        return base.astype(np.float64)
    if strategy == "largest-remainder":
        remainders = procs - np.floor(procs)
        for idx in np.argsort(-remainders)[:leftover]:
            base[idx] += 1
        return base.astype(np.float64)
    if strategy == "critical-path":
        cache = np.asarray(cache, dtype=np.float64)
        alloc = base.astype(np.float64)
        for _ in range(leftover):
            times = execution_times(workload, platform, alloc, cache)
            alloc[int(np.argmax(times))] += 1
        return alloc
    raise ModelError(f"unknown rounding strategy {strategy!r}")


def integer_schedule(schedule: Schedule, *, strategy: str = "critical-path") -> Schedule:
    """Rebuild *schedule* with integer processor counts."""
    procs = round_processors(
        schedule.procs,
        schedule.workload,
        schedule.platform,
        schedule.cache,
        strategy=strategy,
    )
    return Schedule(schedule.workload, schedule.platform, procs, schedule.cache)


def rounding_penalty(schedule: Schedule, *, strategy: str = "critical-path") -> float:
    """Relative makespan increase from integer rounding (>= ~0)."""
    rounded = integer_schedule(schedule, strategy=strategy)
    return rounded.makespan() / schedule.makespan() - 1.0
