"""Local search over cache subsets (beyond the greedy heuristics).

The six paper heuristics commit to one greedy trajectory.  This
extension explores the subset lattice around a starting partition with
first-improvement moves:

* *drop* — remove one application from ``IC``;
* *add* — insert one application;
* *swap* — exchange a member with a non-member.

Each candidate subset is priced exactly as the heuristics price theirs
(Theorem-3 fractions + equal-finish processors), so the search can
only improve on its starting heuristic.  Cost: one binary search per
candidate, ``O(n^2)`` candidates per round in the worst case — fine
for the paper's instance sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.application import Workload
from ..core.dominance import cache_weights, optimal_cache_fractions
from ..core.heuristics import dominant_partition
from ..core.platform import Platform
from ..core.processor_allocation import build_equal_finish_schedule
from ..core.schedule import Schedule
from ..types import ModelError

__all__ = ["LocalSearchResult", "local_search_partition", "local_search_schedule"]


@dataclass(frozen=True)
class LocalSearchResult:
    """Outcome of a subset local search.

    Attributes
    ----------
    subset : numpy.ndarray
        Final boolean mask.
    makespan : float
        Makespan of the final schedule.
    initial_makespan : float
        Makespan of the starting subset's schedule.
    moves : int
        Number of accepted improvement moves.
    evaluations : int
        Number of candidate subsets priced.
    """

    subset: np.ndarray
    makespan: float
    initial_makespan: float
    moves: int
    evaluations: int


def _price(workload: Workload, platform: Platform, mask: np.ndarray) -> float:
    if mask.any():
        x = optimal_cache_fractions(workload, platform, mask)
    else:
        x = np.zeros(workload.n)
    return build_equal_finish_schedule(workload, platform, x).makespan()


def local_search_partition(
    workload: Workload,
    platform: Platform,
    start,
    *,
    max_rounds: int = 100,
    use_swaps: bool = True,
) -> LocalSearchResult:
    """First-improvement local search from the mask *start*."""
    mask = np.asarray(start, dtype=bool).copy()
    if mask.shape != (workload.n,):
        raise ModelError(f"start mask must have shape ({workload.n},)")
    eligible = cache_weights(workload, platform) > 0
    mask &= eligible

    current = _price(workload, platform, mask)
    initial = current
    moves = 0
    evaluations = 0

    for _ in range(max_rounds):
        improved = False
        members = np.flatnonzero(mask)
        outsiders = np.flatnonzero(eligible & ~mask)

        candidates: list[np.ndarray] = []
        for i in members:
            trial = mask.copy()
            trial[i] = False
            candidates.append(trial)
        for j in outsiders:
            trial = mask.copy()
            trial[j] = True
            candidates.append(trial)
        if use_swaps:
            for i in members:
                for j in outsiders:
                    trial = mask.copy()
                    trial[i] = False
                    trial[j] = True
                    candidates.append(trial)

        for trial in candidates:
            evaluations += 1
            span = _price(workload, platform, trial)
            if span < current * (1 - 1e-12):
                mask = trial
                current = span
                moves += 1
                improved = True
                break
        if not improved:
            break

    return LocalSearchResult(
        subset=mask,
        makespan=current,
        initial_makespan=initial,
        moves=moves,
        evaluations=evaluations,
    )


def local_search_schedule(
    workload: Workload,
    platform: Platform,
    rng: np.random.Generator | None = None,
    *,
    choice: str = "minratio",
    use_swaps: bool = True,
) -> Schedule:
    """DominantMinRatio (by default) refined by local search."""
    start = dominant_partition(workload, platform, choice, rng)
    result = local_search_partition(workload, platform, start, use_swaps=use_swaps)
    x = (
        optimal_cache_fractions(workload, platform, result.subset)
        if result.subset.any()
        else np.zeros(workload.n)
    )
    return build_equal_finish_schedule(workload, platform, x)
