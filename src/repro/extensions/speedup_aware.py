"""Speedup-aware cache allocation (the paper's future work, Section 7).

The dominant-partition heuristics allocate cache with the perfectly
parallel closed form (Theorem 3), even for Amdahl applications — the
paper notes this mismatch and leaves speedup-aware allocation open.
This module closes it with a KKT fixed point.

Derivation.  At the equal-finish solution the makespan ``K`` satisfies
``g(K, c) = sum_i (1-s_i) / (K/c_i - s_i) = p`` with
``c_i = w_i (1 + f_i (ls + ll d_i / x_i^alpha))``.  Implicit
differentiation gives the makespan's sensitivity to a sequential time,

    ``dK/dc_i  =  phi_i / sum_j psi_j``,   where
    ``phi_i = (1-s_i) K / (c_i^2 (K/c_i - s_i)^2) = K p_i^2 / ((1-s_i) c_i^2)``,

and ``dc_i/dx_i = -alpha w_i f_i ll d_i x_i^-(alpha+1)``.  Minimizing
``K`` over ``sum x = 1`` therefore equalizes
``phi_i * w_i f_i d_i * x_i^-(alpha+1)`` across the subset, i.e.

    ``x_i  ~  (phi_i w_i f_i d_i)^(1/(alpha+1))``.

For perfectly parallel applications ``phi_i`` is constant across
``i`` (``p_i = p c_i / sum c``, so ``phi_i ~ K p^2 / (sum c)^2``) and
the rule degenerates to Theorem 3 — the extension is a strict
generalization.  Because ``phi`` depends on ``x`` through ``c`` and
``K``, we iterate the rule to a fixed point (a handful of iterations
suffice; each one is a closed-form update plus one binary search).
"""

from __future__ import annotations

import numpy as np

from ..core.application import Workload
from ..core.dominance import optimal_cache_fractions
from ..core.execution import sequential_times
from ..core.heuristics import dominant_partition
from ..core.platform import Platform
from ..core.processor_allocation import (
    build_equal_finish_schedule,
    equal_finish_allocation,
)
from ..core.schedule import Schedule
from ..types import ModelError

__all__ = ["speedup_aware_fractions", "speedup_aware_schedule"]


def speedup_aware_fractions(
    workload: Workload,
    platform: Platform,
    subset,
    *,
    max_iter: int = 50,
    tol: float = 1e-10,
) -> np.ndarray:
    """Fixed point of the speedup-aware KKT rule on the mask *subset*.

    Starts from the Theorem-3 fractions and iterates
    ``x ~ (phi w f d)^(1/(alpha+1))`` (renormalized over the subset)
    until the fractions stabilize.  Returns the full-length vector.
    """
    mask = np.asarray(subset, dtype=bool)
    if mask.shape != (workload.n,):
        raise ModelError(f"subset must have shape ({workload.n},)")
    if not mask.any():
        return np.zeros(workload.n)

    d = workload.miss_coefficients(platform)
    base = workload.work * workload.freq * d
    if float(base[mask].sum()) <= 0:
        raise ModelError("selected applications cannot profit from cache (w*f*d == 0)")
    x = optimal_cache_fractions(workload, platform, mask)
    expo = 1.0 / (platform.alpha + 1.0)

    for _ in range(max_iter):
        procs, K = equal_finish_allocation(workload, platform, x)
        c = sequential_times(workload, platform, x)
        phi = K * procs**2 / np.maximum((1.0 - workload.seq) * c**2, 1e-300)
        weights = (phi * base) ** expo
        total = float(weights[mask].sum())
        if total <= 0:
            break
        x_new = np.zeros(workload.n)
        x_new[mask] = weights[mask] / total
        if float(np.max(np.abs(x_new - x))) <= tol:
            x = x_new
            break
        x = x_new
    return x


def speedup_aware_schedule(
    workload: Workload,
    platform: Platform,
    rng: np.random.Generator | None = None,
    *,
    choice: str = "minratio",
) -> Schedule:
    """Full extension heuristic: dominant subset + speedup-aware fractions.

    The subset comes from Algorithm 1 (the dominance structure is a
    property of the perfectly parallel relaxation either way); the
    fractions then account for the Amdahl profiles.
    """
    mask = dominant_partition(workload, platform, choice, rng)
    x = speedup_aware_fractions(workload, platform, mask)
    return build_equal_finish_schedule(workload, platform, x)
