"""Interference-graph co-scheduling (the related-work alternative)."""

from .graph import (
    access_pressure,
    corun_degradations,
    interference_graph,
    interference_matrix,
    shared_cache_fractions,
)
from .pairwise import PairwiseSchedule, pair_makespan, pairwise_matching_schedule


def _register() -> None:
    from ..core.registry import register, scheduler_names

    if "pairwise-matching" not in scheduler_names():
        register(
            "pairwise-matching",
            lambda wl, pf, rng=None: pairwise_matching_schedule(wl, pf, rng),
            description="min-weight matching on the pairwise interference graph",
            provenance="interference (related-work alternative)",
        )


_register()

__all__ = [
    "access_pressure",
    "shared_cache_fractions",
    "corun_degradations",
    "interference_matrix",
    "interference_graph",
    "PairwiseSchedule",
    "pair_makespan",
    "pairwise_matching_schedule",
]
