"""Interference graphs for co-scheduling (the related-work approach).

Section 2 surveys the classic alternative to cache partitioning: build
a graph whose vertices are applications and whose edge weights capture
the degradation two applications inflict on each other when co-run on
an *unpartitioned* cache, then pick co-run groups that avoid heavy
edges [15, 29, 13].  The paper calls this "interesting but hard to
implement"; we implement it against the same analytical model so the
two philosophies can be compared head-to-head
(:mod:`repro.interference.pairwise`).

Co-run model without partitioning: applications sharing the LLC split
it in proportion to their access pressure ``w_i * f_i`` (accesses per
unit work tend to pull cache lines proportionally under LRU — the
proportional-pressure approximation standard in this literature), so
application ``i`` co-running with set ``S`` sees an effective fraction

    ``x_i = pressure_i / sum_{j in S} pressure_j``.

The *degradation* of ``i`` is ``Exeseq_i(x_i) / Exeseq_i(1)`` — its
slowdown relative to owning the whole cache.
"""

from __future__ import annotations

import numpy as np

from ..core.application import Workload
from ..core.execution import sequential_times
from ..core.platform import Platform
from ..types import ModelError

__all__ = [
    "access_pressure",
    "shared_cache_fractions",
    "corun_degradations",
    "interference_matrix",
    "interference_graph",
]


def access_pressure(workload: Workload) -> np.ndarray:
    """Per-application cache pressure proxy ``w_i * f_i``."""
    return workload.work * workload.freq


def shared_cache_fractions(workload: Workload, members) -> np.ndarray:
    """Pressure-proportional cache split of the unpartitioned LLC.

    Returns a full-length vector: members of *members* share the cache
    proportionally to their pressure; everyone else gets 0.
    """
    mask = np.asarray(members, dtype=bool)
    if mask.shape != (workload.n,):
        raise ModelError(f"members mask must have shape ({workload.n},)")
    x = np.zeros(workload.n)
    if not mask.any():
        return x
    pressure = access_pressure(workload)
    total = float(pressure[mask].sum())
    if total <= 0:
        # nobody touches memory: the split is irrelevant; share equally
        x[mask] = 1.0 / int(mask.sum())
        return x
    x[mask] = pressure[mask] / total
    return x


def corun_degradations(workload: Workload, platform: Platform, members) -> np.ndarray:
    """Slowdown of each member when the group shares the LLC freely.

    ``degradation_i = Exeseq_i(x_i^shared) / Exeseq_i(1)`` (>= 1);
    non-members get 1.0.
    """
    mask = np.asarray(members, dtype=bool)
    x_shared = shared_cache_fractions(workload, mask)
    alone = sequential_times(workload, platform, np.ones(workload.n))
    shared = sequential_times(workload, platform, x_shared)
    out = np.ones(workload.n)
    out[mask] = shared[mask] / alone[mask]
    return out


def interference_matrix(workload: Workload, platform: Platform) -> np.ndarray:
    """Pairwise interference weights ``I[i, j]``.

    ``I[i, j]`` is the *total relative slowdown* when ``i`` and ``j``
    co-run sharing the cache: ``(deg_i - 1) + (deg_j - 1)``.  Symmetric,
    zero diagonal.
    """
    n = workload.n
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            mask = np.zeros(n, dtype=bool)
            mask[[i, j]] = True
            deg = corun_degradations(workload, platform, mask)
            w = float((deg[i] - 1.0) + (deg[j] - 1.0))
            out[i, j] = out[j, i] = w
    return out


def interference_graph(workload: Workload, platform: Platform):
    """The interference matrix as a ``networkx.Graph``.

    Node ``i`` carries the application name; edge ``(i, j)`` carries
    ``weight = I[i, j]``.  Exposed for the matching-based scheduler and
    for users who want to run their own graph algorithms.
    """
    import networkx as nx

    matrix = interference_matrix(workload, platform)
    graph = nx.Graph()
    for i, name in enumerate(workload.names):
        graph.add_node(i, name=name)
    n = workload.n
    for i in range(n):
        for j in range(i + 1, n):
            graph.add_edge(i, j, weight=float(matrix[i, j]))
    return graph
