"""Pairwise co-scheduling via minimum-weight matching.

The classic interference-graph recipe [15]: partition the applications
into *pairs* (one leftover singleton when ``n`` is odd); each pair
co-runs on the whole machine sharing the unpartitioned cache, pairs
execute one after another.  The pairing that minimizes the total cost
is a minimum-weight perfect matching, computed here with networkx on
edge weights equal to the *actual pair makespan* under the model
(equal-finish processors, pressure-proportional cache split).

This gives the paper's philosophy a strong opponent: the matching is
exact (not heuristic) for its objective, yet
:mod:`benchmarks.bench_interference` shows dominant-partition
co-scheduling of *all* applications at once still wins — sharing the
machine beats time-slicing it, provided the cache is partitioned
smartly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.application import Workload
from ..core.platform import Platform
from ..core.processor_allocation import equal_finish_allocation
from ..core.schedule import Schedule
from ..types import ModelError
from .graph import shared_cache_fractions

__all__ = ["PairwiseSchedule", "pair_makespan", "pairwise_matching_schedule"]


@dataclass
class PairwiseSchedule:
    """Sequence of co-run groups (pairs/singletons), executed in order.

    Attributes
    ----------
    workload, platform
        The instance.
    groups : list[tuple[int, ...]]
        Application indices of each batch, in execution order.
    group_schedules : list[Schedule]
        The co-schedule of each batch on the full machine.
    """

    workload: Workload
    platform: Platform
    groups: list
    group_schedules: list

    @property
    def concurrent(self) -> bool:
        return False  # batches run in sequence

    def group_makespans(self) -> np.ndarray:
        return np.asarray([s.makespan() for s in self.group_schedules])

    def makespan(self) -> float:
        """Total time: batches are sequential."""
        return float(self.group_makespans().sum())

    def describe(self) -> str:
        lines = [f"PairwiseSchedule: {len(self.groups)} batches, "
                 f"makespan={self.makespan():.6g}"]
        for group, span in zip(self.groups, self.group_makespans()):
            names = ", ".join(self.workload.names[i] for i in group)
            lines.append(f"  [{names}] span={span:.6g}")
        return "\n".join(lines)


def pair_makespan(workload: Workload, platform: Platform, i: int, j: int) -> float:
    """Makespan of co-running exactly ``{i, j}`` on the whole machine."""
    return _group_schedule(workload, platform, (i, j)).makespan()


def _group_schedule(workload: Workload, platform: Platform, group) -> Schedule:
    members = np.zeros(workload.n, dtype=bool)
    members[list(group)] = True
    sub = workload.subset(members)
    x_full = shared_cache_fractions(workload, members)
    x = x_full[members]
    procs, _ = equal_finish_allocation(sub, platform, x)
    return Schedule(sub, platform, procs, x)


def pairwise_matching_schedule(
    workload: Workload,
    platform: Platform,
    rng: np.random.Generator | None = None,
) -> PairwiseSchedule:
    """Min-weight perfect matching on pair makespans, then sequential
    batch execution.

    The singleton left over for odd ``n`` runs alone with the whole
    cache.  The matching minimizes the sum of batch makespans — exactly
    the schedule's objective — so this is the *optimal* pairwise
    time-sliced strategy under the model.
    """
    import networkx as nx

    n = workload.n
    if n < 1:
        raise ModelError("need at least one application")
    if n == 1:
        groups = [(0,)]
    else:
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        for i in range(n):
            for j in range(i + 1, n):
                graph.add_edge(i, j, weight=pair_makespan(workload, platform, i, j))
        if n % 2 == 1:
            # dummy node pairs with whoever is cheapest to run alone
            solo = {
                i: _group_schedule(workload, platform, (i,)).makespan()
                for i in range(n)
            }
            for i in range(n):
                graph.add_edge(i, n, weight=solo[i])
        matching = nx.min_weight_matching(graph)
        groups = []
        for a, b in matching:
            if n in (a, b):  # the dummy: its partner runs alone
                groups.append((min(a, b),))
            else:
                groups.append(tuple(sorted((a, b))))
        groups.sort()
    schedules = [_group_schedule(workload, platform, g) for g in groups]
    return PairwiseSchedule(
        workload=workload,
        platform=platform,
        groups=groups,
        group_schedules=schedules,
    )
