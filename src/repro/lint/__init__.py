"""repro.lint — AST-based determinism & concurrency contract checker.

The reproduction stakes its claims on contracts no single test can
patrol exhaustively: bit-identical results across serial and fork-pool
backends, per-cell RNG discipline (every policy at a grid cell faces
the identical arrival/fault stream), fingerprints stable across
processes and restarts, and lock discipline in the sharded caches.
Each contract has already produced a real bug fixed by hand —
per-process ``hash()`` shard scatter, memory-address ``repr`` inside
``spec_fingerprint``, a silently swallowed plot exception — and each
of those bugs is *mechanically detectable*.  This package turns the
one-off fixes into a standing gate.

Architecture (stdlib :mod:`ast` only, no third-party linter):

:class:`~repro.lint.base.Rule` / :class:`~repro.lint.base.Finding`
    The plugin seam: a rule is a registered class with a stable ID, a
    docstring explaining the bug class it polices, and a ``check``
    generator over a :class:`~repro.lint.context.FileContext`.
:class:`~repro.lint.context.FileContext`
    One parsed file: source, AST with parent links, import-alias
    resolution, and the inline-suppression table
    (``# repro-lint: disable=<ID> -- <reason>`` — the reason is
    mandatory; a directive without one is itself a finding).
:mod:`~repro.lint.config`
    Per-path rule profiles: the strict determinism set on the kernel
    subtrees (``core/``, ``simulate/``, ``chaos/``, ``cache/``,
    ``online/``), a default set elsewhere in ``src/``, and a relaxed
    hygiene-only set on ``viz/``, ``benchmarks/``, and ``tests/``.
:mod:`~repro.lint.runner` / :mod:`~repro.lint.reporters`
    File collection, per-file linting, and the text / JSON reports
    behind ``repro lint`` (exit 1 on any active finding — the repo
    itself ships with an empty baseline).
"""

from __future__ import annotations

from .base import Finding, Rule, all_rules, get_rule, rule_ids
from .config import PROFILES, profile_for_path, rules_for_path
from .context import FileContext
from .reporters import render_json, render_text
from .runner import LintReport, iter_python_files, lint_file, lint_paths

__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "PROFILES",
    "Rule",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "profile_for_path",
    "render_json",
    "render_text",
    "rule_ids",
    "rules_for_path",
]
