"""Rule plugin seam: the ``Rule`` base class, ``Finding`` record, registry.

A rule is a class with a stable ``id`` (``REPnnn`` — never reused,
never renamed: suppressions and CI history key on it), a short
kebab-case ``name``, a ``category`` grouping it into a profile tier
(``determinism`` / ``concurrency`` / ``hygiene``), and a ``check``
generator yielding :class:`Finding` records for one parsed file.

Rules self-register through the :func:`register` decorator; the
registry is what ``repro lint --list-rules``, the per-path config, and
the meta-tests enumerate.  Registration enforces the meta-contract up
front — unique well-formed ID, docstring present — so a malformed rule
fails at import time, not in CI archaeology later.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .context import FileContext

__all__ = ["Finding", "PARSE_ERROR_ID", "Rule", "all_rules", "get_rule",
           "register", "rule_ids"]

#: Pseudo rule ID for files the linter cannot parse at all.  Not a
#: registered rule (there is nothing to configure or suppress about a
#: syntax error) but reported through the same Finding channel.
PARSE_ERROR_ID = "REP000"

_ID_PATTERN = re.compile(r"^REP[0-9]{3}$")
_NAME_PATTERN = re.compile(r"^[a-z0-9]+(-[a-z0-9]+)*$")
_CATEGORIES = ("determinism", "concurrency", "hygiene")


@dataclass(frozen=True, slots=True)
class Finding:
    """One lint finding, anchored to a source location.

    ``suppressed`` findings (a valid inline directive names the rule on
    that line) are excluded from the exit-code decision but still
    counted and listed by the reporters, so CI can track the
    suppression budget instead of letting it grow silently.
    """

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    message: str
    suppressed: bool = False
    suppress_reason: str = ""

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id, self.message)


class Rule:
    """Base class every lint rule subclasses.

    Subclasses set the class attributes and implement :meth:`check`.
    ``check`` receives one :class:`~repro.lint.context.FileContext` and
    yields findings; it must be a pure function of the parsed file —
    no filesystem writes, no cross-file state — so the runner can lint
    files in any order with identical results.
    """

    #: Stable identifier, ``REPnnn``.  Append-only across the project's
    #: history: retiring a rule retires its number.
    id: str = ""
    #: Short kebab-case label shown next to the ID in reports.
    name: str = ""
    #: Profile tier: determinism | concurrency | hygiene.
    category: str = "determinism"

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    # -- helpers shared by every rule --------------------------------------
    def finding(self, ctx: "FileContext", node: ast.AST,
                message: str) -> Finding:
        """Build a Finding for *node*, suppression applied by the runner."""
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.id,
            rule_name=self.name,
            message=message,
        )

    @classmethod
    def summary(cls) -> str:
        """First docstring line — the ``--list-rules`` description."""
        doc = (cls.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""


_REGISTRY: dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (meta-checked)."""
    if not _ID_PATTERN.match(cls.id or ""):
        raise ValueError(f"rule {cls.__name__}: id {cls.id!r} is not REPnnn")
    if cls.id == PARSE_ERROR_ID:
        raise ValueError(f"rule {cls.__name__}: {PARSE_ERROR_ID} is reserved")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id} "
                         f"({cls.__name__} vs {type(_REGISTRY[cls.id]).__name__})")
    if not _NAME_PATTERN.match(cls.name or ""):
        raise ValueError(f"rule {cls.id}: name {cls.name!r} is not kebab-case")
    if not (cls.__doc__ or "").strip():
        raise ValueError(f"rule {cls.id}: docstring required")
    if cls.category not in _CATEGORIES:
        raise ValueError(f"rule {cls.id}: category {cls.category!r} "
                         f"not in {_CATEGORIES}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ID-sorted (deterministic listing order)."""
    _ensure_loaded()
    return tuple(_REGISTRY[rid] for rid in sorted(_REGISTRY))


def rule_ids() -> tuple[str, ...]:
    _ensure_loaded()
    return tuple(sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    _ensure_loaded()
    return _REGISTRY[rule_id]


def _ensure_loaded() -> None:
    """Import the rule modules (self-registration) exactly once."""
    from . import rules  # noqa: F401  (import side effect registers rules)
