"""Per-path rule profiles: strictness follows the determinism contract.

Not every subtree owes the same guarantees.  The kernel subtrees —
``core/``, ``simulate/``, ``chaos/``, ``cache/``, ``online/`` — must
be byte-replayable across backends and processes, so they get every
rule.  The rest of ``src/`` (service, experiments, CLI, ...) keeps the
cross-process stability and concurrency rules but may legitimately
read wall clocks (request latency) and compare floats it owns.
``viz/``, ``benchmarks/``, and ``tests/`` time things and draw ad-hoc
randomness by design; they answer only for language hygiene.

Profiles are matched on *path parts*, not string prefixes, so the
mapping works identically for ``src/repro/core/x.py``,
``repro/core/x.py``, and an absolute path into a checkout.
"""

from __future__ import annotations

from pathlib import PurePath
from typing import Iterable

from .base import Rule, all_rules

__all__ = ["PROFILES", "profile_for_path", "rules_for_path", "rules_for_profile"]

#: repro subpackages under the full determinism contract.
STRICT_SUBTREES = frozenset({"core", "simulate", "chaos", "cache", "online"})

#: Directory names whose whole subtree is hygiene-only.
RELAXED_DIRS = frozenset({"viz", "benchmarks", "tests", "examples"})

#: profile name -> rule IDs ("*" = every registered rule).
PROFILES: dict[str, frozenset[str] | str] = {
    "strict": "*",
    "default": frozenset({
        "REP101",  # global RNG is wrong everywhere in src/
        "REP103",  # hash() stability is a cross-process contract
        "REP104",  # enumeration order feeds CLI output and accounting
        "REP106",  # fingerprint functions live in service/experiments too
        "REP107",  # event-kind typos can originate at any call site
        "REP201",  # the service pipeline owns locks
        "REP301", "REP302", "REP303",
    }),
    "relaxed": frozenset({"REP301", "REP302", "REP303"}),
}


def profile_for_path(path: str | PurePath) -> str:
    """Profile name for one file, decided from its path parts."""
    parts = PurePath(path).parts
    if any(part in RELAXED_DIRS for part in parts):
        return "relaxed"
    for i, part in enumerate(parts[:-1]):
        if part == "repro" and parts[i + 1] in STRICT_SUBTREES:
            return "strict"
    return "default"


def rules_for_profile(profile: str) -> tuple[Rule, ...]:
    ids = PROFILES[profile]
    rules = all_rules()
    if ids == "*":
        return rules
    return tuple(r for r in rules if r.id in ids)


def rules_for_path(path: str | PurePath) -> tuple[Rule, ...]:
    """The rule set a file answers to under the default config."""
    return rules_for_profile(profile_for_path(path))


def profile_table() -> list[tuple[str, Iterable[str]]]:
    """(profile, rule IDs) rows for --list-rules, deterministic order."""
    rows = []
    for name in ("strict", "default", "relaxed"):
        ids = PROFILES[name]
        rows.append((name, [r.id for r in all_rules()] if ids == "*"
                     else sorted(ids)))
    return rows
