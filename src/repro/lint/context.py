"""FileContext: one parsed file plus everything rules need to judge it.

Bundles the parse tree with the three resolutions every rule would
otherwise rebuild:

* **parent links** — ``ast`` gives children only; rules asking "is this
  assignment under ``with self._lock``" or "which function am I in"
  walk :meth:`FileContext.ancestors`.
* **import aliases** — ``import numpy as np`` / ``from numpy.random
  import default_rng`` are folded into :meth:`resolve_chain`, so a rule
  matches the *module path* (``numpy.random.rand``) regardless of the
  local spelling.
* **inline suppressions** — ``# repro-lint: disable=REP101 -- reason``
  on a finding's line.  The reason is mandatory policy, not decoration:
  a directive without one is recorded as malformed and surfaces as its
  own finding (REP303) instead of silencing anything.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

__all__ = ["FileContext", "Suppression"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint\s*:\s*disable\s*=\s*"
    r"(?P<ids>[A-Za-z0-9_,\s]+?)"
    r"\s*(?:--\s*(?P<reason>.*\S)\s*)?$"
)


@dataclass(frozen=True, slots=True)
class Suppression:
    """One parsed inline directive (valid or malformed)."""

    line: int
    ids: frozenset[str]
    reason: str
    malformed: str = ""  # why the directive is invalid, "" when valid

    def covers(self, rule_id: str) -> bool:
        return not self.malformed and (rule_id in self.ids or "all" in self.ids)


class FileContext:
    """Parsed source file handed to every rule's ``check``.

    Construction never raises on bad source: ``tree`` is None and
    ``syntax_error`` carries the message, which the runner reports as
    the REP000 pseudo-finding.
    """

    def __init__(self, path: str | Path, source: str | None = None,
                 display_path: str | None = None):
        self.path = Path(path)
        if source is None:
            source = self.path.read_text(encoding="utf-8")
        self.source = source
        self.lines = source.splitlines()
        self.display_path = display_path if display_path is not None else str(path)

        self.tree: ast.Module | None = None
        self.syntax_error: str | None = None
        try:
            self.tree = ast.parse(source, filename=str(path))
        except (SyntaxError, ValueError) as exc:
            self.syntax_error = str(exc)

        self._parents: dict[ast.AST, ast.AST] = {}
        #: local name -> dotted module ("np" -> "numpy").
        self.module_aliases: dict[str, str] = {}
        #: local name -> dotted origin ("default_rng" -> "numpy.random.default_rng").
        self.from_imports: dict[str, str] = {}
        if self.tree is not None:
            self._link_parents(self.tree)
            self._collect_imports(self.tree)
        self.suppressions: tuple[Suppression, ...] = tuple(
            self._parse_directives())

    # -- tree navigation ---------------------------------------------------
    def _link_parents(self, tree: ast.AST) -> None:
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Enclosing nodes, innermost first (node itself excluded)."""
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def enclosing_function(self, node: ast.AST):
        """Innermost FunctionDef/AsyncFunctionDef containing *node*."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        for anc in self.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    def walk(self) -> Iterator[ast.AST]:
        """All nodes, or nothing when the file failed to parse."""
        if self.tree is None:
            return iter(())
        return ast.walk(self.tree)

    # -- import resolution -------------------------------------------------
    def _collect_imports(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # "import a.b.c" binds "a" unless aliased.
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.module_aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.from_imports[local] = f"{node.module}.{alias.name}"

    def resolve_chain(self, node: ast.AST) -> str | None:
        """Dotted module path of an attribute chain, aliases expanded.

        ``np.random.rand`` (with ``import numpy as np``) resolves to
        ``"numpy.random.rand"``; a bare from-imported ``default_rng``
        resolves to ``"numpy.random.default_rng"``.  Chains rooted in
        anything but a known import (``rng.random``, ``self.x``)
        resolve to None — the rule cannot and should not guess.
        """
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        root = cur.id
        parts.reverse()
        if root in self.module_aliases:
            return ".".join([self.module_aliases[root], *parts])
        if root in self.from_imports:
            return ".".join([self.from_imports[root], *parts])
        return None

    def is_builtin_name(self, name: str) -> bool:
        """True when *name* still refers to the builtin in this module."""
        return name not in self.module_aliases and name not in self.from_imports

    # -- inline suppressions ----------------------------------------------
    def _comment_tokens(self) -> Iterator[tuple[int, str]]:
        """(line, text) for every real COMMENT token.

        Tokenized, not regex-scanned, so a docstring *describing* the
        directive syntax is never mistaken for a directive.
        """
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(self.source).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    yield tok.start[0], tok.string
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return  # unparseable file: REP000 reports it, nothing to suppress

    def _parse_directives(self) -> Iterator[Suppression]:
        for lineno, comment in self._comment_tokens():
            if "repro-lint" not in comment:
                continue
            match = _DIRECTIVE.search(comment)
            if match is None:
                if re.search(r"#\s*repro-lint", comment):
                    yield Suppression(
                        line=lineno, ids=frozenset(), reason="",
                        malformed="unparseable repro-lint directive "
                                  "(expected '# repro-lint: disable=<ID> -- <reason>')")
                continue
            ids = frozenset(
                part.strip() for part in match.group("ids").split(",")
                if part.strip())
            reason = (match.group("reason") or "").strip()
            if not ids:
                yield Suppression(line=lineno, ids=frozenset(), reason="",
                                  malformed="directive names no rule IDs")
            elif not reason:
                yield Suppression(
                    line=lineno, ids=ids, reason="",
                    malformed="suppression requires a reason: "
                              "'# repro-lint: disable=<ID> -- <why>'")
            else:
                yield Suppression(line=lineno, ids=ids, reason=reason)

    def suppression_for(self, line: int, rule_id: str) -> Suppression | None:
        """The valid directive covering *rule_id* on *line*, if any."""
        for sup in self.suppressions:
            if sup.line == line and sup.covers(rule_id):
                return sup
        return None
