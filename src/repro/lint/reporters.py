"""Text and JSON views of a LintReport.

The text reporter is for humans at a terminal; the JSON reporter is
the machine contract the ``lint-gate`` CI job and any dashboard
consume — stable key names, sorted entries, and the suppression list
(with reasons) included so the waiver budget is tracked, not hidden.
"""

from __future__ import annotations

import json

from .base import Finding
from .runner import LintReport

__all__ = ["render_json", "render_text"]

#: Bumped only when the JSON layout changes incompatibly.
JSON_SCHEMA_VERSION = 1


def _finding_dict(f: Finding) -> dict:
    out = {
        "path": f.path,
        "line": f.line,
        "col": f.col,
        "rule": f.rule_id,
        "name": f.rule_name,
        "message": f.message,
    }
    if f.suppressed:
        out["suppressed"] = True
        out["reason"] = f.suppress_reason
    return out


def render_text(report: LintReport) -> str:
    lines = []
    for f in report.findings:
        lines.append(f"{f.path}:{f.line}:{f.col + 1}: "
                     f"{f.rule_id} [{f.rule_name}] {f.message}")
    for f in report.suppressed:
        lines.append(f"{f.path}:{f.line}:{f.col + 1}: "
                     f"{f.rule_id} [{f.rule_name}] suppressed: "
                     f"{f.suppress_reason}")
    counts = report.counts_by_rule()
    if counts:
        breakdown = ", ".join(f"{rid}: {n}" for rid, n in counts.items())
        lines.append("")
        lines.append(f"{len(report.findings)} finding(s) "
                     f"[{breakdown}] in {report.files_scanned} file(s), "
                     f"{len(report.suppressed)} suppressed")
    else:
        lines.append(f"clean: 0 findings in {report.files_scanned} file(s), "
                     f"{len(report.suppressed)} suppressed")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_scanned": report.files_scanned,
        "finding_count": len(report.findings),
        "suppressed_count": len(report.suppressed),
        "counts_by_rule": report.counts_by_rule(),
        "findings": [_finding_dict(f) for f in report.findings],
        "suppressed": [_finding_dict(f) for f in report.suppressed],
        "ok": report.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
