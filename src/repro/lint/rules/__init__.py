"""Rule modules — importing this package registers every rule.

Grouped by the contract they police:

* :mod:`.determinism` — REP101–REP107: seeded-RNG discipline,
  wall-clock/entropy bans, builtin ``hash()``, unsorted filesystem /
  set iteration, raw float equality, ``repr`` inside fingerprint
  functions, unregistered event kinds.
* :mod:`.concurrency` — REP201: lock discipline in lock-owning classes.
* :mod:`.hygiene` — REP301–REP303: mutable default arguments, silent
  broad exception swallowing, malformed suppression directives.
"""

from __future__ import annotations

from . import concurrency, determinism, hygiene  # noqa: F401

__all__ = ["concurrency", "determinism", "hygiene"]
