"""Concurrency rules: lock discipline in lock-owning classes.

The sharded caches and the service pipeline are the only parts of the
system where two threads share mutable state; their contract (exact
``hits + misses == lookups``, no torn entries) survives only as long
as every mutation of guarded state happens under the owning lock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Finding, Rule, register
from ..context import FileContext

__all__ = ["LockDisciplineRule"]

#: Methods allowed to touch state before the object is shared.
_SETUP_METHODS = frozenset({"__init__", "__new__", "__del__",
                            "__getstate__", "__setstate__"})


def _is_lock_ctor(node: ast.expr) -> bool:
    """True for ``threading.Lock()`` / ``Lock()`` / ``RLock()`` calls."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else "")
    return name in ("Lock", "RLock", "Condition", "Semaphore")


def _self_attr(node: ast.expr) -> str | None:
    """Attribute name for a ``self.<attr>`` expression, else None."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


@register
class LockDisciplineRule(Rule):
    """Guarded ``self._*`` state mutated outside ``with self._lock``.

    Heuristic race detector for ``cache/memory.py``-style backends: a
    class whose ``__init__`` creates ``self.*lock*`` attributes is
    declaring that its private state is shared between threads; any
    method then assigning to ``self._x`` (or ``self._x[...]``) outside
    a ``with`` on one of the class's locks is a candidate race —
    exactly the benign-looking counter drop that breaks the exact
    hits+misses accounting.  ``__init__`` and deliberate lock-free
    fast paths are out of scope; the latter carry an inline
    suppression naming why the race is safe, which keeps every waived
    site enumerable in the JSON report.
    """

    id = "REP201"
    name = "lock-discipline"
    category = "concurrency"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _lock_names(self, cls: ast.ClassDef) -> frozenset[str]:
        names = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and _is_lock_ctor(node.value):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        names.add(attr)
            # Lock lists: self._locks = [threading.Lock() for ...]
            elif isinstance(node, ast.Assign) \
                    and isinstance(node.value, (ast.ListComp, ast.List)):
                elts = (node.value.elts if isinstance(node.value, ast.List)
                        else [node.value.elt])
                if any(_is_lock_ctor(e) for e in elts):
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            names.add(attr)
        return frozenset(names)

    def _check_class(self, ctx: FileContext,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        locks = self._lock_names(cls)
        if not locks:
            return
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in _SETUP_METHODS:
                continue
            yield from self._check_method(ctx, cls, item, locks)

    def _check_method(self, ctx: FileContext, cls: ast.ClassDef,
                      method: ast.FunctionDef,
                      locks: frozenset[str]) -> Iterator[Finding]:
        for node in ast.walk(method):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                attr = self._guarded_attr(target, locks)
                if attr is None:
                    continue
                if self._under_lock(ctx, node, locks, method):
                    continue
                yield self.finding(
                    ctx, node,
                    f"{cls.name}.{method.name} mutates guarded state "
                    f"'self.{attr}' outside 'with self.<lock>' "
                    f"(class owns locks: {', '.join(sorted(locks))})")

    @staticmethod
    def _guarded_attr(target: ast.expr,
                      locks: frozenset[str]) -> str | None:
        """Private self attribute this target mutates, locks exempt."""
        if isinstance(target, (ast.Subscript,)):
            target = target.value
        attr = _self_attr(target)
        if attr is None or not attr.startswith("_") or attr in locks:
            return None
        return attr

    @staticmethod
    def _under_lock(ctx: FileContext, node: ast.AST,
                    locks: frozenset[str],
                    method: ast.FunctionDef) -> bool:
        for anc in ctx.ancestors(node):
            if anc is method:
                return False
            if isinstance(anc, (ast.With, ast.AsyncWith)):
                for item in anc.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Subscript):
                        expr = expr.value
                    attr = _self_attr(expr)
                    if attr in locks:
                        return True
        return False
