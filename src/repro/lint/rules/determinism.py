"""Determinism rules: the bug classes that break bit-identical replay.

Every rule here encodes a failure this repo has actually shipped or
explicitly defends against: results must be byte-identical across
serial and fork-pool backends, across processes with different
``PYTHONHASHSEED``, and across restarts — so anything drawing from
global mutable state (module-level RNGs, wall clocks, randomized
``hash()``, filesystem enumeration order) is a latent replay bug even
when today's tests pass.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from ..base import Finding, Rule, register
from ..context import FileContext

__all__ = [
    "EventKindRule",
    "FloatEqualityRule",
    "GlobalRngRule",
    "ReprInFingerprintRule",
    "UnsortedIterationRule",
    "UnstableHashRule",
    "WallClockRule",
]

#: numpy.random attributes that are seeded-generator plumbing, not
#: draws from the hidden global state.
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "BitGenerator", "SeedSequence",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: Wall-clock / entropy call chains banned from kernel paths.  Module
#: paths after alias resolution; `from time import time` resolves to
#: the same chains.
_CLOCK_CHAINS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today", "os.urandom", "os.getrandom",
})
_CLOCK_PREFIXES = ("uuid.", "secrets.")

#: Filesystem enumerators whose order is whatever the OS feels like.
#: Matched by attribute name — ``Path.glob``, ``os.listdir``, and
#: ``glob.glob`` all end in one of these.
_FS_METHOD_NAMES = frozenset({"glob", "iglob", "rglob", "iterdir",
                              "scandir", "listdir"})

#: Wrappers that preserve (or define) iteration order — peel and keep
#: looking at what they wrap.
_ORDER_NEUTRAL_WRAPPERS = frozenset({"list", "tuple", "enumerate", "reversed"})
#: Wrappers that impose a deterministic order — iteration is safe.
_ORDERING_WRAPPERS = frozenset({"sorted"})


def _call_name(node: ast.expr) -> str | None:
    """Bare callee name of a Call's func, if it is a simple Name."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id
    return None


@register
class GlobalRngRule(Rule):
    """Draws from a global RNG instead of a passed-in ``Generator``.

    ``random.random()`` / ``np.random.rand()`` pull from hidden
    process-wide state: the same grid cell then sees different draws
    depending on execution order, worker process, or whatever imported
    the module first — exactly what the per-cell RNG discipline
    (every policy faces the identical arrival/fault stream) forbids.
    Thread a ``numpy.random.Generator`` (``np.random.default_rng(seed)``)
    through the call chain instead.
    """

    id = "REP101"
    name = "global-rng"
    category = "determinism"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            chain = ctx.resolve_chain(node.func)
            if chain is None:
                continue
            if chain == "random" or chain.startswith("random."):
                yield self.finding(
                    ctx, node,
                    f"call to stdlib global RNG '{chain}'; pass a seeded "
                    f"numpy.random.Generator through the call chain instead")
            elif chain.startswith("numpy.random."):
                leaf = chain.split(".")[2]
                if leaf not in _NP_RANDOM_ALLOWED:
                    yield self.finding(
                        ctx, node,
                        f"call to numpy global RNG '{chain}'; use a "
                        f"Generator from np.random.default_rng(seed) "
                        f"threaded in by the caller")


@register
class WallClockRule(Rule):
    """Wall-clock or entropy source in a deterministic kernel path.

    ``time.time()``, ``datetime.now()``, ``uuid.*``, ``os.urandom()``
    make a result a function of *when and where* it ran, so two
    backends (or two CI runs) can never be byte-compared.  Model time
    comes from the simulation clock; identifiers come from content
    fingerprints.  Timing for benchmarks belongs in ``benchmarks/``,
    which this rule does not police.
    """

    id = "REP102"
    name = "wall-clock"
    category = "determinism"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            chain = ctx.resolve_chain(node.func)
            if chain is None:
                continue
            if chain in _CLOCK_CHAINS or chain.startswith(_CLOCK_PREFIXES):
                yield self.finding(
                    ctx, node,
                    f"wall-clock/entropy call '{chain}' in a kernel path; "
                    f"results must be a pure function of inputs and seeds")


@register
class UnstableHashRule(Rule):
    """Builtin ``hash()`` — randomized per process for str/bytes.

    The PR 8 shard-scatter bug: ``hash(fingerprint) % nshards`` gave
    every pre-forked worker a *different* shard assignment for the same
    key (PYTHONHASHSEED randomizes str hashing per process), silently
    collapsing the cross-process hit rate.  Derive placement from the
    key's own bits (``stable_shard_index``) or a real digest
    (``hashlib``), never from ``hash()``.  ``__hash__``
    implementations delegating to ``hash(...)`` are exempt — they
    define in-process hashing, not cross-process placement.
    """

    id = "REP103"
    name = "unstable-hash"
    category = "determinism"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) != "hash" or not ctx.is_builtin_name("hash"):
                continue
            fn = ctx.enclosing_function(node)
            if fn is not None and fn.name == "__hash__":
                continue
            yield self.finding(
                ctx, node,
                "builtin hash() is randomized per process for str/bytes; "
                "use stable_shard_index or hashlib for anything that must "
                "agree across processes or restarts")


@register
class UnsortedIterationRule(Rule):
    """Iterating filesystem enumerations or sets in OS/insertion order.

    ``Path.glob``/``os.listdir`` yield in directory order — an artifact
    of inode history that differs between machines and checkouts — and
    set iteration order depends on hash seeds and insertion history.
    Any loop feeding output, accounting, or tie-breaking from one of
    these is a run-to-run diff waiting to happen; wrap the iterable in
    ``sorted(...)`` with an explicit key.
    """

    id = "REP104"
    name = "unsorted-iteration"
    category = "determinism"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                verdict = self._judge(it)
                if verdict is not None:
                    yield self.finding(ctx, it, verdict)

    def _judge(self, expr: ast.expr) -> str | None:
        """Reason the iterable is order-unstable, or None when fine."""
        while True:
            if isinstance(expr, ast.Call):
                name = _call_name(expr)
                if name in _ORDERING_WRAPPERS:
                    return None
                if name in _ORDER_NEUTRAL_WRAPPERS and expr.args:
                    expr = expr.args[0]
                    continue
                if name == "set":
                    return ("iterating a set() in hash order; "
                            "sort it before anything order-sensitive")
                if isinstance(expr.func, ast.Attribute) \
                        and expr.func.attr in _FS_METHOD_NAMES:
                    return (f"iterating .{expr.func.attr}(...) in "
                            f"filesystem order; wrap it in sorted(...)")
                return None
            if isinstance(expr, (ast.Set, ast.SetComp)):
                return ("iterating a set literal in hash order; "
                        "sort it before anything order-sensitive")
            return None


@register
class FloatEqualityRule(Rule):
    """Exact ``==``/``!=`` against a float constant in kernel code.

    Simulated instants accumulate rounding; the kernel's admission and
    boundary logic therefore compares through the ``ABS_TOL`` /
    ``REL_TOL`` helpers (``boundary_tol``, ``at_or_before``) — the
    relative-only epsilon bug fixed in PR 3 came from exactly this
    class.  A raw equality against a nonzero float constant in
    simulate/kernel code bypasses that tolerance discipline.
    Comparisons against 0.0 (exact sentinels set, not computed) and
    code inside the tolerance helpers themselves are exempt.
    """

    id = "REP105"
    name = "float-equality"
    category = "determinism"

    _EXEMPT_NAME_PARTS = ("tol", "close", "approx", "exact")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if not any(self._nonzero_float(o) for o in operands):
                continue
            fn = ctx.enclosing_function(node)
            if fn is not None and any(part in fn.name.lower()
                                      for part in self._EXEMPT_NAME_PARTS):
                continue
            yield self.finding(
                ctx, node,
                "exact ==/!= against a float constant; compare through the "
                "kernel's ABS_TOL/REL_TOL helpers (boundary_tol/at_or_before)")

    @staticmethod
    def _nonzero_float(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            node = node.operand
        return (isinstance(node, ast.Constant)
                and isinstance(node.value, float)
                and node.value != 0.0)


@register
class ReprInFingerprintRule(Rule):
    """``repr``/``!r`` of arbitrary objects inside fingerprint functions.

    ``repr`` of anything without a value-based ``__repr__`` embeds a
    memory address (``<function f at 0x7f...>``) — the PR 8
    ``spec_fingerprint`` bug, where nested code objects repr'd by
    address made every cross-process cache lookup a silent permanent
    miss.  Fingerprint and cache-key functions must digest canonical
    value encodings (sorted JSON, bytecode digests), never ``repr``.
    """

    id = "REP106"
    name = "repr-in-fingerprint"
    category = "determinism"

    _NAME_MARKERS = ("fingerprint", "cache_key", "digest_key")

    def _is_key_function(self, fn) -> bool:
        name = fn.name.lower()
        return (any(marker in name for marker in self._NAME_MARKERS)
                or name.endswith("_key") or name == "key_for")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if isinstance(node, ast.Call) and _call_name(node) == "repr" \
                    and ctx.is_builtin_name("repr"):
                kind = "repr()"
            elif isinstance(node, ast.FormattedValue) and node.conversion == ord("r"):
                kind = "f-string !r conversion"
            else:
                continue
            fn = ctx.enclosing_function(node)
            if fn is None or not self._is_key_function(fn):
                continue
            yield self.finding(
                ctx, node,
                f"{kind} inside fingerprint/key function '{fn.name}': reprs "
                f"can embed per-process memory addresses; digest a canonical "
                f"value encoding instead")


def _registered_event_kinds() -> frozenset[str]:
    """The kernel's EVENT_KINDS, read statically from its source.

    Parsed with ``ast`` (not imported — the linter stays runnable on a
    tree whose imports are broken) from the sibling
    ``simulate/kernel.py``.  Falls back to the committed set if the
    file moved, so the rule degrades to a stale-but-useful check
    rather than crashing.
    """
    fallback = frozenset({
        "seq-done", "done", "arrival", "drop",
        "proc_join", "proc_leave", "crash", "restart", "preempt",
    })
    kernel = Path(__file__).resolve().parents[2] / "simulate" / "kernel.py"
    try:
        tree = ast.parse(kernel.read_text(encoding="utf-8"))
    except (OSError, SyntaxError, ValueError):
        return fallback
    for node in ast.walk(tree):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "EVENT_KINDS":
                try:
                    value = ast.literal_eval(node.value)
                except ValueError:
                    return fallback
                if isinstance(value, (tuple, list)) and value:
                    return frozenset(str(v) for v in value)
    return fallback


@register
class EventKindRule(Rule):
    """String event kind outside the kernel's registered ``EVENT_KINDS``.

    The event log validates kinds at runtime (``record``/``select``
    raise on unknown kinds), but only on paths a test actually drives;
    a typo'd kind in a rarely-exercised branch silently matches
    nothing until production.  This rule checks every literal kind at
    lint time against the set parsed from ``simulate/kernel.py``, so
    adding a kind to the kernel automatically teaches the linter.
    """

    id = "REP107"
    name = "unregistered-event-kind"
    category = "determinism"

    _KIND_METHODS = frozenset({"record", "select", "as_tuples"})

    def __init__(self) -> None:
        self._kinds = _registered_event_kinds()

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(ctx, node)

    def _bad(self, value: object) -> bool:
        # Length-1/2 strings are dtype codes and format chars, never
        # event kinds (the shortest registered kind is 4 characters).
        return (isinstance(value, str) and len(value) >= 3
                and value not in self._kinds)

    @staticmethod
    def _is_dtype_owner(owner: ast.expr) -> bool:
        name = (owner.attr if isinstance(owner, ast.Attribute)
                else owner.id if isinstance(owner, ast.Name) else "")
        return name == "dtype"

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        literal_args: list[ast.Constant] = []
        func = node.func
        callee = (func.attr if isinstance(func, ast.Attribute)
                  else func.id if isinstance(func, ast.Name) else "")
        if callee in self._KIND_METHODS:
            # record(time, kind, index) / select(*kinds) / as_tuples(*kinds)
            args = node.args[1:2] if callee == "record" else node.args
            literal_args.extend(
                a for a in args
                if isinstance(a, ast.Constant) and isinstance(a.value, str))
        if callee in self._KIND_METHODS or callee == "Event":
            # kind= kwarg only on event-shaped callees: np.sort(kind="stable")
            # and friends use the same keyword for something else entirely.
            for kw in node.keywords:
                if kw.arg == "kind" and isinstance(kw.value, ast.Constant) \
                        and isinstance(kw.value.value, str):
                    literal_args.append(kw.value)
        for arg in literal_args:
            if self._bad(arg.value):
                yield self.finding(
                    ctx, arg,
                    f"event kind {arg.value!r} is not in the kernel's "
                    f"EVENT_KINDS registry ({sorted(self._kinds)})")

    def _check_compare(self, ctx: FileContext,
                       node: ast.Compare) -> Iterator[Finding]:
        # e.kind == "typo" / e.kind in ("typo", ...).  numpy spells dtype
        # classes ".kind" too ("f", "i"): dtype owners and short codes
        # are not event kinds, so they stay out of scope.
        operands = [node.left, *node.comparators]
        if not any(isinstance(o, ast.Attribute) and o.attr == "kind"
                   and not self._is_dtype_owner(o.value)
                   for o in operands):
            return
        for operand in operands:
            literals: list[ast.Constant] = []
            if isinstance(operand, ast.Constant):
                literals.append(operand)
            elif isinstance(operand, (ast.Tuple, ast.List, ast.Set)):
                literals.extend(e for e in operand.elts
                                if isinstance(e, ast.Constant))
            for lit in literals:
                if self._bad(lit.value):
                    yield self.finding(
                        ctx, lit,
                        f"comparison against event kind {lit.value!r} not in "
                        f"the kernel's EVENT_KINDS registry")
