"""Hygiene rules: language traps that bite regardless of subsystem.

These run everywhere — the relaxed profile for ``viz/``,
``benchmarks/``, and ``tests/`` is exactly this module plus the
suppression-directive check.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Finding, Rule, register
from ..context import FileContext

__all__ = ["MutableDefaultRule", "SilentExceptRule", "SuppressionFormRule"]

_MUTABLE_CTORS = frozenset({"list", "dict", "set", "bytearray",
                            "OrderedDict", "defaultdict", "Counter", "deque"})
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


@register
class MutableDefaultRule(Rule):
    """Mutable default argument shared across every call.

    ``def f(xs=[])`` evaluates the default once at definition time;
    every call then shares (and mutates) the same list.  In a system
    whose backends re-enter the same functions from a process pool and
    a thread pool, a mutated default is cross-request state leakage.
    Default to ``None`` and construct inside the body.
    """

    id = "REP301"
    name = "mutable-default"
    category = "hygiene"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = [*node.args.defaults,
                        *[d for d in node.args.kw_defaults if d is not None]]
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx, default,
                        f"mutable default argument in '{label}' is evaluated "
                        f"once and shared across calls; default to None and "
                        f"build it in the body")

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in _MUTABLE_CTORS
        return False


@register
class SilentExceptRule(Rule):
    """Broad exception handler that swallows without acting.

    ``except Exception: pass`` (or a bare ``except:``) was the old
    ``benchmarks/_harness.py`` bug: plot failures vanished and figures
    silently stopped rendering.  A handler this broad must do
    *something* — re-raise, log, count, return a sentinel.  Narrow
    handlers (``except OSError: pass`` around a best-effort unlink)
    state which failure is tolerable and stay allowed.
    """

    id = "REP302"
    name = "silent-except"
    category = "hygiene"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if all(self._is_noop(stmt) for stmt in node.body):
                label = ("bare except" if node.type is None
                         else "except Exception")
                yield self.finding(
                    ctx, node,
                    f"{label} swallows every error without acting; narrow "
                    f"the exception or handle it (log, count, re-raise)")

    @staticmethod
    def _is_broad(type_node: ast.expr | None) -> bool:
        if type_node is None:
            return True
        candidates = (type_node.elts if isinstance(type_node, ast.Tuple)
                      else [type_node])
        return any(isinstance(c, ast.Name) and c.id in _BROAD_EXCEPTIONS
                   for c in candidates)

    @staticmethod
    def _is_noop(stmt: ast.stmt) -> bool:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            return True
        return (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant))


@register
class SuppressionFormRule(Rule):
    """Malformed inline suppression directive.

    A ``# repro-lint: disable=...`` directive is a *contract*: it must
    name real rule IDs and carry a reason after ``--`` (the reason is
    what the JSON report surfaces so the suppression budget stays
    reviewable).  Directives missing either silence nothing and are
    flagged here instead.
    """

    id = "REP303"
    name = "suppression-form"
    category = "hygiene"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        from ..base import rule_ids

        known = set(rule_ids()) | {"all"}
        for sup in ctx.suppressions:
            anchor = ast.Module(body=[], type_ignores=[])
            anchor.lineno = sup.line  # type: ignore[attr-defined]
            anchor.col_offset = 0  # type: ignore[attr-defined]
            if sup.malformed:
                yield self.finding(ctx, anchor, sup.malformed)
                continue
            unknown = sorted(sup.ids - known)
            if unknown:
                yield self.finding(
                    ctx, anchor,
                    f"suppression names unknown rule ID(s): "
                    f"{', '.join(unknown)}")
