"""File collection and the lint loop behind ``repro lint``.

Deterministic end to end: files are gathered in sorted order, every
rule is a pure function of one parsed file, and findings are sorted by
(path, line, col, rule) — two runs over the same tree produce
byte-identical reports, which is what lets CI diff them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from .base import Finding, PARSE_ERROR_ID, Rule
from .config import profile_for_path, rules_for_profile
from .context import FileContext

__all__ = ["LintReport", "iter_python_files", "lint_file", "lint_paths"]

#: Directories never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hg", ".tox", ".venv",
                        "node_modules", ".repro-cache"})


@dataclass
class LintReport:
    """Everything one lint run produced.

    ``findings`` are active (they fail the gate); ``suppressed`` are
    matched by a valid inline directive and reported for budget
    tracking only.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule_id] = counts.get(f.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def extend(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_scanned += other.files_scanned

    def sort(self) -> None:
        self.findings.sort(key=Finding.sort_key)
        self.suppressed.sort(key=Finding.sort_key)


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Python files under *paths*, each path's tree in sorted order.

    Nonexistent paths raise FileNotFoundError — a typo'd path silently
    linting nothing is precisely the failure mode this tool exists to
    prevent.
    """
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py" and path not in seen:
                seen.add(path)
                yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if any(part in _SKIP_DIRS for part in sub.parts):
                    continue
                if sub not in seen:
                    seen.add(sub)
                    yield sub
        else:
            raise FileNotFoundError(f"lint path does not exist: {path}")


def lint_file(path: str | Path, *, rules: Sequence[Rule] | None = None,
              profile: str | None = None,
              source: str | None = None) -> LintReport:
    """Lint one file under an explicit rule set or its path profile."""
    path = Path(path)
    if rules is None:
        rules = rules_for_profile(profile or profile_for_path(path))
    ctx = FileContext(path, source=source, display_path=_display(path))
    report = LintReport(files_scanned=1)
    if ctx.syntax_error is not None:
        report.findings.append(Finding(
            path=ctx.display_path, line=1, col=0,
            rule_id=PARSE_ERROR_ID, rule_name="parse-error",
            message=f"file does not parse: {ctx.syntax_error}"))
        return report
    for rule in rules:
        for finding in rule.check(ctx):
            sup = ctx.suppression_for(finding.line, finding.rule_id)
            if sup is not None:
                report.suppressed.append(Finding(
                    path=finding.path, line=finding.line, col=finding.col,
                    rule_id=finding.rule_id, rule_name=finding.rule_name,
                    message=finding.message, suppressed=True,
                    suppress_reason=sup.reason))
            else:
                report.findings.append(finding)
    report.sort()
    return report


def lint_paths(paths: Sequence[str | Path], *,
               rules: Sequence[Rule] | None = None,
               profile: str | None = None) -> LintReport:
    """Lint every Python file under *paths* (profiles per file)."""
    report = LintReport()
    for path in iter_python_files(paths):
        report.extend(lint_file(path, rules=rules, profile=profile))
    report.sort()
    return report


def _display(path: Path) -> str:
    """Path as reported: relative to the CWD when possible."""
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)
