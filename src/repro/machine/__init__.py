"""Platform presets (TaihuLight-like node, Xeon E5-2690, 1 GB LLC)."""

from .presets import PRESETS, custom, get_preset, small_llc, taihulight, xeon_e5_2690

__all__ = [
    "taihulight",
    "xeon_e5_2690",
    "small_llc",
    "custom",
    "PRESETS",
    "get_preset",
]
