"""Named platform presets used by the paper's evaluation.

* :func:`taihulight` — the Section 6.1 simulation platform: one Sunway
  TaihuLight manycore node viewed as 256 processors sharing a 32 GB
  "LLC" (its shared memory, with disk as the large storage), latencies
  ``ls = 0.17`` / ``ll = 1``, power-law ``alpha = 0.5``.
* :func:`xeon_e5_2690` — the Intel Xeon E5-2690 cache configuration the
  miss rates were measured against (20 MB LLC per 8-core processor);
  useful for small-scale studies and for the cachesim validation.
* :func:`small_llc` — the 1 GB-LLC variant of Figs. 2 and 18.
"""

from __future__ import annotations

from ..core.platform import Platform

__all__ = ["taihulight", "xeon_e5_2690", "small_llc", "custom", "PRESETS", "get_preset"]


def taihulight(*, p: float = 256.0, alpha: float = 0.5) -> Platform:
    """Section 6.1 main platform: 256 processors, 32 GB shared cache."""
    return Platform(
        p=p,
        cache_size=32000e6,
        latency_cache=0.17,
        latency_memory=1.0,
        alpha=alpha,
        name="taihulight",
    )


def xeon_e5_2690(*, sockets: int = 1, alpha: float = 0.5) -> Platform:
    """Intel Xeon E5-2690-like node: 8 cores + 20 MB LLC per socket."""
    if sockets < 1:
        raise ValueError(f"sockets must be >= 1, got {sockets}")
    return Platform(
        p=8.0 * sockets,
        cache_size=20e6 * sockets,
        latency_cache=0.17,
        latency_memory=1.0,
        alpha=alpha,
        name=f"xeon-e5-2690x{sockets}",
    )


def small_llc(*, p: float = 256.0, alpha: float = 0.5) -> Platform:
    """The 1 GB-LLC platform of the miss-rate sweeps (Figs. 2, 18)."""
    return Platform(
        p=p,
        cache_size=1e9,
        latency_cache=0.17,
        latency_memory=1.0,
        alpha=alpha,
        name="small-llc-1gb",
    )


def custom(p: float, cache_size: float, **kwargs) -> Platform:
    """Free-form platform with the paper's default latencies/alpha."""
    return Platform(p=p, cache_size=cache_size, **kwargs)


PRESETS = {
    "taihulight": taihulight,
    "xeon-e5-2690": xeon_e5_2690,
    "small-llc": small_llc,
}


def get_preset(name: str, **kwargs) -> Platform:
    """Build a preset platform by name (see :data:`PRESETS`)."""
    try:
        factory = PRESETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown platform preset {name!r}; known: {', '.join(PRESETS)}"
        ) from None
    return factory(**kwargs)
