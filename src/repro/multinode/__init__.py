"""Multi-node extension: clusters of cache-partitioned nodes.

Scales the paper's single-node co-scheduling out to ``k`` identical
nodes: assign applications to nodes (LPT and refined variants), then
co-schedule each node with the dominant-partition machinery.
"""

from .assignment import (
    ClusterSchedule,
    exhaustive_assignment,
    lpt_assignment,
    lpt_refined_assignment,
    round_robin_assignment,
    schedule_cluster,
)

__all__ = [
    "ClusterSchedule",
    "round_robin_assignment",
    "lpt_assignment",
    "lpt_refined_assignment",
    "exhaustive_assignment",
    "schedule_cluster",
]
