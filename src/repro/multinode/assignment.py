"""Application-to-node assignment for clusters of cache-partitioned nodes.

The paper schedules one node; a natural scale-out (its in-situ use
case runs on several dedicated analysis nodes) is: partition the
applications across ``k`` identical nodes, then co-schedule each node
with the single-node machinery.  The cluster makespan is the max over
nodes.

Assignment heuristics (all return an ``assignment`` vector of node
indices):

* :func:`round_robin_assignment` — baseline.
* :func:`lpt_assignment` — Longest Processing Time first on a scalar
  load proxy (the no-cache sequential time ``w_i (1 + f_i (ls+ll))``),
  the classic makespan bound.
* :func:`lpt_refined_assignment` — LPT seeding followed by
  first-improvement moves/swaps priced with the *actual* single-node
  scheduler (cache effects included), so an application that needs a
  large cache fraction can migrate away from another cache-hungry one.

:func:`exhaustive_assignment` enumerates all assignments (ground truth
for small instances).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable

import numpy as np

from ..core.application import Workload
from ..core.platform import Platform
from ..core.registry import get_scheduler
from ..core.schedule import BaseSchedule
from ..types import ModelError

__all__ = [
    "ClusterSchedule",
    "round_robin_assignment",
    "lpt_assignment",
    "lpt_refined_assignment",
    "exhaustive_assignment",
    "schedule_cluster",
]

#: Prices one node's workload; defaults to the dominant heuristic.
NodeScheduler = Callable[[Workload, Platform], BaseSchedule]


def _default_node_scheduler(workload: Workload, platform: Platform) -> BaseSchedule:
    return get_scheduler("dominant-minratio")(workload, platform, None)


@dataclass
class ClusterSchedule:
    """A complete multi-node schedule.

    Attributes
    ----------
    workload : Workload
        All applications.
    platform : Platform
        The per-node platform (nodes are identical).
    nodes : int
        Number of nodes ``k``.
    assignment : numpy.ndarray
        ``assignment[i]`` = node of application ``i``.
    node_schedules : list[BaseSchedule | None]
        Per-node single-node schedules (``None`` for empty nodes).
    """

    workload: Workload
    platform: Platform
    nodes: int
    assignment: np.ndarray
    node_schedules: list

    def node_makespans(self) -> np.ndarray:
        """Makespan of each node (0 for empty nodes)."""
        return np.asarray([
            s.makespan() if s is not None else 0.0 for s in self.node_schedules
        ])

    def makespan(self) -> float:
        """Cluster makespan: the slowest node."""
        return float(self.node_makespans().max())

    def imbalance(self) -> float:
        """Relative spread ``(max - min_nonempty) / max`` of node makespans."""
        spans = self.node_makespans()
        nonempty = spans[spans > 0]
        if nonempty.size == 0:
            return 0.0
        return float((spans.max() - nonempty.min()) / spans.max())

    def describe(self) -> str:
        """Human-readable per-node summary."""
        lines = [
            f"ClusterSchedule: {self.workload.n} apps on {self.nodes} nodes, "
            f"makespan={self.makespan():.6g}"
        ]
        for node in range(self.nodes):
            members = [self.workload.names[i]
                       for i in np.flatnonzero(self.assignment == node)]
            span = self.node_makespans()[node]
            lines.append(f"  node {node}: {len(members)} apps, span={span:.6g}  "
                         f"[{', '.join(members)}]")
        return "\n".join(lines)


def _load_proxy(workload: Workload, platform: Platform) -> np.ndarray:
    """Scalar per-application load: no-cache sequential time."""
    return workload.work * (
        1.0 + workload.freq * (platform.latency_cache + platform.latency_memory)
    )


def _check_nodes(nodes: int) -> None:
    if nodes < 1:
        raise ModelError(f"need at least one node, got {nodes}")


def round_robin_assignment(workload: Workload, platform: Platform,
                           nodes: int) -> np.ndarray:
    """Application ``i`` goes to node ``i mod k``."""
    _check_nodes(nodes)
    return np.arange(workload.n) % nodes


def lpt_assignment(workload: Workload, platform: Platform, nodes: int) -> np.ndarray:
    """Longest Processing Time first on the no-cache load proxy."""
    _check_nodes(nodes)
    load = _load_proxy(workload, platform)
    order = np.argsort(-load)
    node_load = np.zeros(nodes)
    assignment = np.empty(workload.n, dtype=np.intp)
    for i in order:
        target = int(np.argmin(node_load))
        assignment[i] = target
        node_load[target] += load[i]
    return assignment


def schedule_cluster(
    workload: Workload,
    platform: Platform,
    assignment,
    *,
    node_scheduler: NodeScheduler | None = None,
) -> ClusterSchedule:
    """Build per-node schedules for a given assignment."""
    assignment = np.asarray(assignment, dtype=np.intp)
    if assignment.shape != (workload.n,):
        raise ModelError(f"assignment must have shape ({workload.n},)")
    if assignment.min() < 0:
        raise ModelError("assignment contains negative node indices")
    nodes = int(assignment.max()) + 1
    scheduler = node_scheduler or _default_node_scheduler
    schedules = []
    for node in range(nodes):
        mask = assignment == node
        if mask.any():
            schedules.append(scheduler(workload.subset(mask), platform))
        else:
            schedules.append(None)
    return ClusterSchedule(
        workload=workload,
        platform=platform,
        nodes=nodes,
        assignment=assignment,
        node_schedules=schedules,
    )


def lpt_refined_assignment(
    workload: Workload,
    platform: Platform,
    nodes: int,
    *,
    node_scheduler: NodeScheduler | None = None,
    max_rounds: int = 20,
) -> np.ndarray:
    """LPT seed + first-improvement moves priced with real schedules.

    Each candidate move relocates one application off the *critical*
    node (moves only — pairwise swaps rarely pay once cache effects are
    priced, and the move neighbourhood alone already converges).  A
    move is accepted when it strictly reduces the cluster makespan.
    """
    _check_nodes(nodes)
    scheduler = node_scheduler or _default_node_scheduler
    assignment = lpt_assignment(workload, platform, nodes)
    if nodes == 1 or workload.n <= 1:
        return assignment

    def price(assign: np.ndarray) -> float:
        return schedule_cluster(
            workload, platform, assign, node_scheduler=scheduler
        ).makespan()

    current = price(assignment)
    for _ in range(max_rounds):
        cluster = schedule_cluster(workload, platform, assignment,
                                   node_scheduler=scheduler)
        spans = cluster.node_makespans()
        critical = int(np.argmax(spans))
        improved = False
        for i in np.flatnonzero(assignment == critical):
            for target in range(nodes):
                if target == critical:
                    continue
                trial = assignment.copy()
                trial[i] = target
                span = price(trial)
                if span < current * (1 - 1e-12):
                    assignment, current = trial, span
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break
    return assignment


def exhaustive_assignment(
    workload: Workload,
    platform: Platform,
    nodes: int,
    *,
    node_scheduler: NodeScheduler | None = None,
) -> tuple[np.ndarray, float]:
    """Optimal assignment by enumeration (``k^n``; n <= 10 advised)."""
    _check_nodes(nodes)
    if workload.n > 12:
        raise ModelError(
            f"exhaustive assignment limited to 12 applications, got {workload.n}"
        )
    scheduler = node_scheduler or _default_node_scheduler
    best: tuple[np.ndarray, float] | None = None
    for combo in product(range(nodes), repeat=workload.n):
        assignment = np.asarray(combo, dtype=np.intp)
        # canonical form: skip assignments not using node 0 first
        # (symmetry pruning: all node relabelings are equivalent)
        seen = []
        ok = True
        for a in combo:
            if a not in seen:
                if a != len(seen):
                    ok = False
                    break
                seen.append(a)
        if not ok:
            continue
        span = schedule_cluster(
            workload, platform, assignment, node_scheduler=scheduler
        ).makespan()
        if best is None or span < best[1]:
            best = (assignment, span)
    assert best is not None
    return best
