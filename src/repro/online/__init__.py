"""Online co-scheduling: dynamic arrivals with cache repartitioning."""

from .allocation import remaining_equal_finish
from .arrivals import (
    ARRIVAL_KINDS,
    ArrivalSource,
    BatchSource,
    ConstantRate,
    PoissonProcess,
    TraceSource,
    parse_arrival_spec,
)
from .engine import (
    BUILTIN_POLICIES,
    OnlineResult,
    arrival_order,
    make_policy_allocator,
    simulate_online,
)

__all__ = ["remaining_equal_finish", "BUILTIN_POLICIES", "OnlineResult",
           "simulate_online", "arrival_order", "make_policy_allocator",
           "ARRIVAL_KINDS", "ArrivalSource", "BatchSource",
           "ConstantRate", "PoissonProcess", "TraceSource",
           "parse_arrival_spec"]
