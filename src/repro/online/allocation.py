"""Equal-finish allocation over *remaining* work.

The offline solver of :mod:`repro.core.processor_allocation` prices
whole applications; an online scheduler reallocates mid-flight, when
each application has some sequential and parallel operations left.
With a cache fraction fixing the access factor ``factor_i`` (Eq. 2's
per-operation cost), the time for application ``i`` to finish on
``p_i`` processors is

    ``t_i = factor_i * (seq_left_i + par_left_i / p_i)``,

so the equal-finish horizon ``K`` solves

    ``sum_i par_left_i * factor_i / (K - seq_left_i * factor_i) = p``

(strictly decreasing in ``K`` past the singularities) and
``p_i = par_left_i * factor_i / (K - seq_left_i * factor_i)``.
"""

from __future__ import annotations

import numpy as np

from ..types import ModelError, SolverError

__all__ = ["remaining_equal_finish"]

_EPS_PROC = 1e-9


def remaining_equal_finish(
    seq_ops,
    par_ops,
    factors,
    p: float,
    *,
    xtol: float = 1e-12,
) -> tuple[np.ndarray, float]:
    """Processors equalizing the finish of partially executed apps.

    Parameters
    ----------
    seq_ops, par_ops : array_like
        Remaining sequential / parallel operations (>= 0; at least one
        of the two positive per application).
    factors : array_like
        Per-operation access-cost factors (> 0).
    p : float
        Processors available.

    Returns
    -------
    (procs, horizon)
        Positive allocations summing to <= p and the common remaining
        time ``K`` (relative to now).
    """
    seq = np.asarray(seq_ops, dtype=np.float64)
    par = np.asarray(par_ops, dtype=np.float64)
    fac = np.asarray(factors, dtype=np.float64)
    if not (seq.shape == par.shape == fac.shape) or seq.ndim != 1 or seq.size == 0:
        raise ModelError("seq_ops, par_ops, factors must be equal-length 1-D arrays")
    if np.any(seq < 0) or np.any(par < 0) or np.any(fac <= 0):
        raise ModelError("remaining ops must be >= 0 and factors > 0")
    if np.any((seq == 0) & (par == 0)):
        raise ModelError("finished applications must be removed before reallocating")
    if p <= 0:
        raise ModelError(f"p must be positive, got {p}")

    seq_time = seq * fac          # time of the remaining sequential part
    par_work = par * fac          # processor-time of the parallel part

    if np.all(par_work == 0):
        # Only sequential tails left: processors are irrelevant.
        procs = np.full(seq.size, _EPS_PROC)
        return procs, float(seq_time.max())

    def demand(K: float) -> float:
        denom = K - seq_time
        if np.any(denom <= 0):
            return np.inf
        with np.errstate(divide="ignore"):
            return float(np.where(par_work > 0, par_work / denom, 0.0).sum())

    lo = float((seq_time + par_work / p).max())
    g_lo = demand(lo)
    if g_lo <= p:
        K = lo
    else:
        hi = float((seq_time + par_work).max())
        if hi <= lo:
            hi = lo * (1 + 1e-9) + 1e-300
        expansions = 0
        while demand(hi) > p:
            hi *= 2.0
            expansions += 1
            if expansions > 200:
                raise SolverError("could not bracket the online horizon")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if demand(mid) > p:
                lo = mid
            else:
                hi = mid
            if hi - lo <= xtol * max(1.0, lo):
                break
        K = 0.5 * (lo + hi)

    denom = np.maximum(K - seq_time, 1e-300)
    procs = np.maximum(par_work / denom, _EPS_PROC)
    total = procs.sum()
    if total > p:
        procs *= p / total
    return procs, float(K)
