"""Arrival-time sources for the online engine.

Historically :func:`repro.online.simulate_online` only ever saw
hand-passed arrival arrays; this module grows the dynamic scenario
space to *generated* and *replayed* streams, all returning plain
``float64`` arrival-time arrays the engine (and the shared event
kernel) consume unchanged:

``batch[:at=T]``
    Everyone at one instant (the paper's static setting when ``T=0``).
``constant:period=P[,start=S]``
    Deterministic constant-rate arrivals ``S, S+P, S+2P, ...`` — the
    in-situ pipeline's regular batch cadence.
``poisson:rate=R[,burst=B,period=P]``
    A Poisson process with peak rate ``R`` (arrivals per time unit).
    With ``burst``/``period`` the process is *inhomogeneous*: the
    intensity is sinusoidally modulated,

        ``lambda(t) = R * (1 + B * sin(2 pi t / P)) / (1 + B)``,

    and sampled by Lewis–Shedler thinning (candidates from the
    homogeneous bound ``R``, each accepted with probability
    ``lambda(t) / R``) — the standard IPPP construction (Hohmann
    2019).  ``burst=0`` degenerates to the homogeneous process.
``trace:PATH``
    Replay recorded instants from a text file (one float per line;
    blank lines and ``#`` comments ignored).

Every source is a frozen dataclass with a ``times(n, rng)`` method;
:func:`parse_arrival_spec` turns the CLI spec strings above into
sources.  Generation is reproducible: the same ``rng`` seed yields the
same stream (deterministic sources ignore the generator).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol, runtime_checkable

import numpy as np

from ..types import ModelError

__all__ = [
    "ArrivalSource",
    "BatchSource",
    "ConstantRate",
    "PoissonProcess",
    "TraceSource",
    "parse_arrival_spec",
    "ARRIVAL_KINDS",
]

#: Spec prefixes understood by :func:`parse_arrival_spec`.
ARRIVAL_KINDS: tuple[str, ...] = ("batch", "constant", "poisson", "trace")


@runtime_checkable
class ArrivalSource(Protocol):
    """Anything that can produce ``n`` nondecreasing arrival instants."""

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``n`` arrival instants (``float64``, nondecreasing)."""
        ...  # pragma: no cover - protocol


def _check_n(n: int) -> None:
    if n < 1:
        raise ModelError(f"need at least one arrival, got n={n}")


@dataclass(frozen=True)
class BatchSource:
    """Everyone arrives at the same instant (default: 0)."""

    at: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0 or not math.isfinite(self.at):
            raise ModelError(f"batch instant must be finite and >= 0, got {self.at}")

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        _check_n(n)
        return np.full(n, self.at, dtype=np.float64)


@dataclass(frozen=True)
class ConstantRate:
    """Deterministic arrivals every *period* time units from *start*."""

    period: float
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0 or not math.isfinite(self.period):
            raise ModelError(f"period must be positive and finite, got {self.period}")
        if self.start < 0 or not math.isfinite(self.start):
            raise ModelError(f"start must be finite and >= 0, got {self.start}")

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        _check_n(n)
        return self.start + np.arange(n, dtype=np.float64) * self.period


@dataclass(frozen=True)
class PoissonProcess:
    """(In)homogeneous Poisson arrivals via Lewis–Shedler thinning.

    Parameters
    ----------
    rate : float
        Peak intensity ``R`` (arrivals per time unit) — also the
        thinning bound.
    burst : float
        Modulation amplitude in ``[0, 1)``; 0 means homogeneous.
    period : float
        Modulation period of the sinusoidal intensity (required
        positive and finite when ``burst > 0``).
    """

    rate: float
    burst: float = 0.0
    period: float = math.inf

    def __post_init__(self) -> None:
        if self.rate <= 0 or not math.isfinite(self.rate):
            raise ModelError(f"rate must be positive and finite, got {self.rate}")
        if not 0.0 <= self.burst < 1.0:
            raise ModelError(f"burst must be in [0, 1), got {self.burst}")
        if self.burst > 0 and not (self.period > 0 and math.isfinite(self.period)):
            raise ModelError(
                f"a bursty process needs a positive finite period, got {self.period}"
            )

    def intensity(self, t: float) -> float:
        """The instantaneous rate ``lambda(t)`` (peak = ``rate``)."""
        if self.burst == 0.0:
            return self.rate
        return (self.rate * (1.0 + self.burst * math.sin(2.0 * math.pi * t / self.period))
                / (1.0 + self.burst))

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        _check_n(n)
        out = np.empty(n, dtype=np.float64)
        t = 0.0
        for k in range(n):
            while True:
                # Candidate from the homogeneous bounding process...
                t += rng.exponential(1.0 / self.rate)
                if self.burst == 0.0:
                    break
                # ...thinned by the relative intensity at its instant.
                if rng.random() <= self.intensity(t) / self.rate:
                    break
            out[k] = t
        return out


@dataclass(frozen=True)
class TraceSource:
    """Replay arrival instants recorded in a text file."""

    path: Path

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        _check_n(n)
        path = Path(self.path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ModelError(f"cannot read arrival trace {path}: {exc}") from None
        values: list[float] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            payload = line.split("#", 1)[0].strip()
            if not payload:
                continue
            try:
                values.append(float(payload))
            except ValueError:
                raise ModelError(
                    f"{path}:{lineno}: cannot parse arrival instant {payload!r}"
                ) from None
        if len(values) < n:
            raise ModelError(
                f"trace {path} holds {len(values)} arrivals; {n} needed"
            )
        arr = np.asarray(values[:n], dtype=np.float64)
        if np.any(arr < 0):
            raise ModelError(f"trace {path} contains negative arrival instants")
        if np.any(np.diff(arr) < 0):
            raise ModelError(f"trace {path} arrivals must be nondecreasing")
        return arr


_SPEC_EXAMPLES = (
    "batch, batch:at=T, constant:period=P[,start=S], "
    "poisson:rate=R[,burst=B,period=P], trace:PATH"
)


def _parse_kv(body: str, spec: str, allowed: dict[str, float]) -> dict[str, float]:
    """Parse ``key=value`` float pairs, seeded with *allowed* defaults."""
    out = dict(allowed)
    if not body:
        return out
    for item in body.split(","):
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or key not in allowed:
            raise ModelError(
                f"bad arrival spec {spec!r}: unknown or malformed field {item!r} "
                f"(known: {', '.join(allowed)})"
            )
        try:
            out[key] = float(value)
        except ValueError:
            raise ModelError(
                f"bad arrival spec {spec!r}: {key} needs a number, got {value!r}"
            ) from None
    return out


def parse_arrival_spec(spec: str) -> ArrivalSource:
    """Turn a CLI spec string into an :class:`ArrivalSource`.

    Examples: ``batch``, ``constant:period=2e8``,
    ``poisson:rate=5e-9,burst=0.8,period=1e9``, ``trace:runs/arrivals.txt``.
    """
    kind, _, body = spec.strip().partition(":")
    kind = kind.lower()
    if kind == "batch":
        fields = _parse_kv(body, spec, {"at": 0.0})
        return BatchSource(at=fields["at"])
    if kind == "constant":
        fields = _parse_kv(body, spec, {"period": math.nan, "start": 0.0})
        if math.isnan(fields["period"]):
            raise ModelError(f"bad arrival spec {spec!r}: constant needs period=P")
        return ConstantRate(period=fields["period"], start=fields["start"])
    if kind == "poisson":
        fields = _parse_kv(body, spec,
                           {"rate": math.nan, "burst": 0.0, "period": math.inf})
        if math.isnan(fields["rate"]):
            raise ModelError(f"bad arrival spec {spec!r}: poisson needs rate=R")
        return PoissonProcess(rate=fields["rate"], burst=fields["burst"],
                              period=fields["period"])
    if kind == "trace":
        if not body:
            raise ModelError(f"bad arrival spec {spec!r}: trace needs a file path")
        return TraceSource(path=Path(body))
    raise ModelError(
        f"unknown arrival spec {spec!r}; expected one of: {_SPEC_EXAMPLES}"
    )
