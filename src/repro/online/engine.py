"""Online co-scheduling with dynamic arrivals.

The paper's setting is static (all applications present at time 0);
the in-situ reality it motivates is dynamic — analysis jobs arrive
over time.  This engine simulates that: at every *event* (an arrival
or a completion) the policy repartitions the cache and the processors
among the applications currently in the system, and execution proceeds
under the Eq. 2 model until the next event.

The clock is the shared event kernel (:mod:`repro.simulate.kernel`);
this module contributes only the reallocation policies.  In
particular, arrival admission uses the kernel's canonical combined
abs+rel tolerance — the historical relative-only check admitted
nothing early at ``now == 0`` except by accident and over-admitted at
large ``now``.  Arrival streams beyond hand-passed arrays (constant
rate, inhomogeneous Poisson, trace replay) live in
:mod:`repro.online.arrivals`.

Policies
--------
``"dominant"``
    Recompute a dominant partition over the *active* applications
    using their remaining work in the weights, Theorem-3 fractions,
    and the remaining-work equal-finish processor split — the paper's
    machinery applied online.  The eviction loop is the exact
    Algorithm-1 core shared with the offline heuristics
    (:func:`repro.core.heuristics.evict_until_dominant`).
``"fair"``
    Equal processors, access-frequency-proportional cache among the
    active applications (``1/n`` each when no one accesses memory).
``"fcfs"``
    One application at a time (arrival order), whole machine + whole
    cache — the no-co-scheduling baseline.
any registered scheduler name
    Every concurrent strategy in the scheduler registry (e.g.
    ``"dominant-maxratio"``, ``"fair"``'s registered cousin,
    ``"speedup-aware"``) can drive the online loop: at each event the
    entry is invoked on the *active* applications with their remaining
    work, and the resulting ``(procs, cache)`` allocation is applied
    until the next event.  Sequential strategies (``"allproccache"``)
    are rejected — use ``"fcfs"`` for that behavior.

Cache repartitioning takes effect instantaneously (the model carries
no warm-up; Section 3's miss rates are steady-state).  Metrics:
completion and flow times per application, makespan, mean/max flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.application import Workload
from ..core.dominance import cache_weights, dominance_ratios
from ..core.execution import access_cost_factor
from ..core.heuristics import evict_until_dominant
from ..core.platform import Platform
from ..core.registry import get_entry, scheduler_names
from ..simulate.kernel import EventLog, run_phase_kernel
from ..types import ModelError
from .allocation import remaining_equal_finish

__all__ = [
    "OnlineResult",
    "simulate_online",
    "BUILTIN_POLICIES",
    "arrival_order",
    "make_policy_allocator",
]

#: The hand-rolled event-loop policies; any other name is resolved
#: through the scheduler registry.
BUILTIN_POLICIES: tuple[str, ...] = ("dominant", "fair", "fcfs")

#: A policy is a builtin name or any registered concurrent scheduler.
Policy = str


@dataclass(frozen=True)
class OnlineResult:
    """Outcome of an online simulation.

    Attributes
    ----------
    arrival_times, finish_times : numpy.ndarray
        Per-application instants.
    events : int
        Number of reallocation events processed.
    policy : str
        The policy simulated.
    processor_usage : list[tuple[float, float]]
        ``(time, processors in use)`` sampled at every reallocation —
        the same public timeline :class:`repro.simulate.SimulationResult`
        exposes, so chaos probes and invariant checks can audit the
        online path too.  Each total holds until the next sample.
    log : EventLog
        The kernel's typed event log for the run (arrivals,
        phase exits, completions — plus fault events when the run is
        driven through :mod:`repro.chaos`).
    """

    arrival_times: np.ndarray
    finish_times: np.ndarray
    events: int
    policy: str
    processor_usage: list[tuple[float, float]] = field(
        default_factory=list, repr=False)
    log: EventLog = field(default_factory=EventLog, repr=False)

    @property
    def peak_processors(self) -> float:
        """Largest simultaneous in-use total over the run."""
        if not self.processor_usage:
            return 0.0
        return max(used for _, used in self.processor_usage)

    @property
    def flow_times(self) -> np.ndarray:
        """Per-application response times (finish - arrival)."""
        return self.finish_times - self.arrival_times

    @property
    def makespan(self) -> float:
        """Completion of the last application."""
        return float(self.finish_times.max())

    @property
    def mean_flow(self) -> float:
        return float(self.flow_times.mean())

    @property
    def max_flow(self) -> float:
        return float(self.flow_times.max())


def _dominant_fractions_remaining(
    workload: Workload, platform: Platform, active: np.ndarray,
    work_left: np.ndarray,
) -> np.ndarray:
    """Theorem-3 fractions over a dominance-filtered active subset.

    Weights use the *remaining* work (an application nearly done should
    not hold a large partition); the dominance ratios follow Definition
    4 with those weights, and the eviction is the shared Algorithm-1
    core with the MinRatio choice.
    """
    weights = cache_weights(workload, platform, work=work_left)
    ratios = dominance_ratios(workload, platform, work=work_left)
    mask = evict_until_dominant(weights, ratios, active & (weights > 0),
                                "minratio")
    x = np.zeros(workload.n)
    if mask.any():
        total = float(weights[mask].sum())
        x[mask] = weights[mask] / total
    return x


def _registry_allocation(
    workload: Workload,
    platform: Platform,
    idx: np.ndarray,
    seq_left: np.ndarray,
    par_left: np.ndarray,
    policy: str,
    rng: np.random.Generator | None,
) -> tuple[np.ndarray, np.ndarray]:
    """(procs, cache) from a registered scheduler over the active apps.

    The entry sees a snapshot workload whose applications carry their
    *remaining* work and the sequential fraction of that remainder, so
    an offline strategy re-solves the shrinking instance at each event.
    """
    try:
        entry = get_entry(policy)
    except ModelError:
        raise ModelError(
            f"unknown policy {policy!r}; builtin policies: "
            f"{', '.join(BUILTIN_POLICIES)}, plus any registered "
            f"concurrent scheduler ({', '.join(scheduler_names())})"
        ) from None
    snapshot = Workload(
        workload[int(i)].scaled(
            work=float(seq_left[i] + par_left[i]),
            seq_fraction=float(seq_left[i] / (seq_left[i] + par_left[i])),
        )
        for i in idx
    )
    schedule = entry(snapshot, platform, rng)
    if not schedule.concurrent:
        raise ModelError(
            f"policy {policy!r} builds a sequential schedule; the online "
            "engine needs a concurrent strategy (use 'fcfs' instead)"
        )
    n = workload.n
    procs = np.zeros(n)
    cache = np.zeros(n)
    procs[idx] = schedule.procs
    cache[idx] = schedule.cache
    return procs, cache


def _allocate(
    workload: Workload,
    platform: Platform,
    active: np.ndarray,
    seq_left: np.ndarray,
    par_left: np.ndarray,
    policy: str,
    fcfs_order: np.ndarray,
    rng: np.random.Generator | None,
) -> tuple[np.ndarray, np.ndarray]:
    """(procs, cache) for the active set under *policy*."""
    n = workload.n
    procs = np.zeros(n)
    cache = np.zeros(n)
    idx = np.flatnonzero(active)
    if idx.size == 0:
        return procs, cache

    if policy == "fcfs":
        head = idx[np.argmin(fcfs_order[idx])]
        procs[head] = platform.p
        cache[head] = 1.0
        return procs, cache

    if policy == "fair":
        procs[idx] = platform.p / idx.size
        total_freq = float(workload.freq[idx].sum())
        if total_freq > 0:
            cache[idx] = workload.freq[idx] / total_freq
        else:
            cache[idx] = 1.0 / idx.size
        return procs, cache

    if policy == "dominant":
        work_left = seq_left + par_left
        cache = _dominant_fractions_remaining(workload, platform, active, work_left)
        factors = access_cost_factor(workload, platform, cache)
        alloc, _ = remaining_equal_finish(
            seq_left[idx], par_left[idx], factors[idx], platform.p
        )
        procs[idx] = alloc
        return procs, cache

    # Fall through to the scheduler registry; get_entry raises a
    # ModelError naming the known strategies for unknown policies.
    return _registry_allocation(
        workload, platform, idx, seq_left, par_left, policy, rng
    )


def arrival_order(arrival_times) -> np.ndarray:
    """Stable arrival ranks (ties broken by index) for fcfs policies."""
    arrivals = np.asarray(arrival_times, dtype=np.float64)
    return np.argsort(np.argsort(arrivals, kind="stable")).astype(np.float64)


def make_policy_allocator(
    workload: Workload,
    platform: Platform,
    policy: Policy,
    *,
    fcfs_order: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
):
    """Build the kernel ``allocate`` hook for a reallocation policy.

    Returns a closure ``allocate(now, active, seq_left, par_left) ->
    (procs, factors)`` mapping the policy's ``(procs, cache)`` decision
    over the active set into the event kernel's convention (Eq. 2
    access-cost factors).  This is the single policy seam shared by
    :func:`simulate_online` and the fault injector
    (:class:`repro.chaos.FaultInjector`), which wraps the returned
    hook rather than re-deriving the policies.

    *fcfs_order* carries the stable arrival ranks the ``"fcfs"``
    builtin serializes by (see :func:`arrival_order`); it defaults to
    index order.
    """
    if fcfs_order is None:
        fcfs_order = np.arange(workload.n, dtype=np.float64)

    def allocate(now, active, seq_left, par_left):
        procs, cache = _allocate(
            workload, platform, active, seq_left, par_left, policy,
            fcfs_order, rng,
        )
        return procs, access_cost_factor(workload, platform, cache)

    return allocate


def simulate_online(
    workload: Workload,
    platform: Platform,
    arrival_times,
    *,
    policy: Policy = "dominant",
    max_events: int | None = None,
    rng: np.random.Generator | None = None,
) -> OnlineResult:
    """Simulate dynamic arrivals under a reallocation policy.

    *policy* is a builtin (``"dominant"``, ``"fair"``, ``"fcfs"``) or
    any registered concurrent scheduler name; *rng* feeds randomized
    registry policies (builtins ignore it).
    """
    arrivals = np.asarray(arrival_times, dtype=np.float64)
    if arrivals.shape != (workload.n,):
        raise ModelError(f"arrival_times must have shape ({workload.n},)")
    if np.any(arrivals < 0):
        raise ModelError("arrival times must be >= 0")

    allocate = make_policy_allocator(
        workload, platform, policy,
        fcfs_order=arrival_order(arrivals), rng=rng,
    )

    result = run_phase_kernel(
        workload.work,
        workload.seq * workload.work,
        (1.0 - workload.seq) * workload.work,
        allocate=allocate,
        arrivals=arrivals,
        max_events=max_events,
        budget_message="online simulation exceeded its event budget",
    )

    return OnlineResult(
        arrival_times=arrivals.copy(),
        finish_times=result.finish_times,
        events=result.events,
        policy=policy,
        processor_usage=result.usage,
        log=result.log,
    )
