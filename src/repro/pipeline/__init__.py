"""Periodic in-situ pipeline analysis and batch-queue simulation."""

from .periodic import (
    is_feasible,
    min_sustainable_period,
    required_processors,
    utilization,
)
from .queueing import PipelineStats, jittered_arrivals, simulate_batch_queue

__all__ = [
    "min_sustainable_period",
    "is_feasible",
    "utilization",
    "required_processors",
    "PipelineStats",
    "jittered_arrivals",
    "simulate_batch_queue",
]
