"""Periodic in-situ analysis: the paper's motivating workload shape.

Section 1 motivates co-scheduling with in-situ pipelines (HACC-style):
a simulation emits a data batch every *period*; a dedicated analysis
node must co-schedule a fixed set of analysis kernels over each batch
and finish before the next batch lands.  The connection to the paper's
objective is direct — the makespan of the co-schedule is the **minimum
sustainable period** — and this module packages it:

* :func:`min_sustainable_period` — the makespan under a chosen
  strategy, i.e. the highest ingest rate the node can keep up with;
* :func:`is_feasible` / :func:`utilization` — deadline checks for a
  given period;
* :func:`required_processors` — invert the question: the smallest
  processor count meeting a target period (monotone bisection on the
  equal-finish model).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core.application import Workload
from ..core.platform import Platform
from ..core.registry import get_scheduler
from ..core.schedule import BaseSchedule
from ..types import ModelError, SolverError

__all__ = [
    "min_sustainable_period",
    "is_feasible",
    "utilization",
    "required_processors",
]

SchedulerLike = Callable[[Workload, Platform, Optional[np.random.Generator]], BaseSchedule]


def _resolve(scheduler: str | SchedulerLike) -> SchedulerLike:
    if isinstance(scheduler, str):
        return get_scheduler(scheduler)
    return scheduler


def min_sustainable_period(
    workload: Workload,
    platform: Platform,
    *,
    scheduler: str | SchedulerLike = "dominant-minratio",
    rng: np.random.Generator | None = None,
) -> float:
    """Shortest batch period the node sustains under *scheduler*.

    Equals the co-schedule's makespan: each batch's kernels start
    together when the batch lands and must all finish within the
    period.
    """
    return _resolve(scheduler)(workload, platform, rng).makespan()


def is_feasible(
    period: float,
    workload: Workload,
    platform: Platform,
    *,
    scheduler: str | SchedulerLike = "dominant-minratio",
    rng: np.random.Generator | None = None,
) -> bool:
    """Whether every kernel finishes within *period*."""
    if period <= 0:
        raise ModelError(f"period must be positive, got {period}")
    return min_sustainable_period(
        workload, platform, scheduler=scheduler, rng=rng
    ) <= period


def utilization(
    period: float,
    workload: Workload,
    platform: Platform,
    *,
    scheduler: str | SchedulerLike = "dominant-minratio",
    rng: np.random.Generator | None = None,
) -> float:
    """``makespan / period`` — > 1 means the pipeline falls behind."""
    if period <= 0:
        raise ModelError(f"period must be positive, got {period}")
    return min_sustainable_period(
        workload, platform, scheduler=scheduler, rng=rng
    ) / period


def required_processors(
    period: float,
    workload: Workload,
    platform: Platform,
    *,
    scheduler: str | SchedulerLike = "dominant-minratio",
    rng: np.random.Generator | None = None,
    p_max: float = 1e6,
    rtol: float = 1e-6,
) -> float:
    """Smallest processor count sustaining *period* (other platform
    parameters fixed).

    The makespan is non-increasing in ``p`` for every registered
    strategy, so a bisection applies.  Raises :class:`SolverError` when
    even ``p_max`` processors cannot meet the period (the sequential
    fractions bound the makespan from below).
    """
    if period <= 0:
        raise ModelError(f"period must be positive, got {period}")
    sched = _resolve(scheduler)

    def span(p: float) -> float:
        return sched(workload, platform.with_processors(p), rng).makespan()

    lo, hi = 1e-6, float(platform.p)
    if span(hi) > period:
        while span(hi) > period:
            hi *= 2.0
            if hi > p_max:
                raise SolverError(
                    f"period {period:g} unreachable even with {p_max:g} processors "
                    "(sequential fractions bound the makespan)"
                )
        lo = hi / 2.0
    # shrink lo until infeasible (so the bracket is [infeasible, feasible])
    while span(lo) <= period and lo > 1e-9:
        hi = lo
        lo /= 2.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if span(mid) <= period:
            hi = mid
        else:
            lo = mid
        if (hi - lo) <= rtol * hi:
            break
    return hi
