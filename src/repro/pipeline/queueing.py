"""Batch-queue simulation for in-situ pipelines.

The analytic condition "makespan <= period" assumes perfectly regular
arrivals and identical batches.  Real pipelines jitter: batch sizes
vary (so do processing makespans) and the buffer in front of the
analysis node is finite — late batches queue up and, past the buffer
capacity, are dropped (exactly the data loss the in-situ approach is
supposed to avoid).  This module simulates that queue:

* one analysis node processes batches FIFO, one at a time, each for
  its own makespan;
* batches arrive at given instants; a batch arriving when the buffer
  (queue excluding the batch in service) is full is dropped;
* the simulation reports throughput, drops, queue depth, and latency
  (arrival -> completion).

The event bookkeeping is the shared kernel's single-server queue
process (:func:`repro.simulate.kernel.run_queue_kernel`), so boundary
decisions — has a queued batch started by this arrival instant? —
follow the same canonical abs+rel tolerance as every other simulation
clock in the repository.

Use :func:`jittered_arrivals` / per-batch makespans from any source
(e.g. re-running a scheduler over randomly drawn batch workloads).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulate.kernel import run_queue_kernel
from ..types import ModelError

__all__ = ["PipelineStats", "simulate_batch_queue", "jittered_arrivals"]


@dataclass(frozen=True)
class PipelineStats:
    """Outcome of a batch-queue simulation.

    Attributes
    ----------
    completed, dropped : int
        Batch counts.
    latencies : numpy.ndarray
        Arrival-to-completion time of each completed batch.
    max_queue_depth : int
        Largest number of batches waiting (excluding the one in
        service).
    makespan : float
        Completion instant of the last processed batch.
    """

    completed: int
    dropped: int
    latencies: np.ndarray
    max_queue_depth: int
    makespan: float

    @property
    def drop_rate(self) -> float:
        total = self.completed + self.dropped
        return self.dropped / total if total else 0.0

    @property
    def mean_latency(self) -> float:
        return float(self.latencies.mean()) if self.latencies.size else 0.0

    @property
    def p99_latency(self) -> float:
        if self.latencies.size == 0:
            return 0.0
        return float(np.quantile(self.latencies, 0.99))


def jittered_arrivals(
    n_batches: int,
    period: float,
    rng: np.random.Generator,
    *,
    jitter: float = 0.0,
) -> np.ndarray:
    """Arrival instants ``k * period + U(-jitter, jitter) * period``.

    Jitter is clamped so arrivals stay ordered and nonnegative.
    """
    if n_batches < 1:
        raise ModelError(f"need at least one batch, got {n_batches}")
    if period <= 0:
        raise ModelError(f"period must be positive, got {period}")
    if not 0 <= jitter < 0.5:
        raise ModelError(f"jitter must be in [0, 0.5), got {jitter}")
    base = np.arange(n_batches, dtype=np.float64) * period
    if jitter > 0:
        base = base + rng.uniform(-jitter, jitter, size=n_batches) * period
        base = np.maximum.accumulate(np.maximum(base, 0.0))
    return base


def simulate_batch_queue(
    arrivals,
    service_times,
    *,
    buffer_capacity: int | None = None,
) -> PipelineStats:
    """FIFO single-server queue with optional finite buffer.

    Parameters
    ----------
    arrivals : array_like
        Nondecreasing arrival instants, one per batch.
    service_times : array_like
        Processing makespan of each batch (same length).
    buffer_capacity : int, optional
        Maximum batches *waiting* (the batch in service does not
        count).  ``None`` = infinite buffer.

    Notes
    -----
    With nondecreasing arrivals the FIFO queue has a closed recurrence:
    ``start_k = max(arrival_k, finish_{k-1})``.  Drops are decided at
    arrival time by counting batches still queued (admitted batches
    whose service has not started).
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    service = np.asarray(service_times, dtype=np.float64)
    if arrivals.shape != service.shape or arrivals.ndim != 1:
        raise ModelError("arrivals and service_times must be equal-length 1-D arrays")
    if arrivals.size == 0:
        raise ModelError("need at least one batch")
    if np.any(np.diff(arrivals) < 0):
        raise ModelError("arrivals must be nondecreasing")
    if np.any(service <= 0):
        raise ModelError("service times must be positive")
    if buffer_capacity is not None and buffer_capacity < 0:
        raise ModelError("buffer_capacity must be >= 0")

    result = run_queue_kernel(arrivals, service,
                              buffer_capacity=buffer_capacity)
    return PipelineStats(
        completed=int(result.finishes.size),
        dropped=result.dropped,
        latencies=result.latencies,
        max_queue_depth=result.max_depth,
        makespan=float(result.finishes[-1]) if result.finishes.size else 0.0,
    )
