"""repro.service — batched, cache-backed co-scheduling decision service.

The serving subsystem: the paper's schedulers, wrapped as an online
decision API.  A request — application set, platform, scheduler name —
is canonicalized and fingerprinted (:mod:`.protocol`); repeats are
answered from an in-memory LRU decision cache (:mod:`.cache`);
concurrent distinct requests coalesce into batches (:mod:`.batcher`)
dispatched on a worker pool over the scheduler registry
(:mod:`.dispatcher`).  The transport-agnostic core
(:class:`DecisionService`) is fronted by a stdlib HTTP JSON API
(:mod:`.server`: ``/v1/allocate``, ``/v1/schedulers``, ``/metrics``)
with a thin client (:mod:`.client`) and the ``repro serve`` /
``repro request`` CLI verbs.

Quickstart::

    from repro.service import DecisionService, AllocationRequest
    from repro.machine import taihulight
    from repro.workloads import npb6

    with DecisionService() as svc:
        req = AllocationRequest(
            applications=tuple(npb6(seq_range=None)),
            platform=taihulight(),
            scheduler="dominant-minratio",
        )
        first = svc.allocate(req)    # computed
        again = svc.allocate(req)    # decision-cache hit
        assert again.cache_hit and again.decision == first.decision
"""

from .aserver import AsyncServerThread, serve_async
from .batcher import QueueFullError, RequestBatcher
from .cache import CacheStats, DecisionCache, ShardedDecisionCache
from .client import ServiceClient, ServiceError
from .core import DecisionService
from .dispatcher import Dispatcher, RequestError, compute_decision
from .metrics import Gauge, LatencyHistogram
from .protocol import (
    AllocationDecision,
    AllocationRequest,
    AllocationResponse,
    canonical_json,
    parse_platform,
    request_from_payload,
)
from .server import make_server, serve

__all__ = [
    "AllocationDecision",
    "AllocationRequest",
    "AllocationResponse",
    "AsyncServerThread",
    "CacheStats",
    "DecisionCache",
    "DecisionService",
    "Dispatcher",
    "Gauge",
    "LatencyHistogram",
    "QueueFullError",
    "RequestBatcher",
    "RequestError",
    "ServiceClient",
    "ServiceError",
    "ShardedDecisionCache",
    "canonical_json",
    "compute_decision",
    "make_server",
    "parse_platform",
    "request_from_payload",
    "serve",
    "serve_async",
]
