"""asyncio HTTP front end: the high-QPS serving path.

The threaded front end (:mod:`repro.service.server`) spends a thread
per in-flight request; at thousands of requests per second the
interpreter drowns in context switches before the schedulers do any
work.  This module serves the same contract — ``POST /v1/allocate``,
``GET /v1/schedulers``, ``GET /metrics``, ``GET /healthz``, same JSON
bodies and error shapes — from a single event loop:

* Connections are ``asyncio.Protocol`` instances with a hand-rolled
  (request-sized, not general) HTTP/1.1 parser: no stream readers, no
  per-request task until a request actually needs the dispatcher.
* A byte-level L0 cache short-circuits *exact repeat* request bodies:
  the response bytes are replayed with a fresh ``latency_ms`` stamp
  without even parsing the JSON.  Decision-cache semantics are kept
  honest by :meth:`~repro.service.core.DecisionService.note_bytecache_hit`
  (the hit still counts in the aggregate cache and decision counters).
* Misses parse, canonicalize, and await
  :meth:`~repro.service.core.DecisionService.allocate_async` — the
  event loop feeds the same coalescing batcher the threaded front end
  uses, so concurrent distinct requests still batch onto the
  dispatcher pool.  Per-connection response order is preserved by an
  outbox that interleaves ready bytes with pending tasks.
* Multi-worker mode (``repro serve --async --workers N``) pre-forks:
  the parent binds the listening socket once (so ``port 0`` works and
  no ``SO_REUSEPORT`` support is assumed) and each child accepts from
  the shared socket on its own event loop with its own
  :class:`~repro.service.core.DecisionService`.

:class:`AsyncServerThread` runs the loop on a background thread for
tests and the in-process load harness.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import threading
from collections import deque
from time import perf_counter
from typing import Callable

from ..cache import LRUCache
from ..core.registry import entries
from ..types import ReproError
from .batcher import QueueFullError
from .core import DecisionService
from .dispatcher import RequestError
from .protocol import request_from_payload
from .server import MAX_BODY_BYTES, render_metrics_text

__all__ = ["AsyncDecisionServer", "AsyncServerThread", "serve_async"]

#: Refuse header blocks beyond this size (we only read two headers).
_MAX_HEADER_BYTES = 16 << 10

_JSON_CT = b"application/json; charset=utf-8"
_TEXT_CT = b"text/plain; version=0.0.4; charset=utf-8"

_STATUS_LINES = {
    200: b"200 OK",
    400: b"400 Bad Request",
    404: b"404 Not Found",
    413: b"413 Payload Too Large",
    500: b"500 Internal Server Error",
    503: b"503 Service Unavailable",
}


def _response(status: int, body: bytes, content_type: bytes = _JSON_CT,
              extra: bytes = b"") -> bytes:
    return (b"HTTP/1.1 " + _STATUS_LINES[status]
            + b"\r\nContent-Type: " + content_type
            + b"\r\nContent-Length: " + str(len(body)).encode()
            + b"\r\n" + extra + b"\r\n" + body)


def _error(status: int, message: str, extra: bytes = b"") -> bytes:
    return _response(status, json.dumps({"error": message}).encode(),
                     extra=extra)


_HEALTH = _response(200, b'{"status": "ok"}')


class _ByteCache:
    """L0 cache: exact request-body bytes -> replayable response prefix.

    A stored value is the serialized 200 response payload re-flagged
    as a cache hit (``cache_hit=True``, ``coalesced=False``,
    ``batch_size=0``) and truncated just after ``"latency_ms": `` —
    the hit path appends the fresh latency and the closing brace, so a
    replay costs a cache probe and one concatenation.

    Storage is the unified :class:`repro.cache.LRUCache` used in
    *FIFO* mode: gets go through counter-free :meth:`peek` (this tier
    fronts the decision cache, whose counters stay authoritative via
    ``note_bytecache_hit``), so recency is never refreshed and the
    LRU eviction order degenerates to insertion order — exactly the
    bounded-FIFO behavior this tier has always had.
    """

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._entries: LRUCache | None = (
            LRUCache(capacity) if capacity >= 1 else None)

    def get(self, body: bytes) -> bytes | None:
        return self._entries.peek(body) if self._entries is not None else None

    def put(self, body: bytes, payload: dict) -> None:
        entries_ = self._entries
        if entries_ is None or entries_.peek(body) is not None:
            return
        replay = dict(payload)
        replay["cache_hit"] = True
        replay["coalesced"] = False
        replay["batch_size"] = 0
        replay.pop("latency_ms", None)
        entries_.put(body, (json.dumps(replay)[:-1] + ', "latency_ms": ').encode())

    def __len__(self) -> int:
        return len(self._entries) if self._entries is not None else 0


class AsyncDecisionServer:
    """Route table + shared state for one event loop's connections."""

    def __init__(self, service: DecisionService, *, l0_capacity: int = 4096):
        self.service = service
        self.l0 = _ByteCache(l0_capacity)
        # The registry is process-static: render /v1/schedulers once.
        payload = [
            {
                "name": e.name,
                "randomized": e.randomized,
                "description": e.description,
                "provenance": e.provenance,
            }
            for e in entries()
        ]
        self._schedulers_response = _response(
            200, json.dumps({"schedulers": payload}).encode())

    def protocol_factory(self) -> "_HttpProtocol":
        return _HttpProtocol(self)

    # -- slow-path handler (one task per decision-cache-missing request) ---
    async def handle_allocate(self, body: bytes) -> bytes:
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            return _error(400, f"invalid JSON: {exc}")
        try:
            request = request_from_payload(payload)
            response = await self.service.allocate_async(request)
        except QueueFullError as exc:
            return _error(
                503, str(exc),
                extra=b"Retry-After: %.3f\r\n" % exc.retry_after_s)
        except RequestError as exc:
            return _response(400, json.dumps(exc.to_payload()).encode())
        except ReproError as exc:
            return _error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            return _error(500, f"internal error: {exc}")
        out = response.to_payload()
        self.l0.put(body, out)
        return _response(200, json.dumps(out).encode())

    def metrics_response(self, query: bytes) -> bytes:
        metrics = self.service.metrics()
        if b"format=json" in query:
            return _response(200, json.dumps(metrics).encode())
        text = render_metrics_text(metrics, self.service)
        return _response(200, text.encode(), content_type=_TEXT_CT)

    @property
    def schedulers_response(self) -> bytes:
        return self._schedulers_response


class _HttpProtocol(asyncio.Protocol):
    """One keep-alive connection: parse, route, write in request order.

    The outbox preserves pipelining order: ready responses (byte
    strings) and pending ones (tasks) queue together, and the flush
    walks the front of the queue writing everything that is ready.
    """

    __slots__ = ("owner", "service", "transport", "buf", "_outbox",
                 "_closing")

    def __init__(self, owner: AsyncDecisionServer):
        self.owner = owner
        self.service = owner.service
        self.transport: asyncio.Transport | None = None
        self.buf = bytearray()
        self._outbox: deque = deque()
        self._closing = False

    # -- transport callbacks ----------------------------------------------
    def connection_made(self, transport) -> None:
        self.transport = transport

    def connection_lost(self, exc) -> None:
        self.transport = None

    def data_received(self, data: bytes) -> None:
        buf = self.buf
        buf += data
        while not self._closing:
            header_end = buf.find(b"\r\n\r\n")
            if header_end < 0:
                if len(buf) > _MAX_HEADER_BYTES:
                    self._emit(_error(400, "header block too large"))
                    self._close_after_flush()
                return
            header = bytes(buf[:header_end])
            line_end = header.find(b"\r\n")
            request_line = header if line_end < 0 else header[:line_end]
            parts = request_line.split()
            if len(parts) < 2:
                self._emit(_error(400, "malformed request line"))
                self._close_after_flush()
                return
            method, target = parts[0], parts[1]
            lower = header.lower()
            length = 0
            idx = lower.find(b"content-length:")
            if idx >= 0:
                end = lower.find(b"\r\n", idx)
                field = lower[idx + 15:end if end >= 0 else len(lower)]
                try:
                    length = int(field)
                except ValueError:
                    self._emit(_error(400, "bad Content-Length"))
                    self._close_after_flush()
                    return
            if length > MAX_BODY_BYTES:
                self._emit(_error(413, f"body exceeds {MAX_BODY_BYTES} bytes"))
                self._close_after_flush()
                return
            total = header_end + 4 + length
            if len(buf) < total:
                return
            body = bytes(buf[header_end + 4:total])
            del buf[:total]
            self._route(method, target, body)
            if b"connection: close" in lower:
                self._close_after_flush()
                return

    # -- routing -----------------------------------------------------------
    def _route(self, method: bytes, target: bytes, body: bytes) -> None:
        path, _, query = target.partition(b"?")
        if method == b"POST":
            if path != b"/v1/allocate":
                self._emit(_error(404, f"no such endpoint: {path.decode()}"))
                return
            if not body:
                self._emit(_error(400, "empty request body"))
                return
            start = perf_counter()
            prefix = self.owner.l0.get(body)
            if prefix is not None:
                # L0 hit: replay the bytes, stamp this request's latency.
                latency_s = perf_counter() - start
                self.service.note_bytecache_hit(latency_s)
                out = prefix + b"%.6g}" % (latency_s * 1e3)
                self._emit(_response(200, out))
                return
            task = asyncio.ensure_future(self.owner.handle_allocate(body))
            self._outbox.append(task)
            task.add_done_callback(self._flush)
        elif method == b"GET":
            if path == b"/healthz":
                self._emit(_HEALTH)
            elif path == b"/v1/schedulers":
                self._emit(self.owner.schedulers_response)
            elif path == b"/metrics":
                self._emit(self.owner.metrics_response(query))
            else:
                self._emit(_error(404, f"no such endpoint: {path.decode()}"))
        else:
            self._emit(_error(404,
                              f"unsupported method: {method.decode()}"))

    # -- ordered write path ------------------------------------------------
    def _emit(self, response: bytes) -> None:
        if self._outbox:
            self._outbox.append(response)
        elif self.transport is not None:
            self.transport.write(response)

    def _flush(self, *_ignored) -> None:
        outbox = self._outbox
        transport = self.transport
        while outbox:
            item = outbox[0]
            if isinstance(item, (bytes, bytearray)):
                if transport is not None:
                    transport.write(item)
            elif item.done():
                if transport is not None:
                    transport.write(item.result())
            else:
                return
            outbox.popleft()
        if self._closing and transport is not None:
            transport.close()

    def _close_after_flush(self) -> None:
        self._closing = True
        if not self._outbox and self.transport is not None:
            self.transport.close()


# -- entry points ----------------------------------------------------------
async def _serve_on_socket(sock: socket.socket,
                           service: DecisionService) -> None:
    loop = asyncio.get_running_loop()
    server = AsyncDecisionServer(service)
    srv = await loop.create_server(server.protocol_factory, sock=sock)
    try:
        async with srv:
            await srv.serve_forever()
    finally:
        service.close()


def serve_async(host: str = "127.0.0.1", port: int = 8765,
                service_factory: Callable[[], DecisionService] | None = None,
                *, workers: int = 1, announce=None) -> None:
    """Blocking asyncio serve loop (the ``repro serve --async`` entry).

    The listening socket is bound once, *before* any fork, so ``port
    0`` reports a single real port and worker processes share one
    accept queue (the portable alternative to ``SO_REUSEPORT``).  Each
    worker builds its service after the fork — thread pools and event
    loops never cross a fork boundary.
    """
    factory = service_factory or DecisionService
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers}")
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(2048)
    bound_host, bound_port = sock.getsockname()[:2]
    if announce is not None:
        label = "worker" if workers == 1 else "workers"
        announce(f"repro decision service (async, {workers} {label}) "
                 f"listening on http://{bound_host}:{bound_port}")
    if workers == 1:
        try:
            asyncio.run(_serve_on_socket(sock, factory()))
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            sock.close()
        return
    pids = []
    for _ in range(workers):
        pid = os.fork()
        if pid == 0:  # child: serve until killed
            try:
                asyncio.run(_serve_on_socket(sock, factory()))
            except KeyboardInterrupt:
                pass
            finally:
                os._exit(0)
        pids.append(pid)
    sock.close()
    try:
        for pid in pids:
            os.waitpid(pid, 0)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        for pid in pids:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        for pid in pids:
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                pass


class AsyncServerThread:
    """An async server on a background thread (tests, in-process bench).

    Owns (and closes) its :class:`DecisionService` unless one is
    passed in.  ``url`` is ready as soon as the constructor returns.
    """

    def __init__(self, service: DecisionService | None = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service if service is not None else DecisionService()
        self._owns_service = service is None
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self.url = ""
        self._thread = threading.Thread(
            target=self._run, args=(host, port),
            name="repro-aserver", daemon=True)
        self._thread.start()
        self._started.wait(10.0)
        if self._startup_error is not None:
            raise self._startup_error
        if not self.url:
            raise ReproError("async server failed to start within 10s")

    def _run(self, host: str, port: int) -> None:
        loop = self._loop
        asyncio.set_event_loop(loop)
        server = AsyncDecisionServer(self.service)
        try:
            srv = loop.run_until_complete(
                loop.create_server(server.protocol_factory, host, port))
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        bound = srv.sockets[0].getsockname()[:2]
        self.url = f"http://{bound[0]}:{bound[1]}"
        self._started.set()
        try:
            loop.run_forever()
        finally:
            srv.close()
            loop.run_until_complete(srv.wait_closed())
            loop.close()

    def close(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(10.0)
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "AsyncServerThread":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
