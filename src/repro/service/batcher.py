"""Request batcher: coalesce concurrent requests into dispatch batches.

Under load, many HTTP handler threads hit the service at once.  The
batcher is the funnel between them and the dispatcher: each caller
enqueues ``(request, future)`` and blocks on the future; a single
collector thread drains the queue into batches — up to
``max_batch_size`` requests, waiting at most ``max_wait_s`` after the
first arrival for stragglers — and hands each batch to the dispatcher,
fanning the per-request results back out to the futures.

Two requests with the same fingerprint inside one batching window are
*coalesced*: the decision is computed once and resolves both futures
(the second caller's response is flagged ``coalesced``).  A lone
request on an idle service pays at most ``max_wait_s`` of extra
latency — the knob trades single-request latency for batch
throughput, exactly like the paper's co-scheduling trades a single
application's finish time for machine-level efficiency.

Queueing is bounded: with ``max_queue_depth`` set, a submit that finds
that many requests already waiting raises :class:`QueueFullError`
(carrying a retry hint) instead of growing the queue without limit —
the HTTP front ends translate it into ``503`` + ``Retry-After`` so
overload sheds load at the edge instead of collecting latency debt.

The collector thread is a daemon and additionally wakes on shutdown;
``close()`` drains cleanly and cancels what it cannot serve.
"""

from __future__ import annotations

import inspect
import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from time import monotonic
from typing import Callable, Sequence

from ..types import ModelError
from .protocol import AllocationDecision, AllocationRequest

__all__ = ["RequestBatcher", "BatchItem", "BatcherStats", "QueueFullError"]


class QueueFullError(ModelError):
    """The batcher queue is at ``max_queue_depth`` — shed this request.

    ``retry_after_s`` is the server's backoff hint: roughly the time
    the batcher needs to drain one dispatch window.
    """

    def __init__(self, depth: int, max_depth: int, retry_after_s: float):
        super().__init__(
            f"batcher queue full ({depth} waiting, limit {max_depth}); "
            f"retry in {retry_after_s:.3g}s")
        self.depth = depth
        self.max_depth = max_depth
        self.retry_after_s = retry_after_s

#: Sentinel enqueued by close() to wake the collector immediately.
_SHUTDOWN = object()


@dataclass
class BatchItem:
    """One enqueued request and where its answer goes.

    ``future`` resolves to ``(decision, batch_size, coalesced)`` so the
    service layer can stamp serving metadata onto the response.
    """

    request: AllocationRequest
    key: str
    future: "Future[tuple[AllocationDecision, int, bool]]" = field(
        default_factory=Future)


class BatcherStats:
    """Lifetime batching counters (snapshot, no lock needed to read).

    ``queue_depth`` is the one instantaneous gauge in the set: requests
    accepted but not yet handed to the dispatcher at snapshot time.
    """

    __slots__ = ("batches", "requests", "coalesced", "max_batch_seen",
                 "queue_depth", "rejected")

    def __init__(self, batches: int, requests: int, coalesced: int,
                 max_batch_seen: int, queue_depth: int = 0, rejected: int = 0):
        self.batches = batches
        self.requests = requests
        self.coalesced = coalesced
        self.max_batch_seen = max_batch_seen
        self.queue_depth = queue_depth
        self.rejected = rejected

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "batches": self.batches,
            "requests": self.requests,
            "coalesced": self.coalesced,
            "max_batch_seen": self.max_batch_seen,
            "mean_batch_size": self.mean_batch_size,
            "queue_depth": self.queue_depth,
            "rejected": self.rejected,
        }


class RequestBatcher:
    """Queue + collector thread turning request streams into batches.

    Parameters
    ----------
    evaluate : callable
        Batch evaluator — ``evaluate(requests)`` returning one
        decision (or exception) per request, positionally.  Normally
        :meth:`repro.service.dispatcher.Dispatcher.evaluate`.
    max_batch_size : int
        Hard cap on requests per dispatched batch.
    max_wait_s : float
        How long the collector lingers after the first request of a
        window, hoping to fill the batch.  0 disables lingering
        (every request dispatches immediately with whatever else is
        already queued).
    max_queue_depth : int, optional
        Backpressure limit: a submit that finds this many requests
        already accepted-but-undispatched raises
        :class:`QueueFullError`.  None (the default) keeps the
        historical unbounded queue.
    """

    def __init__(
        self,
        evaluate: Callable[[Sequence[AllocationRequest]],
                           "list[AllocationDecision | Exception]"],
        *,
        max_batch_size: int = 16,
        max_wait_s: float = 0.002,
        max_queue_depth: int | None = None,
    ):
        if max_batch_size < 1:
            raise ModelError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_s < 0:
            raise ModelError(f"max_wait_s must be >= 0, got {max_wait_s}")
        if max_queue_depth is not None and max_queue_depth < 0:
            raise ModelError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}")
        self.evaluate = evaluate
        # Evaluators that accept a ``keys`` argument get the request
        # fingerprints too, so per-request failures can carry them.
        try:
            self._evaluate_wants_keys = (
                "keys" in inspect.signature(evaluate).parameters)
        except (TypeError, ValueError):  # builtins, odd callables
            self._evaluate_wants_keys = False
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self.max_queue_depth = (
            None if max_queue_depth is None else int(max_queue_depth))
        self._queue: "queue.Queue[BatchItem | object]" = queue.Queue()
        self._closed = False
        self._lock = threading.Lock()
        self._batches = 0
        self._requests = 0
        self._coalesced = 0
        self._max_batch_seen = 0
        self._depth = 0
        self._rejected = 0
        self._collector = threading.Thread(
            target=self._run, name="repro-batcher", daemon=True)
        self._collector.start()

    # -- caller side -------------------------------------------------------
    def submit(self, request: AllocationRequest, key: str,
               ) -> "Future[tuple[AllocationDecision, int, bool]]":
        """Enqueue *request*; returns the future carrying its decision.

        Raises :class:`QueueFullError` when the backpressure limit is
        reached and :class:`~repro.types.ModelError` after close().
        """
        item = BatchItem(request=request, key=key)
        # The closed-check and the put must be atomic against close():
        # otherwise an item can slip in after the collector's final
        # drain and its caller blocks on the future forever.
        with self._lock:
            if self._closed:
                raise ModelError("batcher is closed")
            if (self.max_queue_depth is not None
                    and self._depth >= self.max_queue_depth):
                self._rejected += 1
                # Hint: one linger window plus a dispatch round.
                raise QueueFullError(self._depth, self.max_queue_depth,
                                     retry_after_s=max(0.05, 2 * self.max_wait_s))
            self._depth += 1
            self._queue.put(item)
        return item.future

    # -- collector side ----------------------------------------------------
    def _collect_batch(self) -> list[BatchItem] | None:
        """Block for the first item, linger for stragglers; None on shutdown."""
        first = self._queue.get()
        if first is _SHUTDOWN:
            return None
        batch = [first]
        deadline = monotonic() + self.max_wait_s
        while len(batch) < self.max_batch_size:
            remaining = deadline - monotonic()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                # Serve what we have; the next _collect_batch call sees
                # a re-posted sentinel and stops.
                self._queue.put(_SHUTDOWN)
                break
            batch.append(item)
        return batch

    def _run(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                break
            self._serve(batch)
        # Shutdown: fail whatever is still queued with a clean error
        # (cancel() would surface as CancelledError, which callers
        # would report as an internal failure rather than a shutdown).
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if isinstance(item, BatchItem):
                item.future.set_exception(ModelError("batcher is closed"))

    def _serve(self, batch: list[BatchItem]) -> None:
        """Dispatch one batch: dedup by key, evaluate, fan back out."""
        firsts: dict[str, int] = {}
        unique: list[AllocationRequest] = []
        unique_keys: list[str] = []
        for item in batch:
            if item.key not in firsts:
                firsts[item.key] = len(unique)
                unique.append(item.request)
                unique_keys.append(item.key)
        try:
            if self._evaluate_wants_keys:
                results = self.evaluate(unique, keys=unique_keys)
            else:
                results = self.evaluate(unique)
            if len(results) != len(unique):  # defensive: broken evaluator
                raise ModelError(
                    f"evaluator returned {len(results)} results for "
                    f"{len(unique)} requests")
        except Exception as exc:  # total failure: everyone hears about it
            results = [exc] * len(unique)
        with self._lock:
            self._batches += 1
            self._requests += len(batch)
            self._coalesced += len(batch) - len(unique)
            self._max_batch_seen = max(self._max_batch_seen, len(batch))
            self._depth -= len(batch)
        seen: set[str] = set()
        for item in batch:
            result = results[firsts[item.key]]
            coalesced = item.key in seen
            seen.add(item.key)
            if isinstance(result, Exception):
                item.future.set_exception(result)
            else:
                item.future.set_result((result, len(unique), coalesced))

    # -- lifecycle ---------------------------------------------------------
    def stats(self) -> BatcherStats:
        with self._lock:
            return BatcherStats(self._batches, self._requests,
                                self._coalesced, self._max_batch_seen,
                                queue_depth=self._depth,
                                rejected=self._rejected)

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting work, wake the collector, join it."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_SHUTDOWN)
        self._collector.join(timeout=timeout)

    def __enter__(self) -> "RequestBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
