"""Decision-cache names for the serving layer (backed by repro.cache).

The decision service answers repeated questions from memory: the
cache maps a request fingerprint (see :mod:`repro.service.protocol`)
to the computed :class:`~repro.service.protocol.AllocationDecision`.
Decisions are immutable, so a hit can be handed to any number of
concurrent callers without copying.

The implementations live in the unified cache subsystem
(:mod:`repro.cache`); this module keeps the serving-layer names
stable:

:class:`DecisionCache`
    The single-lock strict-LRU backend
    (:class:`repro.cache.LRUCache`).

:class:`ShardedDecisionCache`
    The high-QPS fingerprint-sharded CLOCK backend
    (:class:`repro.cache.ShardedClockCache`).  Shard assignment is
    derived from the SHA-256 fingerprint bits
    (:func:`repro.cache.stable_shard_index`), so a key maps to the
    same shard in every process and across restarts — the consistent
    assignment a shard map shared between pre-forked workers requires.

Both expose identical counters (:class:`repro.cache.CacheStats`):
hits + misses always equals the exact number of lookups, and the
``/metrics`` keys are the same whichever backend serves.  The service
core composes either backend with the content-addressed disk tier
through :class:`repro.cache.TieredCache` for cross-restart warm
starts.
"""

from __future__ import annotations

from ..cache.memory import LRUCache, ShardedClockCache, stable_shard_index
from ..cache.stats import CacheStats, ShardedCacheStats

__all__ = ["DecisionCache", "ShardedDecisionCache", "CacheStats",
           "ShardedCacheStats", "stable_shard_index"]

#: The original single-lock strict-LRU decision cache.
DecisionCache = LRUCache

#: The fingerprint-sharded per-shard-lock decision cache.
ShardedDecisionCache = ShardedClockCache
