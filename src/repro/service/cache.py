"""In-memory LRU decision cache with serving counters.

The decision service answers repeated questions from memory: the
cache maps a request fingerprint (see
:mod:`repro.service.protocol`) to the computed
:class:`~repro.service.protocol.AllocationDecision`.  Decisions are
immutable, so a hit can be handed to any number of concurrent callers
without copying.

Unlike the on-disk experiment result cache
(:mod:`repro.experiments.cache`), which holds whole figure grids and
persists across processes, this cache is a bounded, process-local
serving structure: capacity-capped, least-recently-used eviction, and
hit/miss/eviction counters exported through ``/metrics``.  All
operations are O(1) and thread-safe — HTTP handler threads and the
dispatch pool share one instance.

Two implementations share that contract:

:class:`DecisionCache`
    The original single-lock strict-LRU map.  Every operation — hits
    included — serializes on one lock, which is fine for a demo and a
    bottleneck under concurrency.

:class:`ShardedDecisionCache`
    The high-QPS variant: the SHA-256 request fingerprint hashes onto
    one of K independent shards, each with its own lock and its own
    second-chance (CLOCK) eviction ring, so concurrent cache traffic
    stops serializing on a single lock.  Hits touch only a reference
    flag (no reordering), and :meth:`~ShardedDecisionCache.get_many`
    probes a whole key batch lock-free — the batch producers (the
    async front end, the request batcher, benchmarks) amortize counter
    updates to one locked tally per burst.  Aggregate hit/miss/
    eviction counters keep the exact meaning (and metric keys) of the
    single-lock cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Optional, Sequence, TypeVar

from ..types import ModelError

__all__ = ["DecisionCache", "ShardedDecisionCache", "CacheStats",
           "ShardedCacheStats"]

V = TypeVar("V")

#: Smallest per-shard capacity worth having: below this the shard
#: count is rounded down (a 2-entry cache gets 1 shard, not 8).
_MIN_SHARD_CAPACITY = 16


class CacheStats:
    """A snapshot of the cache counters (plain attributes, no lock)."""

    __slots__ = ("hits", "misses", "evictions", "size", "capacity")

    def __init__(self, hits: int, misses: int, evictions: int,
                 size: int, capacity: int):
        self.hits = hits
        self.misses = misses
        self.evictions = evictions
        self.size = size
        self.capacity = capacity

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before any traffic."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"evictions={self.evictions}, size={self.size}/{self.capacity})")


class DecisionCache(Generic[V]):
    """Thread-safe LRU map from request fingerprint to decision.

    Parameters
    ----------
    capacity : int
        Maximum number of retained decisions (>= 1).  Inserting into a
        full cache evicts the least-recently-*used* entry — a lookup
        hit refreshes recency, an insert counts as a use.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ModelError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[str, V] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> Optional[V]:
        """Return the cached decision or None; counts a hit or a miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: str) -> Optional[V]:
        """Like :meth:`get` but without touching recency or counters."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, value: V) -> None:
        """Insert (or refresh) *key*, evicting the LRU entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = value

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are lifetime totals)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def count_hit(self) -> None:
        """Record a hit served on the cache's behalf by a front cache.

        The async front end keeps an L0 byte-level response cache; a
        repeat absorbed there is still a decision served from memory,
        so it counts here to keep the aggregate hit/miss accounting
        meaningful across front ends.
        """
        with self._lock:
            self._hits += 1

    def stats(self) -> CacheStats:
        """Consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )


class ShardedCacheStats(CacheStats):
    """Aggregate :class:`CacheStats` plus the shard count."""

    __slots__ = ("shards",)

    def __init__(self, hits: int, misses: int, evictions: int,
                 size: int, capacity: int, shards: int):
        super().__init__(hits, misses, evictions, size, capacity)
        self.shards = shards

    def as_dict(self) -> dict[str, float]:
        out = super().as_dict()
        out["shards"] = self.shards
        return out


class ShardedDecisionCache(Generic[V]):
    """Fingerprint-sharded decision cache: per-shard locks, batch probes.

    Keys (SHA-256 hex fingerprints) hash onto one of ``shards``
    independent shards — fixed at construction, so plain uniform
    hashing over the fingerprint *is* the consistent assignment: a key
    maps to the same shard for the cache's whole lifetime and shards
    never move.  Each shard owns a lock, a dict, and a second-chance
    (CLOCK) eviction ring: a hit sets the entry's reference flag
    instead of reordering a linked list, so the hit path mutates
    nothing another thread must observe in order.

    Concurrency contract:

    * :meth:`get` and :meth:`put` take only their shard's lock —
      traffic on distinct shards never serializes.
    * :meth:`get_many` probes a whole key batch *lock-free* (CPython
      dict reads are safe against concurrent locked writers) and then
      folds the batch's hit/miss tally into the counters under one
      lock — one acquisition per burst instead of one per key.
    * All counters are updated under a lock (no benign-race drops):
      hits + misses always equals the exact number of lookups.

    Eviction is per-shard second-chance, which approximates LRU: a
    referenced entry gets one trip around the ring before it can be
    evicted.  Counter *semantics* (hits, misses, evictions, size,
    capacity, hit_rate) are identical to :class:`DecisionCache`.
    """

    def __init__(self, capacity: int = 1024, shards: int = 8):
        if capacity < 1:
            raise ModelError(f"cache capacity must be >= 1, got {capacity}")
        if shards < 1:
            raise ModelError(f"shard count must be >= 1, got {shards}")
        self.capacity = int(capacity)
        # Power-of-two shard count for mask-based selection.  Small
        # caches round the shard count down so every shard keeps a
        # useful capacity: sharding exists to split lock traffic, and
        # a near-empty shard only distorts eviction behavior (exact
        # eviction counts stay deterministic on a single shard).
        nshards = 1
        while nshards < shards:
            nshards <<= 1
        while nshards > 1 and self.capacity < nshards * _MIN_SHARD_CAPACITY:
            nshards >>= 1
        self.shards = nshards
        self._mask = self.shards - 1
        # Per-shard capacities sum exactly to the configured capacity.
        base, extra = divmod(self.capacity, self.shards)
        self._caps = [base + (1 if i < extra else 0)
                      for i in range(self.shards)]
        self._dicts: list[dict[str, list]] = [dict() for _ in range(self.shards)]
        self._locks = [threading.Lock() for _ in range(self.shards)]
        self._hits = [0] * self.shards
        self._misses = [0] * self.shards
        self._evictions = [0] * self.shards
        # Batch-probe tallies (get_many) fold in here, one lock per burst.
        self._agg_lock = threading.Lock()
        self._agg_hits = 0
        self._agg_misses = 0

    # -- single-key operations ---------------------------------------------
    def get(self, key: str) -> Optional[V]:
        """Return the cached decision or None; counts a hit or a miss."""
        i = hash(key) & self._mask
        with self._locks[i]:
            entry = self._dicts[i].get(key)
            if entry is None:
                self._misses[i] += 1
                return None
            entry[1] = True
            self._hits[i] += 1
            return entry[0]

    def get_many(self, keys: Sequence[str]) -> list[Optional[V]]:
        """Probe a key batch lock-free; one counter tally per call.

        This is the bulk path batch producers use: per key it is a
        dict probe plus a reference-flag store, with no lock at all;
        the exact hit/miss counts fold into the aggregate counters
        under a single lock acquisition at the end.
        """
        dicts = self._dicts
        mask = self._mask
        out: list[Optional[V]] = []
        append = out.append
        misses = 0
        for key in keys:
            entry = dicts[hash(key) & mask].get(key)
            if entry is None:
                misses += 1
                append(None)
            else:
                entry[1] = True
                append(entry[0])
        with self._agg_lock:
            self._agg_hits += len(out) - misses
            self._agg_misses += misses
        return out

    def peek(self, key: str) -> Optional[V]:
        """Like :meth:`get` but without touching recency or counters."""
        entry = self._dicts[hash(key) & self._mask].get(key)
        return entry[0] if entry is not None else None

    def put(self, key: str, value: V) -> None:
        """Insert (or refresh) *key*; second-chance eviction when full."""
        i = hash(key) & self._mask
        d = self._dicts[i]
        with self._locks[i]:
            entry = d.get(key)
            if entry is not None:
                entry[0] = value
                entry[1] = True
                return
            cap = self._caps[i]
            scans = 0
            while len(d) >= cap:
                # CLOCK hand: the oldest entry gets a second chance if
                # it was referenced since its last trip; the scan bound
                # guarantees an eviction even when everything is hot.
                old_key = next(iter(d))
                old = d.pop(old_key)
                if old[1] and scans <= len(d):
                    old[1] = False
                    d[old_key] = old
                    scans += 1
                else:
                    self._evictions[i] += 1
            d[key] = [value, False]

    def count_hit(self) -> None:
        """Record a front-cache (L0) hit in the aggregate counters."""
        with self._agg_lock:
            self._agg_hits += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are lifetime totals)."""
        for i in range(self.shards):
            with self._locks[i]:
                self._dicts[i].clear()

    def __len__(self) -> int:
        return sum(len(d) for d in self._dicts)

    def __contains__(self, key: str) -> bool:
        return key in self._dicts[hash(key) & self._mask]

    def stats(self) -> ShardedCacheStats:
        """Aggregate counter snapshot across every shard."""
        with self._agg_lock:
            hits = self._agg_hits
            misses = self._agg_misses
        return ShardedCacheStats(
            hits=hits + sum(self._hits),
            misses=misses + sum(self._misses),
            evictions=sum(self._evictions),
            size=len(self),
            capacity=self.capacity,
            shards=self.shards,
        )
