"""In-memory LRU decision cache with serving counters.

The decision service answers repeated questions from memory: the
cache maps a request fingerprint (see
:mod:`repro.service.protocol`) to the computed
:class:`~repro.service.protocol.AllocationDecision`.  Decisions are
immutable, so a hit can be handed to any number of concurrent callers
without copying.

Unlike the on-disk experiment result cache
(:mod:`repro.experiments.cache`), which holds whole figure grids and
persists across processes, this cache is a bounded, process-local
serving structure: capacity-capped, least-recently-used eviction, and
hit/miss/eviction counters exported through ``/metrics``.  All
operations are O(1) and thread-safe — HTTP handler threads and the
dispatch pool share one instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Optional, TypeVar

from ..types import ModelError

__all__ = ["DecisionCache", "CacheStats"]

V = TypeVar("V")


class CacheStats:
    """A snapshot of the cache counters (plain attributes, no lock)."""

    __slots__ = ("hits", "misses", "evictions", "size", "capacity")

    def __init__(self, hits: int, misses: int, evictions: int,
                 size: int, capacity: int):
        self.hits = hits
        self.misses = misses
        self.evictions = evictions
        self.size = size
        self.capacity = capacity

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before any traffic."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"evictions={self.evictions}, size={self.size}/{self.capacity})")


class DecisionCache(Generic[V]):
    """Thread-safe LRU map from request fingerprint to decision.

    Parameters
    ----------
    capacity : int
        Maximum number of retained decisions (>= 1).  Inserting into a
        full cache evicts the least-recently-*used* entry — a lookup
        hit refreshes recency, an insert counts as a use.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ModelError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[str, V] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> Optional[V]:
        """Return the cached decision or None; counts a hit or a miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: str) -> Optional[V]:
        """Like :meth:`get` but without touching recency or counters."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, value: V) -> None:
        """Insert (or refresh) *key*, evicting the LRU entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = value

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are lifetime totals)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> CacheStats:
        """Consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )
