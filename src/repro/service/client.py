"""Thin stdlib client for the decision service.

A :class:`ServiceClient` wraps the three endpoints with plain
``urllib`` — no third-party HTTP stack — and raises
:class:`ServiceError` carrying the server's JSON ``error`` message on
non-2xx answers.  ``allocate`` accepts either a ready-made
:class:`~repro.service.protocol.AllocationRequest` or the raw payload
pieces (a workload, a platform spec, a scheduler name), so callers on
the library side never hand-build JSON::

    from repro.service import ServiceClient
    client = ServiceClient("http://127.0.0.1:8765")
    reply = client.allocate(workload, "taihulight", scheduler="dominant-minratio")
    print(reply["decision"]["makespan"], reply["cache_hit"])
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Iterable, Mapping

from ..core.application import Application, Workload
from ..core.platform import Platform
from ..types import ReproError
from .protocol import AllocationRequest, _app_payload, _platform_payload

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """A non-2xx answer from the service (carries the HTTP status).

    ``request_id`` is the failing request's fingerprint when the
    server included one (per-request evaluation failures do);
    ``retry_after_s`` carries the server's 503 backoff hint.
    """

    def __init__(self, status: int, message: str,
                 request_id: str | None = None,
                 retry_after_s: float | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.request_id = request_id
        self.retry_after_s = retry_after_s


class ServiceClient:
    """Minimal blocking client for one service base URL.

    Parameters
    ----------
    base_url : str
        E.g. ``"http://127.0.0.1:8765"`` (trailing slash tolerated).
    timeout : float
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------------
    def _call(self, path: str, body: bytes | None = None) -> Any:
        req = urllib.request.Request(
            self.base_url + path,
            data=body,
            headers={"Content-Type": "application/json"} if body else {},
            method="POST" if body is not None else "GET",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            request_id = None
            try:
                error_payload = json.loads(exc.read())
                message = error_payload.get("error", exc.reason)
                request_id = error_payload.get("request_id")
            except Exception:
                message = str(exc.reason)
            retry_after = exc.headers.get("Retry-After") if exc.headers else None
            try:
                retry_after_s = float(retry_after) if retry_after else None
            except ValueError:
                retry_after_s = None
            raise ServiceError(exc.code, message, request_id=request_id,
                               retry_after_s=retry_after_s) from None
        except urllib.error.URLError as exc:
            raise ReproError(
                f"cannot reach decision service at {self.base_url}: "
                f"{exc.reason}") from None

    # -- endpoints ---------------------------------------------------------
    def allocate(
        self,
        applications: AllocationRequest | Workload | Iterable[Application] | Iterable[Mapping],
        platform: Platform | Mapping | str | None = None,
        *,
        scheduler: str = "dominant-minratio",
        seed: int | None = None,
    ) -> dict[str, Any]:
        """POST one allocation request; returns the decoded response.

        Passing an :class:`AllocationRequest` uses it verbatim (the
        other arguments must be left at their defaults); otherwise the
        payload is assembled from the pieces, with application objects
        serialized field-for-field and mappings passed through.
        """
        if isinstance(applications, AllocationRequest):
            payload = applications.canonical_payload()
        else:
            apps: list[Mapping[str, Any]] = [
                _app_payload(a) if isinstance(a, Application) else dict(a)
                for a in applications
            ]
            plat: Any = platform if platform is not None else "taihulight"
            if isinstance(plat, Platform):
                plat = _platform_payload(plat)
            payload = {"applications": apps, "platform": plat,
                       "scheduler": scheduler}
            if seed is not None:
                payload["seed"] = seed
        return self._call("/v1/allocate", json.dumps(payload).encode())

    def schedulers(self) -> list[dict[str, Any]]:
        """GET the scheduler registry (name-sorted, with metadata)."""
        return self._call("/v1/schedulers")["schedulers"]

    def metrics(self) -> dict[str, float]:
        """GET the serving counters (as the raw JSON mapping)."""
        return self._call("/metrics?format=json")

    def healthy(self) -> bool:
        """True when ``/healthz`` answers ok."""
        try:
            return self._call("/healthz").get("status") == "ok"
        except ReproError:
            return False
