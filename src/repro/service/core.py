"""The transport-agnostic decision service.

:class:`DecisionService` is the object every front end (the HTTP
server, the CLI, tests, benchmarks) talks to.  One call —
:meth:`~DecisionService.allocate` — runs the full serving path:

1. canonicalize + fingerprint the request (:mod:`.protocol`),
2. answer from the tiered decision cache on a repeat — memory first,
   then (when a cache directory is configured) the persistent disk
   tier (:mod:`repro.cache`),
3. otherwise enqueue into the coalescing batcher (:mod:`.batcher`),
   which dispatches batches onto the worker pool (:mod:`.dispatcher`),
4. store the fresh decision and stamp serving metadata (latency,
   batch size, hit/coalesced flags) onto the response.

The service also aggregates every layer's counters into one
``metrics()`` mapping — the single source for ``/metrics``.
"""

from __future__ import annotations

import asyncio
import threading
from time import perf_counter
from typing import Mapping

from ..cache import (
    DecisionDiskTier,
    TieredCache,
    make_memory_backend,
    resolve_cache_dir,
)
from ..types import ModelError
from .batcher import RequestBatcher
from .dispatcher import Dispatcher
from .metrics import Gauge, LatencyHistogram
from .protocol import (
    AllocationDecision,
    AllocationRequest,
    AllocationResponse,
    request_from_payload,
)

__all__ = ["DecisionService"]


class DecisionService:
    """Batched, cache-backed co-scheduling decision service.

    Parameters
    ----------
    cache_capacity : int
        Decision-cache size (entries).
    cache_shards : int
        Shard count for the decision cache.  The default (8) uses the
        fingerprint-sharded :class:`~repro.service.cache.ShardedDecisionCache`;
        ``1`` selects the original single-lock strict-LRU
        :class:`~repro.service.cache.DecisionCache`.
    max_batch_size : int
        Largest batch the batcher dispatches at once.
    max_wait_ms : float
        Linger time for filling a batch, in milliseconds (the HTTP
        and CLI layers expose milliseconds; internals use seconds).
    max_queue_depth : int, optional
        Batcher backpressure limit — submissions beyond this many
        queued requests raise
        :class:`~repro.service.batcher.QueueFullError` (the HTTP
        layers answer 503 + ``Retry-After``).  None = unbounded.
    workers : int, optional
        Dispatcher pool size (default: engine's worker resolution).
    cache_dir : str | Path, optional
        Directory for the persistent decision tier.  When set (or when
        ``REPRO_CACHE_DIR`` is in the environment), every fresh
        decision is also written through to disk and a new process
        answers previously-seen requests as cache hits from its very
        first call — a cross-restart warm start.  None with no env var
        keeps the cache memory-only (the historical behavior, with
        bit-identical counters).
    """

    def __init__(
        self,
        *,
        cache_capacity: int = 1024,
        cache_shards: int = 8,
        max_batch_size: int = 16,
        max_wait_ms: float = 2.0,
        max_queue_depth: int | None = None,
        workers: int | None = None,
        cache_dir=None,
    ):
        if max_wait_ms < 0:
            raise ModelError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        disk_dir = resolve_cache_dir(cache_dir)
        self.cache = TieredCache(
            make_memory_backend(cache_capacity, shards=cache_shards),
            disk=DecisionDiskTier(disk_dir) if disk_dir is not None else None,
            encode=AllocationDecision.to_payload,
            decode=AllocationDecision.from_payload,
        )
        self.dispatcher = Dispatcher(workers=workers)
        self.batcher = RequestBatcher(
            self.dispatcher.evaluate,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_ms / 1000.0,
            max_queue_depth=max_queue_depth,
        )
        self.latency = LatencyHistogram()
        self.inflight = Gauge()
        self._lock = threading.Lock()
        self._decisions = 0
        self._errors = 0
        self._latency_total_s = 0.0

    # -- serving -----------------------------------------------------------
    def allocate(self, request: AllocationRequest) -> AllocationResponse:
        """Serve one request end to end (blocking)."""
        start = perf_counter()
        self.inflight.inc()
        try:
            try:
                key = request.fingerprint()
            except Exception:
                with self._lock:
                    self._errors += 1
                raise
            cached = self.cache.get(key)
            if cached is not None:
                return self._respond(key, cached, start, cache_hit=True,
                                     coalesced=False, batch_size=0)
            try:
                decision, batch_size, coalesced = self.batcher.submit(
                    request, key).result()
            except Exception:
                with self._lock:
                    self._errors += 1
                raise
            self.cache.put(key, decision)
            return self._respond(key, decision, start,
                                 cache_hit=False, coalesced=coalesced,
                                 batch_size=batch_size)
        finally:
            self.inflight.dec()

    async def allocate_async(self, request: AllocationRequest,
                             ) -> AllocationResponse:
        """Serve one request from an event loop (the async front end).

        The fingerprint and the cache probe run inline (they are
        sub-millisecond); only the batcher future is awaited, so the
        event loop keeps accepting connections while the dispatcher
        computes.
        """
        start = perf_counter()
        self.inflight.inc()
        try:
            try:
                key = request.fingerprint()
            except Exception:
                with self._lock:
                    self._errors += 1
                raise
            cached = self.cache.get(key)
            if cached is not None:
                return self._respond(key, cached, start, cache_hit=True,
                                     coalesced=False, batch_size=0)
            try:
                future = self.batcher.submit(request, key)
                decision, batch_size, coalesced = await asyncio.wrap_future(
                    future)
            except Exception:
                with self._lock:
                    self._errors += 1
                raise
            self.cache.put(key, decision)
            return self._respond(key, decision, start,
                                 cache_hit=False, coalesced=coalesced,
                                 batch_size=batch_size)
        finally:
            self.inflight.dec()

    def allocate_payload(self, payload: Mapping) -> AllocationResponse:
        """Decode a wire payload and serve it (the HTTP/CLI entry point)."""
        return self.allocate(request_from_payload(payload))

    def note_bytecache_hit(self, latency_s: float) -> None:
        """Account a decision served by a front end's L0 byte cache.

        The async server short-circuits byte-identical repeat bodies
        before they are even parsed; the decision still came from
        memory on this service's behalf, so the aggregate counters
        (decisions, cache hits, latency) must include it.
        """
        self.cache.count_hit()
        self.latency.observe(latency_s)
        with self._lock:
            self._decisions += 1
            self._latency_total_s += latency_s

    def _respond(self, key: str, decision: AllocationDecision, start: float,
                 *, cache_hit: bool, coalesced: bool, batch_size: int,
                 ) -> AllocationResponse:
        latency_s = perf_counter() - start
        self.latency.observe(latency_s)
        with self._lock:
            self._decisions += 1
            self._latency_total_s += latency_s
        return AllocationResponse(
            request_id=key,
            decision=decision,
            cache_hit=cache_hit,
            coalesced=coalesced,
            batch_size=batch_size,
            latency_ms=latency_s * 1000.0,
        )

    # -- introspection -----------------------------------------------------
    def metrics(self) -> dict[str, float]:
        """Flat counter mapping across all serving layers.

        Keys are stable and dot-namespaced (``decisions.total``,
        ``decision_cache.hits``, ``batcher.batches`` ...); the HTTP
        layer renders them in Prometheus text form.
        """
        with self._lock:
            out: dict[str, float] = {
                "decisions.total": self._decisions,
                "decisions.errors": self._errors,
                "decisions.latency_seconds_total": self._latency_total_s,
            }
        out["decisions.inflight"] = self.inflight.value
        for name, value in self.latency.as_dict().items():
            out[f"latency.{name}"] = value
        for name, value in self.cache.stats().as_dict().items():
            out[f"decision_cache.{name}"] = value
        for name, value in self.batcher.stats().as_dict().items():
            out[f"batcher.{name}"] = value
        out["dispatcher.workers"] = self.dispatcher.workers
        out["dispatcher.inflight"] = self.dispatcher.inflight.value
        return out

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Shut down the batcher and the worker pool."""
        self.batcher.close()
        self.dispatcher.close()

    def __enter__(self) -> "DecisionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
