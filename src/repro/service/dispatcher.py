"""Decision computation: evaluate allocation requests on a worker pool.

This is the service's bridge to the scheduling machinery built in the
earlier layers: a request names a strategy in the scheduler registry
(:mod:`repro.core.registry`), the dispatcher resolves the
:class:`~repro.core.registry.SchedulerEntry`, runs it on the request's
workload and platform, and packages the resulting schedule's
``(procs, cache, times)`` into an immutable
:class:`~repro.service.protocol.AllocationDecision`.

Batches are evaluated on a shared :class:`ThreadPoolExecutor`.  The
schedulers are numpy-heavy and release the GIL for most of their
runtime, so threads capture most of the available parallelism without
the fork/pickling constraints of the experiment engine's process
backend — and the pool size honors the same ``REPRO_WORKERS``
environment knob through the engine's
:func:`~repro.experiments.engine.resolve_workers`.  Deduplication is
the batcher's job (it coalesces identical fingerprints before
dispatch), so a batch reaching :meth:`Dispatcher.evaluate` contains
only distinct requests and the dispatcher spends no time re-hashing
them on the latency-bound path.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from ..core.registry import get_entry
from ..experiments.engine import resolve_workers
from ..types import ReproError
from .metrics import Gauge
from .protocol import AllocationDecision, AllocationRequest

__all__ = ["compute_decision", "Dispatcher", "RequestError"]

#: Cap on the default pool size — decision batches are small and
#: latency-bound; drowning a small batch in threads helps nothing.
_MAX_DEFAULT_WORKERS = 8


class RequestError(ReproError):
    """A per-request evaluation failure, tagged with its fingerprint.

    Wraps the underlying :class:`~repro.types.ReproError` so the HTTP
    layers can put *which* request failed (``request_id``) and on
    *which* scheduler into the error payload instead of a bare repr.
    Non-Repro exceptions (genuine bugs) are never wrapped — they must
    keep surfacing as internal errors (500), not client errors (400).
    """

    def __init__(self, cause: ReproError, request_id: str, scheduler: str):
        super().__init__(str(cause))
        self.__cause__ = cause
        self.request_id = request_id
        self.scheduler = scheduler

    def to_payload(self) -> dict:
        return {
            "error": str(self),
            "request_id": self.request_id,
            "scheduler": self.scheduler,
        }


def _decision_from_schedule(request: AllocationRequest, name: str,
                            schedule) -> AllocationDecision:
    """Package a computed schedule as the request's decision."""
    times = schedule.times()
    procs = getattr(schedule, "procs", np.full(times.size, request.platform.p))
    cache = getattr(schedule, "cache", np.ones(times.size))
    return AllocationDecision(
        names=request.workload().names,
        procs=tuple(float(p) for p in procs),
        cache=tuple(float(x) for x in cache),
        times=tuple(float(t) for t in times),
        makespan=float(schedule.makespan()),
        scheduler=name,
    )


def _request_rng(request: AllocationRequest) -> np.random.Generator | None:
    seed = request.effective_seed()
    return np.random.default_rng(seed) if seed is not None else None


def compute_decision(request: AllocationRequest) -> AllocationDecision:
    """Evaluate one request: run the named scheduler, package the answer."""
    entry = get_entry(request.scheduler)
    schedule = entry(request.workload(), request.platform,
                     _request_rng(request))
    return _decision_from_schedule(request, entry.name, schedule)


class Dispatcher:
    """A worker pool turning request batches into decision lists.

    Parameters
    ----------
    workers : int, optional
        Pool size; defaults to ``REPRO_WORKERS`` (the experiment
        engine's knob) capped at 8, or the CPU count when smaller.
    """

    def __init__(self, workers: int | None = None):
        if workers is None:
            workers = min(resolve_workers(None), _MAX_DEFAULT_WORKERS)
            if not os.environ.get("REPRO_WORKERS"):
                workers = min(workers, os.cpu_count() or 1)
        self.workers = resolve_workers(workers)
        self.inflight = Gauge()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-dispatch")

    def evaluate(self, requests: Sequence[AllocationRequest],
                 keys: Sequence[str] | None = None,
                 ) -> list[AllocationDecision | Exception]:
        """Evaluate a batch; position *i* answers ``requests[i]``.

        Requests naming a scheduler with a vectorized ``batch_fn`` are
        coalesced into one structure-of-arrays batch call per scheduler
        (bit-identical to per-request evaluation, each request keeping
        its own seed-derived generator); the rest go one-per-thread to
        the pool.  A failing request (unknown scheduler, infeasible
        model input) yields its exception *in place* rather than
        poisoning the batch — concurrent callers coalesced onto other
        slots must still get their answers, so a failing batch call
        falls back to per-request evaluation of its group.

        With ``keys`` (the per-request fingerprints, supplied by the
        batcher), model failures come back as :class:`RequestError`
        carrying the failing request's fingerprint and scheduler.
        Non-Repro exceptions stay unwrapped — those are server bugs.
        """
        self.inflight.inc(len(requests))
        try:
            out = self._evaluate(requests)
        finally:
            self.inflight.dec(len(requests))
        if keys is not None:
            for i, result in enumerate(out):
                if (isinstance(result, ReproError)
                        and not isinstance(result, RequestError)):
                    out[i] = RequestError(result, keys[i],
                                          requests[i].scheduler)
        return out

    def _evaluate(self, requests: Sequence[AllocationRequest],
                  ) -> list[AllocationDecision | Exception]:
        def _one(req: AllocationRequest) -> AllocationDecision | Exception:
            try:
                return compute_decision(req)
            except Exception as exc:
                return exc

        if len(requests) == 1:
            return [_one(requests[0])]

        out: list[AllocationDecision | Exception | None] = [None] * len(requests)
        groups: dict[str, list[int]] = {}
        scalar_idx: list[int] = []
        for i, req in enumerate(requests):
            try:
                entry = get_entry(req.scheduler)
            except Exception:
                entry = None
            if entry is not None and entry.batch_fn is not None:
                groups.setdefault(entry.name, []).append(i)
            else:
                scalar_idx.append(i)

        scalar_results = (
            self._pool.map(_one, [requests[i] for i in scalar_idx])
            if scalar_idx else ())
        for name, idxs in groups.items():
            if len(idxs) == 1:
                out[idxs[0]] = _one(requests[idxs[0]])
                continue
            entry = get_entry(name)
            group = [requests[i] for i in idxs]
            try:
                schedules = entry.batch_fn(
                    [(req.workload(), req.platform) for req in group],
                    [_request_rng(req) for req in group])
                for i, req, schedule in zip(idxs, group, schedules):
                    out[i] = _decision_from_schedule(req, entry.name, schedule)
            except Exception:
                # Per-request evaluation isolates the failing slot(s).
                for i, req in zip(idxs, group):
                    out[i] = _one(req)
        for i, result in zip(scalar_idx, scalar_results):
            out[i] = result
        return out

    def close(self) -> None:
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
