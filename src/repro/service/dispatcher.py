"""Decision computation: evaluate allocation requests on a worker pool.

This is the service's bridge to the scheduling machinery built in the
earlier layers: a request names a strategy in the scheduler registry
(:mod:`repro.core.registry`), the dispatcher resolves the
:class:`~repro.core.registry.SchedulerEntry`, runs it on the request's
workload and platform, and packages the resulting schedule's
``(procs, cache, times)`` into an immutable
:class:`~repro.service.protocol.AllocationDecision`.

Batches are evaluated on a shared :class:`ThreadPoolExecutor`.  The
schedulers are numpy-heavy and release the GIL for most of their
runtime, so threads capture most of the available parallelism without
the fork/pickling constraints of the experiment engine's process
backend — and the pool size honors the same ``REPRO_WORKERS``
environment knob through the engine's
:func:`~repro.experiments.engine.resolve_workers`.  Deduplication is
the batcher's job (it coalesces identical fingerprints before
dispatch), so a batch reaching :meth:`Dispatcher.evaluate` contains
only distinct requests and the dispatcher spends no time re-hashing
them on the latency-bound path.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from ..core.registry import get_entry
from ..experiments.engine import resolve_workers
from .protocol import AllocationDecision, AllocationRequest

__all__ = ["compute_decision", "Dispatcher"]

#: Cap on the default pool size — decision batches are small and
#: latency-bound; drowning a small batch in threads helps nothing.
_MAX_DEFAULT_WORKERS = 8


def compute_decision(request: AllocationRequest) -> AllocationDecision:
    """Evaluate one request: run the named scheduler, package the answer."""
    entry = get_entry(request.scheduler)
    seed = request.effective_seed()
    rng = np.random.default_rng(seed) if seed is not None else None
    schedule = entry(request.workload(), request.platform, rng)
    times = schedule.times()
    procs = getattr(schedule, "procs", np.full(times.size, request.platform.p))
    cache = getattr(schedule, "cache", np.ones(times.size))
    return AllocationDecision(
        names=request.workload().names,
        procs=tuple(float(p) for p in procs),
        cache=tuple(float(x) for x in cache),
        times=tuple(float(t) for t in times),
        makespan=float(schedule.makespan()),
        scheduler=entry.name,
    )


class Dispatcher:
    """A worker pool turning request batches into decision lists.

    Parameters
    ----------
    workers : int, optional
        Pool size; defaults to ``REPRO_WORKERS`` (the experiment
        engine's knob) capped at 8, or the CPU count when smaller.
    """

    def __init__(self, workers: int | None = None):
        if workers is None:
            workers = min(resolve_workers(None), _MAX_DEFAULT_WORKERS)
            if not os.environ.get("REPRO_WORKERS"):
                workers = min(workers, os.cpu_count() or 1)
        self.workers = resolve_workers(workers)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-dispatch")

    def evaluate(self, requests: Sequence[AllocationRequest],
                 ) -> list[AllocationDecision | Exception]:
        """Evaluate a batch; position *i* answers ``requests[i]``.

        A failing request (unknown scheduler, infeasible model input)
        yields its exception *in place* rather than poisoning the
        batch — concurrent callers coalesced onto other slots must
        still get their answers.
        """
        def _one(req: AllocationRequest) -> AllocationDecision | Exception:
            try:
                return compute_decision(req)
            except Exception as exc:
                return exc

        if len(requests) == 1:
            return [_one(requests[0])]
        return list(self._pool.map(_one, requests))

    def close(self) -> None:
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
