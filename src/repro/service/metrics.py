"""Serving observability primitives: latency histograms and gauges.

The service needs more than lifetime counters to describe itself under
load: tail latency (p50/p95/p99) and instantaneous pressure (queue
depth, requests in flight).  This module holds the two primitives every
serving layer shares:

:class:`LatencyHistogram`
    Fixed log-spaced buckets (each bound double the last, from 100 µs
    to ~6.6 s) counting observations.  Quantiles are read back by
    linear interpolation inside the owning bucket — the classic
    Prometheus histogram estimate — and the text exposition renders
    the cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` series
    scrapers expect.  Buckets are *fixed* on purpose: histograms from
    different processes (or different scrape intervals) stay mergeable
    by addition.

:class:`Gauge`
    A thread-safe up/down counter for in-flight work.  ``track()``
    wraps a with-block so the decrement survives exceptions.

Both are cheap enough for the per-request hot path: one lock acquire
and a couple of integer updates per observation.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterator

__all__ = ["LatencyHistogram", "Gauge", "LATENCY_BUCKETS"]

#: Default latency bucket bounds in seconds: log-spaced, x2 per step,
#: 100 µs .. ~6.6 s (17 bounds; the implicit +Inf bucket catches the rest).
LATENCY_BUCKETS: tuple[float, ...] = tuple(1e-4 * 2.0 ** k for k in range(17))


class Gauge:
    """A thread-safe instantaneous value (in-flight counter)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: int = 1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> int:
        return self._value

    def track(self) -> "_GaugeSpan":
        """``with gauge.track(): ...`` — inc on entry, dec on exit."""
        return _GaugeSpan(self)


class _GaugeSpan:
    __slots__ = ("_gauge",)

    def __init__(self, gauge: Gauge):
        self._gauge = gauge

    def __enter__(self) -> None:
        self._gauge.inc()

    def __exit__(self, *exc) -> None:
        self._gauge.dec()


class LatencyHistogram:
    """Thread-safe fixed-bucket latency histogram.

    Parameters
    ----------
    buckets : sequence of float
        Strictly increasing upper bounds in seconds.  Observations
        above the last bound land in the implicit ``+Inf`` bucket.
    """

    __slots__ = ("_bounds", "_counts", "_count", "_sum", "_lock")

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    # -- write side --------------------------------------------------------
    def observe(self, seconds: float) -> None:
        idx = bisect_left(self._bounds, seconds)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += seconds

    # -- read side ---------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum_seconds(self) -> float:
        return self._sum

    def snapshot(self) -> tuple[list[int], int, float]:
        """``(per-bucket counts, total count, total seconds)``, consistent."""
        with self._lock:
            return list(self._counts), self._count, self._sum

    def quantile(self, q: float) -> float:
        """Estimated q-quantile in seconds (0.0 before any traffic).

        Linear interpolation inside the bucket holding the rank; the
        open ``+Inf`` bucket reports its lower bound (the histogram
        cannot see beyond its last edge).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        counts, total, _ = self.snapshot()
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for i, n in enumerate(counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lo = self._bounds[i - 1] if i > 0 else 0.0
                if i >= len(self._bounds):  # +Inf bucket
                    return self._bounds[-1]
                hi = self._bounds[i]
                frac = (rank - cumulative) / n
                return lo + (hi - lo) * frac
            cumulative += n
        return self._bounds[-1]

    def as_dict(self) -> dict[str, float]:
        """Flat quantile summary for the JSON metrics mapping."""
        counts, total, total_s = self.snapshot()
        del counts
        return {
            "count": float(total),
            "sum_seconds": total_s,
            "p50_ms": self.quantile(0.50) * 1e3,
            "p95_ms": self.quantile(0.95) * 1e3,
            "p99_ms": self.quantile(0.99) * 1e3,
        }

    def prometheus_lines(self, name: str) -> Iterator[str]:
        """Cumulative Prometheus histogram exposition for *name*."""
        counts, total, total_s = self.snapshot()
        yield f"# TYPE {name} histogram"
        cumulative = 0
        for bound, n in zip(self._bounds, counts):
            cumulative += n
            yield f'{name}_bucket{{le="{bound:.10g}"}} {cumulative}'
        yield f'{name}_bucket{{le="+Inf"}} {total}'
        yield f"{name}_sum {total_s:.10g}"
        yield f"{name}_count {total}"
