"""Wire protocol of the decision service: requests, responses, codec.

An :class:`AllocationRequest` is the service's unit of work — the
applications to co-schedule, the platform they share, the registry
name of the strategy to run, and (for randomized strategies only) a
seed.  Requests are *canonicalized* before anything else happens:

* the platform is fully resolved (a ``{"preset": "taihulight"}``
  payload and the equivalent explicit parameter set produce the same
  canonical form),
* the seed is dropped for deterministic schedulers (it cannot affect
  the decision, so it must not affect the cache key) and defaulted to
  0 for randomized ones,
* the JSON encoding is byte-stable — sorted keys, no whitespace,
  ``repr``-exact floats, ``inf`` footprints encoded as ``null``.

The SHA-256 of that canonical encoding is the request *fingerprint*:
the decision-cache key, the in-flight coalescing key, and the
``request_id`` echoed in every response.  Two clients asking the same
question — however they phrased the platform — hit the same cache
line.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..core.application import Application, Workload
from ..core.platform import Platform
from ..core.registry import get_entry
from ..machine.presets import PRESETS, get_preset
from ..types import ModelError

__all__ = [
    "AllocationRequest",
    "AllocationDecision",
    "AllocationResponse",
    "canonical_json",
    "request_from_payload",
    "parse_platform",
    "PROTOCOL_VERSION",
]

#: Bump when the canonical encoding changes (part of every fingerprint).
PROTOCOL_VERSION = 1

#: Application fields accepted on the wire, in canonical order.
_APP_FIELDS = ("name", "work", "seq_fraction", "access_freq", "miss_rate",
               "footprint", "baseline_cache")

#: Platform fields accepted on the wire (beyond ``preset``).
_PLATFORM_FIELDS = ("p", "cache_size", "latency_cache", "latency_memory",
                    "alpha", "name")


def canonical_json(obj: Any) -> str:
    """Byte-stable JSON: sorted keys, no whitespace, strict floats.

    ``allow_nan=False`` guarantees the encoding stays inside the JSON
    standard — non-finite values must be mapped out (see
    :meth:`AllocationRequest.canonical_payload`) before encoding.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def _app_payload(app: Application) -> dict[str, Any]:
    """One application as a canonical JSON-safe mapping.

    Every numeric field goes through ``float()``: JSON distinguishes
    ``256`` from ``256.0``, and a client sending ints must land on the
    same fingerprint as one sending floats.
    """
    return {
        "name": app.name,
        "work": float(app.work),
        "seq_fraction": float(app.seq_fraction),
        "access_freq": float(app.access_freq),
        "miss_rate": float(app.miss_rate),
        # JSON has no Infinity; null means "larger than any cache".
        "footprint": None if math.isinf(app.footprint) else float(app.footprint),
        "baseline_cache": float(app.baseline_cache),
    }


def _platform_payload(platform: Platform) -> dict[str, Any]:
    """The fully-resolved platform as a canonical mapping.

    The ``name`` label is excluded on purpose: it does not participate
    in :class:`Platform` equality and must not split the cache between
    identically-parameterized platforms.  Values go through ``float()``
    so an int-spelled ``p=256`` and a float ``p=256.0`` collide.
    """
    return {
        "p": float(platform.p),
        "cache_size": float(platform.cache_size),
        "latency_cache": float(platform.latency_cache),
        "latency_memory": float(platform.latency_memory),
        "alpha": float(platform.alpha),
    }


@dataclass(frozen=True)
class AllocationRequest:
    """One co-scheduling question: workload + platform + strategy.

    Attributes
    ----------
    applications : tuple[Application, ...]
        The applications to co-schedule (each validated on
        construction by :class:`~repro.core.application.Application`).
    platform : Platform
        The machine they share.
    scheduler : str
        Scheduler-registry name (validated lazily, at dispatch).
    seed : int | None
        Stream seed for randomized strategies; ignored (and excluded
        from the fingerprint) for deterministic ones.
    """

    applications: tuple[Application, ...]
    platform: Platform
    scheduler: str = "dominant-minratio"
    seed: int | None = None

    def __post_init__(self) -> None:
        if not self.applications:
            raise ModelError("an allocation request needs at least one application")

    def workload(self) -> Workload:
        """The request's applications as a vectorized workload."""
        return Workload(self.applications)

    def effective_seed(self) -> int | None:
        """The seed that actually reaches the scheduler.

        Deterministic strategies get None (their entry ignores the
        rng); randomized ones get the requested seed, defaulting to 0
        so an unseeded randomized request is still reproducible — and
        cacheable.
        """
        if not get_entry(self.scheduler).randomized:
            return None
        return 0 if self.seed is None else int(self.seed)

    def canonical_payload(self) -> dict[str, Any]:
        """The canonical (fingerprinted) form of this request."""
        payload: dict[str, Any] = {
            "version": PROTOCOL_VERSION,
            "scheduler": self.scheduler.lower(),
            "platform": _platform_payload(self.platform),
            "applications": [_app_payload(a) for a in self.applications],
        }
        seed = self.effective_seed()
        if seed is not None:
            payload["seed"] = seed
        return payload

    def fingerprint(self) -> str:
        """SHA-256 hex digest of the canonical encoding (memoized).

        The request is frozen, so the digest is computed once; the
        serving path asks for it repeatedly (cache key, coalescing
        key, response id, error payloads).
        """
        fp = getattr(self, "_fp", None)
        if fp is None:
            fp = hashlib.sha256(
                canonical_json(self.canonical_payload()).encode()
            ).hexdigest()
            object.__setattr__(self, "_fp", fp)
        return fp


@dataclass(frozen=True)
class AllocationDecision:
    """The answer: one ``(procs, cache, predicted time)`` per application."""

    names: tuple[str, ...]
    procs: tuple[float, ...]
    cache: tuple[float, ...]
    times: tuple[float, ...]
    makespan: float
    scheduler: str

    def to_payload(self) -> dict[str, Any]:
        return {
            "names": list(self.names),
            "procs": list(self.procs),
            "cache": list(self.cache),
            "times": list(self.times),
            "makespan": self.makespan,
            "scheduler": self.scheduler,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "AllocationDecision":
        """Rebuild a decision from :meth:`to_payload` output.

        The inverse used when a decision crosses the disk tier of the
        cache: JSON round-trips lists and numbers, so tuples and float
        widths are restored here.  Raises on a malformed payload (the
        cache treats that as a miss).
        """
        return cls(
            names=tuple(str(n) for n in payload["names"]),
            procs=tuple(float(p) for p in payload["procs"]),
            cache=tuple(float(c) for c in payload["cache"]),
            times=tuple(float(t) for t in payload["times"]),
            makespan=float(payload["makespan"]),
            scheduler=str(payload["scheduler"]),
        )


@dataclass(frozen=True)
class AllocationResponse:
    """A decision plus the serving metadata the caller may care about.

    Attributes
    ----------
    request_id : str
        The request fingerprint (stable across retries and clients).
    decision : AllocationDecision
        The allocation.
    cache_hit : bool
        Whether the decision came straight from the decision cache.
    coalesced : bool
        Whether this request rode on an identical in-flight one
        instead of being computed separately.
    batch_size : int
        Size of the batch the decision was computed in (0 on a cache
        hit).
    latency_ms : float
        End-to-end service time observed for *this* request.
    """

    request_id: str
    decision: AllocationDecision
    cache_hit: bool
    coalesced: bool
    batch_size: int
    latency_ms: float

    def to_payload(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "decision": self.decision.to_payload(),
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
            "batch_size": self.batch_size,
            "latency_ms": self.latency_ms,
        }


def parse_platform(spec: Mapping[str, Any] | str) -> Platform:
    """Build a platform from a wire spec.

    Accepts a bare preset name (``"taihulight"``), a mapping with a
    ``preset`` key plus keyword overrides for the preset factory, or a
    mapping of explicit :class:`Platform` parameters.
    """
    if isinstance(spec, str):
        spec = {"preset": spec}
    if not isinstance(spec, Mapping):
        raise ModelError(f"platform spec must be a name or a mapping, got {type(spec).__name__}")
    spec = dict(spec)
    preset = spec.pop("preset", None)
    if preset is not None:
        if preset not in PRESETS:
            raise ModelError(
                f"unknown platform preset {preset!r}; known: {', '.join(PRESETS)}")
        try:
            return get_preset(preset, **spec)
        except TypeError as exc:
            raise ModelError(f"bad override for preset {preset!r}: {exc}") from None
    unknown = set(spec) - set(_PLATFORM_FIELDS)
    if unknown:
        raise ModelError(
            f"unknown platform fields {sorted(unknown)}; "
            f"known: {', '.join(_PLATFORM_FIELDS)} (or 'preset')")
    if "p" not in spec or "cache_size" not in spec:
        raise ModelError("a custom platform needs at least 'p' and 'cache_size'")
    return Platform(**spec)


def _parse_application(raw: Mapping[str, Any], index: int) -> Application:
    if not isinstance(raw, Mapping):
        raise ModelError(f"application #{index} must be a mapping, got {type(raw).__name__}")
    unknown = set(raw) - set(_APP_FIELDS)
    if unknown:
        raise ModelError(
            f"application #{index}: unknown fields {sorted(unknown)}; "
            f"known: {', '.join(_APP_FIELDS)}")
    if "work" not in raw:
        raise ModelError(f"application #{index} is missing required field 'work'")
    kwargs = dict(raw)
    kwargs.setdefault("name", f"app{index}")
    if kwargs.get("footprint") is None:
        kwargs.pop("footprint", None)  # null/absent -> inf default
    try:
        return Application(**kwargs)
    except TypeError as exc:
        raise ModelError(f"application #{index}: {exc}") from None


def request_from_payload(payload: Mapping[str, Any]) -> AllocationRequest:
    """Decode a wire payload into a validated :class:`AllocationRequest`.

    Raises :class:`~repro.types.ModelError` with a caller-actionable
    message on any malformed input — the HTTP front end maps these to
    400 responses.
    """
    if not isinstance(payload, Mapping):
        raise ModelError(f"request body must be a JSON object, got {type(payload).__name__}")
    unknown = set(payload) - {"applications", "platform", "scheduler", "seed", "version"}
    if unknown:
        raise ModelError(f"unknown request fields {sorted(unknown)}")
    apps_raw = payload.get("applications")
    if not isinstance(apps_raw, Sequence) or isinstance(apps_raw, (str, bytes)) or not apps_raw:
        raise ModelError("'applications' must be a non-empty list of application objects")
    applications = tuple(
        _parse_application(raw, i) for i, raw in enumerate(apps_raw)
    )
    platform = parse_platform(payload.get("platform", "taihulight"))
    scheduler = payload.get("scheduler", "dominant-minratio")
    if not isinstance(scheduler, str):
        raise ModelError("'scheduler' must be a registry name string")
    seed = payload.get("seed")
    if seed is not None and not isinstance(seed, int):
        raise ModelError("'seed' must be an integer or null")
    return AllocationRequest(
        applications=applications,
        platform=platform,
        scheduler=scheduler,
        seed=seed,
    )
