"""HTTP front end: stdlib ``http.server`` JSON API over the service.

Endpoints
---------
``POST /v1/allocate``
    Body: a JSON allocation request (see
    :func:`repro.service.protocol.request_from_payload`) —
    ``applications`` (list of application objects), ``platform``
    (preset name, preset + overrides, or explicit parameters),
    ``scheduler`` (registry name), optional ``seed``.  Answers with
    the decision plus serving metadata; malformed input gets a 400
    with a JSON ``error`` body.
``GET /v1/schedulers``
    The scheduler registry with metadata (name, randomized,
    description, provenance), sorted by name.
``GET /metrics``
    All serving counters in Prometheus text exposition format
    (``repro_decisions_total``, ``repro_decision_cache_hits`` ...);
    append ``?format=json`` for the raw mapping.

The server is a ``ThreadingHTTPServer`` — one thread per in-flight
request — which is exactly the concurrency the batcher feeds on:
simultaneous handler threads block on their futures while the
collector coalesces their requests into batches.

:func:`make_server` binds without serving (port 0 friendly, used by
tests); :func:`serve` is the blocking convenience the CLI calls.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..core.registry import entries
from ..types import ReproError
from .batcher import QueueFullError
from .core import DecisionService
from .dispatcher import RequestError

__all__ = ["make_server", "serve", "ServiceHTTPServer"]

#: Refuse request bodies beyond this size (1 MiB ~ thousands of apps).
MAX_BODY_BYTES = 1 << 20


def _prometheus_name(key: str) -> str:
    """``decision_cache.hit_rate`` -> ``repro_decision_cache_hit_rate``."""
    return "repro_" + key.replace(".", "_").replace("-", "_")


def render_metrics_text(metrics: dict[str, float],
                        service: DecisionService | None = None) -> str:
    """Prometheus text exposition of the service counter mapping.

    With *service*, the request-latency histogram is appended as a
    native Prometheus histogram (``_bucket{le=...}``/``_sum``/
    ``_count`` series) alongside the gauge-rendered counters.
    """
    lines = []
    for key in sorted(metrics):
        name = _prometheus_name(key)
        lines.append(f"# TYPE {name} gauge")
        value = float(metrics[key])
        lines.append(f"{name} {value:.10g}")
    if service is not None:
        lines.extend(
            service.latency.prometheus_lines("repro_request_latency_seconds"))
    return "\n".join(lines) + "\n"


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server owning a :class:`DecisionService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: DecisionService):
        self.service = service
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------
    def log_message(self, fmt: str, *args: Any) -> None:  # pragma: no cover
        pass  # stay quiet; /metrics is the observability surface

    def _send(self, status: int, body: bytes, content_type: str,
              extra_headers: dict[str, str] | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any,
                   extra_headers: dict[str, str] | None = None) -> None:
        self._send(status, json.dumps(payload).encode(),
                   "application/json; charset=utf-8", extra_headers)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    # -- routes ------------------------------------------------------------
    def do_GET(self) -> None:
        path, _, query = self.path.partition("?")
        if path == "/v1/schedulers":
            payload = [
                {
                    "name": e.name,
                    "randomized": e.randomized,
                    "description": e.description,
                    "provenance": e.provenance,
                }
                for e in entries()
            ]
            self._send_json(200, {"schedulers": payload})
        elif path == "/metrics":
            service = self.server.service
            metrics = service.metrics()
            if "format=json" in query:
                self._send_json(200, metrics)
            else:
                self._send(200, render_metrics_text(metrics, service).encode(),
                           "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/healthz":
            self._send_json(200, {"status": "ok"})
        else:
            self._send_error_json(404, f"no such endpoint: {path}")

    def do_POST(self) -> None:
        path = self.path.partition("?")[0]
        if path != "/v1/allocate":
            self._send_error_json(404, f"no such endpoint: {path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            # An unread body would desync a keep-alive connection (its
            # bytes get parsed as the next request line) — close it.
            self.close_connection = True
            self._send_error_json(400, "bad Content-Length")
            return
        if length <= 0:
            self.close_connection = True
            self._send_error_json(400, "empty request body")
            return
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            self._send_error_json(413, f"body exceeds {MAX_BODY_BYTES} bytes")
            return
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            self._send_error_json(400, f"invalid JSON: {exc}")
            return
        try:
            response = self.server.service.allocate_payload(payload)
        except QueueFullError as exc:
            self._send_json(503, {"error": str(exc)},
                            {"Retry-After": f"{exc.retry_after_s:.3f}"})
            return
        except RequestError as exc:
            self._send_json(400, exc.to_payload())
            return
        except ReproError as exc:
            self._send_error_json(400, str(exc))
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(500, f"internal error: {exc}")
            return
        self._send_json(200, response.to_payload())


def make_server(host: str = "127.0.0.1", port: int = 0,
                service: DecisionService | None = None) -> ServiceHTTPServer:
    """Bind (but do not serve); ``port=0`` picks a free port."""
    return ServiceHTTPServer((host, port), service or DecisionService())


def serve(host: str = "127.0.0.1", port: int = 8765,
          service: DecisionService | None = None,
          *, announce=None) -> None:
    """Blocking serve loop (the ``repro serve`` entry point)."""
    server = make_server(host, port, service)
    if announce is not None:
        bound_host, bound_port = server.server_address[:2]
        announce(f"repro decision service listening on "
                 f"http://{bound_host}:{bound_port}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
        server.service.close()
