"""Discrete-event co-execution engine and model validation."""

from .engine import SimulationResult, simulate_schedule
from .validation import ValidationReport, validate_schedule, work_conserving_gain

__all__ = [
    "SimulationResult",
    "simulate_schedule",
    "ValidationReport",
    "validate_schedule",
    "work_conserving_gain",
]
