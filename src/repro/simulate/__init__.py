"""Discrete-event co-execution engine and model validation.

The shared clock — canonical boundary tolerance, typed event log, and
the phase/queue kernels every simulator adapts — lives in
:mod:`repro.simulate.kernel`.
"""

from .engine import (
    BatchSimulationResult,
    SimulationResult,
    simulate_schedule,
    simulate_schedule_batch,
)
from .kernel import (
    ABS_TOL,
    REL_TOL,
    Event,
    EventLog,
    at_or_before,
    boundary_tol,
    run_phase_kernel,
    run_phase_kernel_batch,
    run_queue_kernel,
)
from .validation import ValidationReport, validate_schedule, work_conserving_gain

__all__ = [
    "SimulationResult",
    "simulate_schedule",
    "BatchSimulationResult",
    "simulate_schedule_batch",
    "run_phase_kernel_batch",
    "ABS_TOL",
    "REL_TOL",
    "Event",
    "EventLog",
    "at_or_before",
    "boundary_tol",
    "run_phase_kernel",
    "run_queue_kernel",
    "ValidationReport",
    "validate_schedule",
    "work_conserving_gain",
]
