"""Discrete-event co-execution simulator.

Executes a :class:`~repro.core.schedule.Schedule` instead of merely
pricing it: every application is a two-phase job (sequential phase at
one-processor speed, then parallel phase at ``p_i``-processor speed,
per Amdahl), progressing through simulated time until completion.  The
per-operation cost is the Eq. 2 access factor of its cache fraction.

With the default static policy the simulated finish times must equal
the analytical ``Exe_i(p_i, x_i)`` — the validation the test suite and
:mod:`repro.simulate.validation` perform.  The engine also supports a
*work-conserving* policy the paper leaves as future work: when an
application finishes, its processors are re-spread over the survivors
(proportionally to their current shares), which can only help and
quantifies how much slack a non-equal-finish schedule leaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from ..core.execution import access_cost_factor
from ..core.schedule import Schedule
from ..types import ModelError

__all__ = ["SimulationResult", "simulate_schedule"]

_EPS = 1e-12


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a co-execution simulation.

    Attributes
    ----------
    finish_times : numpy.ndarray
        Completion instant of each application.
    makespan : float
        ``max(finish_times)``.
    events : list[tuple[float, str, int]]
        Chronological ``(time, kind, app_index)`` log, where kind is
        ``"seq-done"`` or ``"done"``.
    peak_processors : float
        Maximum simultaneous processor usage observed (static policy:
        the schedule's total allocation).
    policy : str
        ``"static"`` or ``"work-conserving"``.
    """

    finish_times: np.ndarray
    makespan: float
    events: list[tuple[float, str, int]] = field(repr=False)
    peak_processors: float
    policy: str


def simulate_schedule(
    schedule: Schedule,
    *,
    policy: Literal["static", "work-conserving"] = "static",
) -> SimulationResult:
    """Run *schedule* through the event engine.

    Parameters
    ----------
    schedule : Schedule
        A feasible concurrent schedule.
    policy : {"static", "work-conserving"}
        ``"static"`` keeps the allocation fixed (the paper's model);
        ``"work-conserving"`` redistributes a finished application's
        processors over the running ones, proportionally to their
        shares.  Cache fractions are never reassigned (repartitioning
        at runtime would invalidate the static miss-rate model).

    Notes
    -----
    Rates: during its sequential phase an application retains its
    full processor allocation but progresses at one-processor speed
    ``1 / factor_i`` operations per time unit; during the parallel
    phase at ``p_i / factor_i``.  Phase work: ``s_i * w_i`` and
    ``(1 - s_i) * w_i`` operations.
    """
    if policy not in ("static", "work-conserving"):
        raise ModelError(f"unknown policy {policy!r}")
    wl = schedule.workload
    n = wl.n
    factor = access_cost_factor(wl, schedule.platform, schedule.cache)

    seq_left = wl.seq * wl.work          # operations in phase 1
    par_left = (1.0 - wl.seq) * wl.work  # operations in phase 2
    procs = schedule.procs.astype(np.float64).copy()
    in_seq = seq_left > 0.0
    running = np.ones(n, dtype=bool)
    # Applications with no parallel work and no sequential work cannot
    # exist (work > 0), so everyone starts running.

    finish = np.zeros(n)
    events: list[tuple[float, str, int]] = []
    now = 0.0
    peak = float(procs.sum())

    for _ in range(2 * n + 1):  # each iteration retires >= 1 phase
        if not running.any():
            break
        # Current progress rate (operations per time unit) per app.
        rate = np.where(in_seq, 1.0 / factor, procs / factor)
        remaining = np.where(in_seq, seq_left, par_left)
        dt = np.where(running, remaining / np.maximum(rate, _EPS), np.inf)
        step = float(dt[running].min())
        now += step
        # Advance everyone by `step`.
        progressed = rate * step
        seq_progress = np.where(running & in_seq, progressed, 0.0)
        par_progress = np.where(running & ~in_seq, progressed, 0.0)
        seq_left = np.maximum(seq_left - seq_progress, 0.0)
        par_left = np.maximum(par_left - par_progress, 0.0)

        # Phase transitions (tolerate fp residue).
        for i in np.flatnonzero(running):
            if in_seq[i] and seq_left[i] <= _EPS * wl.work[i]:
                seq_left[i] = 0.0
                in_seq[i] = False
                events.append((now, "seq-done", int(i)))
            if not in_seq[i] and par_left[i] <= _EPS * wl.work[i]:
                par_left[i] = 0.0
                if running[i]:
                    running[i] = False
                    finish[i] = now
                    events.append((now, "done", int(i)))
                    if policy == "work-conserving" and running.any():
                        freed = procs[i]
                        procs[i] = 0.0
                        share = procs[running]
                        total = float(share.sum())
                        if total > 0:
                            procs[running] += freed * share / total
    else:  # pragma: no cover - loop bound is a safety net
        raise ModelError("simulation failed to converge (phase loop exhausted)")

    return SimulationResult(
        finish_times=finish,
        makespan=float(finish.max()),
        events=events,
        peak_processors=peak,
        policy=policy,
    )
