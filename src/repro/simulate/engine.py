"""Discrete-event co-execution simulator.

Executes a :class:`~repro.core.schedule.Schedule` instead of merely
pricing it: every application is a two-phase job (sequential phase at
one-processor speed, then parallel phase at ``p_i``-processor speed,
per Amdahl), progressing through simulated time until completion.  The
per-operation cost is the Eq. 2 access factor of its cache fraction.

The clock itself lives in :mod:`repro.simulate.kernel` — this module
is a thin adapter: it turns the schedule into the kernel's allocation
hook (a fixed allocation for the paper's static policy, a mutating one
for work-conserving redistribution) and repackages the kernel result.

With the default static policy the simulated finish times must equal
the analytical ``Exe_i(p_i, x_i)`` — the validation the test suite and
:mod:`repro.simulate.validation` perform.  The engine also supports a
*work-conserving* policy the paper leaves as future work: when an
application finishes, its processors are re-spread over the survivors
(proportionally to their current shares), which can only help and
quantifies how much slack a non-equal-finish schedule leaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from ..core.batch import BatchSchedule, access_cost_factor_batch
from ..core.execution import access_cost_factor
from ..core.schedule import Schedule
from ..types import ModelError
from .kernel import run_phase_kernel, run_phase_kernel_batch

__all__ = [
    "SimulationResult",
    "simulate_schedule",
    "BatchSimulationResult",
    "simulate_schedule_batch",
]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a co-execution simulation.

    Attributes
    ----------
    finish_times : numpy.ndarray
        Completion instant of each application.
    makespan : float
        ``max(finish_times)``.
    events : list[tuple[float, str, int]]
        Chronological ``(time, kind, app_index)`` log, where kind is
        ``"seq-done"`` or ``"done"``.
    peak_processors : float
        Maximum simultaneous processor usage observed, tracked from
        the actual in-use totals over time (see ``processor_usage``).
    policy : str
        ``"static"`` or ``"work-conserving"``.
    processor_usage : list[tuple[float, float]]
        ``(time, processors in use)`` samples, one per event; each
        total holds until the next sample.  Non-increasing under the
        static policy (usage drops as applications finish); constant
        at the schedule's total under work-conserving redistribution
        until the last application finishes.
    """

    finish_times: np.ndarray
    makespan: float
    events: list[tuple[float, str, int]] = field(repr=False)
    peak_processors: float
    policy: str
    processor_usage: list[tuple[float, float]] = field(
        default_factory=list, repr=False)


def simulate_schedule(
    schedule: Schedule,
    *,
    policy: Literal["static", "work-conserving"] = "static",
) -> SimulationResult:
    """Run *schedule* through the event kernel.

    Parameters
    ----------
    schedule : Schedule
        A feasible concurrent schedule.
    policy : {"static", "work-conserving"}
        ``"static"`` keeps the allocation fixed (the paper's model);
        ``"work-conserving"`` redistributes a finished application's
        processors over the running ones, proportionally to their
        shares.  Cache fractions are never reassigned (repartitioning
        at runtime would invalidate the static miss-rate model).

    Notes
    -----
    Rates: during its sequential phase an application retains its
    full processor allocation but progresses at one-processor speed
    ``1 / factor_i`` operations per time unit; during the parallel
    phase at ``p_i / factor_i``.  Phase work: ``s_i * w_i`` and
    ``(1 - s_i) * w_i`` operations.
    """
    if policy not in ("static", "work-conserving"):
        raise ModelError(f"unknown policy {policy!r}")
    wl = schedule.workload
    n = wl.n
    factor = access_cost_factor(wl, schedule.platform, schedule.cache)
    procs = schedule.procs.astype(np.float64).copy()

    def allocate(now, active, seq_left, par_left):
        # Static: the fixed schedule allocation.  Work-conserving: the
        # same array, mutated by `on_complete` as applications finish.
        return procs, factor

    on_complete = None
    if policy == "work-conserving":
        def on_complete(i, now, alive):
            freed = procs[i]
            procs[i] = 0.0
            share = procs[alive]
            total = float(share.sum())
            if total > 0:
                procs[alive] += freed * share / total

    result = run_phase_kernel(
        wl.work,
        wl.seq * wl.work,
        (1.0 - wl.seq) * wl.work,
        allocate=allocate,
        on_complete=on_complete,
        # Each event retires at least one phase; more means divergence.
        max_events=2 * n + 1,
        budget_message="simulation failed to converge (phase loop exhausted)",
    )

    return SimulationResult(
        finish_times=result.finish_times,
        makespan=float(result.finish_times.max()),
        events=result.log.as_tuples("seq-done", "done"),
        peak_processors=max(used for _, used in result.usage),
        policy=policy,
        processor_usage=result.usage,
    )


@dataclass(frozen=True)
class BatchSimulationResult:
    """Outcome of a batched static co-execution simulation.

    Attributes
    ----------
    finish_times : numpy.ndarray
        Completion instant per cell, shape ``(B, N)``, zeros in
        padding; row ``i``'s valid prefix is bit-identical to
        ``simulate_schedule(schedule_i).finish_times``.
    makespans : numpy.ndarray
        Per-row makespans, shape ``(B,)``.
    events : numpy.ndarray
        Per-row kernel iteration counts, shape ``(B,)``.
    """

    finish_times: np.ndarray
    makespans: np.ndarray
    events: np.ndarray


def simulate_schedule_batch(batch: BatchSchedule) -> BatchSimulationResult:
    """Run a whole :class:`~repro.core.batch.BatchSchedule` through the
    batched event kernel (static policy).

    One :func:`~repro.simulate.kernel.run_phase_kernel_batch` call
    advances every instance's two-phase clock in lockstep; per-row
    results are bit-identical to :func:`simulate_schedule` with the
    default static policy on the materialized per-row schedule.
    Work-conserving redistribution needs the scalar engine's
    ``on_complete`` hook and is deliberately not batched.
    """
    problem = batch.problem
    factors = access_cost_factor_batch(problem, batch.cache)
    result = run_phase_kernel_batch(
        problem.work,
        problem.seq * problem.work,
        (1.0 - problem.seq) * problem.work,
        procs=batch.procs,
        factors=factors,
        valid=problem.valid,
        # Each event retires at least one phase; more means divergence.
        max_events=2 * problem.counts + 1,
        budget_message="simulation failed to converge (phase loop exhausted)",
    )
    makespans = np.where(
        problem.valid, result.finish_times, -np.inf).max(axis=1)
    return BatchSimulationResult(
        finish_times=result.finish_times,
        makespans=makespans,
        events=result.events,
    )
