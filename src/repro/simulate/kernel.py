"""The one discrete-event kernel behind every simulation clock.

Before this module the repository carried three independently
hand-rolled time-stepping loops — the offline phase loop
(:func:`repro.simulate.simulate_schedule`), the online arrival loop
(:func:`repro.online.simulate_online`), and the batch-queue recurrence
(:func:`repro.pipeline.simulate_batch_queue`) — each with its own
subtly different boundary handling.  That bred a whole family of
epsilon bugs: a phase residue tolerated by one loop but not another, a
relative-only arrival admission that degenerates at ``now == 0`` and
drifts at large ``now``, and a queue with no tolerance at all.  This
module is the single kernel all three are now thin adapters over.

Tolerance convention
--------------------
Every boundary decision in every clock uses **one** canonical combined
absolute + relative tolerance::

    tol(scale) = ABS_TOL + REL_TOL * |scale|

where *scale* is the natural magnitude of the quantity being compared:

* **phase transitions** compare remaining operations against zero with
  ``scale = `` the application's total work (a residue below one part
  in 10^12 of the work is rounding noise, not unfinished work);
* **arrival admission** compares an arrival instant against the clock
  with ``scale = now`` (an arrival within one part in 10^12 of the
  current instant — or within ``ABS_TOL`` of a clock still at zero —
  happens *now*);
* **queue boundaries** compare service starts against arrival instants
  with ``scale = `` the arrival instant.

The absolute term keeps the comparison meaningful at ``t == 0`` (a
purely relative tolerance admits nothing early there); the relative
term keeps it meaningful at large magnitudes (a purely absolute
tolerance vanishes next to ``t ~ 1e9``).  Use :func:`boundary_tol` /
:func:`at_or_before` rather than re-deriving epsilons locally.

Clock discipline
----------------
The phase clock *accumulates* (``now += dt``) while work is being
retired, and *jumps* (``now = t``) when idle — jumping to an arrival
instant keeps it exact, and the admission tolerance absorbs the
accumulated ulps when an arrival coincides with a completion event.
The queue clock works in absolute times (``finish = start + service``)
so a batch's latency is one subtraction, not an accumulation.

Hooks
-----
:func:`run_phase_kernel` is parameterized by

* an **arrival source**: the per-application arrival instants (zeros
  for an offline simulation; see :mod:`repro.online.arrivals` for
  generated and replayed streams),
* a **reallocation policy**: the ``allocate`` callback, invoked at
  every event with the active set and remaining work (static schedules
  return a fixed allocation; online policies re-solve the shrunken
  instance; work-conserving redistribution mutates its allocation from
  the ``on_complete`` callback),
* **phase transitions**: applied by the kernel itself with the
  canonical tolerance, recorded in the typed event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..types import ModelError

__all__ = [
    "ABS_TOL",
    "REL_TOL",
    "boundary_tol",
    "at_or_before",
    "Event",
    "EventLog",
    "PhaseKernelResult",
    "run_phase_kernel",
    "BatchPhaseKernelResult",
    "run_phase_kernel_batch",
    "QueueKernelResult",
    "run_queue_kernel",
]

#: Absolute component of the canonical boundary tolerance.
ABS_TOL: float = 1e-12

#: Relative component of the canonical boundary tolerance.
REL_TOL: float = 1e-12


def boundary_tol(scale: float = 0.0) -> float:
    """The canonical combined tolerance ``ABS_TOL + REL_TOL * |scale|``."""
    return ABS_TOL + REL_TOL * abs(scale)


def at_or_before(value, boundary, *, scale=None):
    """Tolerant ``value <= boundary`` (vectorized over *value*).

    *scale* defaults to *boundary* — the common case of asking whether
    an instant has been reached by a clock of that magnitude.
    """
    if scale is None:
        scale = boundary
    return value <= boundary + boundary_tol(scale)


#: Event kinds the kernel emits, in the order they can occur at one
#: instant: completions and phase exits before admissions.  The tail
#: kinds are the fault-injection events of :mod:`repro.chaos` —
#: appended (never reordered) because the queue kernel's chronological
#: merge keys on each kind's index in this tuple.
EVENT_KINDS: tuple[str, ...] = (
    "seq-done", "done", "arrival", "drop",
    "proc_join", "proc_leave", "crash", "restart", "preempt",
)


@dataclass(frozen=True, slots=True)
class Event:
    """One typed entry of the kernel's event log.

    Attributes
    ----------
    time : float
        Simulated instant.
    kind : str
        One of :data:`EVENT_KINDS`.
    index : int
        Application / batch index the event concerns.
    """

    time: float
    kind: str
    index: int

    def as_tuple(self) -> tuple[float, str, int]:
        return (self.time, self.kind, self.index)


class EventLog:
    """Chronological typed event log shared by every kernel run."""

    __slots__ = ("_events",)

    def __init__(self) -> None:
        self._events: list[Event] = []

    def record(self, time: float, kind: str, index: int) -> Event:
        if kind not in EVENT_KINDS:
            raise ModelError(f"unknown event kind {kind!r}; known: {EVENT_KINDS}")
        event = Event(float(time), kind, int(index))
        self._events.append(event)
        return event

    @property
    def events(self) -> tuple[Event, ...]:
        return tuple(self._events)

    def since(self, start: int) -> list[Event]:
        """Events appended at or after position *start*.

        A cheap slice for incremental consumers (the chaos probes poll
        this once per allocation; materializing :attr:`events` there
        would be quadratic in the run length).
        """
        return self._events[start:]

    def sort(self) -> None:
        """Stable chronological re-order.

        The kernel itself appends in time order, but a consumer
        logging exogenous events lazily (the chaos injector's
        idle-gap catch-up) can append an event stamped earlier than
        one already recorded at the same allocation instant; one
        stable sort at the end restores the global order without
        touching same-instant insertion order.
        """
        self._events.sort(key=lambda e: e.time)

    def select(self, *kinds: str) -> tuple[Event, ...]:
        """Events of the given kinds, in log order.

        Unknown kinds raise :class:`~repro.types.ModelError`: a filter
        naming a kind outside :data:`EVENT_KINDS` would silently match
        nothing, which hid typos while the registered set was four
        entries and is outright dangerous now that fault injection adds
        five more.
        """
        for kind in kinds:
            if kind not in EVENT_KINDS:
                raise ModelError(
                    f"unknown event kind {kind!r}; known: {EVENT_KINDS}")
        return tuple(e for e in self._events if e.kind in kinds)

    def as_tuples(self, *kinds: str) -> list[tuple[float, str, int]]:
        """Legacy ``(time, kind, index)`` view, optionally filtered.

        Like :meth:`select`, raises on kinds not in :data:`EVENT_KINDS`.
        """
        selected = self.select(*kinds) if kinds else self._events
        return [e.as_tuple() for e in selected]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)


#: Reallocation hook: ``allocate(now, active, seq_left, par_left) ->
#: (procs, factors)`` — full length-``n`` arrays; entries outside the
#: active set are ignored.  ``factors`` are per-operation access-cost
#: multipliers (> 0 for active applications).
AllocateFn = Callable[
    [float, np.ndarray, np.ndarray, np.ndarray],
    tuple[np.ndarray, np.ndarray],
]

#: Completion hook: ``on_complete(index, now, alive)`` where *alive*
#: masks the applications still unfinished (arrived or not).  A
#: work-conserving adapter mutates its processor array here.
CompleteFn = Callable[[int, float, np.ndarray], None]

#: Exogenous timeline hook: ``timeline(now) -> float`` returns the next
#: instant strictly after *now* at which something outside the model
#: happens (a fault event, a metric-probe tick), or ``inf`` when none
#: is pending.  The kernel never advances the clock past it, so the
#: ``allocate`` hook is guaranteed to run at (within the canonical
#: tolerance of) every exogenous instant while work is in flight.
TimelineFn = Callable[[float], float]


@dataclass(frozen=True)
class PhaseKernelResult:
    """Outcome of a :func:`run_phase_kernel` run.

    Attributes
    ----------
    finish_times : numpy.ndarray
        Completion instant per application.
    events : int
        Kernel iterations processed (each handles one clock event:
        a phase boundary, a completion, or an arrival admission).
    log : EventLog
        The typed event log.
    usage : list[tuple[float, float]]
        ``(time, processors in use)`` sampled at every allocation —
        the in-use total holds until the next event.
    now : float
        Final clock value.
    """

    finish_times: np.ndarray
    events: int
    log: EventLog
    usage: list[tuple[float, float]] = field(repr=False)
    now: float = 0.0


def run_phase_kernel(
    work: np.ndarray,
    seq_work: np.ndarray,
    par_work: np.ndarray,
    *,
    allocate: AllocateFn,
    arrivals: np.ndarray | None = None,
    on_complete: CompleteFn | None = None,
    timeline: TimelineFn | None = None,
    max_events: int | None = None,
    budget_message: str = "simulation exceeded its event budget",
    log: EventLog | None = None,
) -> PhaseKernelResult:
    """Run the two-phase (sequential then parallel) event clock.

    Parameters
    ----------
    work : numpy.ndarray
        Total operations per application — the scale of each
        application's phase-boundary tolerance.
    seq_work, par_work : numpy.ndarray
        Initial remaining operations of the sequential / parallel
        phase (copied; the caller's arrays are not mutated).
    allocate : AllocateFn
        Reallocation hook, invoked on every event with the active set.
        Progress rates follow Eq. 2's convention: ``1 / factor`` during
        the sequential phase (for applications actually holding
        processors; an application allocated none stalls), ``procs /
        factor`` during the parallel phase.
    arrivals : numpy.ndarray, optional
        Per-application arrival instants; admission uses the canonical
        tolerance at the clock's scale.  ``None`` means everyone is
        present from the start (the offline convention: no admission
        events at all, not even at ``t == 0``).
    on_complete : CompleteFn, optional
        Invoked when an application finishes, before the next event.
    timeline : TimelineFn, optional
        Source of exogenous breakpoints (fault events, probe ticks):
        while work is in flight the step never crosses
        ``timeline(now)``, so ``allocate`` observes every exogenous
        instant.  During an idle gap (nothing arrived and unfinished)
        the clock still jumps straight to the next arrival — exogenous
        state is owned by the caller, who applies idle-gap events
        lazily (see :class:`repro.chaos.FaultInjector`).
    max_events : int, optional
        Event budget; exceeding it raises :class:`ModelError` with
        *budget_message*.  Defaults to ``20 * n + 10``.
    log : EventLog, optional
        Log to append to (a fresh one is created by default).
    """
    work = np.asarray(work, dtype=np.float64)
    n = work.size
    seq_left = np.asarray(seq_work, dtype=np.float64).copy()
    par_left = np.asarray(par_work, dtype=np.float64).copy()
    if arrivals is None:
        # Everyone present from the start: no admission events, no
        # admission iteration — the offline convention.
        arrivals = np.zeros(n)
        arrived = np.ones(n, dtype=bool)
    else:
        arrivals = np.asarray(arrivals, dtype=np.float64)
        arrived = np.zeros(n, dtype=bool)
    finished = np.zeros(n, dtype=bool)
    finish = np.zeros(n)
    if log is None:
        log = EventLog()
    usage: list[tuple[float, float]] = []

    now = 0.0
    events = 0
    limit = max_events if max_events is not None else 20 * n + 10

    while not finished.all():
        events += 1
        if events > limit:
            raise ModelError(budget_message)
        active = arrived & ~finished
        pending = ~arrived
        next_arrival = float(arrivals[pending].min()) if pending.any() else np.inf

        if not active.any():
            # Idle: jump the clock straight to the next arrival (an
            # exact assignment, not an accumulation).
            usage.append((now, 0.0))
            now = next_arrival
            newly = pending & at_or_before(arrivals, now)
            arrived |= newly
            for i in np.flatnonzero(newly):
                log.record(now, "arrival", i)
            continue

        procs, factors = allocate(now, active, seq_left, par_left)
        usage.append((now, float(procs[active].sum())))

        # Progress rates and per-application time to the next phase
        # boundary.  A queued application (no processors) stalls.
        in_seq = active & (seq_left > 0.0)
        in_par = active & (seq_left <= 0.0)
        rate = np.zeros(n)
        held = procs > 0.0
        sel = in_seq & held
        rate[sel] = 1.0 / factors[sel]
        rate[in_par] = procs[in_par] / factors[in_par]
        remaining = np.where(in_seq, seq_left, par_left)
        running = active & (rate > 0.0)
        dt_finish = np.full(n, np.inf)
        dt_finish[running] = remaining[running] / rate[running]
        next_exo = np.inf if timeline is None else float(timeline(now))
        dt = min(float(dt_finish.min()), next_arrival - now, next_exo - now)
        if not np.isfinite(dt):
            raise ModelError(
                "kernel stalled: no running application, pending arrival, "
                "or exogenous event can advance the clock"
            )
        dt = max(dt, 0.0)
        now += dt

        # Advance everyone by dt.
        progress = rate * dt
        seq_left = np.where(in_seq, np.maximum(seq_left - progress, 0.0), seq_left)
        par_left = np.where(in_par, np.maximum(par_left - progress, 0.0), par_left)

        # Phase transitions, with the canonical tolerance at the scale
        # of each application's total work.
        for i in np.flatnonzero(active):
            tol = boundary_tol(work[i])
            if in_seq[i] and seq_left[i] <= tol:
                seq_left[i] = 0.0
                log.record(now, "seq-done", i)
            if seq_left[i] == 0.0 and par_left[i] <= tol:
                par_left[i] = 0.0
                finished[i] = True
                finish[i] = now
                log.record(now, "done", i)
                if on_complete is not None:
                    on_complete(int(i), now, ~finished)

        # Admissions (after completions: an arrival coinciding with a
        # completion event joins the system the moment it frees up).
        newly = pending & at_or_before(arrivals, now)
        if newly.any():
            arrived |= newly
            for i in np.flatnonzero(newly):
                log.record(now, "arrival", i)

    return PhaseKernelResult(
        finish_times=finish,
        events=events,
        log=log,
        usage=usage,
        now=now,
    )


@dataclass(frozen=True)
class BatchPhaseKernelResult:
    """Outcome of a :func:`run_phase_kernel_batch` run.

    Attributes
    ----------
    finish_times : numpy.ndarray
        Completion instant per cell, shape ``(B, N)``; zeros in
        padding.
    events : numpy.ndarray
        Kernel iterations each row consumed, shape ``(B,)`` — equal to
        the scalar kernel's ``events`` for the same instance.
    now : numpy.ndarray
        Final per-row clock values, shape ``(B,)``.
    """

    finish_times: np.ndarray
    events: np.ndarray
    now: np.ndarray


def run_phase_kernel_batch(
    work: np.ndarray,
    seq_work: np.ndarray,
    par_work: np.ndarray,
    *,
    procs: np.ndarray,
    factors: np.ndarray,
    valid: np.ndarray | None = None,
    max_events: int | np.ndarray | None = None,
    budget_message: str = "simulation exceeded its event budget",
) -> BatchPhaseKernelResult:
    """Advance ``B`` static-allocation phase clocks in lockstep.

    The batched twin of :func:`run_phase_kernel` for its hot special
    case — everyone present from the start (no arrivals) and a fixed
    allocation (no reallocation or completion hooks): each global
    iteration advances every still-running row by that row's own next
    event, exactly as the scalar loop would, so per-row finish times,
    clocks, and event counts are **bit-identical** to running the
    scalar kernel row by row (same elementwise rate/progress
    expressions, per-row minima over the same values, and dt == 0.0
    no-op advances once a row is done).

    Parameters
    ----------
    work, seq_work, par_work : numpy.ndarray
        ``(B, N)`` padded arrays (see :class:`repro.core.batch.BatchProblem`);
        *work* sets each cell's phase-boundary tolerance scale.
    procs, factors : numpy.ndarray
        Static per-cell processor allocation and Eq. 2 access factors.
    valid : numpy.ndarray, optional
        Boolean ``(B, N)`` mask of real cells; padding is treated as
        finished from the start.  Default: everything valid.
    max_events : int or numpy.ndarray, optional
        Per-row event budget (broadcast from a scalar); exceeding it
        raises :class:`ModelError` with *budget_message*.  Defaults to
        ``20 * n_row + 10``.
    """
    work = np.asarray(work, dtype=np.float64)
    if work.ndim != 2:
        raise ModelError(
            f"batch kernel expects (B, N) arrays, got shape {work.shape}")
    B, n = work.shape
    seq_left = np.asarray(seq_work, dtype=np.float64).copy()
    par_left = np.asarray(par_work, dtype=np.float64).copy()
    procs = np.asarray(procs, dtype=np.float64)
    factors = np.asarray(factors, dtype=np.float64)
    if valid is None:
        valid = np.ones((B, n), dtype=bool)
    else:
        valid = np.asarray(valid, dtype=bool)
    counts = valid.sum(axis=1)
    if max_events is None:
        limits = 20 * counts + 10
    else:
        limits = np.broadcast_to(np.asarray(max_events), (B,))
    tol = ABS_TOL + REL_TOL * np.abs(work)

    finished = ~valid  # padding is done before the clock starts
    finish = np.zeros((B, n))
    now = np.zeros(B)
    events = np.zeros(B, dtype=np.intp)

    while True:
        live = ~finished.all(axis=1)
        if not live.any():
            break
        events = np.where(live, events + 1, events)
        if (live & (events > limits)).any():
            raise ModelError(budget_message)
        active = valid & ~finished

        # Rates, exactly as the scalar kernel: one-processor speed in
        # the sequential phase (only while holding processors),
        # Amdahl-parallel speed after.
        in_seq = active & (seq_left > 0.0)
        in_par = active & (seq_left <= 0.0)
        rate = np.zeros((B, n))
        sel = in_seq & (procs > 0.0)
        rate[sel] = 1.0 / factors[sel]
        rate[in_par] = procs[in_par] / factors[in_par]
        remaining = np.where(in_seq, seq_left, par_left)
        running = active & (rate > 0.0)
        dt_finish = np.full((B, n), np.inf)
        dt_finish[running] = remaining[running] / rate[running]
        dt = np.maximum(dt_finish.min(axis=1), 0.0)
        dt = np.where(live, dt, 0.0)
        now = now + dt

        # Advance, then apply phase transitions with the canonical
        # per-cell tolerance.
        progress = rate * dt[:, None]
        seq_left = np.where(
            in_seq, np.maximum(seq_left - progress, 0.0), seq_left)
        par_left = np.where(
            in_par, np.maximum(par_left - progress, 0.0), par_left)
        seq_left = np.where(in_seq & (seq_left <= tol), 0.0, seq_left)
        done = active & (seq_left == 0.0) & (par_left <= tol)
        par_left = np.where(done, 0.0, par_left)
        finish = np.where(done, now[:, None], finish)
        finished |= done

    return BatchPhaseKernelResult(finish_times=finish, events=events, now=now)


@dataclass(frozen=True)
class QueueKernelResult:
    """Outcome of a :func:`run_queue_kernel` run.

    Attributes
    ----------
    starts, finishes, latencies : numpy.ndarray
        Per *admitted* batch, in arrival order.
    dropped : int
        Batches rejected by the finite buffer.
    max_depth : int
        Largest number of batches waiting (excluding the one in
        service), sampled at arrival instants.
    log : EventLog
        Typed log of ``arrival``/``drop``/``done`` events.
    """

    starts: np.ndarray
    finishes: np.ndarray
    latencies: np.ndarray
    dropped: int
    max_depth: int
    log: EventLog


def run_queue_kernel(
    arrivals: Sequence[float] | np.ndarray,
    service: Sequence[float] | np.ndarray,
    *,
    buffer_capacity: int | None = None,
    log: EventLog | None = None,
) -> QueueKernelResult:
    """Single-server FIFO queue with an optional finite buffer.

    The queue clock works in absolute times: batch *k* starts at
    ``max(arrival_k, finish_{k-1})`` and finishes one addition later,
    so latencies carry no accumulated stepping error.  Boundary
    decisions (has a queued batch started by this arrival instant?)
    use the canonical kernel tolerance at the arrival's scale.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    service = np.asarray(service, dtype=np.float64)
    if log is None:
        log = EventLog()

    starts: list[float] = []
    finishes: list[float] = []
    latencies: list[float] = []
    pending_events: list[tuple[float, str, int]] = []
    dropped = 0
    max_depth = 0
    server_free_at = 0.0

    for k, (arr, svc) in enumerate(zip(arrivals, service)):
        # Queue depth at this arrival: admitted batches whose service
        # has not started yet (tolerantly: a batch starting within
        # tol of this very instant has started).
        depth = sum(1 for s in starts if not at_or_before(s, arr))
        max_depth = max(max_depth, depth)
        server_busy = not at_or_before(server_free_at, arr)
        if buffer_capacity is not None and depth >= buffer_capacity and server_busy:
            dropped += 1
            pending_events.append((arr, "drop", k))
            continue
        pending_events.append((arr, "arrival", k))
        start = max(arr, server_free_at)
        finish = start + svc
        starts.append(start)
        finishes.append(finish)
        latencies.append(finish - arr)
        server_free_at = finish
        pending_events.append((finish, "done", k))

    # The pass visits batches in arrival order, but a completion can
    # postdate later arrivals; merge into the log chronologically
    # (ties: completions before admissions, per EVENT_KINDS).
    for time, kind, k in sorted(
            pending_events, key=lambda e: (e[0], EVENT_KINDS.index(e[1]))):
        log.record(time, kind, k)

    return QueueKernelResult(
        starts=np.asarray(starts),
        finishes=np.asarray(finishes),
        latencies=np.asarray(latencies),
        dropped=dropped,
        max_depth=max_depth,
        log=log,
    )
