"""Model-vs-simulation agreement checks.

The analytical model (Eq. 2) and the event engine describe the same
execution; :func:`validate_schedule` runs both and reports the
discrepancy, and :func:`work_conserving_gain` quantifies how much
makespan a runtime work-conserving reallocation would recover — zero
for a perfect equal-finish schedule (Lemma 1 says the optimum leaves
nothing on the table), positive for baselines like Fair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.schedule import Schedule
from .engine import SimulationResult, simulate_schedule

__all__ = ["ValidationReport", "validate_schedule", "work_conserving_gain"]


@dataclass(frozen=True)
class ValidationReport:
    """Agreement between the analytical model and the event engine.

    Attributes
    ----------
    model_times : numpy.ndarray
        ``Exe_i(p_i, x_i)`` per application.
    simulated_times : numpy.ndarray
        Finish times from the event engine (static policy).
    max_relative_error : float
        ``max |sim - model| / model``.
    agrees : bool
        Whether the error is below *tolerance*.
    """

    model_times: np.ndarray
    simulated_times: np.ndarray
    max_relative_error: float
    agrees: bool


def validate_schedule(schedule: Schedule, *, tolerance: float = 1e-9) -> ValidationReport:
    """Simulate *schedule* and compare with the analytical times."""
    model = schedule.times()
    sim = simulate_schedule(schedule, policy="static").finish_times
    rel = float(np.max(np.abs(sim - model) / model))
    return ValidationReport(
        model_times=model,
        simulated_times=sim,
        max_relative_error=rel,
        agrees=rel <= tolerance,
    )


def work_conserving_gain(schedule: Schedule) -> tuple[float, SimulationResult]:
    """Relative makespan improvement from work-conserving reallocation.

    Returns ``(gain, result)`` where ``gain = 1 - wc_makespan /
    static_makespan`` (>= 0 up to fp noise: extra processors never
    hurt a running application).
    """
    static = simulate_schedule(schedule, policy="static")
    wc = simulate_schedule(schedule, policy="work-conserving")
    gain = 1.0 - wc.makespan / static.makespan if static.makespan > 0 else 0.0
    return gain, wc
