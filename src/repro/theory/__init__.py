"""Theory layer: NP-completeness reduction, optimality lemmas, exact solvers."""

from .exact import ExactResult, best_subset_schedule, exact_optimal_schedule, iter_subsets
from .knapsack import KnapsackInstance, decide, solve_bruteforce, solve_dp
from .perfectly_parallel import (
    equalize_finish_times,
    improve_non_dominant,
    iterate_to_dominant,
    lemma2_schedule,
)
from .reduction import (
    ReducedInstance,
    certificate_to_fractions,
    decide_reduced,
    fractions_to_certificate,
    reduce_knapsack,
)

__all__ = [
    "KnapsackInstance",
    "solve_dp",
    "solve_bruteforce",
    "decide",
    "ReducedInstance",
    "reduce_knapsack",
    "decide_reduced",
    "certificate_to_fractions",
    "fractions_to_certificate",
    "equalize_finish_times",
    "lemma2_schedule",
    "improve_non_dominant",
    "iterate_to_dominant",
    "ExactResult",
    "exact_optimal_schedule",
    "best_subset_schedule",
    "iter_subsets",
]
