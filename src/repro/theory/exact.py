"""Exact solvers by exhaustive subset enumeration (ground truth).

For perfectly parallel applications with infinite footprints, the
global optimum of CoSchedCache is the best, over all subsets ``IC``,
of the subset's Theorem-3 solution (Lemmas 3-4, Theorems 2-3): every
subset's closed form is a feasible solution, and some dominant subset's
closed form attains the optimum.  Enumerating the ``2^n`` subsets is
therefore an *exact* algorithm — exponential, but fine for the n <= 16
instances used to measure heuristic optimality gaps.

For general Amdahl applications no optimality structure is known (the
paper's Section 5 opens exactly this gap); :func:`best_subset_schedule`
then returns the best schedule *within the dominant-heuristic family*
(Theorem-3 fractions + equal-finish processors over all subsets),
which upper-bounds the heuristics' achievable quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.application import Workload
from ..core.dominance import is_dominant, optimal_cache_fractions
from ..core.platform import Platform
from ..core.processor_allocation import build_equal_finish_schedule
from ..core.schedule import Schedule
from ..types import ModelError

__all__ = ["ExactResult", "exact_optimal_schedule", "best_subset_schedule", "iter_subsets"]

_MAX_EXACT_N = 20


@dataclass(frozen=True)
class ExactResult:
    """Outcome of a subset-enumeration solve.

    Attributes
    ----------
    schedule : Schedule
        The best schedule found.
    subset : numpy.ndarray
        Boolean mask of the winning cache subset.
    makespan : float
        Its makespan.
    dominant : bool
        Whether the winning subset is dominant (it always is for
        perfectly parallel workloads, by Theorem 2).
    evaluated : int
        Number of subsets evaluated.
    """

    schedule: Schedule
    subset: np.ndarray
    makespan: float
    dominant: bool
    evaluated: int


def iter_subsets(n: int):
    """Yield all ``2^n`` boolean masks of length *n* (including empty)."""
    if n > _MAX_EXACT_N:
        raise ModelError(f"subset enumeration limited to n <= {_MAX_EXACT_N}, got {n}")
    idx = np.arange(n)
    for bits in range(1 << n):
        yield (bits >> idx & 1).astype(bool)


def exact_optimal_schedule(workload: Workload, platform: Platform) -> ExactResult:
    """Globally optimal schedule for a perfectly parallel workload.

    Requires ``s_i = 0`` for all applications and infinite footprints
    (the Section 4.2 setting where the subset-enumeration argument is a
    proof of optimality).
    """
    if not workload.is_perfectly_parallel:
        raise ModelError(
            "exact_optimal_schedule requires perfectly parallel applications; "
            "use best_subset_schedule for Amdahl workloads"
        )
    if np.any(np.isfinite(workload.footprint)):
        raise ModelError(
            "exact_optimal_schedule requires infinite footprints "
            "(the Section 4.2 assumption)"
        )
    return best_subset_schedule(workload, platform)


def best_subset_schedule(workload: Workload, platform: Platform) -> ExactResult:
    """Best schedule over all cache subsets (Theorem-3 + equal-finish).

    Exact for the perfectly parallel infinite-footprint case; the best
    achievable point of the heuristic design space otherwise.
    """
    n = workload.n
    best_mask: np.ndarray | None = None
    best_span = np.inf
    best_sched: Schedule | None = None
    evaluated = 0
    for mask in iter_subsets(n):
        if mask.any():
            try:
                x = optimal_cache_fractions(workload, platform, mask)
            except ModelError:
                continue  # subset of zero-weight apps: cannot hold cache
        else:
            x = np.zeros(n)
        sched = build_equal_finish_schedule(workload, platform, x)
        evaluated += 1
        span = sched.makespan()
        if span < best_span:
            best_span = span
            best_mask = mask.copy()
            best_sched = sched
    assert best_sched is not None and best_mask is not None
    return ExactResult(
        schedule=best_sched,
        subset=best_mask,
        makespan=best_span,
        dominant=is_dominant(workload, platform, best_mask),
        evaluated=evaluated,
    )
