"""Knapsack instances and exact solvers.

The NP-completeness proof of Theorem 1 reduces from the decision
version of Knapsack: given items with integer sizes ``u_i`` and values
``v_i`` and bounds ``U`` (capacity) and ``V`` (target value), is there
a subset with total size <= U and total value >= V?

This module provides the instance type plus two exact solvers — a
dynamic program over capacities (pseudo-polynomial, the textbook
algorithm) and a brute-force enumeration used to cross-check the DP in
tests — so the reduction of :mod:`repro.theory.reduction` can be
verified end-to-end.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..types import ModelError

__all__ = ["KnapsackInstance", "solve_dp", "solve_bruteforce", "decide"]


@dataclass(frozen=True, slots=True)
class KnapsackInstance:
    """A 0/1 knapsack decision instance.

    Parameters
    ----------
    sizes : tuple[int, ...]
        Positive integer item sizes ``u_i``.
    values : tuple[int, ...]
        Positive integer item values ``v_i``.
    capacity : int
        Bound ``U`` on the total size.
    target : int
        Bound ``V`` on the total value (decision threshold).
    """

    sizes: tuple[int, ...]
    values: tuple[int, ...]
    capacity: int
    target: int

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.values):
            raise ModelError("sizes and values must have the same length")
        if not self.sizes:
            raise ModelError("a knapsack instance needs at least one item")
        if any(u <= 0 or not isinstance(u, (int, np.integer)) for u in self.sizes):
            raise ModelError("sizes must be positive integers")
        if any(v <= 0 or not isinstance(v, (int, np.integer)) for v in self.values):
            raise ModelError("values must be positive integers")
        if self.capacity <= 0 or self.target <= 0:
            raise ModelError("capacity and target must be positive integers")

    @property
    def n(self) -> int:
        """Number of items."""
        return len(self.sizes)

    def evaluate(self, subset) -> tuple[int, int]:
        """Total (size, value) of an iterable of item indices."""
        idx = list(subset)
        total_u = sum(self.sizes[i] for i in idx)
        total_v = sum(self.values[i] for i in idx)
        return total_u, total_v

    def is_yes_certificate(self, subset) -> bool:
        """Whether *subset* witnesses a YES answer."""
        total_u, total_v = self.evaluate(subset)
        return total_u <= self.capacity and total_v >= self.target


def solve_dp(instance: KnapsackInstance) -> tuple[int, frozenset[int]]:
    """Maximum achievable value within capacity, with a witness subset.

    Standard ``O(n * U)`` dynamic program, vectorized over capacities:
    ``best[c]`` is the maximum value achievable with total size <= c.
    A parent table reconstructs one optimal subset.
    """
    U = instance.capacity
    n = instance.n
    best = np.zeros(U + 1, dtype=np.int64)
    taken = np.zeros((n, U + 1), dtype=bool)
    for i in range(n):
        u, v = instance.sizes[i], instance.values[i]
        if u > U:
            continue
        candidate = best[: U - u + 1] + v
        improved = candidate > best[u:]
        taken[i, u:] = improved
        best[u:] = np.where(improved, candidate, best[u:])
    # Reconstruct: walk items backwards from capacity U.
    chosen: set[int] = set()
    c = U
    for i in range(n - 1, -1, -1):
        if taken[i, c]:
            chosen.add(i)
            c -= instance.sizes[i]
    return int(best[U]), frozenset(chosen)


def solve_bruteforce(instance: KnapsackInstance) -> tuple[int, frozenset[int]]:
    """Exhaustive enumeration (for cross-checking; ``n <= 20`` advised)."""
    if instance.n > 24:
        raise ModelError(f"brute force limited to 24 items, got {instance.n}")
    best_value = 0
    best_subset: frozenset[int] = frozenset()
    items = range(instance.n)
    for r in range(instance.n + 1):
        for combo in itertools.combinations(items, r):
            total_u, total_v = instance.evaluate(combo)
            if total_u <= instance.capacity and total_v > best_value:
                best_value = total_v
                best_subset = frozenset(combo)
    return best_value, best_subset


def decide(instance: KnapsackInstance, *, method: str = "dp") -> tuple[bool, frozenset[int]]:
    """Decide the instance; returns ``(answer, witness-or-best subset)``."""
    if method == "dp":
        value, subset = solve_dp(instance)
    elif method == "bruteforce":
        value, subset = solve_bruteforce(instance)
    else:
        raise ModelError(f"unknown method {method!r}")
    return value >= instance.target, subset
