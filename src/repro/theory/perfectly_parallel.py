"""Optimality theory for perfectly parallel applications (Section 4).

Executable versions of the paper's structural results:

* :func:`equalize_finish_times` — the exchange argument of Lemma 1:
  given any schedule, shift processors from early finishers to the
  critical application; the makespan never increases.
* :func:`lemma2_schedule` — the closed-form optimal processors for a
  given cache partition, with the Lemma 3 makespan.
* :func:`improve_non_dominant` — the constructive step of Theorem 2:
  evict one dominance-violating application (folding its fraction into
  a surviving one) and recompute; the makespan strictly decreases.
* :func:`iterate_to_dominant` — repeat until dominant; terminates in at
  most ``n`` steps since each eviction shrinks ``IC``.
"""

from __future__ import annotations

import numpy as np

from ..core.application import Workload
from ..core.dominance import (
    is_dominant,
    optimal_cache_fractions,
    violating_applications,
)
from ..core.execution import sequential_times
from ..core.platform import Platform
from ..core.processor_allocation import (
    lemma2_processor_allocation,
    perfectly_parallel_makespan,
)
from ..core.schedule import Schedule
from ..types import ModelError

__all__ = [
    "equalize_finish_times",
    "lemma2_schedule",
    "improve_non_dominant",
    "iterate_to_dominant",
]


def _require_perfectly_parallel(workload: Workload) -> None:
    if not workload.is_perfectly_parallel:
        raise ModelError("this result requires perfectly parallel applications (s = 0)")


def equalize_finish_times(schedule: Schedule) -> Schedule:
    """Lemma 1's exchange argument, applied to a fixed cache partition.

    Keeps the cache fractions and the total processor count of the
    input schedule but redistributes the processors proportionally to
    the sequential times (the fixed point of the pairwise exchange of
    the proof).  For perfectly parallel applications the result has
    equal finish times and a makespan no larger than the input's.
    """
    _require_perfectly_parallel(schedule.workload)
    c = sequential_times(schedule.workload, schedule.platform, schedule.cache)
    total_p = float(schedule.procs.sum())
    procs = total_p * c / c.sum()
    return Schedule(schedule.workload, schedule.platform, procs, schedule.cache)


def lemma2_schedule(workload: Workload, platform: Platform, cache_fractions) -> Schedule:
    """The optimal schedule for a fixed cache partition (Lemmas 1-3)."""
    _require_perfectly_parallel(workload)
    procs = lemma2_processor_allocation(workload, platform, cache_fractions)
    return Schedule(workload, platform, procs, cache_fractions)


def improve_non_dominant(
    workload: Workload,
    platform: Platform,
    subset,
    *,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """One eviction step of Theorem 2.

    Given a non-dominant subset mask, remove one violating application
    (the first, or a random one when *rng* is given) and return the new
    mask.  Raises if the subset is already dominant.
    """
    mask = np.asarray(subset, dtype=bool).copy()
    bad = violating_applications(workload, platform, mask)
    if bad.size == 0:
        raise ModelError("subset is already dominant; nothing to improve")
    k = int(bad[0] if rng is None else rng.choice(bad))
    mask[k] = False
    return mask


def iterate_to_dominant(
    workload: Workload,
    platform: Platform,
    subset,
    *,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, list[float]]:
    """Apply Theorem 2 until the subset is dominant.

    Returns the final mask and the trajectory of Lemma-3 makespans
    (evaluated with Theorem-3 fractions at each step).  The trajectory
    is non-increasing for perfectly parallel workloads — the property
    the tests assert.
    """
    _require_perfectly_parallel(workload)
    mask = np.asarray(subset, dtype=bool).copy()
    trajectory: list[float] = []

    def span(m) -> float:
        x = optimal_cache_fractions(workload, platform, m) if m.any() else np.zeros(workload.n)
        return perfectly_parallel_makespan(workload, platform, x)

    trajectory.append(span(mask))
    while mask.any() and not is_dominant(workload, platform, mask):
        mask = improve_non_dominant(workload, platform, mask, rng=rng)
        trajectory.append(span(mask))
    return mask, trajectory
