"""The NP-completeness reduction of Theorem 1 (Knapsack -> CoSchedCache).

Given a Knapsack instance ``I1 = (u, v, U, V)`` the proof constructs a
CoSchedCache-Dec instance ``I2`` of perfectly parallel applications
with *finite footprints*:

* ``N = max(n, 2U + 1)``, ``eps = 1/(N(N+1))``, ``eta = 1 - 1/N``;
* ``d_i = (u_i * eta / U)^alpha`` — the miss coefficient;
* ``e_i = (d_i^(1/alpha) + eps)^alpha`` — the footprint ceiling, i.e.
  ``a_i = e_i^(1/alpha) * Cs``;
* ``w_i * f_i * ll = z_i = v_i / (1 - d_i/e_i)`` (one factor free);
* makespan bound ``p*K = sum w_i (1 + f_i ls) + sum z_i - V``.

Then ``I1`` is a YES instance iff some cache partition of ``I2``
achieves makespan <= K:

* YES -> give every chosen item its footprint ceiling
  ``x_i = e_i^(1/alpha)`` (they fit: ``sum <= eta + n*eps <= 1``);
* any ``I2`` solution's nonzero subset is a knapsack certificate.

This module materializes the construction as real
:class:`~repro.core.application.Application` objects so the mapping can
be executed and checked numerically, and provides both directions of
the certificate translation plus an exact decision procedure for small
instances (exhaustive over subsets, with the bounded waterfilling of
:func:`repro.core.dominance.bounded_optimal_cache_fractions` giving
the optimal fractions within a subset).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..core.application import Application, Workload
from ..core.dominance import bounded_optimal_cache_fractions
from ..core.execution import sequential_times
from ..core.platform import Platform
from ..types import ModelError
from .knapsack import KnapsackInstance

__all__ = ["ReducedInstance", "reduce_knapsack", "decide_reduced", "certificate_to_fractions",
           "fractions_to_certificate"]


@dataclass(frozen=True)
class ReducedInstance:
    """The CoSchedCache-Dec instance produced by the reduction.

    Attributes
    ----------
    workload, platform
        The constructed applications and machine.
    bound : float
        The makespan bound ``K``.
    eps, eta : float
        The construction constants (kept for tests).
    source : KnapsackInstance
        The originating knapsack instance.
    """

    workload: Workload
    platform: Platform
    bound: float
    eps: float
    eta: float
    source: KnapsackInstance

    def makespan_of_fractions(self, x) -> float:
        """Makespan of the optimal-processor schedule for fractions *x*.

        By Lemma 3 this is ``(1/p) * sum_i Exe_i(1, x_i)`` — the
        applications are perfectly parallel.
        """
        c = sequential_times(self.workload, self.platform, np.asarray(x, dtype=np.float64))
        return float(c.sum() / self.platform.p)

    def accepts(self, x) -> bool:
        """Whether fractions *x* witness makespan <= K (with fp slack)."""
        x = np.asarray(x, dtype=np.float64)
        if np.any(x < 0) or float(x.sum()) > 1 + 1e-12:
            return False
        return self.makespan_of_fractions(x) <= self.bound * (1 + 1e-12)


def reduce_knapsack(
    instance: KnapsackInstance,
    *,
    alpha: float = 0.5,
    p: float = 1.0,
    cache_size: float = 1.0,
    latency_cache: float = 0.0,
    latency_memory: float = 1.0,
) -> ReducedInstance:
    """Construct ``I2`` from a knapsack instance ``I1`` (Theorem 1).

    The free parameters keep the proof's degrees of freedom: any
    ``alpha`` in (0, 1], any positive ``p`` and ``Cs``, and any
    latencies work — the defaults make the algebra transparent
    (``ls = 0``, ``ll = 1`` so ``z_i = w_i f_i``).  We set ``f_i = 1``
    and carry the whole product on ``w_i``.

    The applications' miss coefficients are encoded by measuring the
    baseline miss rate at ``C0 = Cs`` so that ``d_i = m0_i`` exactly.
    """
    n = instance.n
    N = max(n, 2 * instance.capacity + 1)
    eps = 1.0 / (N * (N + 1))
    eta = 1.0 - 1.0 / N

    u = np.asarray(instance.sizes, dtype=np.float64)
    v = np.asarray(instance.values, dtype=np.float64)

    d_root = u * eta / instance.capacity          # d_i^(1/alpha)
    d = d_root**alpha
    e_root = d_root + eps                          # e_i^(1/alpha)
    e = e_root**alpha
    if np.any(d >= 1.0):
        raise ModelError(
            "construction requires u_i * eta < U for every item; "
            "item sizes must not exceed the capacity"
        )

    z = v / (1.0 - d / e)                          # w_i f_i ll
    w = z / latency_memory                         # with f_i = 1

    apps = [
        Application(
            name=f"knap{i}",
            work=float(w[i]),
            seq_fraction=0.0,
            access_freq=1.0,
            miss_rate=float(d[i]),
            footprint=float(e_root[i] * cache_size),
            baseline_cache=cache_size,
        )
        for i in range(n)
    ]
    platform = Platform(
        p=p,
        cache_size=cache_size,
        latency_cache=latency_cache,
        latency_memory=latency_memory,
        alpha=alpha,
        name="reduction",
    )
    # p*K = sum w_i (1 + f_i ls) + sum z_i - V
    pK = float((w * (1.0 + latency_cache)).sum() + z.sum() - instance.target)
    return ReducedInstance(
        workload=Workload(apps),
        platform=platform,
        bound=pK / p,
        eps=eps,
        eta=eta,
        source=instance,
    )


def certificate_to_fractions(reduced: ReducedInstance, subset) -> np.ndarray:
    """Forward direction: knapsack certificate -> cache fractions.

    Every chosen item gets its footprint ceiling
    ``x_i = e_i^(1/alpha) = a_i / Cs``; everything else gets 0.
    """
    n = reduced.workload.n
    x = np.zeros(n)
    caps = reduced.workload.footprint / reduced.platform.cache_size
    for i in subset:
        if not 0 <= i < n:
            raise ModelError(f"item index {i} out of range")
        x[i] = caps[i]
    return x


def fractions_to_certificate(reduced: ReducedInstance, x) -> frozenset[int]:
    """Backward direction: the nonzero subset of an I2 solution."""
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (reduced.workload.n,):
        raise ModelError(f"fractions must have shape ({reduced.workload.n},)")
    return frozenset(np.flatnonzero(x > 0.0).tolist())


def decide_reduced(reduced: ReducedInstance) -> tuple[bool, np.ndarray | None]:
    """Exact decision of the constructed I2 by subset enumeration.

    For every subset of applications, the best achievable makespan uses
    the bounded-waterfilling optimal fractions (upper bound = footprint
    fraction, budget = 1).  Exponential in ``n`` — intended for the
    equivalence tests (``n <= 12``).

    Returns ``(answer, witness fractions or None)``.
    """
    wl = reduced.workload
    pf = reduced.platform
    n = wl.n
    if n > 16:
        raise ModelError(f"exhaustive decision limited to 16 applications, got {n}")
    d = wl.miss_coefficients(pf)
    k = wl.work * wl.freq * d * pf.latency_memory
    caps = np.minimum(1.0, wl.footprint / pf.cache_size)
    for bits in range(1 << n):
        mask = np.array([(bits >> i) & 1 for i in range(n)], dtype=bool)
        x = np.zeros(n)
        if mask.any():
            x[mask] = bounded_optimal_cache_fractions(
                k[mask], caps[mask], pf.alpha, budget=1.0
            )
        if reduced.accepts(x):
            return True, x
    return False, None


def exact_bound_fraction(reduced: ReducedInstance) -> Fraction:
    """The bound ``K`` recomputed in exact rational arithmetic.

    Only available for the default construction parameters
    (``ls = 0``, ``ll = 1``, ``f = 1``); used by tests to confirm the
    float construction did not drift.
    """
    inst = reduced.source
    if reduced.platform.latency_cache != 0.0 or reduced.platform.latency_memory != 1.0:
        raise ModelError("exact bound only defined for ls=0, ll=1")
    n = inst.n
    N = max(n, 2 * inst.capacity + 1)
    eps = Fraction(1, N * (N + 1))
    eta = 1 - Fraction(1, N)
    total = Fraction(0)
    for u_i, v_i in zip(inst.sizes, inst.values):
        droot = Fraction(u_i) * eta / inst.capacity
        eroot = droot + eps
        # z_i = v_i / (1 - d/e); with alpha rational this is not exactly
        # representable in general, so the exact check is restricted to
        # alpha = 1 where d/e = droot/eroot.
        if reduced.platform.alpha != 1.0:
            raise ModelError("exact bound only defined for alpha = 1")
        z = Fraction(v_i) / (1 - droot / eroot)
        total += 2 * z  # w_i (1 + 0) + z_i with w_i = z_i
    return (total - inst.target) / Fraction(reduced.platform.p)
