"""Shared scalar types, numeric tolerances, and exceptions.

Every floating-point comparison in the library goes through the
tolerances defined here so that tests, heuristics, and validators agree
on what "equal" means.  The values are deliberately loose enough to
absorb accumulation error in the vectorized numpy paths while staying
far below any physically meaningful difference in the model (makespans
in the paper's setting are ``>= 1e8`` time units).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ATOL",
    "RTOL",
    "FEASIBILITY_SLACK",
    "ReproError",
    "ModelError",
    "InfeasibleScheduleError",
    "SolverError",
    "as_float_array",
    "isclose",
    "allclose",
]

#: Absolute tolerance for scalar comparisons (time units / fractions).
ATOL: float = 1e-9

#: Relative tolerance for scalar comparisons.
RTOL: float = 1e-9

#: Slack allowed when checking resource-capacity constraints
#: (``sum(p_i) <= p`` and ``sum(x_i) <= 1``).  Binary-search processor
#: allocation meets the budget only up to solver tolerance.
FEASIBILITY_SLACK: float = 1e-6


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ModelError(ReproError, ValueError):
    """Raised when application or platform parameters are invalid."""


class InfeasibleScheduleError(ReproError, ValueError):
    """Raised when a schedule violates a resource or model constraint."""


class SolverError(ReproError, RuntimeError):
    """Raised when a numeric solver fails to converge or bracket."""


def as_float_array(values, *, name: str = "values") -> np.ndarray:
    """Convert *values* to a contiguous 1-D float64 array.

    Parameters
    ----------
    values : array_like
        Input sequence.
    name : str
        Name used in error messages.

    Returns
    -------
    numpy.ndarray
        1-D ``float64`` array (a copy only if conversion requires one).

    Raises
    ------
    ModelError
        If the input is not 1-D or contains NaN.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ModelError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if np.isnan(arr).any():
        raise ModelError(f"{name} contains NaN")
    return arr


def isclose(a: float, b: float, *, rtol: float = RTOL, atol: float = ATOL) -> bool:
    """Scalar closeness with the library-wide default tolerances."""
    return bool(np.isclose(a, b, rtol=rtol, atol=atol))


def allclose(a, b, *, rtol: float = RTOL, atol: float = ATOL) -> bool:
    """Array closeness with the library-wide default tolerances."""
    return bool(np.allclose(a, b, rtol=rtol, atol=atol))
