"""Terminal visualisation helpers (ASCII plots)."""

from .ascii_plot import ascii_plot, plot_result

__all__ = ["ascii_plot", "plot_result"]
