"""Terminal line plots (matplotlib is unavailable in this environment).

Renders multiple series on a character grid with distinct glyphs and a
legend; good enough to see crossovers, plateaus, and ranking — the
properties the paper's figures convey.
"""

from __future__ import annotations

import numpy as np

from ..types import ModelError

__all__ = ["ascii_plot", "plot_result"]

_GLYPHS = "ox+*#@%&sd"


def ascii_plot(
    x,
    series: dict[str, np.ndarray],
    *,
    width: int = 72,
    height: int = 20,
    title: str = "",
    xlabel: str = "",
    logx: bool = False,
) -> str:
    """Render ``{label: y-values}`` against *x* on a character canvas."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise ModelError("x must be a non-empty 1-D array")
    if not series:
        raise ModelError("need at least one series")
    if len(series) > len(_GLYPHS):
        raise ModelError(f"at most {len(_GLYPHS)} series supported")
    for label, y in series.items():
        if np.asarray(y).shape != x.shape:
            raise ModelError(f"series {label!r} length does not match x")

    if logx and np.any(x <= 0):
        raise ModelError("logx requires positive x values")
    xs = np.log10(x) if logx else x
    ys = np.concatenate([np.asarray(v, dtype=np.float64) for v in series.values()])
    finite = np.isfinite(ys)
    if not finite.any():
        raise ModelError("no finite y values to plot")
    ymin, ymax = float(ys[finite].min()), float(ys[finite].max())
    if ymax == ymin:
        ymax = ymin + 1.0
    xmin, xmax = float(xs.min()), float(xs.max())
    if xmax == xmin:
        xmax = xmin + 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, (label, y) in zip(_GLYPHS, series.items()):
        yv = np.asarray(y, dtype=np.float64)
        for xi, yi in zip(xs, yv):
            if not np.isfinite(yi):
                continue
            col = int(round((xi - xmin) / (xmax - xmin) * (width - 1)))
            row = int(round((yi - ymin) / (ymax - ymin) * (height - 1)))
            grid[height - 1 - row][col] = glyph

    left_labels = [f"{ymax:10.3g} ", *([" " * 11] * (height - 2)), f"{ymin:10.3g} "]
    lines = []
    if title:
        lines.append(title)
    for lbl, row in zip(left_labels, grid):
        lines.append(lbl + "|" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    xl = f"{'log10 ' if logx else ''}{xlabel}".strip()
    xaxis = f"{xmin:.3g}".ljust(width // 2) + f"{xmax:.3g}".rjust(width // 2)
    lines.append(" " * 12 + xaxis + (f"   [{xl}]" if xl else ""))
    legend = "  ".join(f"{g}={label}" for g, label in zip(_GLYPHS, series))
    lines.append("legend: " + legend)
    return "\n".join(lines)


def plot_result(result, *, normalize_by: str | None = None,
                metric: str = "makespan", logx: bool = False, **kwargs) -> str:
    """ASCII plot of an :class:`ExperimentResult`'s series."""
    if normalize_by is not None:
        series = result.normalized(normalize_by, metric)
    else:
        series = {name: result.mean(name, metric) for name in result.data
                  if metric in result.data[name]}
    return ascii_plot(
        result.x,
        series,
        title=f"{result.experiment_id}: {result.title}",
        xlabel=result.xlabel,
        logx=logx,
        **kwargs,
    )
