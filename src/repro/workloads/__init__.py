"""Workload data sets: measured NPB constants and synthetic generators."""

from .npb import NPB_DESCRIPTIONS, NPB_TABLE2, npb6_workload_data, npb_application
from .specs import (
    application_from_dict,
    application_to_dict,
    load_spec,
    platform_from_dict,
    platform_to_dict,
    save_spec,
)
from .synthetic import (
    DATASETS,
    SEQ_RANGE,
    WORK_RANGE,
    generate,
    npb6,
    npb_synth,
    random_workload,
)

__all__ = [
    "NPB_DESCRIPTIONS",
    "NPB_TABLE2",
    "npb_application",
    "npb6_workload_data",
    "npb6",
    "npb_synth",
    "random_workload",
    "generate",
    "DATASETS",
    "WORK_RANGE",
    "SEQ_RANGE",
    "save_spec",
    "load_spec",
    "application_to_dict",
    "application_from_dict",
    "platform_to_dict",
    "platform_from_dict",
]
