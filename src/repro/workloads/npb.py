"""NAS Parallel Benchmark application parameters (Tables 1 and 2).

The paper instruments the NPB suite (CLASS=A, 16 cores) with PEBIL to
obtain, per benchmark: the operation count ``w``, the access frequency
``f``, and the miss rate ``m_40MB`` on a 40 MB cache.  Those measured
constants are reproduced verbatim below; the trace-driven substitute
pipeline that regenerates numbers *like* these from a simulated cache
lives in :mod:`repro.cachesim.profiling`.
"""

from __future__ import annotations

import math

from ..core.application import BASELINE_CACHE_BYTES, Application

__all__ = ["NPB_DESCRIPTIONS", "NPB_TABLE2", "npb_application", "npb6_workload_data"]

#: Table 1 — what each benchmark computes.
NPB_DESCRIPTIONS: dict[str, str] = {
    "CG": "Conjugate gradients solve of a large sparse SPD linear system",
    "BT": "Multiple independent block-tridiagonal systems, fixed block size",
    "LU": "Regular sparse upper/lower triangular solves",
    "SP": "Multiple independent scalar pentadiagonal systems",
    "MG": "Multi-grid solve on a sequence of meshes",
    "FT": "Discrete 3-D fast Fourier transform",
}

#: Table 2 — measured (w, f, m_40MB) per benchmark.
NPB_TABLE2: dict[str, tuple[float, float, float]] = {
    "CG": (5.70e10, 5.35e-01, 6.59e-04),
    "BT": (2.10e11, 8.29e-01, 7.31e-03),
    "LU": (1.52e11, 7.50e-01, 1.51e-03),
    "SP": (1.38e11, 7.62e-01, 1.51e-02),
    "MG": (1.23e10, 5.40e-01, 2.62e-02),
    "FT": (1.65e10, 5.82e-01, 1.78e-02),
}


def npb_application(
    name: str,
    *,
    seq_fraction: float = 0.0,
    work: float | None = None,
    footprint: float = math.inf,
) -> Application:
    """Build an :class:`Application` from the Table-2 constants.

    Parameters
    ----------
    name : str
        One of ``CG, BT, LU, SP, MG, FT`` (case-insensitive).
    seq_fraction : float
        Amdahl sequential fraction (the paper's Section 6 draws this in
        [0.01, 0.15] for the synthetic workloads).
    work : float, optional
        Override the measured operation count (NPB-SYNTH randomizes it).
    footprint : float
        Memory footprint; defaults to ``inf`` per Sections 4.2-6.
    """
    key = name.upper()
    try:
        w, f, m40 = NPB_TABLE2[key]
    except KeyError:
        raise KeyError(
            f"unknown NPB benchmark {name!r}; known: {', '.join(NPB_TABLE2)}"
        ) from None
    return Application(
        name=key,
        work=w if work is None else work,
        seq_fraction=seq_fraction,
        access_freq=f,
        miss_rate=m40,
        footprint=footprint,
        baseline_cache=BASELINE_CACHE_BYTES,
    )


def npb6_workload_data() -> list[Application]:
    """The six measured NPB applications, in Table-2 order."""
    return [npb_application(name) for name in NPB_TABLE2]
