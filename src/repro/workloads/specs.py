"""JSON (de)serialization of workloads and platforms.

A *spec* file is a JSON document holding a platform and a list of
applications, so experiments can be pinned to disk and re-run:

.. code-block:: json

    {
      "platform": {"p": 256, "cache_size": 3.2e10, "latency_cache": 0.17,
                   "latency_memory": 1.0, "alpha": 0.5, "name": "taihulight"},
      "applications": [
        {"name": "CG", "work": 5.7e10, "seq_fraction": 0.0,
         "access_freq": 0.535, "miss_rate": 6.59e-4,
         "footprint": null, "baseline_cache": 4.0e7}
      ]
    }

``footprint: null`` encodes an infinite footprint.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from ..core.application import Application, Workload
from ..core.platform import Platform
from ..types import ModelError

__all__ = [
    "application_to_dict",
    "application_from_dict",
    "platform_to_dict",
    "platform_from_dict",
    "save_spec",
    "load_spec",
]


def application_to_dict(app: Application) -> dict:
    """JSON-ready dict for one application (inf footprint -> null)."""
    return {
        "name": app.name,
        "work": app.work,
        "seq_fraction": app.seq_fraction,
        "access_freq": app.access_freq,
        "miss_rate": app.miss_rate,
        "footprint": None if math.isinf(app.footprint) else app.footprint,
        "baseline_cache": app.baseline_cache,
    }


def application_from_dict(data: dict) -> Application:
    """Inverse of :func:`application_to_dict`."""
    try:
        footprint = data.get("footprint")
        return Application(
            name=str(data["name"]),
            work=float(data["work"]),
            seq_fraction=float(data.get("seq_fraction", 0.0)),
            access_freq=float(data.get("access_freq", 0.0)),
            miss_rate=float(data.get("miss_rate", 0.0)),
            footprint=math.inf if footprint is None else float(footprint),
            baseline_cache=float(data.get("baseline_cache", 40e6)),
        )
    except KeyError as exc:
        raise ModelError(f"application spec missing required key {exc}") from None


def platform_to_dict(platform: Platform) -> dict:
    """JSON-ready dict for a platform."""
    return {
        "p": platform.p,
        "cache_size": platform.cache_size,
        "latency_cache": platform.latency_cache,
        "latency_memory": platform.latency_memory,
        "alpha": platform.alpha,
        "name": platform.name,
    }


def platform_from_dict(data: dict) -> Platform:
    """Inverse of :func:`platform_to_dict`."""
    try:
        return Platform(
            p=float(data["p"]),
            cache_size=float(data["cache_size"]),
            latency_cache=float(data.get("latency_cache", 0.17)),
            latency_memory=float(data.get("latency_memory", 1.0)),
            alpha=float(data.get("alpha", 0.5)),
            name=str(data.get("name", "custom")),
        )
    except KeyError as exc:
        raise ModelError(f"platform spec missing required key {exc}") from None


def save_spec(path: str | Path, workload: Workload, platform: Platform) -> None:
    """Write a workload+platform spec to *path* (pretty-printed JSON)."""
    doc = {
        "platform": platform_to_dict(platform),
        "applications": [application_to_dict(a) for a in workload],
    }
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def load_spec(path: str | Path) -> tuple[Workload, Platform]:
    """Read a spec written by :func:`save_spec`."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or "platform" not in doc or "applications" not in doc:
        raise ModelError(f"{path}: not a workload spec (need 'platform' and 'applications')")
    platform = platform_from_dict(doc["platform"])
    workload = Workload(application_from_dict(a) for a in doc["applications"])
    return workload, platform
