"""Synthetic workload generators of Section 6.1 and Appendix A.

Three data sets, named as in the paper:

* ``NPB-6`` — the six measured applications, verbatim.
* ``NPB-SYNTH`` — applications drawn from the NPB profiles with the
  work ``w`` re-drawn uniformly in [1e8, 1e12] (the paper "varies the
  work randomly between 1E+8 and 1E+12"; a *linear* uniform draw
  reproduces the paper's reported Fair-vs-AllProcCache ratio of ~1.9,
  a log-uniform one does not); ``f`` and ``m_40MB`` are taken from a
  randomly chosen NPB benchmark.  Pass ``log_work=True`` for the
  heavier-tailed log-uniform variant.
* ``RANDOM`` — everything re-drawn: ``w`` uniform in [1e8, 1e12],
  ``f`` in [0.1, 0.9], ``m_40MB`` log-uniform in [9e-4, 9e-2] (the
  appendix lists "1E-02 to 9E-04"; we use the inclusive hull of the
  quoted bounds).

Unless stated otherwise the sequential fraction is drawn uniformly in
[0.01, 0.15] ("taken randomly between 1% and 15%").  All draws flow
through an explicit :class:`numpy.random.Generator` for
reproducibility.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.application import Application, Workload
from ..types import ModelError
from .npb import NPB_TABLE2, npb6_workload_data

__all__ = [
    "WORK_RANGE",
    "SEQ_RANGE",
    "npb6",
    "npb_synth",
    "random_workload",
    "generate",
    "DATASETS",
]

#: Work range of Section 6.1 (operations).
WORK_RANGE: tuple[float, float] = (1e8, 1e12)

#: Sequential-fraction range of Section 6.1.
SEQ_RANGE: tuple[float, float] = (0.01, 0.15)

#: RANDOM data set parameter ranges (Appendix A).
RANDOM_FREQ_RANGE: tuple[float, float] = (1e-1, 9e-1)
RANDOM_MISS_RANGE: tuple[float, float] = (9e-4, 9e-2)


def _draw_seq(rng: np.random.Generator, n: int, seq_range=SEQ_RANGE) -> np.ndarray:
    lo, hi = seq_range
    return rng.uniform(lo, hi, size=n)


def _draw_loguniform(rng: np.random.Generator, lo: float, hi: float, n: int) -> np.ndarray:
    return np.exp(rng.uniform(np.log(lo), np.log(hi), size=n))


def _draw_uniform(rng: np.random.Generator, lo: float, hi: float, n: int) -> np.ndarray:
    return rng.uniform(lo, hi, size=n)


def npb6(*, seq_range: tuple[float, float] | None = SEQ_RANGE,
         rng: np.random.Generator | None = None) -> Workload:
    """The NPB-6 data set: six measured applications.

    ``seq_range=None`` keeps them perfectly parallel; otherwise each
    application receives a random sequential fraction (needs *rng*).
    """
    apps = npb6_workload_data()
    if seq_range is None:
        return Workload(apps)
    if rng is None:
        rng = np.random.default_rng()
    seqs = _draw_seq(rng, len(apps), seq_range)
    return Workload(
        replace(app, seq_fraction=float(s)) for app, s in zip(apps, seqs)
    )


def npb_synth(
    n: int,
    rng: np.random.Generator,
    *,
    work_range: tuple[float, float] = WORK_RANGE,
    seq_range: tuple[float, float] | None = SEQ_RANGE,
    log_work: bool = False,
) -> Workload:
    """The NPB-SYNTH data set: NPB profiles with randomized work.

    Each synthetic application copies ``(f, m_40MB)`` from a uniformly
    chosen NPB benchmark and draws its work uniformly from
    *work_range* (log-uniformly with ``log_work=True``).
    """
    if n < 1:
        raise ModelError(f"need at least one application, got n={n}")
    profiles = list(NPB_TABLE2.items())
    picks = rng.integers(len(profiles), size=n)
    draw = _draw_loguniform if log_work else _draw_uniform
    works = draw(rng, *work_range, n)
    seqs = _draw_seq(rng, n, seq_range) if seq_range is not None else np.zeros(n)
    apps = []
    for i in range(n):
        base_name, (_, f, m40) = profiles[int(picks[i])]
        apps.append(
            Application(
                name=f"{base_name}-synth{i}",
                work=float(works[i]),
                seq_fraction=float(seqs[i]),
                access_freq=f,
                miss_rate=m40,
            )
        )
    return Workload(apps)


def random_workload(
    n: int,
    rng: np.random.Generator,
    *,
    work_range: tuple[float, float] = WORK_RANGE,
    freq_range: tuple[float, float] = RANDOM_FREQ_RANGE,
    miss_range: tuple[float, float] = RANDOM_MISS_RANGE,
    seq_range: tuple[float, float] | None = SEQ_RANGE,
    log_work: bool = False,
) -> Workload:
    """The RANDOM data set: every parameter drawn independently."""
    if n < 1:
        raise ModelError(f"need at least one application, got n={n}")
    draw = _draw_loguniform if log_work else _draw_uniform
    works = draw(rng, *work_range, n)
    freqs = rng.uniform(*freq_range, size=n)
    misses = _draw_loguniform(rng, *miss_range, n)
    seqs = _draw_seq(rng, n, seq_range) if seq_range is not None else np.zeros(n)
    return Workload(
        Application(
            name=f"rand{i}",
            work=float(works[i]),
            seq_fraction=float(seqs[i]),
            access_freq=float(freqs[i]),
            miss_rate=float(misses[i]),
        )
        for i in range(n)
    )


def generate(dataset: str, n: int, rng: np.random.Generator, **kwargs) -> Workload:
    """Generate a named data set (``npb-6``, ``npb-synth``, ``random``).

    ``npb-6`` ignores *n* beyond requiring ``n <= 6`` and returns the
    first *n* of the six measured applications (the paper always uses
    all six).
    """
    key = dataset.lower()
    if key in ("npb-6", "npb6"):
        wl = npb6(rng=rng, **kwargs)
        if n > wl.n:
            raise ModelError(f"NPB-6 has only {wl.n} applications, asked for {n}")
        return wl[:n] if n < wl.n else wl
    if key in ("npb-synth", "npbsynth"):
        return npb_synth(n, rng, **kwargs)
    if key == "random":
        return random_workload(n, rng, **kwargs)
    raise ModelError(f"unknown dataset {dataset!r}; known: {', '.join(DATASETS)}")


#: Names accepted by :func:`generate`.
DATASETS: tuple[str, ...] = ("npb-6", "npb-synth", "random")
