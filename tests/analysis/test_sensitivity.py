"""Tests for misestimation regret and parameter elasticities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    alpha_misestimation_regret,
    evaluate_under,
    missrate_misestimation_regret,
    parameter_elasticities,
)
from repro.core import get_scheduler
from repro.machine import small_llc, taihulight
from repro.types import ModelError
from repro.workloads import npb_synth


@pytest.fixture
def pf():
    return small_llc()


@pytest.fixture
def wl(rng):
    return npb_synth(10, rng).with_miss_rate(0.3)


class TestEvaluateUnder:
    def test_identity(self, wl, pf):
        s = get_scheduler("dominant-minratio")(wl, pf, None)
        assert evaluate_under(s, pf) == pytest.approx(s.makespan())

    def test_true_platform_changes_times(self, wl, pf):
        s = get_scheduler("dominant-minratio")(wl, pf, None)
        slower = pf.with_latencies(latency_memory=2.0)
        assert evaluate_under(s, slower) > s.makespan()

    def test_workload_size_mismatch(self, wl, pf, rng):
        s = get_scheduler("0cache")(wl, pf, None)
        with pytest.raises(ModelError):
            evaluate_under(s, pf, npb_synth(3, rng))


class TestAlphaRegret:
    def test_zero_at_truth(self, wl, pf):
        assert alpha_misestimation_regret(
            wl, pf, alpha_true=0.5, alpha_assumed=0.5
        ) == pytest.approx(0.0, abs=1e-12)

    def test_nonnegative(self, wl, pf):
        for assumed in (0.3, 0.4, 0.6, 0.7):
            r = alpha_misestimation_regret(
                wl, pf, alpha_true=0.5, alpha_assumed=assumed
            )
            assert r >= -1e-9, assumed

    def test_worse_with_larger_error(self, wl, pf):
        near = alpha_misestimation_regret(wl, pf, alpha_true=0.5, alpha_assumed=0.45)
        far = alpha_misestimation_regret(wl, pf, alpha_true=0.5, alpha_assumed=0.2)
        assert far >= near - 1e-9


class TestMissRateRegret:
    def test_zero_at_unbiased(self, wl, pf):
        assert missrate_misestimation_regret(wl, pf, bias=1.0) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_nonnegative(self, wl, pf):
        for bias in (0.25, 0.5, 2.0, 4.0):
            assert missrate_misestimation_regret(wl, pf, bias=bias) >= -1e-9

    def test_rejects_bad_bias(self, wl, pf):
        with pytest.raises(ModelError):
            missrate_misestimation_regret(wl, pf, bias=0.0)

    def test_robust_on_paper_platform(self, rng):
        """On the 32 GB LLC the schedule barely depends on m0 - the
        model is robust exactly where the paper runs it."""
        wl = npb_synth(10, rng)
        r = missrate_misestimation_regret(wl, taihulight(), bias=4.0)
        assert r < 0.02


class TestElasticities:
    def test_work_dominates(self, rng):
        """Makespan responds most to the work estimate of heavy apps."""
        wl = npb_synth(6, rng)
        el = parameter_elasticities(wl, taihulight())
        assert el["work"].max() > el["freq"].max()
        assert el["work"].max() > el["miss"].max()

    def test_work_elasticity_bounded_by_one(self, rng):
        wl = npb_synth(6, rng)
        el = parameter_elasticities(wl, taihulight())
        assert np.all(el["work"] <= 1.0 + 1e-6)
        assert np.all(el["work"] >= -1e-6)

    def test_miss_matters_under_pressure(self, wl, pf):
        el = parameter_elasticities(wl, pf)
        assert el["miss"].max() > 0.0

    def test_all_four_parameters_reported(self, rng):
        el = parameter_elasticities(npb_synth(4, rng), taihulight())
        assert set(el) == {"work", "freq", "miss", "seq"}
        for v in el.values():
            assert v.shape == (4,)
