"""Disk tier: atomic store mechanics, decision tier, npz codec edge cases."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cache import (
    ALL_TIER_PATTERNS,
    CACHE_DIR_ENV,
    ContentAddressedStore,
    DecisionDiskTier,
    resolve_cache_dir,
)
from repro.experiments.results import ExperimentResult


class TestResolveCacheDir:
    def test_argument_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, "/elsewhere")
        assert resolve_cache_dir(tmp_path) == tmp_path

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert resolve_cache_dir(None) == tmp_path

    def test_unset_disables(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert resolve_cache_dir(None) is None


class TestContentAddressedStore:
    def test_patterns_scope_the_view(self, tmp_path):
        (tmp_path / "a.npz").write_bytes(b"x" * 10)
        (tmp_path / "decisions").mkdir()
        (tmp_path / "decisions" / "k.json").write_bytes(b"{}")
        (tmp_path / "README").write_bytes(b"hello")

        npz = ContentAddressedStore(tmp_path, patterns=("*.npz",))
        assert [p.name for p in npz.entries()] == ["a.npz"]
        both = ContentAddressedStore(tmp_path, patterns=ALL_TIER_PATTERNS)
        assert {p.name for p in both.entries()} == {"a.npz", "k.json"}
        # The README is invisible to every view, prune included.
        both.prune(0)
        assert (tmp_path / "README").exists()
        assert both.entries() == []

    def test_write_atomic_failure_warns_with_label(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        store = ContentAddressedStore(blocker, label="result cache")
        with pytest.warns(RuntimeWarning, match="result cache"):
            assert store.write_atomic(blocker / "x.npz", b"data") is False

    def test_prune_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError):
            ContentAddressedStore(tmp_path).prune(-1)

    def test_missing_directory_is_empty(self, tmp_path):
        store = ContentAddressedStore(tmp_path / "nope")
        assert store.entries() == []
        assert store.size_bytes() == 0


class TestDecisionDiskTier:
    def test_round_trip_and_recency(self, tmp_path):
        tier = DecisionDiskTier(tmp_path)
        key = "a" * 64
        assert tier.get(key) is None
        assert tier.put(key, {"makespan": 1.5, "names": ["x"]})
        assert key in tier
        assert tier.get(key) == {"makespan": 1.5, "names": ["x"]}
        assert tier.peek(key) == {"makespan": 1.5, "names": ["x"]}
        assert len(tier.entries()) == 1
        assert tier.size_bytes() > 0

    def test_canonical_json_on_disk(self, tmp_path):
        tier = DecisionDiskTier(tmp_path)
        tier.put("b" * 64, {"z": 1, "a": 2})
        raw = tier.path_for("b" * 64).read_text()
        assert raw == '{"a":2,"z":1}'

    def test_unsafe_keys_are_rejected(self, tmp_path):
        tier = DecisionDiskTier(tmp_path)
        for key in ("../escape", "a/b", "", "x" * 256, "sp ace"):
            assert not tier.put(key, {"v": 1})
            assert tier.get(key) is None
            assert key not in tier

    def test_torn_or_foreign_entries_are_misses(self, tmp_path):
        tier = DecisionDiskTier(tmp_path)
        (tmp_path / "decisions").mkdir()
        (tmp_path / "decisions" / "bad.json").write_text("{ not json")
        (tmp_path / "decisions" / "list.json").write_text("[1, 2]")
        assert tier.get("bad") is None
        assert tier.get("list") is None


class TestResultCacheEmptyData:
    """Satellite bug: StopIteration on a result with no scheduler data."""

    def _result(self):
        return ExperimentResult(
            experiment_id="t",
            title="empty",
            xlabel="n",
            x=np.array([1.0, 2.0]),
            data={},
            meta={"note": "no schedulers"},
        )

    def test_store_and_load_round_trip(self, tmp_path):
        from repro.experiments import ResultCache

        class _Exp:  # duck-typed: only what path_for needs
            experiment_id = "t"
            title = "empty"
            xlabel = "n"
            points = np.array([1.0, 2.0])
            reps = 1
            seed = 0
            schedulers = ()
            metrics = {}
            factory = staticmethod(lambda point, rng: (None, None))
            evaluate = None

        cache = ResultCache(tmp_path)
        exp = _Exp()
        path = cache.store(exp, self._result())  # must not raise
        assert path is not None and path.exists()
        loaded = cache.load(exp)
        assert loaded is not None
        assert loaded.data == {}
        assert loaded.meta == {"note": "no schedulers"}
        assert np.array_equal(loaded.x, np.array([1.0, 2.0]))
        meta = json.loads(str(np.load(path)["meta_json"]))
        assert meta["schedulers"] == [] and meta["metrics"] == []
