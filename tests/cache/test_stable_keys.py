"""Cross-process stability of cache keys and shard assignment.

The whole point of content addressing is that two processes agree on
the name of the same work.  Python's builtin ``hash()`` is randomized
per process (PYTHONHASHSEED), so anything derived from it silently
disagrees across processes — which is exactly how the original
sharded cache scattered identical fingerprints onto different shards,
and how ``repr()`` of nested code objects (memory addresses) made
spec fingerprints unique per process.  These tests run the actual
key derivations in subprocesses with *different* hash seeds and
assert bit-identical answers.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.cache import stable_shard_index

_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Probe run in a fresh interpreter: prints one line per derived key.
#: The factory deliberately nests a lambda (a code object in
#: ``co_consts``) — the exact shape whose repr used to embed a memory
#: address and break fingerprint stability.
_PROBE = """
import numpy as np
from repro.cache import stable_shard_index
from repro.experiments import Experiment, spec_fingerprint
from repro.machine import taihulight
from repro.workloads import npb_synth


def factory(point, rng):
    pick = lambda n: npb_synth(max(1, int(n)), rng)
    return pick(point), taihulight()


exp = Experiment(
    experiment_id="probe",
    title="probe",
    xlabel="n",
    points=np.array([2.0, 4.0]),
    factory=factory,
    schedulers=("fair",),
    reps=2,
    seed=7,
)
print(spec_fingerprint(exp))
for key in ("0a1b2c3d" + "e" * 56, "deadbeef", "plain-key", "k", ""):
    print(stable_shard_index(key, 7))
"""


def _run_probe(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestCrossProcessStability:
    def test_fingerprints_and_shards_survive_hash_randomization(self):
        """Two interpreters with different hash seeds agree on every key."""
        out1 = _run_probe("1")
        out2 = _run_probe("2")
        assert out1 == out2
        lines = out1.strip().splitlines()
        # First line is a SHA-256 hex spec fingerprint.
        assert len(lines[0]) == 64
        int(lines[0], 16)

    def test_parent_agrees_on_shard_assignment(self):
        """The assignment in *this* process matches the subprocesses'."""
        out = _run_probe("3").strip().splitlines()
        keys = ("0a1b2c3d" + "e" * 56, "deadbeef", "plain-key", "k", "")
        assert [int(x) for x in out[1:]] == [
            stable_shard_index(key, 7) for key in keys]


class TestStableShardIndex:
    def test_hex_prefix_bits(self):
        assert stable_shard_index("deadbeef" + "0" * 56, 0xF) == 0xDEADBEEF & 0xF
        assert stable_shard_index("00000000", 0xFF) == 0

    def test_non_hex_falls_back_deterministically(self):
        a = stable_shard_index("not-hex-at-all", 7)
        assert a == stable_shard_index("not-hex-at-all", 7)
        assert 0 <= a <= 7

    def test_distributes_over_shards(self):
        import hashlib

        mask = 7
        seen = {
            stable_shard_index(hashlib.sha256(str(i).encode()).hexdigest(), mask)
            for i in range(256)
        }
        assert seen == set(range(8))
