"""TieredCache semantics: transparency, promotion, exact counters."""

from __future__ import annotations

import threading

import pytest

from repro.cache import (
    DecisionDiskTier,
    LRUCache,
    ShardedClockCache,
    TieredCache,
    TieredCacheStats,
    make_memory_backend,
)


def _hexkey(i: int) -> str:
    return f"{i:064x}"


def _tiered(tmp_path, *, capacity=8, shards=1):
    return TieredCache(
        make_memory_backend(capacity, shards=shards),
        disk=DecisionDiskTier(tmp_path),
    )


class TestMemoryOnlyTransparency:
    """Without a disk tier the wrapper must be invisible."""

    def test_stats_are_the_backend_snapshot(self):
        for backend in (LRUCache(4), ShardedClockCache(64, shards=4)):
            tiered = TieredCache(backend)
            tiered.put(_hexkey(1), "v")
            assert tiered.get(_hexkey(1)) == "v"
            assert tiered.get(_hexkey(2)) is None
            # Bit-identical counters and keys: same as_dict the backend
            # would produce on its own — no disk_* keys appear.
            assert tiered.stats().as_dict() == backend.stats().as_dict()
            assert "disk_hits" not in tiered.stats().as_dict()

    def test_counter_exactness(self):
        tiered = TieredCache(LRUCache(4))
        lookups = 0
        for i in range(20):
            tiered.get(_hexkey(i % 6))
            lookups += 1
            if i % 3 == 0:
                tiered.put(_hexkey(i % 6), i)
        st = tiered.stats()
        assert st.hits + st.misses == lookups

    def test_geometry_passthrough(self):
        assert TieredCache(LRUCache(4)).capacity == 4
        assert TieredCache(LRUCache(4)).shards is None
        assert TieredCache(ShardedClockCache(64, shards=4)).shards == 4


class TestDiskPromotion:
    def test_cross_instance_warm_start(self, tmp_path):
        first = _tiered(tmp_path)
        first.put(_hexkey(1), {"answer": 42})

        # A brand-new memory tier over the same directory: the very
        # first lookup is a hit, served and promoted from disk.
        fresh = _tiered(tmp_path)
        assert len(fresh) == 0
        assert fresh.get(_hexkey(1)) == {"answer": 42}
        st = fresh.stats()
        assert isinstance(st, TieredCacheStats)
        assert (st.hits, st.misses, st.disk_hits) == (1, 0, 1)
        # Promoted: the second lookup is a pure memory hit.
        assert fresh.get(_hexkey(1)) == {"answer": 42}
        st = fresh.stats()
        assert (st.hits, st.misses, st.disk_hits) == (2, 0, 1)

    def test_miss_everywhere_counts_one_miss(self, tmp_path):
        tiered = _tiered(tmp_path)
        assert tiered.get(_hexkey(9)) is None
        st = tiered.stats()
        assert (st.hits, st.misses) == (0, 1)

    def test_get_many_promotes_disk_hits(self, tmp_path):
        warm = _tiered(tmp_path)
        for i in range(4):
            warm.put(_hexkey(i), {"i": i})
        fresh = _tiered(tmp_path)
        keys = [_hexkey(i) for i in range(6)]
        assert fresh.get_many(keys) == [{"i": 0}, {"i": 1}, {"i": 2},
                                        {"i": 3}, None, None]
        st = fresh.stats()
        assert st.hits + st.misses == len(keys)
        assert (st.hits, st.misses, st.disk_hits) == (4, 2, 4)

    def test_exactness_under_mixed_traffic(self, tmp_path):
        tiered = _tiered(tmp_path, capacity=4)
        lookups = 0
        for i in range(40):
            tiered.get(_hexkey(i % 10))
            lookups += 1
            tiered.put(_hexkey(i % 7), i)
        # Evicted-from-memory entries come back from disk as hits.
        st = tiered.stats()
        assert st.hits + st.misses == lookups

    def test_clear_drops_memory_not_disk(self, tmp_path):
        tiered = _tiered(tmp_path)
        tiered.put(_hexkey(1), {"v": 1})
        tiered.clear()
        assert len(tiered) == 0
        assert _hexkey(1) in tiered  # still on disk
        assert tiered.get(_hexkey(1)) == {"v": 1}
        assert tiered.stats().disk_hits == 1

    def test_peek_is_counter_free(self, tmp_path):
        warm = _tiered(tmp_path)
        warm.put(_hexkey(1), {"v": 1})
        fresh = _tiered(tmp_path)
        assert fresh.peek(_hexkey(1)) == {"v": 1}
        assert fresh.peek(_hexkey(2)) is None
        st = fresh.stats()
        assert (st.hits, st.misses, st.disk_hits) == (0, 0, 0)

    def test_decode_failure_is_a_miss(self, tmp_path):
        def boom(payload):
            raise ValueError("stale format")

        warm = TieredCache(LRUCache(4), disk=DecisionDiskTier(tmp_path))
        warm.put(_hexkey(1), {"v": 1})
        fresh = TieredCache(LRUCache(4), disk=DecisionDiskTier(tmp_path),
                            decode=boom)
        assert fresh.get(_hexkey(1)) is None
        st = fresh.stats()
        assert (st.hits, st.misses) == (0, 1)

    def test_metrics_keys_are_additive_only(self, tmp_path):
        plain = TieredCache(make_memory_backend(8, shards=4)).stats().as_dict()
        tiered = _tiered(tmp_path, shards=4).stats().as_dict()
        assert set(plain) <= set(tiered)
        assert set(tiered) - set(plain) == {
            "disk_hits", "disk_entries", "disk_bytes"}


class TestEvictionDeterminism:
    """The same operation sequence always leaves the same cache."""

    @pytest.mark.parametrize("shards", [1, 4])
    def test_replay_is_identical(self, tmp_path, shards):
        def replay(cache):
            for i in range(200):
                cache.put(_hexkey(i * 7 % 60), i)
                cache.get(_hexkey(i * 3 % 60))
            return sorted(
                (k, cache.peek(k))
                for k in (_hexkey(j) for j in range(60))
                if cache.peek(k) is not None
            )

        a = replay(TieredCache(make_memory_backend(32, shards=shards)))
        b = replay(TieredCache(make_memory_backend(32, shards=shards)))
        assert a == b
        sa = TieredCache(make_memory_backend(32, shards=shards))
        replay(sa)


class TestThreadedExactness:
    def test_hammer(self, tmp_path):
        tiered = _tiered(tmp_path, capacity=16, shards=4)
        lookups_per_thread = 300
        nthreads = 8

        def worker(seed: int) -> None:
            for i in range(lookups_per_thread):
                k = _hexkey((seed * 31 + i) % 40)
                if tiered.get(k) is None and i % 2 == 0:
                    tiered.put(k, i)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        st = tiered.stats()
        assert st.hits + st.misses == nthreads * lookups_per_thread
