"""Tests for the synthetic address-stream generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cachesim import (
    interleave,
    phased_stream,
    strided_stream,
    working_set_stream,
    zipf_stream,
)
from repro.types import ModelError


class TestStrided:
    def test_wraps_at_footprint(self):
        s = strided_stream(4, 10)
        assert s.tolist() == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_stride_applied(self):
        s = strided_stream(8, 4, stride=3)
        assert s.tolist() == [0, 3, 6, 1]

    def test_rejects_bad_args(self):
        with pytest.raises(ModelError):
            strided_stream(0, 10)
        with pytest.raises(ModelError):
            strided_stream(4, 0)
        with pytest.raises(ModelError):
            strided_stream(4, 4, stride=0)


class TestWorkingSet:
    def test_within_footprint(self, rng):
        s = working_set_stream(100, 5000, rng)
        assert s.min() >= 0 and s.max() < 100
        assert s.size == 5000

    def test_covers_footprint(self, rng):
        s = working_set_stream(16, 2000, rng)
        assert np.unique(s).size == 16


class TestZipf:
    def test_within_footprint(self, rng):
        s = zipf_stream(1000, 5000, rng)
        assert s.min() >= 0 and s.max() < 1000

    def test_skew_concentrates_reuse(self, rng):
        """Higher skew => the top line takes a larger share of accesses."""
        low = zipf_stream(1000, 20_000, np.random.default_rng(0), skew=0.8)
        high = zipf_stream(1000, 20_000, np.random.default_rng(0), skew=2.0)

        def top_share(s):
            _, counts = np.unique(s, return_counts=True)
            return counts.max() / s.size

        assert top_share(high) > top_share(low)

    def test_rejects_bad_skew(self, rng):
        with pytest.raises(ModelError):
            zipf_stream(10, 10, rng, skew=0.0)


class TestPhased:
    def test_disjoint_phases(self, rng):
        s = phased_stream([(16, 100), (16, 100)], rng)
        first, second = s[:100], s[100:]
        assert set(first.tolist()).isdisjoint(set(second.tolist()))

    def test_kinds(self, rng):
        for kind in ("working-set", "zipf", "strided"):
            s = phased_stream([(8, 50)], rng, kind=kind)
            assert s.size == 50

    def test_unknown_kind(self, rng):
        with pytest.raises(ModelError):
            phased_stream([(8, 50)], rng, kind="mystery")

    def test_empty_rejected(self, rng):
        with pytest.raises(ModelError):
            phased_stream([], rng)


class TestInterleave:
    def test_round_robin_order(self):
        out = interleave([np.array([0, 1]), np.array([5, 6])], tag_bits=4)
        assert out.tolist() == [0, 5 + 16, 1, 6 + 16]

    def test_unequal_lengths(self):
        out = interleave([np.array([0, 1, 2]), np.array([9])], tag_bits=4)
        assert out.tolist() == [0, 9 + 16, 1, 2]

    def test_tags_keep_spaces_disjoint(self):
        a = np.array([0, 1])
        b = np.array([0, 1])
        out = interleave([a, b])
        assert np.unique(out).size == 4

    def test_overflow_detected(self):
        with pytest.raises(ModelError):
            interleave([np.array([1 << 20])], tag_bits=20)

    def test_empty_list_rejected(self):
        with pytest.raises(ModelError):
            interleave([])
