"""Tests for the LRU simulator and the Mattson stack algorithm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim import (
    LRUCache,
    miss_counts_by_ways,
    miss_rate_curve,
    set_stack_distances,
    stack_distances,
    working_set_stream,
    zipf_stream,
)
from repro.types import ModelError

_small_trace = st.lists(st.integers(min_value=0, max_value=31),
                        min_size=1, max_size=200).map(np.asarray)


class TestLRUCache:
    def test_hit_after_access(self):
        c = LRUCache(1, 4)
        assert not c.access(1)  # cold miss
        assert c.access(1)      # hit

    def test_eviction_order_is_lru(self):
        c = LRUCache(1, 2)
        c.access(1)
        c.access(2)
        c.access(1)  # 1 is now MRU
        c.access(3)  # evicts 2
        assert c.access(1)
        assert not c.access(2)

    def test_capacity_invariant(self):
        c = LRUCache(4, 2)
        rng = np.random.default_rng(0)
        c.run(rng.integers(0, 100, size=500))
        assert len(c.contents()) <= c.capacity_lines
        # per-set occupancy bound
        for line_set in range(4):
            in_set = [l for l in c.contents() if l % 4 == line_set]
            assert len(in_set) <= 2

    def test_counters(self):
        c = LRUCache(1, 2)
        c.run(np.array([1, 1, 2, 3, 1]))
        # 1 miss, 1 hit, 2 miss, 3 miss (evicts 1), 1 miss
        assert c.hits == 1
        assert c.misses == 4
        assert c.accesses == 5
        assert c.miss_rate == pytest.approx(0.8)

    def test_reset_counters(self):
        c = LRUCache(1, 2)
        c.run(np.array([1, 2, 3]))
        c.reset_counters()
        assert c.accesses == 0
        assert c.miss_rate == 0.0
        assert c.access(3)  # contents survived the reset

    def test_rejects_bad_geometry(self):
        with pytest.raises(ModelError):
            LRUCache(0, 4)
        with pytest.raises(ModelError):
            LRUCache(4, 0)


class TestStackDistances:
    def test_hand_example(self):
        # trace: a b a c b a
        d = stack_distances(np.array([0, 1, 0, 2, 1, 0]))
        assert np.isinf(d[0]) and np.isinf(d[1]) and np.isinf(d[3])
        assert d[2] == 2  # a..b..a: 1 distinct other + itself
        assert d[4] == 3  # b a c b
        assert d[5] == 3  # a c b a

    def test_immediate_reuse_distance_one(self):
        d = stack_distances(np.array([7, 7]))
        assert d[1] == 1

    def test_empty_trace(self):
        assert stack_distances(np.array([], dtype=np.int64)).size == 0

    @given(trace=_small_trace)
    @settings(max_examples=40, deadline=None)
    def test_matches_direct_lru_fully_associative(self, trace):
        """Stack algorithm == direct LRU for every capacity."""
        d = stack_distances(trace)
        for ways in (1, 2, 4, 8, 32):
            c = LRUCache(1, ways)
            c.run(trace)
            assert c.misses == miss_counts_by_ways(d, ways)[0]

    @given(trace=_small_trace, num_sets=st.sampled_from([2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_matches_direct_lru_set_associative(self, trace, num_sets):
        d = set_stack_distances(trace, num_sets)
        for ways in (1, 2, 4):
            c = LRUCache(num_sets, ways)
            c.run(trace)
            assert c.misses == miss_counts_by_ways(d, ways)[0]

    @given(trace=_small_trace)
    @settings(max_examples=40, deadline=None)
    def test_inclusion_property(self, trace):
        """LRU inclusion: a bigger cache never misses more on any trace."""
        d = stack_distances(trace)
        ways = np.array([1, 2, 4, 8, 16, 32])
        misses = miss_counts_by_ways(d, ways)
        assert np.all(np.diff(misses) <= 0)

    def test_cold_misses_equal_distinct_lines(self):
        rng = np.random.default_rng(1)
        trace = working_set_stream(64, 1000, rng)
        d = stack_distances(trace)
        assert int(np.isinf(d).sum()) == np.unique(trace).size


class TestMissRateCurve:
    def test_working_set_knee(self):
        """Miss rate collapses once the working set fits."""
        rng = np.random.default_rng(2)
        trace = zipf_stream(512, 30_000, rng, skew=1.2)
        rates = miss_rate_curve(trace, np.array([16, 64, 256, 1024]))
        assert np.all(np.diff(rates) <= 0)
        assert rates[-1] < 0.1  # everything fits at 1024 lines

    def test_divisibility_check(self):
        with pytest.raises(ModelError):
            miss_rate_curve(np.array([1, 2, 3]), np.array([6]), num_sets=4)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ModelError):
            miss_rate_curve(np.array([1, 2]), np.array([0]))

    def test_rejects_bad_ways(self):
        with pytest.raises(ModelError):
            miss_counts_by_ways(np.array([1.0]), np.array([0]))
