"""Tests for way-partitioned and shared co-run simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cachesim import (
    LRUCache,
    PartitionedCache,
    corun_partitioned,
    corun_shared,
    strided_stream,
    ways_from_fractions,
    zipf_stream,
)
from repro.types import ModelError


class TestWaysFromFractions:
    def test_exact_split(self):
        assert ways_from_fractions([0.5, 0.25, 0.25], 8).tolist() == [4, 2, 2]

    def test_largest_remainder(self):
        ways = ways_from_fractions([0.4, 0.4, 0.2], 8)
        assert ways.sum() == 8
        assert ways.tolist() == [3, 3, 2] or ways.tolist() == [4, 3, 1]

    def test_zero_fraction_zero_ways(self):
        assert ways_from_fractions([0.0, 1.0], 8).tolist() == [0, 8]

    def test_budget_never_exceeded(self, rng):
        for _ in range(20):
            raw = rng.random(5)
            x = raw / raw.sum()
            ways = ways_from_fractions(x, 16)
            assert ways.sum() <= 16

    def test_rejects_bad_input(self):
        with pytest.raises(ModelError):
            ways_from_fractions([0.7, 0.7], 8)
        with pytest.raises(ModelError):
            ways_from_fractions([0.5], 0)


class TestPartitionedCache:
    def test_zero_way_app_always_misses(self):
        pc = PartitionedCache(4, [0, 4])
        assert not pc.access(0, 1)
        assert not pc.access(0, 1)

    def test_partitions_do_not_interact(self):
        pc = PartitionedCache(1, [1, 1])
        pc.access(0, 1)
        pc.access(1, 2)  # app 1 cannot evict app 0's line
        assert pc.access(0, 1)

    def test_counters(self):
        pc = PartitionedCache(1, [2, 2])
        pc.access(0, 1)
        pc.access(0, 1)
        pc.access(1, 5)
        acc, mis = pc.app_counters()
        assert acc.tolist() == [2, 1]
        assert mis.tolist() == [1, 1]

    def test_rejects_bad_allocation(self):
        with pytest.raises(ModelError):
            PartitionedCache(4, [])
        with pytest.raises(ModelError):
            PartitionedCache(4, [-1, 2])


class TestCorunPartitioned:
    def test_isolation_equals_standalone(self, rng):
        """Co-run on a partition == standalone run on that partition."""
        s1 = zipf_stream(256, 3000, rng)
        s2 = strided_stream(5000, 3000)
        res = corun_partitioned([s1, s2], 8, [4, 2])
        solo = LRUCache(8, 4)
        solo.run(s1)
        assert res.misses[0] == solo.misses
        solo2 = LRUCache(8, 2)
        solo2.run(s2)
        assert res.misses[1] == solo2.misses

    def test_isolation_independent_of_interleaving(self, rng):
        """Swapping the round-robin order changes nothing per app."""
        s1 = zipf_stream(256, 2000, rng)
        s2 = zipf_stream(256, 2000, rng)
        a = corun_partitioned([s1, s2], 4, [2, 2])
        b = corun_partitioned([s2, s1], 4, [2, 2])
        assert a.misses[0] == b.misses[1]
        assert a.misses[1] == b.misses[0]

    def test_zero_way_all_miss(self, rng):
        s = zipf_stream(64, 500, rng)
        res = corun_partitioned([s], 4, [0])
        assert res.misses[0] == res.accesses[0] == 500
        assert res.miss_rates[0] == 1.0

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ModelError):
            corun_partitioned([zipf_stream(8, 10, rng)], 4, [1, 1])


class TestCorunShared:
    def test_streaming_app_pollutes_neighbour(self, rng):
        """The motivating interference: partitioning protects app 0."""
        friendly = zipf_stream(512, 4000, rng, skew=1.3)
        streamer = strided_stream(100_000, 4000)
        iso = corun_partitioned([friendly, streamer], 16, [6, 2])
        shared = corun_shared([friendly, streamer], 16, 8)
        assert shared.miss_rates[0] > iso.miss_rates[0]

    def test_total_capacity_matches(self, rng):
        """A solo app sees the full shared cache."""
        s = zipf_stream(256, 3000, rng)
        shared = corun_shared([s], 8, 4)
        solo = LRUCache(8, 4)
        solo.run(s)
        assert shared.misses[0] == solo.misses

    def test_rejects_bad_ways(self, rng):
        with pytest.raises(ModelError):
            corun_shared([zipf_stream(8, 10, rng)], 4, 0)
