"""Tests for power-law fitting of miss-rate curves."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim import fit_power_law, measure_miss_curve, zipf_stream
from repro.core.powerlaw import miss_rate
from repro.types import ModelError


class TestFitSynthetic:
    def test_recovers_exact_power_law(self):
        """A noiseless Eq. 1 curve is recovered exactly."""
        sizes = np.geomspace(1e5, 1e8, 12)
        m0, alpha, c0 = 0.02, 0.45, 4e7
        rates = np.asarray(miss_rate(m0, c0, sizes, alpha))
        fit = fit_power_law(sizes, rates, c0=c0)
        assert fit.m0 == pytest.approx(m0, rel=1e-9)
        assert fit.alpha == pytest.approx(alpha, rel=1e-9)
        assert fit.r2 == pytest.approx(1.0)

    def test_saturated_points_excluded(self):
        """Points at miss rate 1 (the min() branch) do not bias the fit."""
        sizes = np.geomspace(1e2, 1e8, 16)
        rates = np.asarray(miss_rate(0.05, 4e7, sizes, 0.5))
        assert np.any(rates >= 0.999)  # some saturation present
        fit = fit_power_law(sizes, rates, c0=4e7)
        assert fit.alpha == pytest.approx(0.5, rel=1e-6)
        assert fit.points_used < sizes.size

    def test_noisy_fit_reasonable(self, rng):
        sizes = np.geomspace(1e5, 1e8, 20)
        rates = np.asarray(miss_rate(0.03, 4e7, sizes, 0.5))
        noisy = np.clip(rates * np.exp(rng.normal(0, 0.05, size=20)), 0, 1)
        fit = fit_power_law(sizes, noisy, c0=4e7)
        assert fit.alpha == pytest.approx(0.5, abs=0.1)
        assert fit.r2 > 0.9

    def test_predict_roundtrip(self):
        sizes = np.geomspace(1e5, 1e8, 10)
        rates = np.asarray(miss_rate(0.02, 4e7, sizes, 0.4))
        fit = fit_power_law(sizes, rates, c0=4e7)
        assert np.allclose(fit.predict(sizes), rates, rtol=1e-6)

    def test_default_c0_is_largest(self):
        sizes = np.geomspace(1e5, 1e8, 10)
        rates = np.asarray(miss_rate(0.02, 4e7, sizes, 0.4))
        fit = fit_power_law(sizes, rates)
        assert fit.c0 == pytest.approx(1e8)

    @given(m0=st.floats(min_value=1e-4, max_value=0.5),
           alpha=st.floats(min_value=0.2, max_value=0.9))
    @settings(max_examples=25, deadline=None)
    def test_property_exact_recovery(self, m0, alpha):
        sizes = np.geomspace(1e6, 1e9, 10)
        rates = np.asarray(miss_rate(m0, 4e7, sizes, alpha))
        if (rates < 0.999).sum() < 2:
            return  # fully saturated curve carries no information
        fit = fit_power_law(sizes, rates, c0=4e7)
        assert fit.alpha == pytest.approx(alpha, rel=1e-6)


class TestFitValidation:
    def test_needs_two_points(self):
        with pytest.raises(ModelError):
            fit_power_law([1e6, 2e6], [1.0, 1.0])  # all saturated

    def test_shape_mismatch(self):
        with pytest.raises(ModelError):
            fit_power_law([1e6, 2e6], [0.5])

    def test_rejects_bad_rates(self):
        with pytest.raises(ModelError):
            fit_power_law([1e6, 2e6], [0.5, 1.5])

    def test_rejects_bad_sizes(self):
        with pytest.raises(ModelError):
            fit_power_law([0.0, 2e6], [0.5, 0.4])


class TestEndToEnd:
    def test_zipf_trace_is_power_law_like(self):
        """A Zipf trace's measured curve fits Eq. 1 decently (r2 > 0.8)."""
        rng = np.random.default_rng(7)
        trace = zipf_stream(400_000, 250_000, rng, skew=1.05)
        curve = measure_miss_curve(trace, np.geomspace(64 * 1024, 64 * 262144, 10))
        fit = curve.fit(c0=40e6)
        assert fit.r2 > 0.85
        assert fit.alpha > 0.05
