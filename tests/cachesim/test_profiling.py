"""Tests for the trace-driven application profiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cachesim import measure_miss_curve, profile_application, zipf_stream
from repro.cachesim.address_stream import LINE_BYTES
from repro.types import ModelError


@pytest.fixture
def trace(rng):
    return zipf_stream(100_000, 60_000, rng, skew=1.3)


class TestMeasureMissCurve:
    def test_monotone_in_size(self, trace):
        curve = measure_miss_curve(trace, np.geomspace(64 * 1024, 64 * 1024 * 256, 8))
        assert np.all(np.diff(curve.miss_rates) <= 0)

    def test_sizes_floored_to_lines(self, trace):
        curve = measure_miss_curve(trace, np.array([1000.0]))
        assert curve.cache_bytes[0] == (1000 // LINE_BYTES) * LINE_BYTES

    def test_rejects_too_small(self, trace):
        with pytest.raises(ModelError):
            measure_miss_curve(trace, np.array([1.0]))

    def test_records_accesses(self, trace):
        curve = measure_miss_curve(trace, np.array([64 * 1024.0]))
        assert curve.accesses == trace.size


class TestProfileApplication:
    def test_end_to_end(self, trace):
        app, curve, fit = profile_application(
            "kernel", trace, work=1e9, operations_per_access=4.0
        )
        assert app.name == "kernel"
        assert app.work == 1e9
        assert app.access_freq == pytest.approx(0.25)
        assert 0.0 <= app.miss_rate <= 1.0
        assert app.footprint == np.unique(trace).size * LINE_BYTES
        assert curve.accesses == trace.size
        assert fit.points_used >= 2

    def test_miss_rate_consistent_with_curve(self, trace):
        """The stamped m0 reproduces the measured curve near C0."""
        app, curve, fit = profile_application(
            "kernel", trace, work=1e9, operations_per_access=1.0
        )
        predicted = fit.predict(curve.cache_bytes)
        usable = (curve.miss_rates < 0.99) & (curve.miss_rates > 1e-9)
        if usable.sum() >= 3:
            ratio = predicted[usable] / curve.miss_rates[usable]
            assert np.median(np.abs(np.log(ratio))) < 0.7

    def test_seq_fraction_stamped(self, trace):
        app, _, _ = profile_application(
            "k", trace, work=1e9, seq_fraction=0.07
        )
        assert app.seq_fraction == 0.07

    def test_rejects_bad_work(self, trace):
        with pytest.raises(ModelError):
            profile_application("k", trace, work=0.0)

    def test_rejects_bad_intensity(self, trace):
        with pytest.raises(ModelError):
            profile_application("k", trace, work=1e9, operations_per_access=0.0)

    def test_profiled_app_schedulable(self, trace):
        """The profiler's output plugs straight into the scheduler."""
        from repro.core import Workload, dominant_schedule
        from repro.machine import xeon_e5_2690

        app, _, _ = profile_application("k", trace, work=1e9)
        other, _, _ = profile_application("k2", trace[::-1].copy(), work=2e9)
        sched = dominant_schedule(Workload([app, other]), xeon_e5_2690())
        assert sched.is_feasible()
