"""Tests for utility-based cache partitioning (UCP)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.cachesim import (
    total_utility,
    ucp_allocate,
    utility_from_stack_distances,
    zipf_stream,
)
from repro.cachesim.lru import LRUCache
from repro.types import ModelError


class TestUtilityCurves:
    def test_monotone_nonincreasing(self, rng):
        trace = zipf_stream(512, 4000, rng)
        curve = utility_from_stack_distances(trace, 16)
        assert curve.size == 17
        assert np.all(np.diff(curve) <= 0)

    def test_zero_ways_all_miss(self, rng):
        trace = zipf_stream(64, 500, rng)
        curve = utility_from_stack_distances(trace, 4)
        assert curve[0] == trace.size

    def test_matches_direct_simulation(self, rng):
        trace = zipf_stream(128, 2000, rng)
        curve = utility_from_stack_distances(trace, 8)
        for ways in (1, 4, 8):
            c = LRUCache(1, ways)
            c.run(trace)
            assert curve[ways] == c.misses

    def test_rejects_bad_ways(self, rng):
        with pytest.raises(ModelError):
            utility_from_stack_distances(zipf_stream(8, 10, rng), 0)


class TestUcpAllocate:
    def test_budget_respected(self):
        curves = [np.array([10.0, 5.0, 3.0, 2.0])] * 3
        alloc = ucp_allocate(curves, 6)
        assert alloc.sum() <= 6
        assert np.all(alloc >= 0)

    def test_min_ways_honoured(self):
        curves = [np.array([10.0, 1.0]), np.array([10.0, 9.99])]
        alloc = ucp_allocate(curves, 2, min_ways=1)
        assert np.all(alloc >= 1)

    def test_greedy_prefers_high_utility(self):
        steep = np.array([100.0, 10.0, 5.0])
        flat = np.array([100.0, 99.0, 98.0])
        alloc = ucp_allocate([steep, flat], 2)
        assert alloc[0] >= alloc[1]

    def test_lookahead_handles_nonconvex(self):
        """A cliff at 3 ways must attract a 3-way block even though the
        first two ways individually gain nothing."""
        cliff = np.array([100.0, 100.0, 100.0, 0.0])
        mild = np.array([100.0, 90.0, 80.0, 70.0])
        alloc = ucp_allocate([cliff, mild], 3)
        assert alloc[0] == 3  # the cliff wins the whole budget

    def test_saturated_ways_not_wasted(self):
        curves = [np.array([5.0, 0.0]), np.array([5.0, 0.0])]
        alloc = ucp_allocate(curves, 10)
        assert alloc.sum() == 2  # leftover ways are worthless

    def test_optimal_on_small_instances(self, rng):
        """UCP lookahead matches brute force on random 3-app instances."""
        for seed in range(10):
            r = np.random.default_rng(seed)
            curves = [
                np.minimum.accumulate(np.concatenate((
                    [100.0], np.sort(r.uniform(0, 100, size=6))[::-1]
                )))
                for _ in range(3)
            ]
            alloc = ucp_allocate(curves, 6)
            best = min(
                total_utility(curves, combo)
                for combo in itertools.product(range(7), repeat=3)
                if sum(combo) <= 6
            )
            got = total_utility(curves, alloc)
            # Lookahead is near-optimal, not exact, on adversarial curves.
            assert got <= best * 1.1 + 1e-9

    def test_validation(self):
        with pytest.raises(ModelError):
            ucp_allocate([], 4)
        with pytest.raises(ModelError):
            ucp_allocate([np.array([1.0, 2.0])], 4)  # increasing curve
        with pytest.raises(ModelError):
            ucp_allocate([np.array([2.0, 1.0])] * 3, 2, min_ways=1)

    def test_total_utility_validation(self):
        with pytest.raises(ModelError):
            total_utility([np.array([1.0])], [0, 1])
        with pytest.raises(ModelError):
            total_utility([np.array([1.0])], [-1])
