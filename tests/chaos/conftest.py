"""Fixtures for the chaos (fault-injection) test suite.

The shared scenario is deliberately small and hand-built — six
applications of ~1e9 operations on a 64-processor platform — so every
chaos run finishes in well under a second while still exercising
arrivals, churn, crashes, preemption, and priority classes together.
Fault parameters are scaled to the scenario's ~1e10 time span.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Application, Platform, Workload

#: A combined fault spec touching every source, scaled to the scenario.
STRESS_SPEC = ("churn:period=3e8,drop=0.25"
               "+crash:hazard=2e-9,delay=1e8"
               "+preempt:period=5e8,duration=1e8,victims=2"
               "+classes:count=2,share=0.25")


@pytest.fixture
def chaos_workload() -> Workload:
    return Workload([
        Application(name=f"a{i}", work=1e9 * (1 + i % 3),
                    seq_fraction=0.02 * (i % 4),
                    access_freq=0.3 + 0.1 * (i % 5),
                    footprint=2 ** 20 * (1 + i))
        for i in range(6)
    ])


@pytest.fixture
def chaos_platform() -> Platform:
    return Platform(p=64.0, cache_size=2 ** 25, latency_cache=0.17,
                    latency_memory=1.0, alpha=0.5, name="chaos-64")


@pytest.fixture
def chaos_arrivals(chaos_workload) -> np.ndarray:
    return np.linspace(0.0, 3e8, chaos_workload.n)
