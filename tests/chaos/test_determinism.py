"""Determinism contract: same fault seed, same bytes, any backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import run_chaos
from repro.experiments import build_chaos_experiment, run_experiment
from repro.online import simulate_online

from .conftest import STRESS_SPEC


def _run(workload, platform, arrivals, **kw):
    return run_chaos(workload, platform, arrivals, faults=STRESS_SPEC,
                     policy=kw.pop("policy", "dominant"),
                     fault_rng=np.random.default_rng(kw.pop("seed", 42)),
                     **kw)


class TestRepeatedRuns:
    def test_same_seed_identical_timelines(
            self, chaos_workload, chaos_platform, chaos_arrivals):
        a = _run(chaos_workload, chaos_platform, chaos_arrivals)
        b = _run(chaos_workload, chaos_platform, chaos_arrivals)
        assert a.log.as_tuples() == b.log.as_tuples()
        assert a.probe.as_rows() == b.probe.as_rows()
        assert np.array_equal(a.finish_times, b.finish_times)
        assert a.pool_timeline == b.pool_timeline

    def test_different_fault_seed_different_run(
            self, chaos_workload, chaos_platform, chaos_arrivals):
        a = _run(chaos_workload, chaos_platform, chaos_arrivals, seed=1)
        b = _run(chaos_workload, chaos_platform, chaos_arrivals, seed=2)
        assert a.log.as_tuples() != b.log.as_tuples()

    def test_identical_stream_across_policies(
            self, chaos_workload, chaos_platform, chaos_arrivals):
        """Two policies under the same fault seed face the same
        compiled stream (the per-cell RNG discipline)."""
        a = _run(chaos_workload, chaos_platform, chaos_arrivals,
                 policy="dominant")
        b = _run(chaos_workload, chaos_platform, chaos_arrivals,
                 policy="fair")
        assert a.faults.events == b.faults.events


class TestCleanRunMatchesOnlineEngine:
    def test_no_faults_reduces_to_simulate_online(
            self, chaos_workload, chaos_platform, chaos_arrivals):
        """With an empty fault stream the injector is a pass-through.

        Probe ticks split the kernel's clock steps, so dt accumulation
        differs at the last-ulp level — tight rtol, not bit equality.
        """
        chaos = run_chaos(chaos_workload, chaos_platform, chaos_arrivals,
                          faults="none", policy="dominant")
        online = simulate_online(chaos_workload, chaos_platform,
                                 chaos_arrivals, policy="dominant")
        np.testing.assert_allclose(chaos.finish_times, online.finish_times,
                                   rtol=1e-9)
        assert chaos.makespan == pytest.approx(online.makespan, rel=1e-9)


class TestBackends:
    def test_grid_bit_identical_serial_vs_process(self):
        """The acceptance bar: the chaos experiment grid is
        byte-identical between the in-process and fork-pool backends
        (fault streams are compiled per cell, never shared state)."""
        exp = build_chaos_experiment(
            faults="churn:period=2e10,drop=0.25+crash:hazard=1e-11,delay=1e9",
            policies=("dominant", "fair"),
            napps_points=(4,), reps=2, probe_samples=64)
        serial = run_experiment(exp, backend="serial", use_cache=False)
        process = run_experiment(exp, backend="process", use_cache=False)
        for scheduler in serial.data:
            for metric, grid in serial.data[scheduler].items():
                assert np.array_equal(
                    grid, process.data[scheduler][metric]), (
                    f"{scheduler}/{metric} differs across backends")
