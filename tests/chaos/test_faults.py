"""Fault sources, spec parsing, and compilation determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import (
    CompiledFaults,
    CrashRestart,
    FaultEvent,
    FaultSpec,
    Preemption,
    PriorityClasses,
    ProcessorChurn,
    parse_fault_spec,
    pool_trajectory,
)
from repro.simulate.kernel import EVENT_KINDS
from repro.types import ModelError


class TestParse:
    def test_none_is_empty(self):
        assert parse_fault_spec("none").empty
        assert parse_fault_spec("").empty
        assert parse_fault_spec("  NONE  ").empty

    def test_single_source(self):
        spec = parse_fault_spec("churn:period=2e8,drop=0.1")
        (src,) = spec.sources
        assert isinstance(src, ProcessorChurn)
        assert src.period == 2e8 and src.drop == 0.1
        assert src.min_frac == 0.25  # default survives

    def test_combined_sources_in_order(self):
        spec = parse_fault_spec(
            "churn:period=2e8+crash:hazard=4e-9,delay=5e7"
            "+preempt:period=1e8,duration=2e7,victims=2"
            "+classes:count=3,share=0.2")
        kinds = [type(s) for s in spec.sources]
        assert kinds == [ProcessorChurn, CrashRestart, Preemption,
                         PriorityClasses]
        assert spec.sources[2].victims == 2
        assert spec.sources[3].count == 3

    def test_unknown_source_rejected(self):
        with pytest.raises(ModelError, match="unknown fault spec"):
            parse_fault_spec("meteor:rate=1")

    def test_missing_required_field(self):
        with pytest.raises(ModelError, match="period= is required"):
            parse_fault_spec("churn:drop=0.5")
        with pytest.raises(ModelError, match="delay= is required"):
            parse_fault_spec("crash:hazard=1e-9")

    def test_unknown_field_rejected(self):
        with pytest.raises(ModelError, match="unknown or malformed"):
            parse_fault_spec("churn:period=1e8,rate=3")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ModelError, match="needs a number"):
            parse_fault_spec("churn:period=fast")

    def test_fractional_victims_rejected(self):
        with pytest.raises(ModelError, match="victims must be an integer"):
            parse_fault_spec("preempt:period=1e8,duration=1e7,victims=1.5")

    def test_two_classes_sources_rejected(self):
        with pytest.raises(ModelError, match="at most one classes"):
            parse_fault_spec("classes:count=2+classes:count=3")


class TestSourceValidation:
    def test_bad_parameters_raise(self):
        with pytest.raises(ModelError):
            ProcessorChurn(period=-1.0)
        with pytest.raises(ModelError):
            ProcessorChurn(period=1.0, drop=1.5)
        with pytest.raises(ModelError):
            ProcessorChurn(period=1.0, min_frac=0.5, max_frac=0.25)
        with pytest.raises(ModelError):
            CrashRestart(hazard=0.0, delay=1.0)
        with pytest.raises(ModelError):
            CrashRestart(hazard=1.0, delay=1.0, lost=1.5)
        with pytest.raises(ModelError):
            Preemption(period=1.0, duration=1.0, victims=0)
        with pytest.raises(ModelError):
            PriorityClasses(count=1)
        with pytest.raises(ModelError):
            PriorityClasses(share=1.0)

    def test_event_validation(self):
        with pytest.raises(ModelError, match="unknown fault event kind"):
            FaultEvent(time=1.0, kind="arrival")
        with pytest.raises(ModelError, match="finite"):
            FaultEvent(time=float("nan"), kind="crash")
        with pytest.raises(ModelError, match=">= 0"):
            FaultEvent(time=-1.0, kind="crash")


class TestCompile:
    def _compile(self, spec, seed=7, n=6, p=64.0, horizon=5e9):
        return parse_fault_spec(spec).compile(
            n, p, horizon, np.random.default_rng(seed))

    def test_pure_function_of_seed(self):
        a = self._compile(
            "churn:period=3e8+crash:hazard=2e-9,delay=1e8"
            "+preempt:period=5e8,duration=1e8+classes:count=2")
        b = self._compile(
            "churn:period=3e8+crash:hazard=2e-9,delay=1e8"
            "+preempt:period=5e8,duration=1e8+classes:count=2")
        assert a.events == b.events
        assert np.array_equal(a.classes, b.classes)

    def test_different_seed_different_stream(self):
        a = self._compile("crash:hazard=2e-9,delay=1e8", seed=1)
        b = self._compile("crash:hazard=2e-9,delay=1e8", seed=2)
        assert a.events != b.events

    def test_events_time_sorted_with_kernel_tiebreak(self):
        compiled = self._compile(
            "churn:period=3e8+crash:hazard=2e-9,delay=1e8"
            "+preempt:period=5e8,duration=1e8,victims=2")
        keys = [(e.time, EVENT_KINDS.index(e.kind), e.target)
                for e in compiled.events]
        assert keys == sorted(keys)

    def test_horizon_bounds_every_event(self):
        compiled = self._compile("crash:hazard=2e-9,delay=1e8", horizon=2e9)
        assert compiled.horizon == 2e9
        assert all(e.time < 2e9 for e in compiled.events)
        assert all(e.kind == "crash" and 0 <= e.target < 6
                   for e in compiled.events)

    def test_churn_respects_clamp(self):
        compiled = self._compile(
            "churn:period=1e8,drop=0.5,min=0.25,max=0.75", horizon=1e10)
        # first entry is the nominal pool (the platform starts whole,
        # even above the churn ceiling); every move lands in the clamp
        pools = [size for _, size in pool_trajectory(compiled, 64.0)][1:]
        assert len(pools) > 10  # the clamp flips direction, never stalls
        assert min(pools) >= 0.25 * 64.0 - 1e-9
        assert max(pools) <= 0.75 * 64.0 + 1e-9

    def test_preempt_victims_distinct_per_slice(self):
        compiled = self._compile(
            "preempt:period=5e8,duration=1e8,victims=3", horizon=5e9)
        by_time: dict[float, list[int]] = {}
        for e in compiled.events:
            by_time.setdefault(e.time, []).append(e.target)
        for victims in by_time.values():
            assert len(victims) == 3
            assert len(set(victims)) == 3

    def test_classes_assignment(self):
        compiled = self._compile("classes:count=3,share=0.2", n=20)
        assert compiled.low_share == 0.2
        assert compiled.classes.shape == (20,)
        assert set(np.unique(compiled.classes)) <= {0, 1, 2}

    def test_classless_spec_has_no_assignment(self):
        compiled = self._compile("churn:period=3e8")
        assert compiled.classes is None
        assert compiled.low_share == 0.0

    def test_bad_scenario_rejected(self):
        spec = parse_fault_spec("churn:period=1e8")
        with pytest.raises(ModelError, match="at least one application"):
            spec.compile(0, 64.0, 1e9, np.random.default_rng(0))
        with pytest.raises(ModelError, match="horizon"):
            spec.compile(4, 64.0, 0.0, np.random.default_rng(0))

    def test_duplicate_classes_rejected_at_spec_level(self):
        with pytest.raises(ModelError, match="at most one classes"):
            FaultSpec(sources=(PriorityClasses(), PriorityClasses()))

    def test_compiled_default_is_calm(self):
        calm = CompiledFaults()
        assert calm.events == () and calm.classes is None
        assert pool_trajectory(calm, 64.0) == [(0.0, 64.0)]
