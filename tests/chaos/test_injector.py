"""Injector semantics, hand-checked against the phase kernel.

These tests drive :class:`FaultInjector` through the kernel directly
with a fixed base allocator (whole machine, factor 1), so every finish
time is hand-computable: rate = procs / factor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import (
    CompiledFaults,
    FaultEvent,
    FaultInjector,
    inject_queue,
    pool_at,
    pool_trajectory,
)
from repro.core import Application, Platform, Workload
from repro.simulate.kernel import EventLog, run_phase_kernel
from repro.types import ModelError

P = 4.0


def _platform() -> Platform:
    return Platform(p=P, cache_size=1e6, latency_cache=0.17,
                    latency_memory=1.0, alpha=0.5, name="inj")


def _workload(*apps) -> Workload:
    return Workload([
        Application(name=f"w{i}", work=work, seq_fraction=seq,
                    access_freq=0.5, footprint=1e5)
        for i, (work, seq) in enumerate(apps)
    ])


def _full_machine(now, active, seq_left, par_left):
    """Whole nominal machine to every active application, factor 1."""
    return np.where(active, P, 0.0), np.ones(active.size)


def _drive(workload, compiled, *, arrivals=None, max_events=500):
    log = EventLog()
    injector = FaultInjector(workload, _platform(), compiled,
                             allocate=_full_machine, log=log,
                             arrivals=arrivals)
    result = run_phase_kernel(
        workload.work, workload.seq * workload.work,
        (1.0 - workload.seq) * workload.work,
        allocate=injector.allocate, arrivals=arrivals,
        timeline=injector.timeline, max_events=max_events, log=log)
    injector.finalize(result.now)
    return result, injector, log


def _events(*evs) -> CompiledFaults:
    return CompiledFaults(events=evs, horizon=1e9)


class TestPoolTrajectory:
    def test_stepwise_lookup(self):
        timeline = [(0.0, 4.0), (5.0, 2.0), (7.0, 6.0)]
        assert pool_at(timeline, 0.0) == 4.0
        assert pool_at(timeline, 4.999) == 4.0
        assert pool_at(timeline, 5.0) == 2.0  # boundary belongs to the step
        assert pool_at(timeline, 6.0) == 2.0
        assert pool_at(timeline, 100.0) == 6.0

    def test_trajectory_from_events(self):
        compiled = _events(
            FaultEvent(time=2.0, kind="proc_leave", magnitude=1.0),
            FaultEvent(time=3.0, kind="crash", target=0, magnitude=1.0),
            FaultEvent(time=4.0, kind="proc_join", magnitude=2.0),
        )
        assert pool_trajectory(compiled, 4.0) == [
            (0.0, 4.0), (2.0, 3.0), (4.0, 5.0)]


class TestCrash:
    def test_full_loss_requeues_everything(self):
        # 10 par ops at rate 4; crash at 1.25 (5 done) destroys all of
        # it and takes the app down for 0.5.
        res, inj, log = _drive(
            _workload((10.0, 0.0)),
            _events(FaultEvent(time=1.25, kind="crash", target=0,
                               magnitude=0.5, aux=1.0)))
        assert res.finish_times[0] == pytest.approx(1.75 + 10.0 / 4.0)
        assert inj.crashes == 1
        assert inj.lost_work == pytest.approx(5.0)
        assert [(e.time, e.kind) for e in log.select("crash", "restart")] == [
            (1.25, "crash"), (1.75, "restart")]

    def test_partial_loss(self):
        res, inj, _ = _drive(
            _workload((10.0, 0.0)),
            _events(FaultEvent(time=1.25, kind="crash", target=0,
                               magnitude=0.5, aux=0.5)))
        # 5 done, half destroyed: 7.5 left after the restart at 1.75.
        assert res.finish_times[0] == pytest.approx(1.75 + 7.5 / 4.0)
        assert inj.lost_work == pytest.approx(2.5)

    def test_parallel_phase_rolled_back_first(self):
        # seq 4 ops at rate 1 (done t=4), then par 4 ops at rate 4
        # (done t=5).  Crash at 4.5: 2 par ops done, restore=6 refills
        # par fully (2) then seq (4) -> both phases start over.
        res, inj, log = _drive(
            _workload((8.0, 0.5)),
            _events(FaultEvent(time=4.5, kind="crash", target=0,
                               magnitude=0.5, aux=1.0)))
        assert res.finish_times[0] == pytest.approx(5.0 + 4.0 + 1.0)
        assert inj.lost_work == pytest.approx(6.0)
        # the rerun logs a second seq-done
        assert len(log.select("seq-done")) == 2

    def test_crash_on_idle_application_is_dropped(self):
        res, inj, _ = _drive(
            _workload((8.0, 0.0), (8.0, 0.0)),
            _events(FaultEvent(time=2.0, kind="crash", target=1,
                               magnitude=0.5, aux=1.0)),
            arrivals=np.array([0.0, 10.0]))
        assert inj.crashes == 0
        assert inj.dropped_faults == 1
        assert res.finish_times[1] == pytest.approx(12.0)


class TestPreempt:
    def test_outage_pauses_progress(self):
        # 40 par ops at rate 4 (clean finish 10); preempted 2..5.
        res, inj, log = _drive(
            _workload((40.0, 0.0)),
            _events(FaultEvent(time=2.0, kind="preempt", target=0,
                               magnitude=3.0)))
        assert res.finish_times[0] == pytest.approx(13.0)
        assert inj.preemptions == 1
        assert [e.time for e in log.select("preempt")] == [2.0]

    def test_overlapping_preempt_is_dropped_not_shortened(self):
        res, inj, _ = _drive(
            _workload((40.0, 0.0)),
            _events(
                FaultEvent(time=2.0, kind="preempt", target=0, magnitude=3.0),
                FaultEvent(time=3.0, kind="preempt", target=0, magnitude=0.5),
            ))
        # the second slice lands while already down: a no-op
        assert res.finish_times[0] == pytest.approx(13.0)
        assert inj.preemptions == 1
        assert inj.dropped_faults == 1


class TestChurn:
    def test_allocation_rescales_to_instantaneous_pool(self):
        # 40 par ops at rate 4; half the pool leaves at t=5 with 20
        # ops left -> rate 2 -> finish 15.
        res, inj, log = _drive(
            _workload((40.0, 0.0)),
            _events(FaultEvent(time=5.0, kind="proc_leave", magnitude=2.0)))
        assert res.finish_times[0] == pytest.approx(15.0)
        assert inj.pool_timeline == [(0.0, 4.0), (5.0, 2.0)]
        assert log.as_tuples("proc_leave") == [(5.0, "proc_leave", -1)]

    def test_idle_gap_event_applied_lazily_logged_at_own_time(self):
        # app0 finishes at 2, app1 arrives at 10: the kernel jumps the
        # 2..10 gap without allocating.  The churn at t=5 must still be
        # logged at 5.0 and shape app1's rate.
        res, inj, log = _drive(
            _workload((8.0, 0.0), (8.0, 0.0)),
            _events(FaultEvent(time=5.0, kind="proc_leave", magnitude=2.0)),
            arrivals=np.array([0.0, 10.0]))
        assert res.finish_times[0] == pytest.approx(2.0)
        assert res.finish_times[1] == pytest.approx(10.0 + 8.0 / 2.0)
        assert log.as_tuples("proc_leave") == [(5.0, "proc_leave", -1)]
        assert inj.pool_timeline == [(0.0, 4.0), (5.0, 2.0)]
        # chronological overall: the lazy catch-up did not reorder time
        times = [e.time for e in log]
        assert times == sorted(times)


class TestClassCap:
    def _injector(self, base):
        compiled = CompiledFaults(classes=np.array([0, 1]), low_share=0.25,
                                  horizon=10.0)
        wl = _workload((10.0, 0.0), (10.0, 0.0))
        return FaultInjector(wl, _platform(), compiled, allocate=base,
                             log=EventLog())

    def test_background_capped_at_share(self):
        inj = self._injector(
            lambda now, a, s, p_: (np.array([2.0, 2.0]), np.ones(2)))
        procs, _ = inj.allocate(0.0, np.array([True, True]),
                                np.zeros(2), np.array([10.0, 10.0]))
        assert procs[0] == pytest.approx(3.0)   # fg: (1 - 0.25) * 4
        assert procs[1] == pytest.approx(1.0)   # bg: 0.25 * 4

    def test_floor_granted_even_when_policy_gives_zero(self):
        # an fcfs-style base gives everything to the foreground head;
        # the cap still carves out the background floor.
        inj = self._injector(
            lambda now, a, s, p_: (np.array([4.0, 0.0]), np.ones(2)))
        procs, _ = inj.allocate(0.0, np.array([True, True]),
                                np.zeros(2), np.array([10.0, 10.0]))
        assert procs[1] == pytest.approx(1.0)

    def test_no_cap_when_one_class_absent(self):
        inj = self._injector(
            lambda now, a, s, p_: (np.array([4.0, 0.0]), np.ones(2)))
        procs, _ = inj.allocate(0.0, np.array([True, False]),
                                np.zeros(2), np.array([10.0, 10.0]))
        assert procs[0] == pytest.approx(4.0)
        assert procs[1] == 0.0


class TestInjectQueue:
    def test_service_scaled_by_pool_at_arrival(self):
        compiled = _events(
            FaultEvent(time=5.0, kind="proc_leave", magnitude=2.0))
        res, timeline = inject_queue([0.0, 6.0], [2.0, 2.0], compiled, P)
        assert timeline == [(0.0, 4.0), (5.0, 2.0)]
        assert np.allclose(res.finishes, [2.0, 10.0])  # second batch 2x slower
        assert res.log.as_tuples("proc_leave") == [(5.0, "proc_leave", -1)]

    def test_empty_pool_rejected(self):
        compiled = _events(
            FaultEvent(time=1.0, kind="proc_leave", magnitude=4.0))
        with pytest.raises(ModelError, match="empties the pool"):
            inject_queue([0.0], [1.0], compiled, P)
