"""The behavioral contract under churn: every policy, plus the
detector's own sensitivity to violations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import (
    ChaosResult,
    CompiledFaults,
    ProbeSample,
    ProbeTimeline,
    check_invariants,
    run_chaos,
)
from repro.core.registry import scheduler_names
from repro.simulate.kernel import EventLog
from repro.types import ModelError

from .conftest import STRESS_SPEC

ALL_POLICIES = ("dominant", "fair", "fcfs") + tuple(
    name for name in scheduler_names() if name not in ("dominant", "fair"))


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_every_policy_survives_the_stress_scenario(
        policy, chaos_workload, chaos_platform, chaos_arrivals):
    """Acceptance bar: every registered online policy completes a
    seeded churn+crash+preempt+classes scenario with the invariants
    holding."""
    try:
        result = run_chaos(
            chaos_workload, chaos_platform, chaos_arrivals,
            faults=STRESS_SPEC, policy=policy,
            fault_rng=np.random.default_rng(3),
            rng=np.random.default_rng(5))
    except ModelError as exc:
        if "sequential" in str(exc):
            pytest.skip(f"{policy} is a sequential (batch) scheduler")
        raise
    report = check_invariants(result)
    report.assert_ok()
    assert report.checked > 50
    assert np.all(np.isfinite(result.finish_times))
    # the stress spec actually bites in this scenario
    assert result.crashes + result.preemptions > 0
    assert len(result.pool_timeline) > 1


def test_clean_run_checks_out(chaos_workload, chaos_platform, chaos_arrivals):
    result = run_chaos(chaos_workload, chaos_platform, chaos_arrivals,
                       faults="none", policy="fair")
    report = check_invariants(result)
    report.assert_ok()
    assert result.crashes == result.preemptions == 0
    assert result.pool_timeline == [(0.0, chaos_platform.p)]


def _fake_result(*, usage, samples, classes=None, low_share=0.0,
                 finish=(5.0,), arrivals=(0.0,)):
    probe = ProbeTimeline(1.0)
    probe.samples.extend(samples)
    return ChaosResult(
        policy="fake",
        faults=CompiledFaults(
            classes=None if classes is None else np.asarray(classes),
            low_share=low_share, horizon=10.0),
        arrival_times=np.asarray(arrivals, dtype=float),
        finish_times=np.asarray(finish, dtype=float),
        events=1, log=EventLog(), processor_usage=list(usage),
        probe=probe, pool_timeline=[(0.0, 4.0)], total_work=1.0)


def _sample(**over) -> ProbeSample:
    base = dict(time=0.0, pool=4.0, arrived=1, active=1, running=1,
                down=0, finished=0, procs_in_use=4.0, queue_depth=0,
                work_done=0.0, work_remaining=1.0, class_procs=(4.0,),
                class_active=(1,), class_mean_flow=(0.0,))
    base.update(over)
    return ProbeSample(**base)


def _final(t=5.0) -> ProbeSample:
    return _sample(time=t, active=0, running=0, finished=1,
                   procs_in_use=0.0, work_remaining=0.0)


class TestDetection:
    def test_clean_synthetic_passes(self):
        report = check_invariants(_fake_result(
            usage=[(0.0, 4.0)], samples=[_sample(), _final()]))
        assert report.ok and report.checked > 0

    def test_pool_ceiling_violation(self):
        report = check_invariants(_fake_result(
            usage=[(0.0, 10.0)], samples=[_final()]))
        assert any("exceeds the instantaneous pool" in f
                   for f in report.failures)

    def test_work_conservation_violation(self):
        report = check_invariants(_fake_result(
            usage=[(0.0, 2.0)],
            samples=[_sample(procs_in_use=2.0), _final()]))
        assert any("not work-conserving" in f for f in report.failures)

    def test_starvation_violation(self):
        starved = _sample(active=2, running=2, class_procs=(4.0, 0.0),
                          class_active=(1, 1))
        report = check_invariants(_fake_result(
            usage=[(0.0, 4.0)], samples=[starved, _final()],
            classes=[0, 1], low_share=0.25))
        assert any("no-starvation floor" in f for f in report.failures)

    def test_starvation_floor_skipped_while_someone_is_down(self):
        outage = _sample(active=2, running=1, down=1,
                         class_procs=(4.0, 0.0), class_active=(1, 1))
        report = check_invariants(_fake_result(
            usage=[(0.0, 4.0)], samples=[outage, _final()],
            classes=[0, 1], low_share=0.25))
        assert report.ok

    def test_unfinished_application(self):
        report = check_invariants(_fake_result(
            usage=[(0.0, 4.0)], samples=[_final()],
            finish=(np.inf,)))
        assert any("never finished" in f for f in report.failures)

    def test_finish_before_arrival(self):
        report = check_invariants(_fake_result(
            usage=[(0.0, 4.0)], samples=[_final()],
            finish=(1.0,), arrivals=(2.0,)))
        assert any("before" in f for f in report.failures)

    def test_outstanding_work_in_final_sample(self):
        report = check_invariants(_fake_result(
            usage=[(0.0, 4.0)],
            samples=[_final(t=4.0), _sample(time=5.0, running=0,
                                            procs_in_use=0.0,
                                            work_remaining=0.5)]))
        assert any("outstanding" in f for f in report.failures)
