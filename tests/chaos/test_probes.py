"""Cadence scraper: tick exactness, budgets, and row output."""

from __future__ import annotations

import pytest

from repro.chaos import PROBE_COLUMNS, ProbeSample, ProbeTimeline
from repro.types import ModelError


def _sample(t: float) -> ProbeSample:
    return ProbeSample(
        time=t, pool=4.0, arrived=1, active=1, running=1, down=0,
        finished=0, procs_in_use=4.0, queue_depth=0, work_done=t,
        work_remaining=10.0 - t, class_procs=(4.0,), class_active=(1,),
        class_mean_flow=(0.0,))


class TestValidation:
    def test_bad_interval(self):
        with pytest.raises(ModelError, match="interval"):
            ProbeTimeline(0.0)
        with pytest.raises(ModelError, match="interval"):
            ProbeTimeline(-1.0)

    def test_bad_budget(self):
        with pytest.raises(ModelError, match="max_samples"):
            ProbeTimeline(1.0, max_samples=0)


class TestCadence:
    def test_samples_stamped_at_tick_times(self):
        probe = ProbeTimeline(0.25)
        probe.poll(0.95, _sample)
        assert [s.time for s in probe] == [0.0, 0.25, 0.5, 0.75]
        assert probe.next_tick() == 1.0

    def test_poll_is_idempotent_within_a_tick(self):
        probe = ProbeTimeline(1.0)
        probe.poll(0.5, _sample)
        probe.poll(0.9, _sample)
        assert [s.time for s in probe] == [0.0]

    def test_boundary_tick_is_tolerant(self):
        probe = ProbeTimeline(1.0)
        probe.poll(1.0 - 1e-13, _sample)  # within canonical tolerance
        assert [s.time for s in probe] == [0.0, 1.0]

    def test_budget_stops_scraping(self):
        probe = ProbeTimeline(1.0, max_samples=3)
        probe.poll(100.0, _sample)
        assert len(probe) == 3
        assert probe.next_tick() == float("inf")

    def test_force_appends_final_sample_once(self):
        probe = ProbeTimeline(1.0, max_samples=2)
        probe.poll(10.0, _sample)
        probe.force(10.0, _sample)
        probe.force(10.0, _sample)  # duplicate instant: skipped
        assert [s.time for s in probe] == [0.0, 1.0, 10.0]


class TestRows:
    def test_rows_match_columns(self):
        probe = ProbeTimeline(1.0)
        probe.poll(2.0, _sample)
        rows = probe.as_rows()
        assert len(rows) == 3
        assert all(len(row) == len(PROBE_COLUMNS) for row in rows)
        assert PROBE_COLUMNS[0] == "time"
        assert rows[-1][0] == 2.0

    def test_rows_are_plain_tuples(self):
        probe = ProbeTimeline(1.0)
        probe.poll(0.0, _sample)
        (row,) = probe.as_rows()
        assert isinstance(row, tuple)
        assert row == _sample(0.0).as_row()
