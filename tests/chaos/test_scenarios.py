"""The numbered chaos scenario corpus.

Each ``scenarios/NN-*.json`` file is a declarative spec: workload,
platform, arrival process, fault spec string, fault seed, the policies
it must hold for, and the expectations.  Every scenario always runs
the full invariant contract (:func:`repro.chaos.check_invariants`);
the ``expect`` block adds scenario-specific teeth:

``min_crashes`` / ``min_preemptions``
    The fault stream must actually bite (per policy).
``min_pool_changes``
    The pool trajectory must move at least this many times.
``min_classes``
    The compiled class assignment must populate this many classes.
``deterministic``
    Run the scenario twice; event log and probe rows must be
    byte-identical.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.chaos import check_invariants, estimate_horizon, parse_fault_spec, run_chaos
from repro.machine.presets import get_preset
from repro.online.arrivals import parse_arrival_spec
from repro.workloads.synthetic import generate

SCENARIO_DIR = Path(__file__).parent / "scenarios"
SCENARIOS = sorted(SCENARIO_DIR.glob("*.json"))


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


def _build(spec: dict):
    wl = spec["workload"]
    rng = np.random.default_rng(wl["seed"])
    workload = generate(wl["dataset"], wl["n"], rng)
    platform = get_preset(spec["platform"])
    if spec.get("arrivals"):
        arrivals = parse_arrival_spec(spec["arrivals"]).times(wl["n"], rng)
    else:
        arrivals = np.zeros(wl["n"])
    horizon = estimate_horizon(workload, platform, arrivals)
    compiled = parse_fault_spec(spec["faults"]).compile(
        wl["n"], platform.p, horizon,
        np.random.default_rng(spec["fault_seed"]))
    return workload, platform, arrivals, horizon, compiled


def test_corpus_is_complete():
    """Eight numbered scenarios, ids matching their filenames."""
    assert len(SCENARIOS) == 8
    ids = [_load(p)["id"] for p in SCENARIOS]
    assert ids == [1, 2, 3, 4, 5, 6, 7, 8]
    for path, sid in zip(SCENARIOS, ids):
        assert path.name.startswith(f"{sid:02d}-")


@pytest.mark.parametrize("path", SCENARIOS, ids=lambda p: p.stem)
def test_scenario(path):
    spec = _load(path)
    workload, platform, arrivals, horizon, compiled = _build(spec)
    expect = spec.get("expect", {})

    if "min_classes" in expect:
        assert compiled.classes is not None
        assert len(np.unique(compiled.classes)) >= expect["min_classes"]

    for policy in spec["policies"]:
        result = run_chaos(workload, platform, arrivals,
                           faults=compiled, policy=policy, horizon=horizon)
        check_invariants(result).assert_ok()
        assert np.all(np.isfinite(result.finish_times)), (
            f"{path.name}/{policy}: unfinished applications")
        if "min_crashes" in expect:
            assert result.crashes >= expect["min_crashes"], (
                f"{path.name}/{policy}: only {result.crashes} crashes")
        if "min_preemptions" in expect:
            assert result.preemptions >= expect["min_preemptions"], (
                f"{path.name}/{policy}: only {result.preemptions} preemptions")
        if "min_pool_changes" in expect:
            assert len(result.pool_timeline) - 1 >= expect["min_pool_changes"]
        if expect.get("deterministic"):
            again = run_chaos(workload, platform, arrivals,
                              faults=compiled, policy=policy,
                              horizon=horizon)
            assert again.log.as_tuples() == result.log.as_tuples()
            assert again.probe.as_rows() == result.probe.as_rows()
