"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Application, Platform, Workload
from repro.machine import small_llc, taihulight
from repro.workloads import npb6, npb_synth, random_workload


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "kernel_equivalence: golden old-vs-new engine comparisons proving "
        "the kernel refactor is bit-identical on seeded sweeps "
        "(run alone with -m kernel_equivalence)",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def platform() -> Platform:
    """The paper's main platform (256 procs, 32 GB LLC)."""
    return taihulight()


@pytest.fixture
def tiny_platform() -> Platform:
    """A small platform for hand-checkable numbers."""
    return Platform(p=4.0, cache_size=1e6, latency_cache=0.17,
                    latency_memory=1.0, alpha=0.5, name="tiny")


@pytest.fixture
def small_llc_platform() -> Platform:
    return small_llc()


@pytest.fixture
def npb6_pp() -> Workload:
    """NPB-6, perfectly parallel."""
    return npb6(seq_range=None)


@pytest.fixture
def npb6_amdahl(rng) -> Workload:
    """NPB-6 with random sequential fractions."""
    return npb6(rng=rng)


@pytest.fixture
def synth16(rng) -> Workload:
    return npb_synth(16, rng)


@pytest.fixture
def synth16_pp(rng) -> Workload:
    return npb_synth(16, rng, seq_range=None)


@pytest.fixture
def random8(rng) -> Workload:
    return random_workload(8, rng)


@pytest.fixture
def two_apps() -> Workload:
    """Two hand-built perfectly parallel applications."""
    return Workload([
        Application(name="A", work=1e9, seq_fraction=0.0, access_freq=0.5,
                    miss_rate=0.01),
        Application(name="B", work=2e9, seq_fraction=0.0, access_freq=0.8,
                    miss_rate=0.005),
    ])
