"""Tests for the Application/Workload data model."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import Application, Workload
from repro.machine import taihulight
from repro.types import ModelError


def _app(**kw):
    base = dict(name="T", work=1e9, seq_fraction=0.1, access_freq=0.5, miss_rate=0.01)
    base.update(kw)
    return Application(**base)


class TestApplicationValidation:
    def test_valid(self):
        app = _app()
        assert app.work == 1e9
        assert not app.is_perfectly_parallel

    def test_perfectly_parallel_flag(self):
        assert _app(seq_fraction=0.0).is_perfectly_parallel

    @pytest.mark.parametrize("field,value", [
        ("work", 0.0),
        ("work", -1.0),
        ("work", math.inf),
        ("seq_fraction", -0.1),
        ("seq_fraction", 1.1),
        ("access_freq", -1.0),
        ("miss_rate", -0.01),
        ("miss_rate", 1.5),
        ("footprint", 0.0),
        ("footprint", -5.0),
        ("baseline_cache", 0.0),
    ])
    def test_rejects_invalid(self, field, value):
        with pytest.raises(ModelError):
            _app(**{field: value})

    def test_miss_coefficient(self):
        pf = taihulight()
        app = _app(miss_rate=0.02, baseline_cache=40e6)
        expected = 0.02 * (40e6 / pf.cache_size) ** pf.alpha
        assert app.miss_coefficient(pf) == pytest.approx(expected)

    def test_scaled(self):
        app = _app().scaled(work=5e9, seq_fraction=0.3)
        assert app.work == 5e9
        assert app.seq_fraction == 0.3
        assert app.name == "T"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            _app().work = 2.0  # type: ignore[misc]


class TestWorkload:
    def test_columns_match_apps(self):
        apps = [_app(name=f"T{i}", work=(i + 1) * 1e8) for i in range(4)]
        wl = Workload(apps)
        assert wl.n == 4
        assert np.allclose(wl.work, [(i + 1) * 1e8 for i in range(4)])
        assert wl.names == ("T0", "T1", "T2", "T3")

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            Workload([])

    def test_columns_readonly(self):
        wl = Workload([_app()])
        with pytest.raises(ValueError):
            wl.work[0] = 1.0

    def test_sequence_protocol(self):
        apps = [_app(name=f"T{i}") for i in range(3)]
        wl = Workload(apps)
        assert wl[0].name == "T0"
        assert [a.name for a in wl] == ["T0", "T1", "T2"]
        assert len(wl) == 3
        sliced = wl[1:]
        assert isinstance(sliced, Workload)
        assert sliced.names == ("T1", "T2")

    def test_subset_bool_mask(self):
        wl = Workload([_app(name=f"T{i}") for i in range(4)])
        sub = wl.subset(np.array([True, False, True, False]))
        assert sub.names == ("T0", "T2")

    def test_subset_index_array(self):
        wl = Workload([_app(name=f"T{i}") for i in range(4)])
        sub = wl.subset(np.array([3, 1]))
        assert sub.names == ("T3", "T1")

    def test_subset_wrong_length_mask(self):
        wl = Workload([_app(), _app()])
        with pytest.raises(ModelError):
            wl.subset(np.array([True]))

    def test_with_sequential_fraction_scalar(self):
        wl = Workload([_app(), _app()]).with_sequential_fraction(0.05)
        assert np.allclose(wl.seq, 0.05)

    def test_with_sequential_fraction_vector(self):
        wl = Workload([_app(), _app()]).with_sequential_fraction([0.0, 0.2])
        assert np.allclose(wl.seq, [0.0, 0.2])

    def test_with_miss_rate(self):
        wl = Workload([_app(), _app()]).with_miss_rate(0.3)
        assert np.allclose(wl.miss0, 0.3)

    def test_is_perfectly_parallel(self):
        assert Workload([_app(seq_fraction=0.0)]).is_perfectly_parallel
        assert not Workload([_app(seq_fraction=0.01)]).is_perfectly_parallel

    def test_miss_coefficients_match_scalar(self):
        pf = taihulight()
        apps = [_app(miss_rate=0.01), _app(miss_rate=0.02)]
        wl = Workload(apps)
        d = wl.miss_coefficients(pf)
        assert d[0] == pytest.approx(apps[0].miss_coefficient(pf))
        assert d[1] == pytest.approx(apps[1].miss_coefficient(pf))

    def test_repr_truncates(self):
        wl = Workload([_app(name=f"T{i}") for i in range(10)])
        assert "10 total" in repr(wl)
