"""Tests for the Section 6.3 baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import all_proc_cache, fair, random_partition, zero_cache
from repro.core.dominance import optimal_cache_fractions
from repro.machine import taihulight


@pytest.fixture
def pf():
    return taihulight()


class TestAllProcCache:
    def test_sequential_sum(self, synth16, pf):
        s = all_proc_cache(synth16, pf)
        assert not s.concurrent
        assert s.makespan() == pytest.approx(s.times().sum())

    def test_uses_whole_machine(self, synth16, pf):
        s = all_proc_cache(synth16, pf)
        assert np.all(s.procs == pf.p)
        assert np.all(s.cache == 1.0)


class TestFair:
    def test_equal_processors(self, synth16, pf):
        s = fair(synth16, pf)
        assert np.allclose(s.procs, pf.p / synth16.n)

    def test_cache_proportional_to_freq(self, synth16, pf):
        s = fair(synth16, pf)
        expected = synth16.freq / synth16.freq.sum()
        assert np.allclose(s.cache, expected)
        assert s.cache.sum() == pytest.approx(1.0)

    def test_zero_freq_workload_splits_equally(self, pf):
        from repro.core import Application, Workload

        wl = Workload([
            Application(name=f"t{i}", work=1e9, access_freq=0.0) for i in range(4)
        ])
        s = fair(wl, pf)
        assert np.allclose(s.cache, 0.25)

    def test_does_not_equalize_finish(self, synth16, pf):
        """Fair generally leaves a large finish-time spread."""
        s = fair(synth16, pf)
        assert s.finish_time_spread() > 0.01


class TestZeroCache:
    def test_no_cache_anywhere(self, synth16, pf):
        s = zero_cache(synth16, pf)
        assert np.all(s.cache == 0.0)

    def test_equal_finish(self, synth16, pf):
        s = zero_cache(synth16, pf)
        assert s.finish_time_spread() < 1e-6
        assert s.procs.sum() == pytest.approx(pf.p, rel=1e-6)


class TestRandomPartition:
    def test_feasible_and_equal_finish(self, synth16, pf):
        s = random_partition(synth16, pf, np.random.default_rng(0))
        assert s.is_feasible()
        assert s.finish_time_spread() < 1e-6

    def test_in_cache_apps_use_theorem3(self, synth16, pf):
        s = random_partition(synth16, pf, np.random.default_rng(0))
        mask = s.cache_subset
        if mask.any():
            expected = optimal_cache_fractions(synth16, pf, mask)
            assert np.allclose(s.cache, expected)

    def test_varies_with_rng(self, synth16, pf):
        subsets = {
            tuple(random_partition(synth16, pf, np.random.default_rng(s)).cache_subset)
            for s in range(20)
        }
        assert len(subsets) > 1

    def test_empty_draw_degenerates_to_zero_cache(self, pf):
        """With ineligible apps only, RandomPart gives everyone x=0."""
        from repro.core import Application, Workload

        wl = Workload([
            Application(name=f"t{i}", work=1e9, access_freq=0.0) for i in range(3)
        ])
        s = random_partition(wl, pf, np.random.default_rng(0))
        assert np.all(s.cache == 0.0)


class TestRanking:
    def test_dominant_beats_baselines_at_scale(self, pf, rng):
        """The paper's headline: DominantMinRatio wins at n = 64."""
        from repro.core import dominant_schedule
        from repro.workloads import npb_synth

        wl = npb_synth(64, rng)
        dom = dominant_schedule(wl, pf, strategy="dominant", choice="minratio")
        assert dom.makespan() < zero_cache(wl, pf).makespan()
        assert dom.makespan() < fair(wl, pf).makespan()
        assert dom.makespan() < all_proc_cache(wl, pf).makespan()
        assert dom.makespan() <= random_partition(
            wl, pf, np.random.default_rng(0)
        ).makespan() * (1 + 1e-9)
