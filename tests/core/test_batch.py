"""Unit tests for the structure-of-arrays batch core.

The golden sweep (``tests/golden/test_batch_equivalence.py``) proves
end-to-end bit-identity for every registered scheduler; the tests here
cover the batch container itself and each ``*_batch`` building block
against its scalar twin — construction, padding, ragged batches, mixed
platforms, RNG discipline, and error paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BatchProblem,
    cache_weights,
    cache_weights_batch,
    dominance_ratios,
    dominance_ratios_batch,
    dominant_partition,
    dominant_partition_batch,
    dominant_rev_partition,
    dominant_rev_partition_batch,
    dominant_schedule,
    dominant_schedule_batch,
    equal_finish_allocation,
    equal_finish_allocation_batch,
    execution_times,
    execution_times_batch,
    get_scheduler,
    miss_rates,
    miss_rates_batch,
    optimal_cache_fractions,
    optimal_cache_fractions_batch,
    schedule_batch,
    sequential_times,
    sequential_times_batch,
)
from repro.core.heuristics import evict_until_dominant, evict_until_dominant_batch
from repro.machine import small_llc, taihulight, xeon_e5_2690
from repro.types import ModelError
from repro.workloads import npb_synth, random_workload


def _ragged_instances(n_rows=12, seed=0, platforms=None):
    platforms = platforms or [taihulight()]
    out = []
    for i in range(n_rows):
        rng = np.random.default_rng(seed + i)
        n = int(rng.integers(1, 11))
        wl = (npb_synth if i % 2 else random_workload)(n, rng)
        out.append((wl, platforms[i % len(platforms)]))
    return out


@pytest.fixture(scope="module")
def ragged():
    return _ragged_instances()


@pytest.fixture(scope="module")
def problem(ragged):
    return BatchProblem(ragged)


class TestBatchProblem:
    def test_shapes_and_counts(self, ragged, problem):
        B = len(ragged)
        N = max(wl.n for wl, _ in ragged)
        assert len(problem) == problem.n_instances == B
        assert problem.max_apps == N
        assert problem.work.shape == (B, N)
        assert problem.valid.shape == (B, N)
        assert problem.p.shape == (B,)
        assert np.array_equal(problem.counts,
                              [wl.n for wl, _ in ragged])

    def test_valid_is_prefix_mask(self, ragged, problem):
        for i, (wl, _) in enumerate(ragged):
            assert problem.valid[i, :wl.n].all()
            assert not problem.valid[i, wl.n:].any()

    def test_columns_round_trip(self, ragged, problem):
        for i, (wl, pf) in enumerate(ragged):
            n = wl.n
            assert np.array_equal(problem.work[i, :n], wl.work)
            assert np.array_equal(problem.seq[i, :n], wl.seq)
            assert np.array_equal(problem.freq[i, :n], wl.freq)
            assert problem.p[i] == pf.p
            assert problem.cache_size[i] == pf.cache_size
            assert problem.row(i) == (wl, pf)

    def test_padding_values_are_nan_free(self, problem):
        pad = ~problem.valid
        assert (problem.work[pad] == 1.0).all()
        assert (problem.seq[pad] == 0.0).all()
        assert (problem.freq[pad] == 0.0).all()
        assert (problem.miss0[pad] == 0.0).all()
        assert np.isinf(problem.footprint[pad]).all()
        # padded cells flow through the whole model without NaN
        x = np.where(problem.valid, 1.0 / np.maximum(problem.counts, 1)[:, None], 0.0)
        assert (sequential_times_batch(problem, x)[pad] == 1.0).all()
        assert (cache_weights_batch(problem)[pad] == 0.0).all()

    def test_miss_coefficients_match_scalar(self, ragged, problem):
        d = problem.miss_coefficients()
        for i, (wl, pf) in enumerate(ragged):
            assert np.array_equal(d[i, :wl.n], wl.miss_coefficients(pf))

    def test_empty_batch_rejected(self):
        with pytest.raises(ModelError, match="at least one instance"):
            BatchProblem([])

    def test_non_pair_rejected(self):
        wl = npb_synth(4, np.random.default_rng(0))
        with pytest.raises(ModelError, match="pair"):
            BatchProblem([(wl,)])
        with pytest.raises(ModelError, match="pair"):
            BatchProblem([(wl, wl)])


class TestModelBatchTwins:
    """Each ``*_batch`` evaluator is bit-identical to its scalar twin."""

    def test_miss_rates(self, ragged, problem):
        x = np.where(problem.valid,
                     1.0 / np.maximum(problem.counts, 1)[:, None], 0.0)
        m = miss_rates_batch(problem, x)
        for i, (wl, pf) in enumerate(ragged):
            n = wl.n
            assert np.array_equal(m[i, :n], miss_rates(wl, pf, x[i, :n]))

    def test_sequential_and_execution_times(self, ragged, problem):
        x = np.where(problem.valid,
                     1.0 / np.maximum(problem.counts, 1)[:, None], 0.0)
        procs = np.where(problem.valid,
                         problem.p[:, None] / np.maximum(problem.counts, 1)[:, None],
                         0.0)
        c = sequential_times_batch(problem, x)
        t = execution_times_batch(problem, procs, x)
        for i, (wl, pf) in enumerate(ragged):
            n = wl.n
            assert np.array_equal(c[i, :n], sequential_times(wl, pf, x[i, :n]))
            assert np.array_equal(
                t[i, :n], execution_times(wl, pf, procs[i, :n], x[i, :n]))
        assert (t[~problem.valid] == 0.0).all()

    def test_execution_times_reject_nonpositive_procs(self, problem):
        procs = np.where(problem.valid, 0.0, 0.0)
        with pytest.raises(ModelError, match="positive"):
            execution_times_batch(problem, procs, np.zeros_like(procs))

    def test_weights_and_ratios(self, ragged, problem):
        w = cache_weights_batch(problem)
        r = dominance_ratios_batch(problem)
        for i, (wl, pf) in enumerate(ragged):
            n = wl.n
            assert np.array_equal(w[i, :n], cache_weights(wl, pf))
            assert np.array_equal(r[i, :n], dominance_ratios(wl, pf))

    def test_optimal_cache_fractions(self, ragged, problem):
        masks = dominant_partition_batch(problem)
        x = optimal_cache_fractions_batch(problem, masks)
        for i, (wl, pf) in enumerate(ragged):
            n = wl.n
            assert np.array_equal(
                x[i, :n], optimal_cache_fractions(wl, pf, masks[i, :n]))
        assert (x[~problem.valid] == 0.0).all()

    def test_equal_finish_allocation(self, ragged, problem):
        masks = dominant_partition_batch(problem)
        x = optimal_cache_fractions_batch(problem, masks)
        procs, K = equal_finish_allocation_batch(problem, x)
        for i, (wl, pf) in enumerate(ragged):
            n = wl.n
            ref_procs, ref_K = equal_finish_allocation(wl, pf, x[i, :n])
            assert np.array_equal(procs[i, :n], ref_procs)
            assert K[i] == ref_K


class TestEvictionBatch:
    @pytest.mark.parametrize("choice", ["minratio", "maxratio"])
    def test_deterministic_choices(self, ragged, problem, choice):
        weights = cache_weights_batch(problem)
        ratios = dominance_ratios_batch(problem)
        start = (weights > 0.0) & problem.valid
        masks = evict_until_dominant_batch(weights, ratios, start.copy(),
                                           choice=choice)
        for i, (wl, pf) in enumerate(ragged):
            n = wl.n
            ref = evict_until_dominant(weights[i, :n], ratios[i, :n],
                                       start[i, :n], choice=choice)
            assert np.array_equal(masks[i, :n], ref)

    def test_random_choice_matches_with_same_streams(self, ragged, problem):
        weights = cache_weights_batch(problem)
        ratios = dominance_ratios_batch(problem)
        start = (weights > 0.0) & problem.valid
        rngs = [np.random.default_rng(40 + i) for i in range(len(ragged))]
        masks = evict_until_dominant_batch(weights, ratios, start.copy(),
                                           choice="random", rngs=rngs)
        for i, (wl, pf) in enumerate(ragged):
            n = wl.n
            ref = evict_until_dominant(weights[i, :n], ratios[i, :n],
                                       start[i, :n], choice="random",
                                       rng=np.random.default_rng(40 + i))
            assert np.array_equal(masks[i, :n], ref)

    @pytest.mark.parametrize("strategy,batch_fn,scalar_fn", [
        ("dominant", dominant_partition_batch, dominant_partition),
        ("dominantrev", dominant_rev_partition_batch, dominant_rev_partition),
    ])
    def test_partition_strategies(self, ragged, problem, strategy,
                                  batch_fn, scalar_fn):
        choice = "minratio" if strategy == "dominant" else "maxratio"
        masks = batch_fn(problem, choice=choice)
        for i, (wl, pf) in enumerate(ragged):
            ref = scalar_fn(wl, pf, choice=choice)
            assert np.array_equal(masks[i, :wl.n], ref)


class TestBatchSchedule:
    def test_arrays_match_materialized_schedules(self, ragged, problem):
        bs = dominant_schedule_batch(problem)
        times = bs.times()
        makespans = bs.makespans()
        for i, s in enumerate(bs.schedules()):
            n = ragged[i][0].n
            assert np.array_equal(times[i, :n], s.times())
            assert makespans[i] == s.makespan()
            assert s.workload is ragged[i][0]
        assert (times[~problem.valid] == 0.0).all()

    def test_single_row_materialization(self, ragged, problem):
        bs = dominant_schedule_batch(problem)
        s3 = bs.schedule(3)
        assert np.array_equal(s3.procs, bs.procs[3, :ragged[3][0].n])

    def test_matches_scalar_dominant_schedule(self, ragged, problem):
        for strategy, choice in (("dominant", "minratio"),
                                 ("dominantrev", "maxratio")):
            bs = dominant_schedule_batch(problem, strategy=strategy,
                                         choice=choice)
            for i, (wl, pf) in enumerate(ragged):
                ref = dominant_schedule(wl, pf, strategy=strategy,
                                        choice=choice)
                s = bs.schedule(i)
                assert np.array_equal(ref.procs, s.procs)
                assert np.array_equal(ref.cache, s.cache)
                assert ref.makespan() == s.makespan()


class TestScheduleBatchRegistry:
    def test_mixed_platforms(self):
        instances = _ragged_instances(
            9, seed=100,
            platforms=[taihulight(), xeon_e5_2690(), small_llc()])
        entry = get_scheduler("dominant-minratio")
        for s, (wl, pf) in zip(schedule_batch("dominant-minratio", instances),
                               instances):
            ref = entry(wl, pf, None)
            assert np.array_equal(ref.procs, s.procs)
            assert np.array_equal(ref.cache, s.cache)

    def test_fallback_without_batch_fn(self):
        instances = _ragged_instances(5, seed=7)
        assert get_scheduler("fair").batch_fn is None
        for s, (wl, pf) in zip(schedule_batch("fair", instances), instances):
            ref = get_scheduler("fair")(wl, pf, None)
            assert np.array_equal(ref.procs, s.procs)
            assert np.array_equal(ref.cache, s.cache)

    def test_empty_instances(self):
        assert schedule_batch("dominant-minratio", []) == []

    def test_rng_length_mismatch(self):
        instances = _ragged_instances(3, seed=1)
        with pytest.raises(ModelError, match="rngs"):
            schedule_batch("dominant-random", instances,
                           rngs=[np.random.default_rng(0)])

    def test_paper_heuristics_expose_batch_fn(self):
        from repro.core import PAPER_HEURISTICS
        for name in PAPER_HEURISTICS:
            assert get_scheduler(name).batch_fn is not None, name
