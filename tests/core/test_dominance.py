"""Tests for dominance theory: Definition 4, Lemma 4 / Theorem 3."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Application, Workload
from repro.core.dominance import (
    bounded_optimal_cache_fractions,
    cache_fractions_for_subset,
    cache_weights,
    dominance_ratios,
    is_dominant,
    optimal_cache_fractions,
    violating_applications,
)
from repro.machine import taihulight
from repro.types import ModelError


@pytest.fixture
def pf():
    return taihulight()


class TestWeightsAndRatios:
    def test_weights_formula(self, npb6_pp, pf):
        d = npb6_pp.miss_coefficients(pf)
        expected = (npb6_pp.work * npb6_pp.freq * d) ** (1 / (pf.alpha + 1))
        assert np.allclose(cache_weights(npb6_pp, pf), expected)

    def test_ratio_formula(self, npb6_pp, pf):
        d = npb6_pp.miss_coefficients(pf)
        w = cache_weights(npb6_pp, pf)
        expected = w / d ** (1 / pf.alpha)
        assert np.allclose(dominance_ratios(npb6_pp, pf), expected)

    def test_zero_freq_zero_weight(self, pf):
        wl = Workload([Application(name="x", work=1e9, access_freq=0.0, miss_rate=0.5)])
        assert cache_weights(wl, pf)[0] == 0.0

    def test_zero_miss_infinite_ratio(self, pf):
        wl = Workload([Application(name="x", work=1e9, access_freq=0.5, miss_rate=0.0)])
        assert dominance_ratios(wl, pf)[0] == np.inf
        assert cache_weights(wl, pf)[0] == 0.0


class TestIsDominant:
    def test_empty_subset_dominant(self, npb6_pp, pf):
        assert is_dominant(npb6_pp, pf, np.zeros(6, dtype=bool))

    def test_definition_consistency(self, npb6_pp, pf):
        """is_dominant agrees with the raw Definition 4 arithmetic."""
        weights = cache_weights(npb6_pp, pf)
        ratios = dominance_ratios(npb6_pp, pf)
        for bits in range(1, 1 << 6):
            mask = np.array([(bits >> i) & 1 for i in range(6)], dtype=bool)
            expected = bool(np.all(ratios[mask] > weights[mask].sum()))
            assert is_dominant(npb6_pp, pf, mask) == expected

    def test_index_subset_form(self, npb6_pp, pf):
        full = np.ones(6, dtype=bool)
        assert is_dominant(npb6_pp, pf, np.arange(6)) == is_dominant(npb6_pp, pf, full)

    def test_violators_listed(self, pf):
        """An application with d close to 1 violates any subset it joins."""
        apps = [
            Application(name="good", work=1e11, access_freq=0.5, miss_rate=1e-4),
            Application(name="bad", work=1e11, access_freq=0.5, miss_rate=1.0,
                        baseline_cache=32000e6 * 4),  # d = 2 > 1
        ]
        wl = Workload(apps)
        mask = np.ones(2, dtype=bool)
        bad = violating_applications(wl, pf, mask)
        assert 1 in bad.tolist()

    def test_wrong_mask_shape(self, npb6_pp, pf):
        with pytest.raises(ModelError):
            is_dominant(npb6_pp, pf, np.ones(3, dtype=bool))


class TestOptimalFractions:
    def test_theorem3_formula(self, npb6_pp, pf):
        mask = np.ones(6, dtype=bool)
        x = optimal_cache_fractions(npb6_pp, pf, mask)
        w = cache_weights(npb6_pp, pf)
        assert np.allclose(x, w / w.sum())
        assert x.sum() == pytest.approx(1.0)

    def test_zeros_outside_subset(self, npb6_pp, pf):
        mask = np.array([True, False, True, False, False, False])
        x = optimal_cache_fractions(npb6_pp, pf, mask)
        assert np.all(x[~mask] == 0.0)
        assert x[mask].sum() == pytest.approx(1.0)

    def test_empty_subset_all_zero(self, npb6_pp, pf):
        x = optimal_cache_fractions(npb6_pp, pf, np.zeros(6, dtype=bool))
        assert np.all(x == 0.0)

    def test_zero_weight_subset_rejected(self, pf):
        wl = Workload([Application(name="x", work=1e9, access_freq=0.0, miss_rate=0.5)])
        with pytest.raises(ModelError):
            optimal_cache_fractions(wl, pf, np.array([True]))

    def test_require_dominant_flag(self, pf):
        apps = [
            Application(name="bad", work=1e11, access_freq=0.5, miss_rate=1.0,
                        baseline_cache=32000e6 * 4),
        ]
        wl = Workload(apps)
        with pytest.raises(ModelError):
            cache_fractions_for_subset(wl, pf, np.array([True]), require_dominant=True)

    def test_optimality_against_random_allocations(self, npb6_pp, pf, rng):
        """Theorem 3 beats any random allocation on the same subset."""
        from repro.core.processor_allocation import perfectly_parallel_makespan

        mask = np.ones(6, dtype=bool)
        x_star = optimal_cache_fractions(npb6_pp, pf, mask)
        best = perfectly_parallel_makespan(npb6_pp, pf, x_star)
        for _ in range(50):
            raw = rng.random(6)
            x = raw / raw.sum()
            span = perfectly_parallel_makespan(npb6_pp, pf, x)
            assert span >= best * (1 - 1e-12)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_optimality_property(self, seed):
        """Theorem-3 fractions minimize sum(k_i / x_i^alpha) over the simplex."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        k = rng.uniform(0.1, 10.0, size=n)
        alpha = 0.5
        x_star = k ** (1 / (alpha + 1))
        x_star /= x_star.sum()
        obj_star = float((k / x_star**alpha).sum())
        raw = rng.random(n) + 1e-3
        x = raw / raw.sum()
        assert float((k / x**alpha).sum()) >= obj_star * (1 - 1e-12)


class TestBoundedWaterfilling:
    def test_reduces_to_theorem3_without_bounds(self):
        k = np.array([1.0, 4.0, 9.0])
        x = bounded_optimal_cache_fractions(k, np.ones(3), 0.5)
        expected = k ** (1 / 1.5)
        expected /= expected.sum()
        assert np.allclose(x, expected)

    def test_budget_respected(self):
        k = np.array([1.0, 2.0, 3.0])
        x = bounded_optimal_cache_fractions(k, np.ones(3), 0.5, budget=0.5)
        assert x.sum() == pytest.approx(0.5)

    def test_bounds_saturate(self):
        k = np.array([100.0, 1.0])
        b = np.array([0.2, 1.0])
        x = bounded_optimal_cache_fractions(k, b, 0.5)
        assert x[0] == pytest.approx(0.2)
        assert x.sum() == pytest.approx(1.0)

    def test_all_fit_within_budget(self):
        """When the bounds sum below the budget, take every bound."""
        k = np.array([1.0, 1.0])
        b = np.array([0.2, 0.3])
        x = bounded_optimal_cache_fractions(k, b, 0.5)
        assert np.allclose(x, b)

    def test_zero_coefficients_get_nothing(self):
        k = np.array([0.0, 5.0])
        x = bounded_optimal_cache_fractions(k, np.ones(2), 0.5)
        assert x[0] == 0.0
        assert x[1] == pytest.approx(1.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ModelError):
            bounded_optimal_cache_fractions([-1.0], [1.0], 0.5)
        with pytest.raises(ModelError):
            bounded_optimal_cache_fractions([1.0], [0.0], 0.5)
        with pytest.raises(ModelError):
            bounded_optimal_cache_fractions([1.0], [1.0], 0.5, budget=0.0)
        with pytest.raises(ModelError):
            bounded_optimal_cache_fractions([1.0], [1.0], 1.5)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_kkt_optimality_vs_random_feasible(self, seed):
        """Waterfilling beats random feasible points of the same program."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        k = rng.uniform(0.1, 5.0, size=n)
        b = rng.uniform(0.1, 0.8, size=n)
        alpha = 0.5
        x_star = bounded_optimal_cache_fractions(k, b, alpha)
        assert np.all(x_star <= b + 1e-12)
        assert x_star.sum() <= 1 + 1e-9

        def obj(x):
            with np.errstate(divide="ignore"):
                return float(np.where(x > 0, k / np.maximum(x, 1e-300) ** alpha,
                                      np.inf).sum())

        best = obj(x_star)
        for _ in range(30):
            raw = rng.random(n) * b
            total = raw.sum()
            if total > 1:
                raw = raw / total
            raw = np.minimum(raw, b)
            if np.any(raw <= 0):
                continue
            assert obj(raw) >= best * (1 - 1e-9)
