"""Tests for the Eq. 2 execution-time model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Application, Platform, Workload
from repro.core.execution import (
    access_cost_factor,
    amdahl_flops,
    amdahl_speedup,
    execution_time_single,
    execution_times,
    miss_rates,
    sequential_times,
)
from repro.types import ModelError


@pytest.fixture
def pf():
    return Platform(p=8.0, cache_size=1e9, latency_cache=0.17,
                    latency_memory=1.0, alpha=0.5)


def _wl(**kw):
    base = dict(name="T", work=1e9, seq_fraction=0.0, access_freq=0.5, miss_rate=0.01)
    base.update(kw)
    return Workload([Application(**base)])


class TestAmdahl:
    def test_flops_one_proc(self):
        assert amdahl_flops(100.0, 0.2, 1.0) == pytest.approx(100.0)

    def test_flops_perfectly_parallel(self):
        assert amdahl_flops(100.0, 0.0, 4.0) == pytest.approx(25.0)

    def test_flops_amdahl(self):
        # 0.2*100 + 0.8*100/4 = 20 + 20
        assert amdahl_flops(100.0, 0.2, 4.0) == pytest.approx(40.0)

    def test_speedup_limit(self):
        """Speedup approaches 1/s as p grows."""
        assert amdahl_speedup(0.1, 1e9) == pytest.approx(10.0, rel=1e-6)

    def test_rejects_nonpositive_procs(self):
        with pytest.raises(ModelError):
            amdahl_flops(1.0, 0.0, 0.0)

    @given(s=st.floats(min_value=0, max_value=1),
           p1=st.floats(min_value=0.1, max_value=100),
           p2=st.floats(min_value=0.1, max_value=100))
    def test_flops_monotone_in_procs(self, s, p1, p2):
        if p1 > p2:
            p1, p2 = p2, p1
        assert amdahl_flops(1e6, s, p2) <= amdahl_flops(1e6, s, p1) + 1e-6


class TestExecutionTimes:
    def test_eq2_by_hand(self, pf):
        """Exe = Fl(p) * (1 + f*(ls + ll*min(1, d/x^alpha))) by hand."""
        wl = _wl(work=1e6, access_freq=0.5, miss_rate=0.01, baseline_cache=1e9)
        x, p = 0.25, 2.0
        d = 0.01  # C0 == Cs
        m = min(1.0, d / x**0.5)
        expected = (1e6 / p) * (1 + 0.5 * (0.17 + 1.0 * m))
        got = execution_times(wl, pf, np.array([p]), np.array([x]))[0]
        assert got == pytest.approx(expected)

    def test_no_cache_branch(self, pf):
        """x = 0 costs a full miss per access."""
        wl = _wl(work=1e6, access_freq=1.0)
        got = execution_times(wl, pf, np.array([1.0]), np.array([0.0]))[0]
        assert got == pytest.approx(1e6 * (1 + 1.0 * (0.17 + 1.0)))

    def test_footprint_clamp(self, pf):
        """Beyond the footprint, more cache does not help."""
        wl_small = _wl(footprint=1e8, baseline_cache=1e9)
        t_quarter = execution_times(wl_small, pf, np.array([1.0]), np.array([0.1]))[0]
        t_full = execution_times(wl_small, pf, np.array([1.0]), np.array([1.0]))[0]
        assert t_quarter == pytest.approx(t_full)

    def test_sequential_times_is_exe_at_one_proc(self, pf):
        wl = _wl(seq_fraction=0.3)
        x = np.array([0.2])
        assert sequential_times(wl, pf, x)[0] == pytest.approx(
            execution_times(wl, pf, np.array([1.0]), x)[0]
        )

    def test_perfectly_parallel_scaling(self, pf):
        """Exe(p, x) = Exe(1, x)/p for s = 0."""
        wl = _wl(seq_fraction=0.0)
        x = np.array([0.3])
        t1 = execution_times(wl, pf, np.array([1.0]), x)[0]
        t4 = execution_times(wl, pf, np.array([4.0]), x)[0]
        assert t4 == pytest.approx(t1 / 4.0)

    def test_shape_validation(self, pf):
        wl = _wl()
        with pytest.raises(ModelError):
            execution_times(wl, pf, np.array([1.0, 2.0]), np.array([0.1]))
        with pytest.raises(ModelError):
            execution_times(wl, pf, np.array([1.0]), np.array([0.1, 0.2]))

    def test_single_matches_vector(self, pf):
        app = Application(name="T", work=1e9, seq_fraction=0.1,
                          access_freq=0.5, miss_rate=0.01)
        wl = Workload([app])
        vec = execution_times(wl, pf, np.array([2.0]), np.array([0.3]))[0]
        assert execution_time_single(app, pf, 2.0, 0.3) == pytest.approx(vec)

    @given(x1=st.floats(min_value=0.0, max_value=1.0),
           x2=st.floats(min_value=0.0, max_value=1.0))
    def test_monotone_in_cache(self, x1, x2):
        """More cache never slows an application down."""
        pf = Platform(p=8.0, cache_size=1e9)
        wl = _wl()
        if x1 > x2:
            x1, x2 = x2, x1
        t_small = execution_times(wl, pf, np.array([1.0]), np.array([x1]))[0]
        t_large = execution_times(wl, pf, np.array([1.0]), np.array([x2]))[0]
        assert t_large <= t_small * (1 + 1e-12)

    @given(p1=st.floats(min_value=0.1, max_value=256),
           p2=st.floats(min_value=0.1, max_value=256),
           s=st.floats(min_value=0.0, max_value=1.0))
    def test_monotone_in_procs(self, p1, p2, s):
        """More processors never slow an application down."""
        pf = Platform(p=8.0, cache_size=1e9)
        wl = _wl(seq_fraction=s)
        if p1 > p2:
            p1, p2 = p2, p1
        t_few = execution_times(wl, pf, np.array([p1]), np.array([0.1]))[0]
        t_many = execution_times(wl, pf, np.array([p2]), np.array([0.1]))[0]
        assert t_many <= t_few * (1 + 1e-12)


class TestMissRates:
    def test_zero_fraction_full_miss(self, pf):
        wl = _wl(miss_rate=0.5)
        assert miss_rates(wl, pf, np.array([0.0]))[0] == 1.0

    def test_access_cost_factor_formula(self, pf):
        wl = _wl(access_freq=0.5)
        m = miss_rates(wl, pf, np.array([0.2]))[0]
        expected = 1 + 0.5 * (0.17 + 1.0 * m)
        assert access_cost_factor(wl, pf, np.array([0.2]))[0] == pytest.approx(expected)

    def test_rejects_negative_fraction(self, pf):
        with pytest.raises(ModelError):
            miss_rates(_wl(), pf, np.array([-0.1]))
