"""Tests for the six dominant-partition heuristics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DOMINANT_HEURISTICS,
    dominant_partition,
    dominant_rev_partition,
    dominant_schedule,
    is_dominant,
)
from repro.core.dominance import cache_weights
from repro.core.heuristics import make_choice
from repro.machine import taihulight
from repro.types import ModelError
from repro.workloads import npb_synth


@pytest.fixture
def pf():
    return taihulight()


class TestChoiceFunctions:
    def test_make_choice_known(self):
        for name in ("random", "minratio", "maxratio", "MinRatio"):
            assert callable(make_choice(name))

    def test_make_choice_unknown(self):
        with pytest.raises(ModelError):
            make_choice("bogus")

    def test_minratio_picks_smallest(self):
        fn = make_choice("minratio")
        candidates = np.array([2, 5, 7])
        ratios = np.array([0.0, 0.0, 3.0, 0.0, 0.0, 1.0, 0.0, 2.0])
        # among candidates (ratios 3, 1, 2) the smallest is index 1 -> app 5
        assert candidates[fn(candidates, ratios, np.random.default_rng(0))] == 5

    def test_maxratio_picks_largest(self):
        fn = make_choice("maxratio")
        candidates = np.array([2, 5, 7])
        ratios = np.array([0.0, 0.0, 3.0, 0.0, 0.0, 1.0, 0.0, 2.0])
        assert candidates[fn(candidates, ratios, np.random.default_rng(0))] == 2

    def test_random_uses_rng(self):
        fn = make_choice("random")
        candidates = np.arange(10)
        ratios = np.zeros(10)
        picks = {fn(candidates, ratios, np.random.default_rng(s)) for s in range(30)}
        assert len(picks) > 1  # not constant


class TestDominantPartition:
    def test_result_is_dominant(self, npb6_pp, pf):
        for choice in ("minratio", "maxratio", "random"):
            mask = dominant_partition(npb6_pp, pf, choice, np.random.default_rng(0))
            assert is_dominant(npb6_pp, pf, mask)

    def test_rev_result_is_dominant(self, npb6_pp, pf):
        for choice in ("minratio", "maxratio", "random"):
            mask = dominant_rev_partition(npb6_pp, pf, choice, np.random.default_rng(0))
            assert is_dominant(npb6_pp, pf, mask)

    def test_deterministic_choices_reproducible(self, synth16_pp, pf):
        m1 = dominant_partition(synth16_pp, pf, "minratio")
        m2 = dominant_partition(synth16_pp, pf, "minratio")
        assert np.array_equal(m1, m2)

    def test_zero_weight_apps_excluded(self, pf):
        from repro.core import Application, Workload

        wl = Workload([
            Application(name="nocache", work=1e10, access_freq=0.0, miss_rate=0.5),
            Application(name="normal", work=1e10, access_freq=0.5, miss_rate=1e-3),
        ])
        mask = dominant_partition(wl, pf, "minratio")
        assert not mask[0]

    def test_npb6_keeps_everyone(self, npb6_pp, pf):
        """The NPB workload on TaihuLight is already dominant in full."""
        mask = dominant_partition(npb6_pp, pf, "minratio")
        assert mask.all()

    @given(seed=st.integers(min_value=0, max_value=10_000),
           n=st.integers(min_value=1, max_value=32))
    @settings(max_examples=30, deadline=None)
    def test_property_always_dominant(self, seed, n):
        pf = taihulight()
        rng = np.random.default_rng(seed)
        wl = npb_synth(n, rng)
        for strategy in (dominant_partition, dominant_rev_partition):
            for choice in ("minratio", "maxratio", "random"):
                mask = strategy(wl, pf, choice, np.random.default_rng(seed + 1))
                assert is_dominant(wl, pf, mask)

    def test_rev_grows_greedily(self, synth16_pp, pf):
        """DominantRev-MaxRatio first admits the largest-ratio app."""
        from repro.core.dominance import dominance_ratios

        ratios = dominance_ratios(synth16_pp, pf)
        weights = cache_weights(synth16_pp, pf)
        eligible = weights > 0
        best = int(np.argmax(np.where(eligible, ratios, -np.inf)))
        mask = dominant_rev_partition(synth16_pp, pf, "maxratio")
        if mask.any():
            assert mask[best]


class TestDominantSchedule:
    def test_schedule_feasible(self, synth16, pf):
        for name, (strategy, choice) in DOMINANT_HEURISTICS.items():
            sched = dominant_schedule(
                synth16, pf, strategy=strategy, choice=choice,
                rng=np.random.default_rng(1),
            )
            assert sched.is_feasible(), name
            assert sched.finish_time_spread() < 1e-6, name

    def test_cache_goes_to_dominant_subset(self, synth16, pf):
        sched = dominant_schedule(synth16, pf, strategy="dominant", choice="minratio")
        assert is_dominant(synth16, pf, sched.cache_subset)
        if sched.cache_subset.any():
            assert sched.cache.sum() == pytest.approx(1.0)

    def test_unknown_strategy(self, synth16, pf):
        with pytest.raises(ModelError):
            dominant_schedule(synth16, pf, strategy="bogus")

    def test_single_app_gets_all(self, pf, rng):
        wl = npb_synth(1, rng)
        sched = dominant_schedule(wl, pf)
        assert sched.procs[0] == pytest.approx(pf.p)

    def test_eq3_thresholds_respected(self, synth16, pf):
        """Every allocated fraction exceeds its Eq. 3 lower threshold."""
        sched = dominant_schedule(synth16, pf, strategy="dominant", choice="minratio")
        d = synth16.miss_coefficients(pf)
        thresholds = d ** (1 / pf.alpha)
        allocated = sched.cache > 0
        assert np.all(sched.cache[allocated] > thresholds[allocated])


class TestSharedEvictionCore:
    """`evict_until_dominant` is the one Algorithm-1 eviction loop,
    shared by the offline heuristics and the online remaining-work
    repartitioning."""

    def test_dominant_partition_delegates(self, pf, rng):
        from repro.core.dominance import dominance_ratios
        from repro.core.heuristics import evict_until_dominant

        wl = npb_synth(12, rng)
        weights = cache_weights(wl, pf)
        ratios = dominance_ratios(wl, pf)
        direct = evict_until_dominant(weights, ratios, weights > 0.0,
                                      "minratio")
        assert np.array_equal(direct, dominant_partition(wl, pf, "minratio"))

    @pytest.mark.parametrize("seed", range(5))
    def test_online_agrees_on_full_remaining_work(self, pf, seed):
        """With every application's remaining work equal to its total
        work, the online eviction reduces to Algorithm 1 with MinRatio:
        the supports coincide and the fractions are Theorem 3's."""
        from repro.core.dominance import optimal_cache_fractions
        from repro.online.engine import _dominant_fractions_remaining

        rng = np.random.default_rng(seed)
        wl = npb_synth(10, rng)
        active = np.ones(10, dtype=bool)
        x_online = _dominant_fractions_remaining(wl, pf, active, wl.work)
        mask_offline = dominant_partition(wl, pf, "minratio")
        assert np.array_equal(x_online > 0, mask_offline)
        if mask_offline.any():
            x_offline = optimal_cache_fractions(wl, pf, mask_offline)
            assert np.allclose(x_online, x_offline, rtol=1e-12, atol=0)

    def test_input_mask_not_mutated(self, pf, rng):
        from repro.core.dominance import dominance_ratios
        from repro.core.heuristics import evict_until_dominant

        wl = npb_synth(8, rng)
        weights = cache_weights(wl, pf)
        ratios = dominance_ratios(wl, pf)
        mask = weights > 0.0
        before = mask.copy()
        evict_until_dominant(weights, ratios, mask, "minratio")
        assert np.array_equal(mask, before)

    def test_remaining_work_override_shrinks_weights(self, pf, rng):
        """cache_weights(work=...) is the remaining-work weight the
        online engine uses: scaling work down scales weights down."""
        wl = npb_synth(6, rng)
        full = cache_weights(wl, pf)
        half = cache_weights(wl, pf, work=wl.work * 0.5)
        nz = full > 0
        assert np.all(half[nz] < full[nz])
        assert np.allclose(half[nz] / full[nz],
                           0.5 ** (1.0 / (pf.alpha + 1.0)))
