"""Tests for the Platform model."""

from __future__ import annotations

import math

import pytest

from repro.core import Platform
from repro.types import ModelError


class TestPlatform:
    def test_defaults_match_paper(self):
        pf = Platform(p=256, cache_size=32000e6)
        assert pf.latency_cache == 0.17
        assert pf.latency_memory == 1.0
        assert pf.alpha == 0.5

    @pytest.mark.parametrize("kw", [
        dict(p=0),
        dict(p=-1),
        dict(p=math.inf),
        dict(cache_size=0),
        dict(cache_size=-1),
        dict(latency_cache=-0.1),
        dict(latency_memory=-1.0),
        dict(alpha=0.0),
        dict(alpha=1.5),
    ])
    def test_rejects_invalid(self, kw):
        base = dict(p=4.0, cache_size=1e6)
        base.update(kw)
        with pytest.raises(ModelError):
            Platform(**base)

    def test_miss_penalty_ratio(self):
        pf = Platform(p=1, cache_size=1e6, latency_cache=0.17, latency_memory=1.0)
        assert pf.miss_penalty_ratio == pytest.approx(1.0 / 0.17)

    def test_miss_penalty_ratio_zero_ls(self):
        pf = Platform(p=1, cache_size=1e6, latency_cache=0.0)
        assert pf.miss_penalty_ratio == math.inf

    def test_with_processors(self):
        pf = Platform(p=4, cache_size=1e6).with_processors(8)
        assert pf.p == 8
        assert pf.cache_size == 1e6

    def test_with_cache_size(self):
        pf = Platform(p=4, cache_size=1e6).with_cache_size(2e6)
        assert pf.cache_size == 2e6

    def test_with_latencies_partial(self):
        pf = Platform(p=4, cache_size=1e6).with_latencies(latency_cache=0.3)
        assert pf.latency_cache == 0.3
        assert pf.latency_memory == 1.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Platform(p=4, cache_size=1e6).p = 8  # type: ignore[misc]

    def test_equality_ignores_name(self):
        a = Platform(p=4, cache_size=1e6, name="a")
        b = Platform(p=4, cache_size=1e6, name="b")
        assert a == b
