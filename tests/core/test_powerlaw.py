"""Unit and property tests for the power law of cache misses (Eq. 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.powerlaw import (
    cache_for_target_miss_rate,
    effective_cache,
    miss_rate,
    miss_rate_fraction,
    useful_fraction_bounds,
)
from repro.types import ModelError

_m0 = st.floats(min_value=1e-6, max_value=1.0)
_size = st.floats(min_value=1e3, max_value=1e12)
_alpha = st.floats(min_value=0.05, max_value=1.0)


class TestMissRate:
    def test_baseline_identity(self):
        """At the baseline cache size, the miss rate is m0."""
        assert miss_rate(0.02, 40e6, 40e6, 0.5) == pytest.approx(0.02)

    def test_half_cache_sqrt2(self):
        """The classic sqrt(2) rule: halving the cache scales misses by sqrt 2."""
        assert miss_rate(0.01, 40e6, 20e6, 0.5) == pytest.approx(0.01 * math.sqrt(2))

    def test_saturates_at_one(self):
        assert miss_rate(0.9, 40e6, 1.0, 0.5) == 1.0

    def test_zero_cache_all_misses(self):
        assert miss_rate(0.5, 40e6, 0.0, 0.5) == 1.0

    def test_zero_cache_zero_m0_no_misses(self):
        """An application that never misses keeps missing never."""
        assert miss_rate(0.0, 40e6, 0.0, 0.5) == 0.0

    def test_vectorized(self):
        out = miss_rate(np.array([0.01, 0.02]), 40e6, np.array([40e6, 40e6]), 0.5)
        assert np.allclose(out, [0.01, 0.02])

    def test_rejects_bad_m0(self):
        with pytest.raises(ModelError):
            miss_rate(1.5, 40e6, 40e6, 0.5)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ModelError):
            miss_rate(0.1, 40e6, 40e6, 0.0)

    def test_rejects_negative_cache(self):
        with pytest.raises(ModelError):
            miss_rate(0.1, 40e6, -1.0, 0.5)

    @given(m0=_m0, c0=_size, alpha=_alpha, factor=st.floats(min_value=1.0, max_value=1e6))
    def test_monotone_decreasing_in_cache(self, m0, c0, alpha, factor):
        """More cache never increases the miss rate."""
        small = miss_rate(m0, c0, c0, alpha)
        large = miss_rate(m0, c0, c0 * factor, alpha)
        assert large <= small + 1e-15

    @given(m0=_m0, c0=_size, c=_size, alpha=_alpha)
    def test_range(self, m0, c0, c, alpha):
        m = miss_rate(m0, c0, c, alpha)
        assert 0.0 <= m <= 1.0


class TestMissRateFraction:
    def test_matches_bytes_form(self):
        """d/x^alpha equals the Eq. 1 bytes form with C = x*Cs."""
        m0, c0, cs, alpha, x = 0.02, 40e6, 32e9, 0.5, 0.25
        d = m0 * (c0 / cs) ** alpha
        assert miss_rate_fraction(d, x, alpha) == pytest.approx(
            miss_rate(m0, c0, x * cs, alpha)
        )

    def test_zero_fraction(self):
        assert miss_rate_fraction(0.3, 0.0, 0.5) == 1.0
        assert miss_rate_fraction(0.0, 0.0, 0.5) == 0.0

    def test_threshold(self):
        """At x = d^(1/alpha) the min() clamps exactly at 1."""
        d, alpha = 0.04, 0.5
        x = d ** (1 / alpha)
        assert miss_rate_fraction(d, x, alpha) == pytest.approx(1.0)

    @given(d=st.floats(min_value=1e-8, max_value=0.5),
           x=st.floats(min_value=1e-6, max_value=1.0),
           alpha=_alpha)
    def test_range(self, d, x, alpha):
        assert 0.0 <= miss_rate_fraction(d, x, alpha) <= 1.0

    def test_rejects_fraction_above_one(self):
        with pytest.raises(ModelError):
            miss_rate_fraction(0.1, 1.5, 0.5)


class TestEffectiveCache:
    def test_clamps_to_footprint(self):
        assert effective_cache(100.0, 60.0) == 60.0

    def test_infinite_footprint_passthrough(self):
        assert effective_cache(100.0, math.inf) == 100.0

    def test_vectorized(self):
        out = effective_cache(np.array([10.0, 100.0]), np.array([50.0, 50.0]))
        assert np.allclose(out, [10.0, 50.0])

    def test_rejects_nonpositive_footprint(self):
        with pytest.raises(ModelError):
            effective_cache(1.0, 0.0)


class TestUsefulFractionBounds:
    def test_eq3_bounds(self):
        lo, hi = useful_fraction_bounds(0.04, math.inf, 1e9, 0.5)
        assert lo == pytest.approx(0.04**2)
        assert hi == 1.0

    def test_footprint_bound(self):
        lo, hi = useful_fraction_bounds(0.0001, 2.5e8, 1e9, 0.5)
        assert hi == pytest.approx(0.25)

    def test_useless_application(self):
        """d^(1/alpha) >= a/Cs means no fraction is useful."""
        lo, hi = useful_fraction_bounds(0.9, 1e6, 1e9, 0.5)
        assert lo >= hi


class TestCacheForTarget:
    def test_inverts_miss_rate(self):
        c = cache_for_target_miss_rate(0.02, 40e6, 0.01, 0.5)
        assert miss_rate(0.02, 40e6, c, 0.5) == pytest.approx(0.01)

    def test_target_one_needs_nothing(self):
        assert cache_for_target_miss_rate(0.5, 40e6, 1.0, 0.5) == 0.0

    def test_rejects_zero_target(self):
        with pytest.raises(ModelError):
            cache_for_target_miss_rate(0.5, 40e6, 0.0, 0.5)

    @given(m0=_m0, c0=_size, target=st.floats(min_value=1e-6, max_value=0.999),
           alpha=_alpha)
    def test_roundtrip(self, m0, c0, target, alpha):
        c = cache_for_target_miss_rate(m0, c0, target, alpha)
        if target < m0 and c > 0:
            assert miss_rate(m0, c0, c, alpha) == pytest.approx(target, rel=1e-9)
