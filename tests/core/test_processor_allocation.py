"""Tests for Lemma 2 and the equal-finish binary search."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Application, Workload
from repro.core.execution import execution_times, sequential_times
from repro.core.processor_allocation import (
    build_equal_finish_schedule,
    equal_finish_allocation,
    equal_finish_makespan,
    lemma2_processor_allocation,
    perfectly_parallel_makespan,
    processor_demand,
)
from repro.machine import taihulight


@pytest.fixture
def pf():
    return taihulight()


class TestLemma2:
    def test_sums_to_p(self, npb6_pp, pf):
        x = np.full(6, 1 / 6)
        procs = lemma2_processor_allocation(npb6_pp, pf, x)
        assert procs.sum() == pytest.approx(pf.p)

    def test_equalizes_finish_times(self, npb6_pp, pf):
        x = np.full(6, 1 / 6)
        procs = lemma2_processor_allocation(npb6_pp, pf, x)
        times = execution_times(npb6_pp, pf, procs, x)
        assert times.max() - times.min() < 1e-6 * times.max()

    def test_lemma3_makespan(self, npb6_pp, pf):
        """Common finish time equals (1/p) sum Exe(1, x)."""
        x = np.full(6, 1 / 6)
        procs = lemma2_processor_allocation(npb6_pp, pf, x)
        times = execution_times(npb6_pp, pf, procs, x)
        assert times[0] == pytest.approx(perfectly_parallel_makespan(npb6_pp, pf, x))

    def test_optimality_vs_perturbations(self, npb6_pp, pf, rng):
        """Any other allocation summing to p has a larger makespan."""
        x = np.full(6, 1 / 6)
        procs = lemma2_processor_allocation(npb6_pp, pf, x)
        best = execution_times(npb6_pp, pf, procs, x).max()
        for _ in range(30):
            raw = rng.random(6) + 0.01
            alt = pf.p * raw / raw.sum()
            span = execution_times(npb6_pp, pf, alt, x).max()
            assert span >= best * (1 - 1e-12)


class TestProcessorDemand:
    def test_perfectly_parallel_closed_form(self):
        """For s = 0, g(K) = sum(c)/K."""
        seq = np.zeros(3)
        c = np.array([1.0, 2.0, 3.0])
        assert processor_demand(seq, c, 2.0) == pytest.approx(6.0 / 2.0)

    def test_infinite_below_singularity(self):
        seq = np.array([0.5])
        c = np.array([10.0])
        assert processor_demand(seq, c, 4.0) == np.inf  # K < s*c = 5

    def test_decreasing(self):
        seq = np.array([0.1, 0.2])
        c = np.array([5.0, 7.0])
        ks = np.linspace(2.0, 20.0, 50)
        vals = [processor_demand(seq, c, k) for k in ks]
        assert all(a >= b for a, b in zip(vals, vals[1:]))


class TestEqualFinish:
    def test_single_app(self, pf):
        wl = Workload([Application(name="x", work=1e9, seq_fraction=0.2,
                                   access_freq=0.5, miss_rate=0.01)])
        procs, K = equal_finish_allocation(wl, pf, np.array([1.0]))
        assert procs[0] == pytest.approx(pf.p)
        expected = execution_times(wl, pf, np.array([pf.p]), np.array([1.0]))[0]
        assert K == pytest.approx(expected)

    def test_matches_lemma2_for_perfectly_parallel(self, npb6_pp, pf):
        x = np.full(6, 1 / 6)
        procs, K = equal_finish_allocation(npb6_pp, pf, x)
        closed = lemma2_processor_allocation(npb6_pp, pf, x)
        assert np.allclose(procs, closed, rtol=1e-8)
        assert K == pytest.approx(perfectly_parallel_makespan(npb6_pp, pf, x))

    def test_equal_finish_amdahl(self, npb6_amdahl, pf):
        x = np.full(6, 1 / 6)
        sched = build_equal_finish_schedule(npb6_amdahl, pf, x)
        assert sched.finish_time_spread() < 1e-8
        assert sched.procs.sum() == pytest.approx(pf.p, rel=1e-8)

    def test_bisect_matches_brentq(self, npb6_amdahl, pf):
        x = np.full(6, 1 / 6)
        k_brent = equal_finish_makespan(npb6_amdahl, pf, x, method="brentq")
        k_bisect = equal_finish_makespan(npb6_amdahl, pf, x, method="bisect")
        assert k_bisect == pytest.approx(k_brent, rel=1e-8)

    def test_unknown_method(self, npb6_amdahl, pf):
        with pytest.raises(ValueError):
            equal_finish_makespan(npb6_amdahl, pf, np.zeros(6), method="newton")

    def test_more_apps_than_processors(self, rng):
        """n > p forces fractional allocations below 1."""
        from repro.machine import taihulight
        from repro.workloads import npb_synth

        pf = taihulight(p=8.0)
        wl = npb_synth(32, rng)
        sched = build_equal_finish_schedule(wl, pf, np.zeros(32))
        assert sched.is_feasible()
        assert sched.finish_time_spread() < 1e-8
        assert np.any(sched.procs < 1.0)

    def test_fully_sequential_app(self, pf):
        """s = 1 applications get epsilon processors and finish at c."""
        wl = Workload([
            Application(name="seq", work=1e9, seq_fraction=1.0,
                        access_freq=0.5, miss_rate=0.01),
            Application(name="par", work=1e12, seq_fraction=0.0,
                        access_freq=0.5, miss_rate=0.01),
        ])
        sched = build_equal_finish_schedule(wl, pf, np.zeros(2))
        assert sched.is_feasible()
        c_seq = sequential_times(wl, pf, np.zeros(2))[0]
        assert sched.times()[0] == pytest.approx(c_seq)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           n=st.integers(min_value=2, max_value=24))
    @settings(max_examples=25, deadline=None)
    def test_property_equal_finish_and_budget(self, seed, n):
        """For any workload: all finish together and sum(p_i) ~= p."""
        from repro.workloads import npb_synth

        pf = taihulight()
        wl = npb_synth(n, np.random.default_rng(seed))
        x = np.zeros(n)
        sched = build_equal_finish_schedule(wl, pf, x)
        assert sched.finish_time_spread() < 1e-6
        assert sched.procs.sum() <= pf.p * (1 + 1e-6)
        assert sched.procs.sum() >= pf.p * (1 - 1e-6)
