"""Tests for the scheduler registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    PAPER_BASELINES,
    PAPER_HEURISTICS,
    get_scheduler,
    is_randomized,
    register,
    scheduler_names,
)
from repro.machine import taihulight
from repro.types import ModelError


class TestRegistry:
    def test_all_paper_strategies_present(self):
        names = set(scheduler_names())
        for name in PAPER_HEURISTICS + PAPER_BASELINES:
            assert name in names

    def test_lookup_case_insensitive(self):
        assert get_scheduler("Fair") is get_scheduler("fair")

    def test_unknown_scheduler(self):
        with pytest.raises(ModelError):
            get_scheduler("nope")

    def test_randomized_flags(self):
        assert is_randomized("randompart")
        assert is_randomized("dominant-random")
        assert not is_randomized("dominant-minratio")
        assert not is_randomized("fair")

    def test_register_duplicate_rejected(self):
        fn = get_scheduler("fair")
        with pytest.raises(ModelError):
            register("fair", fn)

    def test_register_overwrite_allowed(self):
        fn = get_scheduler("fair")
        register("fair", fn, overwrite=True)
        assert get_scheduler("fair") is fn

    def test_register_custom_and_call(self, synth16):
        calls = []

        def custom(wl, pf, rng=None):
            calls.append(wl.n)
            return get_scheduler("0cache")(wl, pf, rng)

        register("test-custom", custom, overwrite=True)
        pf = taihulight()
        s = get_scheduler("test-custom")(synth16, pf, None)
        assert calls == [16]
        assert s.is_feasible()

    def test_every_scheduler_runs(self, synth16):
        """Every registered strategy yields a valid schedule on NPB-SYNTH."""
        import repro.extensions  # noqa: F401  (registers extensions)

        pf = taihulight()
        rng = np.random.default_rng(0)
        for name in scheduler_names():
            if name == "test-custom":
                continue
            sched = get_scheduler(name)(synth16, pf, rng)
            assert sched.makespan() > 0, name
