"""Tests for Schedule and SequentialSchedule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Schedule, SequentialSchedule
from repro.core.execution import execution_times
from repro.types import InfeasibleScheduleError, ModelError


class TestSchedule:
    def test_times_match_model(self, two_apps, tiny_platform):
        procs = np.array([1.0, 3.0])
        cache = np.array([0.4, 0.6])
        s = Schedule(two_apps, tiny_platform, procs, cache)
        expected = execution_times(two_apps, tiny_platform, procs, cache)
        assert np.allclose(s.times(), expected)
        assert s.makespan() == pytest.approx(expected.max())

    def test_concurrent_flag(self, two_apps, tiny_platform):
        s = Schedule(two_apps, tiny_platform, [1.0, 1.0], [0.0, 0.0])
        assert s.concurrent

    def test_feasibility_procs_budget(self, two_apps, tiny_platform):
        with pytest.raises(InfeasibleScheduleError):
            Schedule(two_apps, tiny_platform, [3.0, 3.0], [0.0, 0.0])

    def test_feasibility_cache_budget(self, two_apps, tiny_platform):
        with pytest.raises(InfeasibleScheduleError):
            Schedule(two_apps, tiny_platform, [1.0, 1.0], [0.6, 0.6])

    def test_feasibility_nonpositive_procs(self, two_apps, tiny_platform):
        with pytest.raises(InfeasibleScheduleError):
            Schedule(two_apps, tiny_platform, [0.0, 1.0], [0.0, 0.0])

    def test_feasibility_cache_out_of_range(self, two_apps, tiny_platform):
        with pytest.raises(InfeasibleScheduleError):
            Schedule(two_apps, tiny_platform, [1.0, 1.0], [-0.1, 0.5])

    def test_validate_false_skips_check(self, two_apps, tiny_platform):
        s = Schedule(two_apps, tiny_platform, [3.0, 3.0], [0.0, 0.0], validate=False)
        assert not s.is_feasible()
        assert s.feasibility_violations()

    def test_shape_validation(self, two_apps, tiny_platform):
        with pytest.raises(ModelError):
            Schedule(two_apps, tiny_platform, [1.0], [0.0, 0.0])
        with pytest.raises(ModelError):
            Schedule(two_apps, tiny_platform, [1.0, 1.0], [0.0])

    def test_cache_subset_mask(self, two_apps, tiny_platform):
        s = Schedule(two_apps, tiny_platform, [1.0, 1.0], [0.5, 0.0])
        assert s.cache_subset.tolist() == [True, False]

    def test_finish_time_spread_zero_when_equal(self, two_apps, tiny_platform):
        """Proportional allocation equalizes perfectly parallel finish times."""
        from repro.core.execution import sequential_times

        c = sequential_times(two_apps, tiny_platform, np.zeros(2))
        procs = tiny_platform.p * c / c.sum()
        s = Schedule(two_apps, tiny_platform, procs, np.zeros(2))
        assert s.finish_time_spread() < 1e-12

    def test_with_cache_and_procs(self, two_apps, tiny_platform):
        s = Schedule(two_apps, tiny_platform, [1.0, 1.0], [0.0, 0.0])
        s2 = s.with_cache([0.3, 0.3])
        assert np.allclose(s2.cache, [0.3, 0.3])
        s3 = s.with_procs([2.0, 2.0])
        assert np.allclose(s3.procs, [2.0, 2.0])

    def test_describe_contains_apps(self, two_apps, tiny_platform):
        s = Schedule(two_apps, tiny_platform, [1.0, 1.0], [0.0, 0.0])
        text = s.describe()
        assert "A" in text and "B" in text and "makespan" in text

    def test_times_cached(self, two_apps, tiny_platform):
        s = Schedule(two_apps, tiny_platform, [1.0, 1.0], [0.0, 0.0])
        assert s.times() is s.times()


class TestSequentialSchedule:
    def test_makespan_is_sum(self, two_apps, tiny_platform):
        s = SequentialSchedule(two_apps, tiny_platform)
        assert s.makespan() == pytest.approx(s.times().sum())
        assert not s.concurrent

    def test_each_app_gets_everything(self, two_apps, tiny_platform):
        s = SequentialSchedule(two_apps, tiny_platform)
        expected = execution_times(
            two_apps, tiny_platform,
            np.full(2, tiny_platform.p), np.ones(2),
        )
        assert np.allclose(s.times(), expected)

    def test_completion_times_monotone(self, two_apps, tiny_platform):
        s = SequentialSchedule(two_apps, tiny_platform)
        ct = s.completion_times()
        assert np.all(np.diff(ct) > 0)
        assert ct[-1] == pytest.approx(s.makespan())
