"""Tests for the size-capped eviction of the on-disk result cache."""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.experiments import Experiment, ResultCache, run_experiment
from repro.machine import taihulight
from repro.workloads import npb_synth


def _entry(cache_dir, name: str, size: int, age_s: float):
    """Drop a fake cache entry of *size* bytes, *age_s* seconds old."""
    path = cache_dir / f"{name}.npz"
    path.write_bytes(b"\0" * size)
    stamp = time.time() - age_s
    os.utime(path, (stamp, stamp))
    return path


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path)


class TestPrune:
    def test_oldest_entries_go_first(self, cache, tmp_path):
        old = _entry(tmp_path, "fig1-old", 100, age_s=300)
        mid = _entry(tmp_path, "fig2-mid", 100, age_s=200)
        new = _entry(tmp_path, "fig3-new", 100, age_s=100)
        report = cache.prune(max_bytes=250)
        assert report.deleted == (old,)
        assert report.freed_bytes == 100
        assert report.kept_bytes == 200
        assert not old.exists() and mid.exists() and new.exists()

    def test_under_budget_is_a_noop(self, cache, tmp_path):
        _entry(tmp_path, "fig1-a", 100, age_s=10)
        report = cache.prune(max_bytes=1000)
        assert report.deleted == ()
        assert report.kept_bytes == 100

    def test_zero_budget_empties_cache(self, cache, tmp_path):
        for i in range(3):
            _entry(tmp_path, f"fig{i}-x", 50, age_s=i)
        report = cache.prune(max_bytes=0)
        assert len(report.deleted) == 3
        assert report.kept_bytes == 0
        assert cache.entries() == []

    def test_negative_budget_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.prune(max_bytes=-1)

    def test_dry_run_reports_without_deleting(self, cache, tmp_path):
        old = _entry(tmp_path, "fig1-old", 100, age_s=300)
        new = _entry(tmp_path, "fig2-new", 100, age_s=100)
        report = cache.prune(max_bytes=100, dry_run=True)
        # same selection a real pass would make, nothing unlinked
        assert report.deleted == (old,)
        assert report.freed_bytes == 100 and report.kept_bytes == 100
        assert old.exists() and new.exists()
        assert cache.prune(max_bytes=100).deleted == (old,)

    def test_missing_directory_is_empty(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.entries() == []
        assert cache.size_bytes() == 0
        assert cache.prune(max_bytes=0).deleted == ()

    def test_non_npz_files_are_untouched(self, cache, tmp_path):
        keep = tmp_path / "README.txt"
        keep.write_text("not a cache entry")
        _entry(tmp_path, "fig1-a", 100, age_s=10)
        cache.prune(max_bytes=0)
        assert keep.exists()

    def test_size_bytes_sums_entries(self, cache, tmp_path):
        _entry(tmp_path, "fig1-a", 100, age_s=10)
        _entry(tmp_path, "fig2-b", 250, age_s=20)
        assert cache.size_bytes() == 350


class TestLoadRefreshesRecency:
    def _experiment(self, experiment_id: str) -> Experiment:
        def factory(point, rng):
            return npb_synth(int(point), rng), taihulight()

        return Experiment(
            experiment_id=experiment_id,
            title="t", xlabel="x",
            points=np.array([2.0]),
            factory=factory,
            schedulers=("fair",),
            reps=1,
        )

    def test_hit_entry_survives_prune(self, tmp_path):
        """A cache hit must refresh the entry's mtime, so the recently
        *read* (not recently written) entry wins the byte budget."""
        cache = ResultCache(tmp_path)
        first = self._experiment("figA")
        second = self._experiment("figB")
        run_experiment(first, cache_dir=tmp_path)
        run_experiment(second, cache_dir=tmp_path)
        # age both, then touch figA via a cache hit
        for path in cache.entries():
            stamp = time.time() - 500
            os.utime(path, (stamp, stamp))
        run_experiment(first, cache_dir=tmp_path)  # hit -> mtime refresh
        sizes = {p.name.split("-")[0]: p.stat().st_size for p in cache.entries()}
        report = cache.prune(max_bytes=sizes["figA"])
        assert [p.name.startswith("figB") for p in report.deleted] == [True]
        assert cache.entries()[0].name.startswith("figA")
