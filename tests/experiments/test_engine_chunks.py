"""Scheduler-major process chunking: plan shape and bit-identity."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.registry import get_entry
from repro.experiments import Experiment, run_experiment
from repro.experiments.engine import (
    _plan_process_chunks,
    _split_indices,
    generate_tasks,
)
from repro.machine import taihulight
from repro.workloads import npb_synth


def _factory(point, rng):
    return npb_synth(max(1, int(point)), rng), taihulight()


def _exp(**kw):
    base = dict(
        experiment_id="chunks",
        title="chunk planning",
        xlabel="n",
        points=np.array([2.0, 3.0, 4.0]),
        factory=_factory,
        schedulers=("dominant-minratio", "0cache", "randompart"),
        reps=2,
        seed=11,
    )
    base.update(kw)
    return Experiment(**base)


class TestSplitIndices:
    def test_contiguous_and_complete(self):
        parts = _split_indices(list(range(10)), 3)
        assert [i for part in parts for i in part] == list(range(10))
        assert all(part == list(range(part[0], part[-1] + 1))
                   for part in parts)

    def test_more_chunks_than_items(self):
        assert _split_indices([5, 7], 8) == [[5], [7]]

    def test_one_chunk(self):
        assert _split_indices([1, 2, 3], 1) == [[1, 2, 3]]


class TestPlanProcessChunks:
    def test_perm_is_a_permutation(self):
        exp = _exp()
        tasks = generate_tasks(exp)
        chunks, perm = _plan_process_chunks(exp, tasks, 8)
        assert sorted(perm) == list(range(len(tasks)))
        assert sum(len(c) for c in chunks) == len(tasks)

    def test_chunk_order_matches_perm(self):
        exp = _exp()
        tasks = generate_tasks(exp)
        chunks, perm = _plan_process_chunks(exp, tasks, 8)
        flat = [task for chunk in chunks for task in chunk]
        assert flat == [tasks[i] for i in perm]

    def test_batchable_chunks_are_scheduler_pure(self):
        exp = _exp()
        tasks = generate_tasks(exp)
        chunks, _ = _plan_process_chunks(exp, tasks, 8)
        for chunk in chunks:
            schedulers = {task.scheduler for task in chunk}
            batchable = {s for s in schedulers
                         if get_entry(s).batch_fn is not None}
            # a chunk mixes schedulers only in the scalar pool
            if batchable:
                assert schedulers == batchable and len(schedulers) == 1

    def test_custom_evaluate_keeps_identity_plan(self):
        exp = _exp(evaluate=lambda *args: {"makespan": 1.0},
                   schedulers=("dominant-minratio",))
        tasks = generate_tasks(exp)
        chunks, perm = _plan_process_chunks(exp, tasks, 4)
        assert perm == list(range(len(tasks)))
        flat = [task for chunk in chunks for task in chunk]
        assert flat == list(tasks)

    def test_unknown_scheduler_routes_to_scalar_pool(self):
        exp = _exp()
        tasks = generate_tasks(exp)
        fake = [dataclasses.replace(t, scheduler="no-such")
                if i % 2 else t for i, t in enumerate(tasks)]
        chunks, perm = _plan_process_chunks(exp, fake, 8)
        assert sorted(perm) == list(range(len(fake)))
        # unknown names land in chunks with no batchable scheduler
        for chunk in chunks:
            if any(t.scheduler == "no-such" for t in chunk):
                assert all(get_entry(t.scheduler).batch_fn is None
                           for t in chunk if t.scheduler != "no-such")


class TestProcessBitIdentity:
    def test_process_matches_serial(self):
        exp = _exp()
        serial = run_experiment(exp, backend="serial", use_cache=False)
        procs = run_experiment(_exp(), backend="process", workers=2,
                               use_cache=False)
        for name in exp.schedulers:
            np.testing.assert_array_equal(serial.samples(name),
                                          procs.samples(name))
