"""Tests for the per-figure experiment definitions.

Every figure must build, run at reduced size, and produce the series
the paper plots (the *shape* assertions live in test_integration.py
and the benchmark harness; here we verify plumbing and normalization
targets).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    FIGURE_NORMALIZATIONS,
    FIGURES,
    build_figure,
    figure_ids,
    run_experiment,
)
from repro.types import ModelError

_SMALL_POINTS = {
    "fig1": np.array([2.0, 8.0]),
    "fig2": np.array([0.1, 0.5]),
    "fig3": np.array([2.0, 8.0]),
    "fig4": np.array([4.0, 32.0]),
    "fig5": np.array([64.0, 256.0]),
    "fig6": np.array([0.0, 0.1]),
    "fig7": np.array([2.0, 8.0]),
    "fig8": np.array([2.0, 8.0]),
    "fig9": np.array([64.0, 256.0]),
    "fig10": np.array([64.0, 256.0]),
    "fig11": np.array([64.0, 256.0]),
    "fig12": np.array([64.0, 256.0]),
    "fig13": np.array([0.0, 0.1]),
    "fig14": np.array([0.0, 0.1]),
    "fig15": np.array([0.1, 1.0]),
    "fig16": np.array([0.1, 1.0]),
    "fig17": np.array([2.0, 8.0]),
    "fig18": np.array([0.1, 0.5]),
}


class TestFigureRegistry:
    def test_eighteen_figures(self):
        assert len(FIGURES) == 18
        assert figure_ids() == tuple(f"fig{i}" for i in range(1, 19))

    def test_every_figure_has_normalization(self):
        assert set(FIGURE_NORMALIZATIONS) == set(FIGURES)

    def test_unknown_figure(self):
        with pytest.raises(ModelError):
            build_figure("fig99")

    def test_case_insensitive(self):
        assert build_figure("FIG1", reps=1).experiment_id == "fig1"


@pytest.mark.parametrize("figure_id", sorted(FIGURES, key=lambda s: int(s[3:])))
class TestEveryFigureRuns:
    def test_runs_and_normalizes(self, figure_id):
        exp = build_figure(figure_id, reps=2, seed=1,
                           points=_SMALL_POINTS[figure_id])
        res = run_experiment(exp)
        assert res.experiment_id == figure_id
        for norm in FIGURE_NORMALIZATIONS[figure_id]:
            if norm is None:
                series = {n: res.mean(n) for n in res.data}
            else:
                series = res.normalized(by=norm)
                assert np.allclose(series[norm], 1.0)
            for name, vals in series.items():
                assert np.all(np.isfinite(vals)), (figure_id, name)
                assert np.all(vals > 0), (figure_id, name)


class TestRepartitionMetrics:
    def test_fig7_records_allocations(self):
        exp = build_figure("fig7", reps=1, points=np.array([4.0]))
        res = run_experiment(exp)
        for metric in ("proc_min", "proc_mean", "proc_max",
                       "cache_min", "cache_mean", "cache_max"):
            assert res.samples("dominant-minratio", metric).shape == (1, 1)
        # min <= mean <= max
        lo = res.mean("dominant-minratio", "proc_min")
        mid = res.mean("dominant-minratio", "proc_mean")
        hi = res.mean("dominant-minratio", "proc_max")
        assert lo <= mid <= hi

    def test_fair_min_equals_max_procs(self):
        """The paper's observation: Fair allocates identically."""
        exp = build_figure("fig7", reps=1, points=np.array([8.0]))
        res = run_experiment(exp)
        assert res.mean("fair", "proc_min") == pytest.approx(
            res.mean("fair", "proc_max")
        )
