"""Tests for online experiments riding the offline grid."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import build_online_experiment, run_experiment
from repro.experiments.cache import spec_fingerprint
from repro.types import ModelError


@pytest.fixture(scope="module")
def exp():
    return build_online_experiment(
        arrivals="poisson:rate=5e-9",
        policies=("dominant", "fair", "fcfs"),
        napps_points=(4, 6),
        reps=2,
        seed=42,
    )


@pytest.fixture(scope="module")
def result(exp):
    return run_experiment(exp, use_cache=False)


class TestBuildOnlineExperiment:
    def test_bad_spec_fails_fast(self):
        with pytest.raises(ModelError):
            build_online_experiment(arrivals="storm:heavy")

    def test_declares_online_metrics(self, exp):
        assert set(exp.metrics) == {"makespan", "mean_flow", "max_flow"}
        assert exp.evaluate is not None


class TestRunOnlineExperiment:
    def test_records_all_cells(self, result):
        for policy in ("dominant", "fair", "fcfs"):
            for metric in ("makespan", "mean_flow", "max_flow"):
                arr = result.data[policy][metric]
                assert arr.shape == (2, 2)
                assert np.all(arr > 0)

    def test_fcfs_never_beats_dominant_makespan(self, result):
        assert np.all(result.data["dominant"]["makespan"]
                      <= result.data["fcfs"]["makespan"] * (1 + 1e-9))

    def test_backends_bit_identical(self, exp):
        serial = run_experiment(exp, backend="serial", use_cache=False)
        process = run_experiment(exp, backend="process", workers=2,
                                 use_cache=False)
        for policy in exp.schedulers:
            for metric in exp.metrics:
                assert np.array_equal(serial.data[policy][metric],
                                      process.data[policy][metric]), (
                    policy, metric)

    def test_cache_roundtrip(self, exp, tmp_path):
        a = run_experiment(exp, cache_dir=tmp_path)
        hits = []
        b = run_experiment(exp, cache_dir=tmp_path,
                           progress=hits.append)
        assert any("cache hit" in msg for msg in hits)
        for policy in exp.schedulers:
            for metric in exp.metrics:
                assert np.array_equal(a.data[policy][metric],
                                      b.data[policy][metric])

    def test_fingerprint_tracks_registered_policy_code(self):
        """Regression: an evaluate-based experiment naming a registry
        scheduler must invalidate its cache entries when that
        scheduler's implementation changes."""
        from repro.core import get_scheduler
        from repro.core.registry import _REGISTRY, register

        def impl_a(workload, platform, rng=None):
            return get_scheduler("fair")(workload, platform, rng)

        def impl_b(workload, platform, rng=None):  # different bytecode
            x = 0  # noqa: F841
            return get_scheduler("fair")(workload, platform, rng)

        name = "_fp_probe_scheduler"
        try:
            register(name, impl_a, description="probe")
            exp = build_online_experiment(policies=(name,),
                                          napps_points=(4,), reps=1)
            fp_a = spec_fingerprint(exp)
            register(name, impl_b, description="probe", overwrite=True)
            fp_b = spec_fingerprint(exp)
        finally:
            _REGISTRY.pop(name, None)
        assert fp_a != fp_b

    def test_fingerprint_allows_builtin_policy_labels(self, exp):
        """Builtin online policies are not registry entries; the
        fingerprint must not choke on them."""
        assert spec_fingerprint(exp)  # policies include dominant/fair/fcfs

    def test_fingerprint_distinguishes_arrival_specs(self):
        a = build_online_experiment(arrivals="poisson:rate=5e-9",
                                    napps_points=(4,), reps=1)
        b = build_online_experiment(arrivals="poisson:rate=1e-8",
                                    napps_points=(4,), reps=1)
        assert spec_fingerprint(a) != spec_fingerprint(b)

    def test_shared_scenario_stream_across_policies(self):
        """The arrival stream is a per-cell *scenario* stream: adding
        or removing policies does not perturb it, so a deterministic
        policy's grid is identical whatever it runs alongside."""
        solo = build_online_experiment(
            arrivals="poisson:rate=5e-9", policies=("fair",),
            napps_points=(4,), reps=2, seed=42)
        paired = build_online_experiment(
            arrivals="poisson:rate=5e-9", policies=("dominant", "fair"),
            napps_points=(4,), reps=2, seed=42)
        res_solo = run_experiment(solo, use_cache=False)
        res_paired = run_experiment(paired, use_cache=False)
        assert np.array_equal(res_solo.data["fair"]["makespan"],
                              res_paired.data["fair"]["makespan"])


class TestEvaluatorContract:
    def test_missing_metric_key_raises(self):
        exp = build_online_experiment(napps_points=(4,), reps=1,
                                      policies=("fair",))
        exp.metrics["extra"] = None
        with pytest.raises(ModelError, match="extra"):
            run_experiment(exp, use_cache=False)
